package main

import (
	"strings"
	"testing"
	"time"

	"beambench/internal/metrics"
	"beambench/internal/obs"
)

func sampleSnapshot(uptime float64, in, out, lag int64) *obs.Snapshot {
	return &obs.Snapshot{
		Schema:    obs.SnapshotSchemaVersion,
		Records:   1000,
		Runs:      2,
		UptimeSec: uptime,
		Progress:  obs.Progress{Total: 3, Running: 1, Done: 1, Skipped: 1},
		Cells: []obs.CellSnapshot{
			{
				Key: "Flink Beam P2 WindowedCount", State: obs.CellRunning, RunsDone: 1,
				InputRecords: in, OutputRecords: out,
				ConsumerLag:  []obs.LagSample{{Topic: "input", Partition: 0, Lag: lag}},
				WatermarkLag: []obs.WatermarkLag{{Operator: "window", LagSec: 0.25}},
				Latency:      &metrics.LatencySummary{Count: 10, P50: 0.01, P99: 0.123, Max: 0.2},
			},
			{Key: "Spark P1 Identity", State: obs.CellDone, RunsDone: 2, InputRecords: 1000, OutputRecords: 1000},
			{Key: "Apex P1 Grep", State: obs.CellSkipped, SkipReason: "unsupported transform"},
		},
	}
}

func TestRenderFrameFirstAndDelta(t *testing.T) {
	first, state := renderFrame(sampleSnapshot(1.0, 100, 50, 40), nil)
	for _, want := range []string{
		"1000 records x 2 runs",
		"1 running, 1 done, 0 pending, 1 skipped, 0 failed (total 3)",
		"Flink Beam P2 WindowedCount",
		"INGEST/s", "DRAIN/s",
		"0.25s",                 // watermark lag
		"0.123s",                // p99
		"skipped",               // state column
		"unsupported transform", // reason footer
	} {
		if !strings.Contains(first, want) {
			t.Errorf("first frame missing %q:\n%s", want, first)
		}
	}
	// No previous frame: rates render as placeholders.
	if !strings.Contains(first, "-") {
		t.Errorf("first frame should carry rate placeholders:\n%s", first)
	}

	second, _ := renderFrame(sampleSnapshot(2.0, 300, 150, 90), state)
	// 200 more inputs and 100 more outputs over 1s.
	for _, want := range []string{"200", "100", "90+"} {
		if !strings.Contains(second, want) {
			t.Errorf("delta frame missing %q:\n%s", want, second)
		}
	}
	third, _ := renderFrame(sampleSnapshot(2.0, 300, 150, 10), state)
	if !strings.Contains(third, "10-") {
		t.Errorf("falling lag not marked:\n%s", third)
	}
}

func TestRunWatchAgainstLiveServer(t *testing.T) {
	plane := obs.NewPlane(100, 1)
	plane.Expect([]string{"Flink P1 Identity"})
	plane.Cell("Flink P1 Identity").StartRun(obs.CellSources{})
	plane.Cell("Flink P1 Identity").EndRun()
	plane.Cell("Flink P1 Identity").Finish(obs.CellDone, "")
	srv, err := plane.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var sb strings.Builder
	// The matrix is complete, so the watcher renders one frame and exits.
	if err := runWatch(srv.Addr(), 10*time.Millisecond, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, ansiClear) {
		t.Error("frame not preceded by the ANSI clear sequence")
	}
	if !strings.Contains(out, "Flink P1 Identity") || !strings.Contains(out, "done") {
		t.Errorf("dashboard missing the finished cell:\n%s", out)
	}
}

func TestRunWatchBadTarget(t *testing.T) {
	var sb strings.Builder
	if err := runWatch("127.0.0.1:1", 10*time.Millisecond, &sb); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestRunServeFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-figure", "9", "-records", "500", "-runs", "1", "-quiet", "-no-noise",
		"-ingest", "stream", "-serve", "127.0.0.1:0",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Grep Query") {
		t.Errorf("figure output missing under -serve:\n%s", sb.String())
	}
}
