// Command beambench reproduces the evaluation of Hesse et al. (ICDCS
// 2019): it runs the StreamBench queries — the paper's four stateless
// ones plus three stateful event-time workloads (the tumbling
// WindowedCount, the overlapping-window SlidingSum, and the two-input
// windowed Join) — on the three simulated engines, with native APIs and
// through the Beam abstraction layer, and prints the paper's figures
// and tables.
//
// Usage examples:
//
//	beambench -figure 11                 # slowdown factors (Figure 11)
//	beambench -figure 6 -runs 10         # identity execution times
//	beambench -table 3                   # per-run identity times on Flink
//	beambench -all -json report.json     # everything, plus raw JSON
//	beambench -print queries             # Table II (static)
//	beambench -records 1000001 -runs 10  # paper-scale (slow)
//	beambench -all -workers 1            # strictly sequential matrix
//	beambench -figure 11 -fusion on      # force ParDo fusion on every runner
//	beambench -figure 6 -latency         # event-time latency p50/p90/p99 + throughput
//	beambench -figure 6 -ingest stream -rate 5000   # sustained-load scenario
//	beambench -query windowedcount -json out.json   # one query's 12 cells, JSON only
//	beambench -query windowedcount -ingest stream -trace trace.json  # Chrome trace (Perfetto)
//	beambench -trace-summary trace.json  # top stages by wall time + peak lag, offline
//	beambench -figure 6 -workers 1 -cpuprofile prof/ -memprofile prof/  # pprof per cell
//	beambench -all -serve :9090          # live /metrics, /snapshot, /debug/pprof during the run
//	beambench -watch localhost:9090      # in-flight dashboard against a -serve instance
//
// -serve starts the live telemetry plane for the duration of the run:
// /metrics speaks OpenMetrics text (scrapeable by Prometheus),
// /snapshot returns the versioned JSON view the -watch dashboard
// renders, and /debug/pprof exposes the standard profiles. The plane is
// pull-based — nothing is sampled unless something scrapes — so it adds
// no goroutines and no per-record work to the benchmark itself.
//
// -trace records run-level spans (sender, cluster launch, per-stage
// execution, result calculation), per-partition consumer-lag and
// per-operator watermark-lag counter tracks, and pane-firing instants
// into a bounded ring, exported as Chrome trace-event JSON; see the
// README's Observability section and internal/obs.
//
// A matrix cell whose runner rejects the pipeline (beam.ErrUnsupported)
// is recorded as a skipped cell with its reason — in figures and in the
// JSON — instead of aborting the run.
//
// Engines run through the beam runner registry; -fusion selects the
// translation mode for the Beam cells (default keeps each runner
// paper-faithful: fused on Apex, per-primitive on Flink and Spark).
//
// -ingest selects when the data sender runs relative to query
// execution. The default, preload, fills the input topic before the
// engine cluster launches (the original reproduction's setup), so
// execution time measures drain throughput and event-time latency is
// dominated by queueing from time zero. With -ingest stream the sender
// runs concurrently with the engine at the -rate offered load
// (records/second on the simulated clock; 0 streams unthrottled), so
// the latency numbers measure processing delay under sustained load and
// execution time stretches to at least the sending window. Outputs are
// byte-identical across modes.
//
// -latency turns on the telemetry subsystem (internal/metrics): every
// cell additionally reports per-record event-time latency quantiles
// (output-topic append time minus input-topic append time, from broker
// timestamps alone) and per-stage throughput from the engine operators.
// Both blocks are included in -json output.
//
// Every run builds its own broker and engine cluster, so the matrix
// cells are independent; -workers (default: one per CPU) fans them out
// across goroutines without changing the report's row ordering. The
// execution times themselves are measured wall clock, so concurrent
// cells contend for CPU; use -workers 1 for measurement-grade numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"beambench/internal/beam"
	"beambench/internal/harness"
	"beambench/internal/obs"
	"beambench/internal/queries"
)

// _traceRingCapacity bounds -trace memory: the newest ~256k events are
// kept (a full default matrix fits comfortably); on overflow the export
// carries an obs/dropped-events counter instead of growing unbounded.
const _traceRingCapacity = 1 << 18

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "beambench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("beambench", flag.ContinueOnError)
	var (
		records  = fs.Int("records", 50_000, "workload size (paper: 1000001)")
		runs     = fs.Int("runs", 5, "runs per setup (paper: 10)")
		figure   = fs.Int("figure", 0, "print one figure (6-11)")
		table    = fs.Int("table", 0, "print one table (1-3)")
		all      = fs.Bool("all", false, "run everything and print all figures and tables")
		queryArg = fs.String("query", "", "limit to one query: "+strings.Join(queries.Names(), "|"))
		jsonPath = fs.String("json", "", "write the raw report as JSON to this file")
		seed     = fs.Uint64("seed", 42, "dataset seed")
		fusion   = fs.String("fusion", "default", "ParDo fusion mode for Beam cells: default|on|off")
		ingest   = fs.String("ingest", "preload", "ingestion mode: preload (fill the topic, then launch) or stream (sender runs concurrently)")
		rate     = fs.Int("rate", 0, "streaming sender rate in records/second (0 = unthrottled; -ingest stream only)")
		latency  = fs.Bool("latency", false, "collect and print per-record event-time latency (p50/p90/p99) and per-stage throughput")
		noNoise  = fs.Bool("no-noise", false, "disable the run-to-run noise model")
		workers  = fs.Int("workers", harness.DefaultWorkers(), "concurrent benchmark cells (1 = sequential)")
		quiet    = fs.Bool("quiet", false, "suppress progress output")
		printArg = fs.String("print", "", "print static info: systems|queries")

		tracePath    = fs.String("trace", "", "write a Chrome trace-event JSON of the matrix to this file (open in Perfetto / chrome://tracing)")
		traceSummary = fs.String("trace-summary", "", "summarize an existing trace file (top stages by wall time, peak gauge values) and exit")
		gaugeEvery   = fs.Duration("gauge-interval", 0, "lag-gauge sampling cadence for -trace (default 50ms)")
		cpuProfile   = fs.String("cpuprofile", "", "write one pprof CPU profile per matrix cell into this directory (requires -workers 1)")
		memProfile   = fs.String("memprofile", "", "write one pprof heap profile per matrix cell into this directory")

		serveAddr     = fs.String("serve", "", "serve live telemetry on this address during the run: /metrics (OpenMetrics), /snapshot (JSON), /debug/pprof (e.g. :9090)")
		watchURL      = fs.String("watch", "", "watch a running beambench -serve instance at this URL (or host:port) and exit when its matrix completes")
		watchInterval = fs.Duration("watch-interval", 500*time.Millisecond, "refresh cadence for -watch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *printArg != "" {
		switch *printArg {
		case "systems":
			fmt.Fprint(out, harness.FormatTableI())
			return nil
		case "queries":
			r, err := harness.New(harness.Config{Records: *records, DatasetSeed: *seed})
			if err != nil {
				return err
			}
			fmt.Fprint(out, harness.FormatTableII(r.DatasetSize(), r.GrepHits()))
			return nil
		default:
			return fmt.Errorf("unknown -print target %q", *printArg)
		}
	}
	if *watchURL != "" {
		return runWatch(*watchURL, *watchInterval, out)
	}
	if *traceSummary != "" {
		f, err := os.Open(*traceSummary)
		if err != nil {
			return err
		}
		defer f.Close()
		sum, err := obs.Summarize(f)
		if err != nil {
			return err
		}
		fmt.Fprint(out, sum.Format(15))
		return nil
	}

	// A query restricted to JSON or trace output needs no figure:
	// WindowedCount has no paper figure, so `-query windowedcount -json
	// out.json` (or `-trace out.json`) is the way to benchmark it
	// standalone (the CI smoke step does).
	jsonOnly := *figure == 0 && *table == 0 && !*all && *queryArg != "" && (*jsonPath != "" || *tracePath != "")
	if *figure == 0 && *table == 0 && !*all && !jsonOnly {
		return fmt.Errorf("nothing to do: pass -figure N, -table N, -all, -print, or -query with -json/-trace")
	}
	if *table == 1 {
		fmt.Fprint(out, harness.FormatTableI())
		return nil
	}

	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", *workers)
	}
	fusionMode, err := beam.ParseFusionMode(*fusion)
	if err != nil {
		return err
	}
	ingestMode, err := harness.ParseIngestMode(*ingest)
	if err != nil {
		return err
	}
	if *rate != 0 && ingestMode != harness.IngestStream {
		return fmt.Errorf("-rate %d only applies with -ingest stream", *rate)
	}
	if *cpuProfile != "" && *workers > 1 {
		return fmt.Errorf("-cpuprofile requires -workers 1 (CPU profiling is process-global)")
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(_traceRingCapacity)
	}
	var plane *obs.Plane
	if *serveAddr != "" {
		plane = obs.NewPlane(*records, *runs)
	}
	cfg := harness.Config{
		Records:           *records,
		Runs:              *runs,
		DatasetSeed:       *seed,
		DisableNoise:      *noNoise,
		Fusion:            fusionMode,
		Ingest:            ingestMode,
		RateRecordsPerSec: *rate,
		Workers:           *workers,
		CollectMetrics:    *latency,
		Plane:             plane,
		Trace:             tracer,
		GaugeInterval:     *gaugeEvery,
		CPUProfileDir:     *cpuProfile,
		MemProfileDir:     *memProfile,
	}
	if !*quiet {
		cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "  "+msg) }
	}
	r, err := harness.New(cfg)
	if err != nil {
		return err
	}

	if *table == 2 {
		fmt.Fprint(out, harness.FormatTableII(r.DatasetSize(), r.GrepHits()))
		return nil
	}

	qs, err := selectQueries(*figure, *table, *all, *queryArg)
	if err != nil {
		return err
	}
	if plane != nil {
		srv, err := plane.Serve(*serveAddr)
		if err != nil {
			return fmt.Errorf("-serve %s: %w", *serveAddr, err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "  serving live telemetry on %s (/metrics /snapshot /debug/pprof)\n", srv.URL())
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "benchmarking %d records x %d runs x %d queries x 12 setups (%d workers, ingest=%s)\n",
			r.DatasetSize(), *runs, len(qs), *workers, ingestMode)
	}
	rep, runErr := r.RunMatrix(context.Background(), qs, *workers)

	// The trace is written even for a partial matrix: the spans and lag
	// tracks up to the failure are exactly what a post-mortem wants.
	if tracer != nil {
		if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
			return err
		}
		if !*quiet {
			if d := tracer.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "  trace written to %s (ring overflowed: %d oldest events dropped; see obs/dropped-events)\n", *tracePath, d)
			} else {
				fmt.Fprintf(os.Stderr, "  trace written to %s\n", *tracePath)
			}
		}
	}
	if rep == nil {
		return runErr
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
	}
	if runErr != nil {
		// The completed cells were still written to -json (if set);
		// figures need the full matrix, so stop here.
		if *jsonPath != "" && !*quiet {
			fmt.Fprintf(os.Stderr, "  partial report (%d cells) written to %s\n", len(rep.Cells), *jsonPath)
		}
		return runErr
	}

	switch {
	case *all:
		for n := 6; n <= 11; n++ {
			text, err := rep.FormatFigure(n)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, text)
		}
		t3, err := rep.FormatTableIII()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.FormatTableI())
		fmt.Fprintln(out, harness.FormatTableII(r.DatasetSize(), r.GrepHits()))
		fmt.Fprintln(out, t3)
	case *figure != 0:
		text, err := rep.FormatFigure(*figure)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, text)
	case *table == 3:
		t3, err := rep.FormatTableIII()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t3)
	}
	if *latency {
		text, err := rep.FormatLatency()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, text)
	}
	return nil
}

// selectQueries decides which queries must run for the requested output.
func selectQueries(figure, table int, all bool, queryArg string) ([]queries.Query, error) {
	if queryArg != "" {
		q, err := parseQuery(queryArg)
		if err != nil {
			return nil, err
		}
		return []queries.Query{q}, nil
	}
	switch {
	case all || figure == 10 || figure == 11:
		return queries.All(), nil
	case figure >= 6 && figure <= 9:
		byFig := map[int]queries.Query{
			6: queries.Identity, 7: queries.Sample, 8: queries.Projection, 9: queries.Grep,
		}
		return []queries.Query{byFig[figure]}, nil
	case table == 3:
		return []queries.Query{queries.Identity}, nil
	default:
		return nil, fmt.Errorf("unsupported figure/table selection")
	}
}

func parseQuery(s string) (queries.Query, error) {
	return queries.ParseQuery(s)
}
