package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"beambench/internal/obs"
)

// ansiClear clears the terminal and homes the cursor between frames.
const ansiClear = "\x1b[H\x1b[2J"

// watchState carries the previous frame's counters so a frame can show
// rates (delta over wall time) and a lag trend per cell.
type watchState struct {
	uptimeSec float64
	in        map[string]int64
	out       map[string]int64
	lag       map[string]int64
}

// runWatch polls url's /snapshot endpoint and redraws a dashboard until
// the matrix has no pending or running cells left.
func runWatch(url string, interval time.Duration, out io.Writer) error {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/")
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}

	var prev *watchState
	for {
		snap, err := fetchSnapshot(client, url+"/snapshot")
		if err != nil {
			// A -serve instance tears the server down right after its
			// matrix completes; losing the connection after frames were
			// rendered means the run ended between polls, not a failure.
			if prev != nil {
				fmt.Fprintf(out, "\nconnection lost — the benchmark finished or the server stopped (%v)\n", err)
				return nil
			}
			return err
		}
		frame, next := renderFrame(snap, prev)
		fmt.Fprint(out, ansiClear+frame)
		prev = next
		if snap.Progress.Total > 0 && snap.Progress.Pending == 0 && snap.Progress.Running == 0 {
			return nil
		}
		time.Sleep(interval)
	}
}

func fetchSnapshot(client *http.Client, url string) (*obs.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	if snap.Schema != obs.SnapshotSchemaVersion {
		return nil, fmt.Errorf("snapshot schema %d, this binary speaks %d", snap.Schema, obs.SnapshotSchemaVersion)
	}
	return &snap, nil
}

// renderFrame formats one dashboard frame and returns the state the
// next frame diffs against. Pure: no I/O, no clock — rates come from
// the snapshots' own uptime delta, which keeps the renderer testable.
func renderFrame(snap *obs.Snapshot, prev *watchState) (string, *watchState) {
	next := &watchState{
		uptimeSec: snap.UptimeSec,
		in:        make(map[string]int64, len(snap.Cells)),
		out:       make(map[string]int64, len(snap.Cells)),
		lag:       make(map[string]int64, len(snap.Cells)),
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "beambench live — %d records x %d runs — uptime %.1fs\n",
		snap.Records, snap.Runs, snap.UptimeSec)
	p := snap.Progress
	fmt.Fprintf(&sb, "cells: %d running, %d done, %d pending, %d skipped, %d failed (total %d)\n\n",
		p.Running, p.Done, p.Pending, p.Skipped, p.Failed, p.Total)

	dt := 0.0
	if prev != nil {
		dt = snap.UptimeSec - prev.uptimeSec
	}

	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CELL\tSTATE\tRUNS\tIN\tOUT\tINGEST/s\tDRAIN/s\tLAG\tWM LAG\tp99")
	for _, c := range snap.Cells {
		totalLag := int64(0)
		for _, l := range c.ConsumerLag {
			totalLag += l.Lag
		}
		next.in[c.Key] = c.InputRecords
		next.out[c.Key] = c.OutputRecords
		next.lag[c.Key] = totalLag

		ingest, drain := "-", "-"
		if prev != nil && dt > 0 && c.State == obs.CellRunning {
			if pin, ok := prev.in[c.Key]; ok && c.InputRecords >= pin {
				ingest = fmt.Sprintf("%.0f", float64(c.InputRecords-pin)/dt)
			}
			if pout, ok := prev.out[c.Key]; ok && c.OutputRecords >= pout {
				drain = fmt.Sprintf("%.0f", float64(c.OutputRecords-pout)/dt)
			}
		}
		lag := "-"
		if c.State == obs.CellRunning {
			lag = fmt.Sprintf("%d%s", totalLag, trendMark(prev, c.Key, totalLag))
		}
		wmLag := "-"
		if n := len(c.WatermarkLag); n > 0 {
			maxLag := 0.0
			for _, w := range c.WatermarkLag {
				if w.LagSec > maxLag {
					maxLag = w.LagSec
				}
			}
			wmLag = fmt.Sprintf("%.2fs", maxLag)
		}
		p99 := "-"
		if c.Latency != nil {
			p99 = fmt.Sprintf("%.3fs", c.Latency.P99)
		}
		state := string(c.State)
		if c.State == obs.CellSkipped && c.SkipReason != "" {
			state = "skipped*"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
			c.Key, state, c.RunsDone, snap.Runs, c.InputRecords, c.OutputRecords,
			ingest, drain, lag, wmLag, p99)
	}
	tw.Flush()

	// Skip reasons, deduplicated, below the table.
	reasons := map[string]bool{}
	for _, c := range snap.Cells {
		if c.State == obs.CellSkipped && c.SkipReason != "" {
			reasons[c.SkipReason] = true
		}
	}
	if len(reasons) > 0 {
		keys := make([]string, 0, len(reasons))
		for r := range reasons {
			keys = append(keys, r)
		}
		sort.Strings(keys)
		sb.WriteString("\n* skipped: " + strings.Join(keys, "; ") + "\n")
	}
	return sb.String(), next
}

// trendMark annotates a running cell's consumer lag with its direction
// since the previous frame.
func trendMark(prev *watchState, key string, lag int64) string {
	if prev == nil {
		return ""
	}
	before, ok := prev.lag[key]
	if !ok {
		return ""
	}
	switch {
	case lag > before:
		return "+"
	case lag < before:
		return "-"
	default:
		return "="
	}
}
