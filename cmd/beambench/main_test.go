package main

import (
	"os"
	"strings"
	"testing"

	"beambench/internal/queries"
)

func TestParseQuery(t *testing.T) {
	tests := []struct {
		give    string
		want    queries.Query
		wantErr bool
	}{
		{give: "identity", want: queries.Identity},
		{give: "Sample", want: queries.Sample},
		{give: "PROJECTION", want: queries.Projection},
		{give: "grep", want: queries.Grep},
		{give: "wordcount", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseQuery(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseQuery(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseQuery(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestSelectQueries(t *testing.T) {
	all, err := selectQueries(0, 0, true, "")
	if err != nil || len(all) != len(queries.All()) {
		t.Errorf("all = %v, %v", all, err)
	}
	fig6, err := selectQueries(6, 0, false, "")
	if err != nil || len(fig6) != 1 || fig6[0] != queries.Identity {
		t.Errorf("fig6 = %v, %v", fig6, err)
	}
	fig11, err := selectQueries(11, 0, false, "")
	if err != nil || len(fig11) != len(queries.All()) {
		t.Errorf("fig11 = %v, %v", fig11, err)
	}
	table3, err := selectQueries(0, 3, false, "")
	if err != nil || len(table3) != 1 || table3[0] != queries.Identity {
		t.Errorf("table3 = %v, %v", table3, err)
	}
	limited, err := selectQueries(11, 0, false, "grep")
	if err != nil || len(limited) != 1 || limited[0] != queries.Grep {
		t.Errorf("limited = %v, %v", limited, err)
	}
	if _, err := selectQueries(0, 0, false, ""); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := selectQueries(0, 0, false, "bogus"); err == nil {
		t.Error("bogus query accepted")
	}
}

func TestRunStaticOutputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-print", "systems"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Tuple-by-tuple") {
		t.Errorf("systems output missing content:\n%s", sb.String())
	}

	sb.Reset()
	if err := run([]string{"-print", "queries", "-records", "1000"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Grep") {
		t.Errorf("queries output missing content:\n%s", sb.String())
	}

	sb.Reset()
	if err := run([]string{"-table", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table I") {
		t.Errorf("table 1 output missing content:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run([]string{"-print", "bogus"}, &sb); err == nil {
		t.Error("bogus print target accepted")
	}
	if err := run([]string{"-figure", "99"}, &sb); err == nil {
		t.Error("bogus figure accepted")
	}
}

func TestRunTinyFigure(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figure", "9", "-records", "500", "-runs", "1", "-quiet", "-no-noise"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Grep Query", "Apex Beam P1", "Spark P2"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("figure output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunWorkersFlag(t *testing.T) {
	var seq, par strings.Builder
	args := []string{"-figure", "9", "-records", "500", "-runs", "1", "-quiet", "-no-noise"}
	if err := run(append(args, "-workers", "1"), &seq); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", "4"), &par); err != nil {
		t.Fatal(err)
	}
	// The figures print mean execution times, which vary run to run, but
	// the row labels and their order must be identical at any worker
	// count.
	rowLabels := func(s string) []string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			fields := strings.Fields(line)
			if len(fields) > 2 && fields[len(fields)-1] == "s" {
				out = append(out, strings.Join(fields[:len(fields)-2], " "))
			}
		}
		return out
	}
	seqRows, parRows := rowLabels(seq.String()), rowLabels(par.String())
	if len(seqRows) != 12 {
		t.Fatalf("sequential figure has %d rows, want 12:\n%s", len(seqRows), seq.String())
	}
	for i := range seqRows {
		if seqRows[i] != parRows[i] {
			t.Errorf("row %d differs: %q vs %q", i, seqRows[i], parRows[i])
		}
	}

	if err := run(append(args, "-workers", "0"), &par); err == nil {
		t.Error("-workers 0 accepted")
	}
}

func TestRunIngestStreamFlag(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/report.json"
	var sb strings.Builder
	err := run([]string{
		"-figure", "9", "-records", "500", "-runs", "1", "-quiet", "-no-noise",
		"-ingest", "stream", "-rate", "100000", "-json", path,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Grep Query", "ingest=stream@100000 rec/s", "Apex Beam P1", "Spark P2"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("stream-mode figure missing %q:\n%s", want, sb.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ingest": "stream"`, `"rateRecordsPerSec": 100000`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON report missing %s:\n%s", want, data)
		}
	}

	if err := run([]string{"-figure", "9", "-ingest", "bogus"}, &sb); err == nil {
		t.Error("bogus ingest mode accepted")
	}
	if err := run([]string{"-figure", "9", "-rate", "100"}, &sb); err == nil {
		t.Error("-rate without -ingest stream accepted")
	}
}

func TestRunLatencyFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figure", "9", "-records", "500", "-runs", "1", "-quiet", "-no-noise", "-latency"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Event-Time Latency and Per-Stage Throughput",
		"p50", "p90", "p99", "rec/s peak",
		"Apex Beam P1 Grep", "Spark P2 Grep",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("latency output missing %q:\n%s", want, out)
		}
	}
}

func TestRunLatencyJSON(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/report.json"
	var sb strings.Builder
	err := run([]string{"-figure", "9", "-records", "500", "-runs", "1", "-quiet", "-no-noise", "-latency", "-json", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"latency"`, `"p99Sec"`, `"stages"`, `"peakRate"`, `"outputRecordsPerRun"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON report missing %s:\n%s", want, data)
		}
	}
}
