package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beambench/internal/broker"
)

func TestParseAcks(t *testing.T) {
	tests := []struct {
		give    string
		want    broker.Acks
		wantErr bool
	}{
		{give: "0", want: broker.AcksNone},
		{give: "1", want: broker.AcksLeader},
		{give: "all", want: broker.AcksAll},
		{give: "-1", want: broker.AcksAll},
		{give: "2", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseAcks(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseAcks(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseAcks(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRunGeneratesSnapshotAndTSV(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "b.snap")
	tsv := filepath.Join(dir, "w.tsv")
	var sb strings.Builder
	err := run([]string{"-records", "300", "-out", snap, "-tsv", tsv}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ingested 300 records") {
		t.Errorf("unexpected output: %s", sb.String())
	}

	// The snapshot restores into a broker with the records present.
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := broker.New()
	if err := b.LoadSnapshot(f); err != nil {
		t.Fatal(err)
	}
	n, err := b.RecordCount("input")
	if err != nil || n != 300 {
		t.Errorf("restored records = %d, %v; want 300", n, err)
	}

	data, err := os.ReadFile(tsv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 300 {
		t.Errorf("TSV lines = %d, want 300", lines)
	}
}

func TestRunRequiresOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-records", "10"}, &sb); err == nil {
		t.Error("invocation without outputs accepted")
	}
	if err := run([]string{"-records", "10", "-acks", "9", "-out", "x"}, &sb); err == nil {
		t.Error("bad acks accepted")
	}
}
