// Command datasender is the benchmark's standalone data sender (phase 1
// of the process in Figure 5): it generates the AOL-style workload and
// loads it into a broker topic, then saves the broker state as a
// snapshot file that cmd/resultcalc and other tools can load. It can
// also emit the raw workload as TSV.
//
// Usage:
//
//	datasender -records 1000001 -out broker.snap
//	datasender -records 50000 -tsv workload.tsv
//	datasender -records 50000 -rate 100000 -acks all -out broker.snap
//
// -rate controls the records/second offered load, the same knob the
// in-process benchmark sender exposes as `beambench -ingest stream
// -rate N` (where the sender runs concurrently with query execution).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"beambench/internal/aol"
	"beambench/internal/broker"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datasender:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("datasender", flag.ContinueOnError)
	var (
		records  = fs.Int("records", 1_000_001, "number of records to generate")
		seed     = fs.Uint64("seed", 42, "generator seed")
		topic    = fs.String("topic", "input", "target topic name")
		acksArg  = fs.String("acks", "1", "producer acks: 0|1|all")
		batch    = fs.Int("batch", 500, "producer batch size")
		rate     = fs.Int("rate", 0, "ingestion rate in records/second (0 = unlimited)")
		snapPath = fs.String("out", "", "write a broker snapshot to this file")
		tsvPath  = fs.String("tsv", "", "write the workload as TSV to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapPath == "" && *tsvPath == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -tsv")
	}
	acks, err := parseAcks(*acksArg)
	if err != nil {
		return err
	}

	if *tsvPath != "" {
		gen, err := aol.NewGenerator(aol.Config{Records: *records, Seed: *seed, GrepHits: -1})
		if err != nil {
			return err
		}
		f, err := os.Create(*tsvPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		n, err := gen.WriteTSV(w)
		if err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d TSV records to %s\n", n, *tsvPath)
	}

	if *snapPath != "" {
		n, elapsed, err := ingest(*records, *seed, *topic, acks, *batch, *rate, *snapPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "ingested %d records into topic %q in %v, snapshot at %s\n",
			n, *topic, elapsed.Round(time.Millisecond), *snapPath)
	}
	return nil
}

func ingest(records int, seed uint64, topic string, acks broker.Acks, batch, rate int, snapPath string) (int, time.Duration, error) {
	gen, err := aol.NewGenerator(aol.Config{Records: records, Seed: seed, GrepHits: -1})
	if err != nil {
		return 0, 0, err
	}
	b := broker.New()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1, ReplicationFactor: 1}); err != nil {
		return 0, 0, err
	}
	producer, err := b.NewProducer(broker.ProducerConfig{Acks: acks, BatchSize: batch})
	if err != nil {
		return 0, 0, err
	}

	start := time.Now()
	var limiter *time.Ticker
	if rate > 0 {
		limiter = time.NewTicker(time.Second / time.Duration(rate))
		defer limiter.Stop()
	}
	n := 0
	var buf []byte
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if limiter != nil {
			<-limiter.C
		}
		buf = rec.AppendTSV(buf[:0])
		if err := producer.Send(topic, nil, buf); err != nil {
			return n, 0, err
		}
		n++
	}
	if err := producer.Close(); err != nil {
		return n, 0, err
	}
	elapsed := time.Since(start)

	f, err := os.Create(snapPath)
	if err != nil {
		return n, 0, err
	}
	if err := b.SaveSnapshot(f); err != nil {
		f.Close()
		return n, 0, err
	}
	return n, elapsed, f.Close()
}

func parseAcks(s string) (broker.Acks, error) {
	switch s {
	case "0":
		return broker.AcksNone, nil
	case "1":
		return broker.AcksLeader, nil
	case "all", "-1":
		return broker.AcksAll, nil
	default:
		return 0, fmt.Errorf("invalid acks %q (want 0, 1 or all)", s)
	}
}
