package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"beambench/internal/broker"
)

func writeSnapshot(t *testing.T) string {
	t.Helper()
	clock := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := broker.New(broker.WithClock(func() time.Time { return clock }))
	if err := b.CreateTopic("output", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("output", nil, []byte("first")); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Second)
	if err := p.Send("output", nil, []byte("last")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResultCalculation(t *testing.T) {
	path := writeSnapshot(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-topic", "output"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "records:         2") {
		t.Errorf("missing record count:\n%s", out)
	}
	if !strings.Contains(out, "execution time:  2s") {
		t.Errorf("missing 2s execution time:\n%s", out)
	}
}

func TestEmptyTopic(t *testing.T) {
	clockPath := filepath.Join(t.TempDir(), "e.snap")
	b := broker.New()
	if err := b.CreateTopic("empty", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(clockPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	if err := run([]string{"-in", clockPath, "-topic", "empty"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no execution time") {
		t.Errorf("unexpected output: %s", sb.String())
	}
}

// writeLatencySnapshot builds a snapshot with an input topic of three
// records appended at t0, t0+1s, t0+2s and an output topic whose grep
// survivors (records containing "test") were appended 5s after their
// inputs, so every per-record latency is exactly 5s.
func writeLatencySnapshot(t *testing.T) string {
	t.Helper()
	clock := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := broker.New(broker.WithClock(func() time.Time { return clock }))
	for _, topic := range []string{"input", "output"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{[]byte("a test record"), []byte("plain"), []byte("another test")}
	base := clock
	for i, rec := range inputs {
		clock = base.Add(time.Duration(i) * time.Second)
		if err := p.Send("input", nil, rec); err != nil {
			t.Fatal(err)
		}
	}
	for i, rec := range [][]byte{inputs[0], inputs[2]} {
		off := time.Duration(i * 2)
		clock = base.Add(off*time.Second + 5*time.Second)
		if err := p.Send("output", nil, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lat.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLatencyPairing(t *testing.T) {
	path := writeLatencySnapshot(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-latency", "-query", "grep"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "event-time latency (grep pairing, n=2):") {
		t.Errorf("missing latency header:\n%s", out)
	}
	// Survivor 0: appended at +5s for input at +0s; survivor 1 at +7s for
	// input at +2s — both latencies are exactly 5s.
	for _, q := range []string{"p50", "p90", "p99", "max"} {
		if !strings.Contains(out, q+":  5s") {
			t.Errorf("%s is not the expected 5s:\n%s", q, out)
		}
	}
}

// TestLatencyPairingWindowedCount checks the keyed pairing path: each
// output pane pairs with its latest contributing input record.
func TestLatencyPairingWindowedCount(t *testing.T) {
	clock := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := broker.New(broker.WithClock(func() time.Time { return clock }))
	for _, topic := range []string{"input", "output"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two records of user 111 share one event-time window; the pane's
	// latency anchors on the second (completing) record.
	eventSec := time.Date(2006, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(user string) []byte {
		return []byte(user + "\tquery\t" + eventSec.Format("2006-01-02 15:04:05") + "\t\t")
	}
	base := clock
	for i, rec := range [][]byte{mk("111"), mk("111")} {
		clock = base.Add(time.Duration(i) * time.Second)
		if err := p.Send("input", nil, rec); err != nil {
			t.Fatal(err)
		}
	}
	// The single pane, appended 5s after the completing input (+1s).
	clock = base.Add(6 * time.Second)
	out := []byte(fmtUnix(eventSec) + "\t111\t2")
	if err := p.Send("output", nil, out); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wc.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	if err := run([]string{"-in", path, "-latency", "-query", "windowedcount"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "event-time latency (windowedcount pairing, n=1):") {
		t.Errorf("missing latency header:\n%s", got)
	}
	// Pane at +6s, completing input at +1s: 5s.
	if !strings.Contains(got, "max:  5s") {
		t.Errorf("pane latency should anchor on the completing input (5s):\n%s", got)
	}
}

func fmtUnix(t time.Time) string {
	return strconv.FormatInt(t.Unix(), 10)
}

func TestLatencyPairingMismatch(t *testing.T) {
	path := writeLatencySnapshot(t)
	var sb strings.Builder
	// Identity pairing expects 3 outputs for 3 inputs; the snapshot has 2.
	err := run([]string{"-in", path, "-latency", "-query", "identity"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "cannot pair") {
		t.Errorf("mismatched pairing error = %v", err)
	}
	if err := run([]string{"-in", path, "-latency", "-query", "bogus"}, &sb); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}, &sb); err == nil {
		t.Error("nonexistent snapshot accepted")
	}
	path := writeSnapshot(t)
	if err := run([]string{"-in", path, "-topic", "missing"}, &sb); err == nil {
		t.Error("missing topic accepted")
	}
}
