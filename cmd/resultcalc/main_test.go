package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"beambench/internal/broker"
)

func writeSnapshot(t *testing.T) string {
	t.Helper()
	clock := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := broker.New(broker.WithClock(func() time.Time { return clock }))
	if err := b.CreateTopic("output", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("output", nil, []byte("first")); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Second)
	if err := p.Send("output", nil, []byte("last")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResultCalculation(t *testing.T) {
	path := writeSnapshot(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-topic", "output"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "records:         2") {
		t.Errorf("missing record count:\n%s", out)
	}
	if !strings.Contains(out, "execution time:  2s") {
		t.Errorf("missing 2s execution time:\n%s", out)
	}
}

func TestEmptyTopic(t *testing.T) {
	clockPath := filepath.Join(t.TempDir(), "e.snap")
	b := broker.New()
	if err := b.CreateTopic("empty", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(clockPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	if err := run([]string{"-in", clockPath, "-topic", "empty"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no execution time") {
		t.Errorf("unexpected output: %s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}, &sb); err == nil {
		t.Error("nonexistent snapshot accepted")
	}
	path := writeSnapshot(t)
	if err := run([]string{"-in", path, "-topic", "missing"}, &sb); err == nil {
		t.Error("missing topic accepted")
	}
}
