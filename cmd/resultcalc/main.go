// Command resultcalc is the benchmark's standalone result calculator
// (phase 3 of the process in Figure 5): it loads a broker snapshot and
// computes the execution time of a query from LogAppendTime timestamps
// alone — the difference between the last and first record appended to
// the output topic. This keeps the measurement application- and
// system-independent (Section III-A3 of the paper).
//
// With -latency it additionally computes the per-record event-time
// latency distribution (p50/p90/p99/max): each output record's append
// time minus the append time of the input record that produced it. The
// pairing follows the query's deterministic semantics (-query, -seed)
// and matches output payloads FIFO against the surviving inputs'
// expected outputs, so it stays correct even when parallel engine
// partitions interleave the output topic. For the keyed windowedcount
// query each output pane pairs with its latest contributing input — the
// record whose arrival completed the window — so the latency measures
// pane-completion delay. This, too, needs broker state only.
//
// Usage:
//
//	resultcalc -in broker.snap -topic output
//	resultcalc -in broker.snap -latency -query grep
//	resultcalc -in broker.snap -latency -query windowedcount
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"beambench/internal/broker"
	"beambench/internal/metrics"
	"beambench/internal/queries"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "resultcalc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("resultcalc", flag.ContinueOnError)
	var (
		inPath   = fs.String("in", "", "broker snapshot file to load")
		topic    = fs.String("topic", "output", "topic to measure")
		latency  = fs.Bool("latency", false, "compute per-record event-time latency against -input")
		inTopic  = fs.String("input", "input", "input topic for -latency pairing")
		queryArg = fs.String("query", "identity", "query semantics for -latency pairing: "+strings.Join(queries.Names(), "|"))
		seed     = fs.Uint64("seed", 7, "sample query seed for -latency pairing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("missing -in snapshot path")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()

	b := broker.New()
	if err := b.LoadSnapshot(f); err != nil {
		return err
	}
	first, last, n, err := b.TimeSpan(*topic)
	if err != nil {
		return err
	}
	if n == 0 {
		fmt.Fprintf(out, "topic %q is empty; no execution time\n", *topic)
		return nil
	}
	fmt.Fprintf(out, "topic:           %s\n", *topic)
	fmt.Fprintf(out, "records:         %d\n", n)
	fmt.Fprintf(out, "first append:    %s\n", first.Format(time.RFC3339Nano))
	fmt.Fprintf(out, "last append:     %s\n", last.Format(time.RFC3339Nano))
	fmt.Fprintf(out, "execution time:  %v\n", last.Sub(first))
	if !*latency {
		return nil
	}
	return printLatency(out, b, *inTopic, *topic, *queryArg, *seed)
}

// printLatency pairs each output record with the input record that
// produced it via queries.SurvivorIndex — the identical logic the
// harness uses in-process — and prints the latency quantiles through
// the same CKMS sketch.
func printLatency(out io.Writer, b *broker.Broker, inTopic, outTopic, queryArg string, seed uint64) error {
	q, err := queries.ParseQuery(queryArg)
	if err != nil {
		return err
	}
	ix, err := queries.NewSurvivorIndex(q, seed)
	if err != nil {
		return err
	}
	for _, topic := range []string{inTopic, outTopic} {
		parts, err := b.Partitions(topic)
		if err != nil {
			return err
		}
		if parts != 1 {
			return fmt.Errorf("latency pairing needs single-partition topics; %q has %d partitions", topic, parts)
		}
	}
	inRecs, err := b.Records(inTopic, 0)
	if err != nil {
		return fmt.Errorf("reading %q: %w", inTopic, err)
	}
	for _, r := range inRecs {
		ix.AddInput(r.Value)
	}
	outRecs, err := b.Records(outTopic, 0)
	if err != nil {
		return fmt.Errorf("reading %q: %w", outTopic, err)
	}
	if ix.Expected() != len(outRecs) {
		return fmt.Errorf("cannot pair latencies: %d output records but %d inputs survive the %s query",
			len(outRecs), ix.Expected(), q)
	}
	pairing := ix.NewPairing()
	sketch := metrics.MustSketch()
	for _, r := range outRecs {
		in, err := pairing.Pair(r.Value)
		if err != nil {
			return fmt.Errorf("cannot pair latencies: %w", err)
		}
		sketch.Insert(r.Timestamp.Sub(inRecs[in].Timestamp).Seconds())
	}
	fmt.Fprintf(out, "event-time latency (%s pairing, n=%d):\n", queryArg, sketch.Count())
	fmt.Fprintf(out, "  p50:  %vs\n", sketch.Quantile(0.50))
	fmt.Fprintf(out, "  p90:  %vs\n", sketch.Quantile(0.90))
	fmt.Fprintf(out, "  p99:  %vs\n", sketch.Quantile(0.99))
	fmt.Fprintf(out, "  max:  %vs\n", sketch.Max())
	return nil
}
