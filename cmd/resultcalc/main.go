// Command resultcalc is the benchmark's standalone result calculator
// (phase 3 of the process in Figure 5): it loads a broker snapshot and
// computes the execution time of a query from LogAppendTime timestamps
// alone — the difference between the last and first record appended to
// the output topic. This keeps the measurement application- and
// system-independent (Section III-A3 of the paper).
//
// Usage:
//
//	resultcalc -in broker.snap -topic output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"beambench/internal/broker"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "resultcalc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("resultcalc", flag.ContinueOnError)
	var (
		inPath = fs.String("in", "", "broker snapshot file to load")
		topic  = fs.String("topic", "output", "topic to measure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("missing -in snapshot path")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()

	b := broker.New()
	if err := b.LoadSnapshot(f); err != nil {
		return err
	}
	first, last, n, err := b.TimeSpan(*topic)
	if err != nil {
		return err
	}
	if n == 0 {
		fmt.Fprintf(out, "topic %q is empty; no execution time\n", *topic)
		return nil
	}
	fmt.Fprintf(out, "topic:           %s\n", *topic)
	fmt.Fprintf(out, "records:         %d\n", n)
	fmt.Fprintf(out, "first append:    %s\n", first.Format(time.RFC3339Nano))
	fmt.Fprintf(out, "last append:     %s\n", last.Format(time.RFC3339Nano))
	fmt.Fprintf(out, "execution time:  %v\n", last.Sub(first))
	return nil
}
