package main

import (
	"fmt"
	"io"
	"text/tabwriter"

	"beambench/internal/harness"
)

// Thresholds bounds how much slower a candidate cell may be before the
// comparison fails. All relative values are fractions (0.25 = +25%).
type Thresholds struct {
	// PerRecord bounds the relative regression of meanSec/records.
	PerRecord float64
	// Latency bounds the relative regression of the p50 and p99
	// event-time latency quantiles.
	Latency float64
	// PerRecordFloor ignores per-record regressions whose absolute
	// delta (in seconds) stays under it — noise guard for cells whose
	// per-record time is near zero.
	PerRecordFloor float64
}

// Verdict classifies one compared quantity.
type Verdict string

const (
	VerdictOK         Verdict = "ok"
	VerdictImproved   Verdict = "improved"
	VerdictRegressed  Verdict = "regressed"
	VerdictDrift      Verdict = "drift"   // correctness change: outputs, skips, matrix shape
	VerdictNoBaseline Verdict = "no-data" // quantity absent on one side, not comparable
)

// CellDiff is the comparison of one matrix cell.
type CellDiff struct {
	Cell string `json:"cell"`

	// Per-record execution time in nanoseconds (meanSec/records*1e9).
	BaseNsPerRecord float64 `json:"baseNsPerRecord"`
	CandNsPerRecord float64 `json:"candNsPerRecord"`
	// TimeDelta is the relative change, positive = slower.
	TimeDelta   float64 `json:"timeDelta"`
	TimeVerdict Verdict `json:"timeVerdict"`

	// P50/P99 event-time latency in seconds; zero when either side
	// carries no latency block.
	BaseP50     float64 `json:"baseP50Sec,omitempty"`
	CandP50     float64 `json:"candP50Sec,omitempty"`
	BaseP99     float64 `json:"baseP99Sec,omitempty"`
	CandP99     float64 `json:"candP99Sec,omitempty"`
	P50Delta    float64 `json:"p50Delta,omitempty"`
	P99Delta    float64 `json:"p99Delta,omitempty"`
	LatVerdict  Verdict `json:"latencyVerdict"`
	OutVerdict  Verdict `json:"outputVerdict"`
	BaseOutputs int64   `json:"baseOutputs"`
	CandOutputs int64   `json:"candOutputs"`

	// Notes carries human-readable detail for drift verdicts.
	Notes string `json:"notes,omitempty"`
}

// Diff is the whole comparison.
type Diff struct {
	Thresholds Thresholds `json:"thresholds"`
	// Cells compared on both sides, in baseline (canonical) order.
	Cells []CellDiff `json:"cells"`
	// MissingCells ran in the baseline but not the candidate;
	// AddedCells the reverse. NewSkips are cells that ran in the
	// baseline but are skipped by the candidate; RemovedSkips the
	// reverse (an improvement, reported but never failing).
	MissingCells []string `json:"missingCells,omitempty"`
	AddedCells   []string `json:"addedCells,omitempty"`
	NewSkips     []string `json:"newSkips,omitempty"`
	RemovedSkips []string `json:"removedSkips,omitempty"`
}

// Regressed reports whether the comparison must fail the gate.
func (d *Diff) Regressed() bool {
	if len(d.MissingCells) > 0 || len(d.NewSkips) > 0 {
		return true
	}
	for _, c := range d.Cells {
		if c.TimeVerdict == VerdictRegressed || c.LatVerdict == VerdictRegressed || c.OutVerdict == VerdictDrift {
			return true
		}
	}
	return false
}

// Compare diffs candidate against baseline cell by cell. Cells are
// matched by their matrix key; both reports may have been recorded at
// different workload sizes (per-record time normalizes across them),
// but latency quantiles are compared raw, so latency thresholds only
// make sense between same-shape runs.
func Compare(base, cand *harness.ReportJSON, th Thresholds) *Diff {
	d := &Diff{Thresholds: th}
	candByKey := map[string]*harness.CellJSON{}
	for i := range cand.Cells {
		candByKey[cand.Cells[i].Key()] = &cand.Cells[i]
	}
	baseKeys := map[string]bool{}

	for i := range base.Cells {
		bc := &base.Cells[i]
		key := bc.Key()
		baseKeys[key] = true
		cc, ok := candByKey[key]
		if !ok {
			d.MissingCells = append(d.MissingCells, key)
			continue
		}
		switch {
		case bc.Skipped && cc.Skipped:
			continue // skipped on both sides: nothing to compare
		case !bc.Skipped && cc.Skipped:
			d.NewSkips = append(d.NewSkips, key)
			continue
		case bc.Skipped && !cc.Skipped:
			d.RemovedSkips = append(d.RemovedSkips, key)
			continue
		}
		d.Cells = append(d.Cells, compareCell(key, bc, cc, base.Records, cand.Records, th))
	}
	for i := range cand.Cells {
		if key := cand.Cells[i].Key(); !baseKeys[key] {
			d.AddedCells = append(d.AddedCells, key)
		}
	}
	return d
}

func compareCell(key string, bc, cc *harness.CellJSON, baseRecords, candRecords int, th Thresholds) CellDiff {
	cd := CellDiff{Cell: key}

	basePer := perRecordSec(bc.MeanSec, baseRecords)
	candPer := perRecordSec(cc.MeanSec, candRecords)
	cd.BaseNsPerRecord = basePer * 1e9
	cd.CandNsPerRecord = candPer * 1e9
	cd.TimeDelta = relDelta(basePer, candPer)
	switch {
	case basePer == 0 || candPer == 0:
		cd.TimeVerdict = VerdictNoBaseline
	case cd.TimeDelta > th.PerRecord && candPer-basePer > th.PerRecordFloor:
		cd.TimeVerdict = VerdictRegressed
	case cd.TimeDelta < 0:
		cd.TimeVerdict = VerdictImproved
	default:
		cd.TimeVerdict = VerdictOK
	}

	cd.LatVerdict = VerdictNoBaseline
	if bc.Latency != nil && cc.Latency != nil {
		cd.BaseP50, cd.CandP50 = bc.Latency.P50, cc.Latency.P50
		cd.BaseP99, cd.CandP99 = bc.Latency.P99, cc.Latency.P99
		cd.P50Delta = relDelta(bc.Latency.P50, cc.Latency.P50)
		cd.P99Delta = relDelta(bc.Latency.P99, cc.Latency.P99)
		switch {
		case cd.P50Delta > th.Latency || cd.P99Delta > th.Latency:
			cd.LatVerdict = VerdictRegressed
		case cd.P50Delta < 0 && cd.P99Delta < 0:
			cd.LatVerdict = VerdictImproved
		default:
			cd.LatVerdict = VerdictOK
		}
	}

	cd.BaseOutputs, cd.CandOutputs = bc.OutputRecords, cc.OutputRecords
	cd.OutVerdict = VerdictOK
	// Output counts are deterministic per workload size; compare only
	// when both reports ran the same size.
	if baseRecords == candRecords && bc.OutputRecords != cc.OutputRecords {
		cd.OutVerdict = VerdictDrift
		cd.Notes = fmt.Sprintf("output count changed: %d -> %d", bc.OutputRecords, cc.OutputRecords)
	}
	return cd
}

func perRecordSec(meanSec float64, records int) float64 {
	if records <= 0 {
		return 0
	}
	return meanSec / float64(records)
}

// relDelta is (cand-base)/base, positive = candidate slower/larger.
func relDelta(base, cand float64) float64 {
	if base == 0 {
		return 0
	}
	return (cand - base) / base
}

// WriteTable renders the human-readable comparison.
func (d *Diff) WriteTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CELL\tBASE ns/rec\tCAND ns/rec\tΔ time\tΔ p50\tΔ p99\tVERDICT")
	for _, c := range d.Cells {
		verdict := string(c.TimeVerdict)
		if c.LatVerdict == VerdictRegressed {
			verdict = string(VerdictRegressed) + " (latency)"
		}
		if c.OutVerdict == VerdictDrift {
			verdict = string(VerdictDrift) + ": " + c.Notes
		}
		lat50, lat99 := "-", "-"
		if c.LatVerdict != VerdictNoBaseline {
			lat50 = fmt.Sprintf("%+.1f%%", c.P50Delta*100)
			lat99 = fmt.Sprintf("%+.1f%%", c.P99Delta*100)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\t%s\n",
			c.Cell, c.BaseNsPerRecord, c.CandNsPerRecord, c.TimeDelta*100, lat50, lat99, verdict)
	}
	tw.Flush()
	for _, k := range d.MissingCells {
		fmt.Fprintf(w, "MISSING  %s (in baseline, absent from candidate)\n", k)
	}
	for _, k := range d.NewSkips {
		fmt.Fprintf(w, "NEW SKIP %s (ran in baseline, skipped by candidate)\n", k)
	}
	for _, k := range d.AddedCells {
		fmt.Fprintf(w, "ADDED    %s (not in baseline)\n", k)
	}
	for _, k := range d.RemovedSkips {
		fmt.Fprintf(w, "UNSKIPPED %s (skipped in baseline, runs now)\n", k)
	}
	if d.Regressed() {
		fmt.Fprintln(w, "RESULT: REGRESSED")
	} else {
		fmt.Fprintln(w, "RESULT: OK")
	}
}
