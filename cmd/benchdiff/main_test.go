package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beambench/internal/harness"
	"beambench/internal/metrics"
)

func baseReport() *harness.ReportJSON {
	return &harness.ReportJSON{
		Records:      1000,
		Runs:         1,
		Parallelisms: []int{1},
		Fusion:       "default",
		Ingest:       "preload",
		Cells: []harness.CellJSON{
			{
				System: "Flink", API: "Beam", Query: "Grep", Parallelism: 1,
				TimesSec: []float64{0.10}, MeanSec: 0.10, OutputRecords: 300,
				Latency: &metrics.LatencySummary{Count: 300, P50: 0.010, P90: 0.015, P99: 0.020, Max: 0.030},
			},
			{
				System: "Spark", API: "native", Query: "Identity", Parallelism: 1,
				TimesSec: []float64{0.20}, MeanSec: 0.20, OutputRecords: 1000,
			},
			{
				System: "Apex", API: "native", Query: "Grep", Parallelism: 1,
				Skipped: true, SkipReason: "unsupported transform",
			},
		},
	}
}

func writeReport(t *testing.T, rep *harness.ReportJSON, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestIdenticalReportsExitZero(t *testing.T) {
	a := writeReport(t, baseReport(), "a.json")
	b := writeReport(t, baseReport(), "b.json")
	code, out, _ := runDiff(t, a, b)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: OK") {
		t.Fatalf("missing OK verdict:\n%s", out)
	}
}

func TestInjectedTimeRegressionExitsOne(t *testing.T) {
	base := writeReport(t, baseReport(), "base.json")
	worse := baseReport()
	worse.Cells[0].MeanSec = 0.20 // +100% against a 25% threshold
	cand := writeReport(t, worse, "cand.json")
	code, out, _ := runDiff(t, base, cand)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "regressed") || !strings.Contains(out, "RESULT: REGRESSED") {
		t.Fatalf("regression not reported:\n%s", out)
	}
}

func TestRegressionWithinThresholdPasses(t *testing.T) {
	base := writeReport(t, baseReport(), "base.json")
	slightly := baseReport()
	slightly.Cells[0].MeanSec = 0.11 // +10% under the default 25%
	cand := writeReport(t, slightly, "cand.json")
	if code, out, _ := runDiff(t, base, cand); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	// The same delta trips a tightened threshold.
	if code, _, _ := runDiff(t, "-threshold", "0.05", base, cand); code != 1 {
		t.Fatal("tightened threshold did not trip")
	}
}

func TestFloorSuppressesNoiseOnTinyCells(t *testing.T) {
	b := baseReport()
	b.Cells[0].MeanSec = 2e-6 // 2ns/record at 1000 records
	base := writeReport(t, b, "base.json")
	c := baseReport()
	c.Cells[0].MeanSec = 4e-6 // +100% but only +2ns/record absolute
	cand := writeReport(t, c, "cand.json")
	if code, out, _ := runDiff(t, base, cand); code != 0 {
		t.Fatalf("sub-floor regression tripped the gate:\n%s", out)
	}
	if code, _, _ := runDiff(t, "-floor", "0ns", base, cand); code != 1 {
		t.Fatal("zero floor did not trip on the relative regression")
	}
}

func TestLatencyRegressionExitsOne(t *testing.T) {
	base := writeReport(t, baseReport(), "base.json")
	worse := baseReport()
	worse.Cells[0].Latency.P99 = 0.060 // 3x against a 50% threshold
	cand := writeReport(t, worse, "cand.json")
	code, out, _ := runDiff(t, base, cand)
	if code != 1 || !strings.Contains(out, "latency") {
		t.Fatalf("exit = %d\n%s", code, out)
	}
}

func TestOutputDriftExitsOne(t *testing.T) {
	base := writeReport(t, baseReport(), "base.json")
	drift := baseReport()
	drift.Cells[0].OutputRecords = 299
	cand := writeReport(t, drift, "cand.json")
	code, out, _ := runDiff(t, base, cand)
	if code != 1 || !strings.Contains(out, "output count changed") {
		t.Fatalf("exit = %d\n%s", code, out)
	}
}

func TestNewSkipExitsOneRemovedSkipPasses(t *testing.T) {
	base := writeReport(t, baseReport(), "base.json")
	skippy := baseReport()
	skippy.Cells[1].Skipped = true
	skippy.Cells[1].SkipReason = "newly unsupported"
	cand := writeReport(t, skippy, "cand.json")
	if code, out, _ := runDiff(t, base, cand); code != 1 || !strings.Contains(out, "NEW SKIP") {
		t.Fatalf("new skip not fatal: exit %d\n%s", code, out)
	}

	unskipped := baseReport()
	unskipped.Cells[2].Skipped = false
	unskipped.Cells[2].SkipReason = ""
	unskipped.Cells[2].MeanSec = 0.1
	unskipped.Cells[2].TimesSec = []float64{0.1}
	unskipped.Cells[2].OutputRecords = 300
	cand = writeReport(t, unskipped, "cand.json")
	if code, out, _ := runDiff(t, base, cand); code != 0 || !strings.Contains(out, "UNSKIPPED") {
		t.Fatalf("removed skip should pass: exit %d\n%s", code, out)
	}
}

func TestMissingCellExitsOne(t *testing.T) {
	base := writeReport(t, baseReport(), "base.json")
	fewer := baseReport()
	fewer.Cells = fewer.Cells[:1]
	cand := writeReport(t, fewer, "cand.json")
	if code, out, _ := runDiff(t, base, cand); code != 1 || !strings.Contains(out, "MISSING") {
		t.Fatalf("missing cell not fatal: exit %d\n%s", code, out)
	}
}

func TestDifferingRecordCountsNormalize(t *testing.T) {
	base := writeReport(t, baseReport(), "base.json")
	scaled := baseReport()
	scaled.Records = 2000
	for i := range scaled.Cells {
		scaled.Cells[i].MeanSec *= 2 // same per-record time at twice the records
		scaled.Cells[i].OutputRecords *= 2
	}
	cand := writeReport(t, scaled, "cand.json")
	if code, out, _ := runDiff(t, base, cand); code != 0 {
		t.Fatalf("same per-record speed at 2x records tripped: exit %d\n%s", code, out)
	}
}

func TestJSONOutput(t *testing.T) {
	base := writeReport(t, baseReport(), "base.json")
	worse := baseReport()
	worse.Cells[0].MeanSec = 0.5
	cand := writeReport(t, worse, "cand.json")
	code, out, _ := runDiff(t, "-json", base, cand)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diff Diff
	if err := json.Unmarshal([]byte(out), &diff); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, out)
	}
	if !diff.Regressed() {
		t.Fatal("decoded diff lost the regression")
	}
}

func TestOperationalErrorsExitTwo(t *testing.T) {
	good := writeReport(t, baseReport(), "good.json")
	if code, _, _ := runDiff(t, good, filepath.Join(t.TempDir(), "absent.json")); code != 2 {
		t.Fatal("missing file did not exit 2")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"records": "not a number"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runDiff(t, good, bad); code != 2 {
		t.Fatal("malformed file did not exit 2")
	}
	if code, _, _ := runDiff(t, good); code != 2 {
		t.Fatal("missing argument did not exit 2")
	}
	if code, _, _ := runDiff(t, "-threshold", "-1", good, good); code != 2 {
		t.Fatal("negative threshold did not exit 2")
	}
}
