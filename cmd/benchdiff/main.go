// Command benchdiff compares two beambench report JSONs and flags
// regressions: per-record execution time, latency quantiles, output
// counts and the skip set. It is the CI tripwire that keeps committed
// baselines honest:
//
//	benchdiff [-threshold 0.25] [-latency-threshold 0.5] [-floor 1us] \
//	          [-json] BASELINE.json CANDIDATE.json
//
// Exit status: 0 when the candidate is within thresholds, 1 when a
// regression (or a correctness drift: output count change, new skip,
// missing cell) was found, 2 on operational errors (unreadable or
// malformed inputs).
//
// Per-record time is compared as meanSec/records, which normalizes
// baselines and candidates recorded at different workload sizes.
// Improvements are reported but never fail the comparison; regressions
// smaller than -floor (in absolute per-record seconds) are ignored so
// noise on near-zero cells cannot trip the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"beambench/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold    = fs.Float64("threshold", 0.25, "max allowed relative per-record time regression (0.25 = +25%)")
		latThreshold = fs.Float64("latency-threshold", 0.50, "max allowed relative p50/p99 latency regression")
		floor        = fs.Duration("floor", time.Microsecond, "ignore per-record time regressions smaller than this absolute delta")
		jsonOut      = fs.Bool("json", false, "emit the comparison as JSON instead of a table")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [flags] BASELINE.json CANDIDATE.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *threshold < 0 || *latThreshold < 0 || *floor < 0 {
		fmt.Fprintln(stderr, "benchdiff: thresholds must be non-negative")
		return 2
	}

	base, err := readReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cand, err := readReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	diff := Compare(base, cand, Thresholds{
		PerRecord:      *threshold,
		Latency:        *latThreshold,
		PerRecordFloor: floor.Seconds(),
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diff); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
	} else {
		diff.WriteTable(stdout)
	}
	if diff.Regressed() {
		return 1
	}
	return 0
}

func readReport(path string) (*harness.ReportJSON, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := harness.ParseReportJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
