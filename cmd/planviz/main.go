// Command planviz prints execution plans, reproducing Figures 12 and 13
// of the paper: the native Flink grep job translates to three plan nodes
// (source, filter, sink) while the same query through the Beam
// abstraction layer expands to seven.
//
// With -fused the command renders the post-fusion execution plan (the
// shared optimizer of internal/beam/graphx, beam.FusionOn) next to the
// logical per-primitive plan, making the operator-count reduction of
// ParDo fusion visible.
//
// Stateful plans render too: the windowedcount query shows the
// GroupByKey and Window.Into nodes of the Beam translation — including
// the keyed GroupByKey operator behind the fused stage boundaries, where
// fusion stops at the shuffle — and, natively, the KeyBy-broken chain
// with the windowed reduce operator.
//
// Usage:
//
//	planviz -query grep -api native
//	planviz -query grep -api beam
//	planviz -query grep -api beam -fused
//	planviz -query windowedcount -api beam -fused
//	planviz -query identity -api beam -format dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"beambench/internal/beam"
	"beambench/internal/beam/graphx"
	"beambench/internal/beam/runner/flinkrunner"
	"beambench/internal/broker"
	"beambench/internal/dag"
	"beambench/internal/flink"
	"beambench/internal/queries"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "planviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("planviz", flag.ContinueOnError)
	var (
		queryArg    = fs.String("query", "grep", "query: "+strings.Join(queries.Names(), "|"))
		apiArg      = fs.String("api", "native", "api: native|beam")
		format      = fs.String("format", "text", "output format: text|dot")
		parallelism = fs.Int("p", 1, "job parallelism")
		fused       = fs.Bool("fused", false, "also render the post-fusion execution plan (requires -api beam)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := parseQuery(*queryArg)
	if err != nil {
		return err
	}

	// Plans are derived from the translated job graphs; topics only need
	// to exist for construction.
	b := broker.New()
	for _, topic := range []string{"input", "output"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			return err
		}
	}
	w := queries.Workload{Broker: b, InputTopic: "input", OutputTopic: "output", Seed: 7}

	cluster, err := flink.NewCluster(flink.ClusterConfig{})
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Stop()

	type titledPlan struct {
		plan  *dag.Graph
		title string
	}
	var plans []titledPlan
	switch *apiArg {
	case "native":
		if *fused {
			return fmt.Errorf("-fused requires -api beam (native jobs have no Beam translation to fuse)")
		}
		env := flink.NewEnvironment(cluster).SetParallelism(*parallelism)
		if err := queries.NativeFlink(env, w, q); err != nil {
			return err
		}
		plan, err := env.ExecutionPlan()
		if err != nil {
			return err
		}
		plans = append(plans, titledPlan{plan,
			fmt.Sprintf("Flink execution plan, native %s query (cf. paper Figure 12)", q)})
	case "beam":
		if *fused && *format == "dot" {
			// Concatenated digraphs break the pipe-to-graphviz workflow;
			// render one plan per invocation in dot mode.
			return fmt.Errorf("-fused supports -format text only (dot output is one graph per invocation)")
		}
		p, err := queries.BeamPipeline(w, q)
		if err != nil {
			return err
		}
		plan, err := beamPlan(cluster, p, *parallelism, beam.FusionOff)
		if err != nil {
			return err
		}
		plans = append(plans, titledPlan{plan,
			fmt.Sprintf("Flink execution plan, Beam %s query, logical (cf. paper Figure 13)", q)})
		if *fused {
			fusedPlan, err := beamPlan(cluster, p, *parallelism, beam.FusionOn)
			if err != nil {
				return err
			}
			plans = append(plans, titledPlan{fusedPlan,
				fmt.Sprintf("Flink execution plan, Beam %s query, post-fusion (shared optimizer)", q)})
			stagePlan, err := stageGraph(p)
			if err != nil {
				return err
			}
			plans = append(plans, titledPlan{stagePlan,
				fmt.Sprintf("Fused stage plan, Beam %s query (engine-independent)", q)})
		}
	default:
		return fmt.Errorf("unknown api %q (want native or beam)", *apiArg)
	}

	for i, tp := range plans {
		switch *format {
		case "text":
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprintln(out, tp.title)
			fmt.Fprintf(out, "nodes: %d\n\n", tp.plan.Len())
			if err := tp.plan.RenderText(out); err != nil {
				return err
			}
		case "dot":
			if err := tp.plan.RenderDOT(out, tp.title); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q (want text or dot)", *format)
		}
	}
	return nil
}

// beamPlan translates the pipeline for Flink in the given fusion mode
// and renders the engine execution plan.
func beamPlan(cluster *flink.Cluster, p *beam.Pipeline, parallelism int, mode beam.FusionMode) (*dag.Graph, error) {
	env, _, err := flinkrunner.Translate(p, flinkrunner.Config{
		Cluster:     cluster,
		Parallelism: parallelism,
		Fusion:      mode,
	})
	if err != nil {
		return nil, err
	}
	return env.ExecutionPlan()
}

// stageGraph renders the shared optimizer's fused stage plan, the
// engine-independent view every runner translates from.
func stageGraph(p *beam.Pipeline) (*dag.Graph, error) {
	plan, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		return nil, err
	}
	return plan.Graph()
}

func parseQuery(s string) (queries.Query, error) {
	return queries.ParseQuery(strings.ToLower(s))
}
