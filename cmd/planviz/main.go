// Command planviz prints execution plans, reproducing Figures 12 and 13
// of the paper: the native Flink grep job translates to three plan nodes
// (source, filter, sink) while the same query through the Beam
// abstraction layer expands to seven.
//
// Usage:
//
//	planviz -query grep -api native
//	planviz -query grep -api beam
//	planviz -query identity -api beam -format dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"beambench/internal/beam/runner/flinkrunner"
	"beambench/internal/broker"
	"beambench/internal/dag"
	"beambench/internal/flink"
	"beambench/internal/queries"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "planviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("planviz", flag.ContinueOnError)
	var (
		queryArg    = fs.String("query", "grep", "query: identity|sample|projection|grep")
		apiArg      = fs.String("api", "native", "api: native|beam")
		format      = fs.String("format", "text", "output format: text|dot")
		parallelism = fs.Int("p", 1, "job parallelism")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := parseQuery(*queryArg)
	if err != nil {
		return err
	}

	// Plans are derived from the translated job graphs; topics only need
	// to exist for construction.
	b := broker.New()
	for _, topic := range []string{"input", "output"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			return err
		}
	}
	w := queries.Workload{Broker: b, InputTopic: "input", OutputTopic: "output", Seed: 7}

	cluster, err := flink.NewCluster(flink.ClusterConfig{})
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Stop()

	var (
		plan  *dag.Graph
		title string
	)
	switch *apiArg {
	case "native":
		env := flink.NewEnvironment(cluster).SetParallelism(*parallelism)
		if err := queries.NativeFlink(env, w, q); err != nil {
			return err
		}
		plan, err = env.ExecutionPlan()
		if err != nil {
			return err
		}
		title = fmt.Sprintf("Flink execution plan, native %s query (cf. paper Figure 12)", q)
	case "beam":
		p, err := queries.BeamPipeline(w, q)
		if err != nil {
			return err
		}
		env, _, err := flinkrunner.Translate(p, flinkrunner.Config{Cluster: cluster, Parallelism: *parallelism})
		if err != nil {
			return err
		}
		plan, err = env.ExecutionPlan()
		if err != nil {
			return err
		}
		title = fmt.Sprintf("Flink execution plan, Beam %s query (cf. paper Figure 13)", q)
	default:
		return fmt.Errorf("unknown api %q (want native or beam)", *apiArg)
	}

	switch *format {
	case "text":
		fmt.Fprintln(out, title)
		fmt.Fprintf(out, "nodes: %d\n\n", plan.Len())
		return plan.RenderText(out)
	case "dot":
		return plan.RenderDOT(out, title)
	default:
		return fmt.Errorf("unknown format %q (want text or dot)", *format)
	}
}

func parseQuery(s string) (queries.Query, error) {
	switch strings.ToLower(s) {
	case "identity":
		return queries.Identity, nil
	case "sample":
		return queries.Sample, nil
	case "projection":
		return queries.Projection, nil
	case "grep":
		return queries.Grep, nil
	default:
		return 0, fmt.Errorf("unknown query %q", s)
	}
}
