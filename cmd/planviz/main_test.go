package main

import (
	"strings"
	"testing"
)

func TestNativePlanHasThreeNodes(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-query", "grep", "-api", "native"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "nodes: 3") {
		t.Errorf("native plan should have 3 nodes (paper Figure 12):\n%s", out)
	}
	if !strings.Contains(out, "Filter") {
		t.Errorf("native grep plan missing filter:\n%s", out)
	}
}

func TestBeamPlanHasSevenNodes(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-query", "grep", "-api", "beam"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "nodes: 7") {
		t.Errorf("Beam plan should have 7 nodes (paper Figure 13):\n%s", out)
	}
	if strings.Count(out, "ParDoTranslation.RawParDo") != 4 {
		t.Errorf("Beam grep plan should show 4 RawParDos:\n%s", out)
	}
}

func TestFusedRendersBothPlans(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-query", "grep", "-api", "beam", "-fused"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "nodes: 7") {
		t.Errorf("fused output should still show the 7-node logical plan:\n%s", out)
	}
	if !strings.Contains(out, "nodes: 5") {
		t.Errorf("fused output should show the 5-node post-fusion plan:\n%s", out)
	}
	if !strings.Contains(out, "ExecutableStage") {
		t.Errorf("post-fusion plan should contain the fused ExecutableStage:\n%s", out)
	}
	if !strings.Contains(out, "WithoutMetadata+Values+Grep") {
		t.Errorf("stage plan should show the fused chain label:\n%s", out)
	}
}

// TestStatefulPlanRendersWindowNodes pins the satellite fix: the
// stateful windowedcount pipeline renders GroupByKey and WindowInto
// nodes, and the fused stage plan shows fusion stopping at the
// GroupByKey boundary (the WithoutMetadata+Values chain fuses, the
// keyed stage does not).
func TestStatefulPlanRendersWindowNodes(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-query", "windowedcount", "-api", "beam", "-fused"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"GroupByKey",
		"Window.Into FixedWindows(1s)",
		"WithoutMetadata+Values", // fused chain up to the window boundary
		"ExecutableStage",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stateful plan output missing %q:\n%s", want, out)
		}
	}
	// Logical 10-node engine plan vs 9 post-fusion vs 7 stage-plan nodes.
	for _, want := range []string{"nodes: 10", "nodes: 9", "nodes: 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("stateful plan output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := run([]string{"-query", "windowedcount", "-api", "native"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Four nodes: the explicit timestamp/watermark assigner now sits
	// between source and windowed operator.
	if !strings.Contains(sb.String(), "WindowedCount") || !strings.Contains(sb.String(), "nodes: 4") {
		t.Errorf("native windowedcount plan wrong:\n%s", sb.String())
	}
}

func TestFusedRequiresBeamAPI(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-query", "grep", "-api", "native", "-fused"}, &sb); err == nil {
		t.Error("-fused with -api native accepted")
	}
	if err := run([]string{"-query", "grep", "-api", "beam", "-fused", "-format", "dot"}, &sb); err == nil {
		t.Error("-fused with -format dot accepted (concatenated digraphs)")
	}
}

func TestDotOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-query", "identity", "-api", "beam", "-format", "dot"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Errorf("missing DOT output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-query", "bogus"}, &sb); err == nil {
		t.Error("bogus query accepted")
	}
	if err := run([]string{"-api", "bogus"}, &sb); err == nil {
		t.Error("bogus api accepted")
	}
	if err := run([]string{"-format", "bogus"}, &sb); err == nil {
		t.Error("bogus format accepted")
	}
}
