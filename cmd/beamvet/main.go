// Command beamvet runs beambench's repo-specific static analyzers over
// Go packages and exits non-zero if any invariant is violated. It is a
// CI gate alongside go vet and staticcheck:
//
//	go run ./cmd/beamvet ./...
//
// Three analyzers run (see internal/analysis and its doc.go):
//
//	determinism  no wall-clock, global randomness, or map-ordered
//	             emission in output-producing packages
//	ctxleak      goroutines in the broker/harness/runtimes must observe
//	             a context/done channel or signal completion
//	errwrap      Err* sentinels are wrapped with %w and compared with
//	             errors.Is
//
// A finding is suppressed by annotating the flagged line (or the line
// above it) with `//beamvet:allow <check> <reason>`; the reason is
// mandatory and unused directives are themselves errors, so the
// annotation inventory stays honest.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"beambench/internal/analysis"
	"beambench/internal/analysis/analyzers/ctxleak"
	"beambench/internal/analysis/analyzers/determinism"
	"beambench/internal/analysis/analyzers/errwrap"
	"beambench/internal/analysis/load"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	ctxleak.Analyzer,
	errwrap.Analyzer,
}

func main() {
	verbose := flag.Bool("v", false, "list every package as it is analyzed")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: beamvet [-v] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	os.Exit(run(".", flag.Args(), *verbose, os.Stdout, os.Stderr))
}

// run analyzes the patterns (resolved relative to dir) and returns the
// process exit code: 0 clean, 1 findings, 2 operational failure.
func run(dir string, patterns []string, verbose bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "beamvet:", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		if verbose {
			fmt.Fprintln(stderr, "beamvet:", pkg.ImportPath)
		}
		diags, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "beamvet:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Check, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "beamvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
