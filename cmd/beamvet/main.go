// Command beamvet runs beambench's repo-specific static analyzers over
// Go packages and exits non-zero if any invariant is violated. It is a
// CI gate alongside go vet and staticcheck:
//
//	go run ./cmd/beamvet ./...
//
// Five analyzers run (see internal/analysis and its doc.go):
//
//	determinism  no wall-clock, global randomness, or map-ordered
//	             emission in output-producing packages
//	ctxleak      goroutines in the broker/harness/runtimes must observe
//	             a context/done channel or signal completion
//	errwrap      Err* sentinels are wrapped with %w and compared with
//	             errors.Is
//	locksafe     struct fields guarded by a sibling mutex are accessed
//	             under it, and never mixed atomic/plain
//	hotalloc     per-record paths avoid conversions, fmt.Sprint*,
//	             unsized growth, and escaping closures
//
// A finding is suppressed by annotating the flagged line (or the line
// above it) with `//beamvet:allow <check> <reason>`; the reason is
// mandatory and unused directives are themselves errors, so the
// annotation inventory stays honest.
//
// # Output modes
//
// By default findings print one per line to stdout. With -json the
// stdout payload is instead the machine-readable report
// (internal/analysis.Report, schema version 2) and the human lines move
// to stderr; with -sarif stdout carries a SARIF 2.1.0 document for code
// scanning. Under GitHub Actions (GITHUB_ACTIONS=true) findings are
// additionally emitted as ::error workflow annotations on stderr.
//
// # Exit codes
//
// beamvet distinguishes "the code is dirty" from "the tool failed":
//
//	0  no findings (after fixes were applied, when -fix is given)
//	1  findings remain
//	2  operational failure (bad pattern, load or type-check error)
//
// Under -fix the contract is strict: fixable findings are repaired in
// place, then the packages are reloaded and re-analyzed from the
// rewritten sources. beamvet -fix exits 0 only when every finding was
// fixable, every fix applied, and the re-run reports zero findings —
// so a 0 from -fix means the tree is clean NOW, not merely that fixes
// were attempted. Findings with no mechanical repair, fixes skipped
// because they overlapped another fix (run -fix again once the first
// batch lands), and findings still present on re-run all force exit 1.
// Consequently -fix on an already-clean tree rewrites nothing and
// exits 0: applying fixes is idempotent, and CI asserts this with a
// git diff --exit-code after a -fix run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"beambench/internal/analysis"
	"beambench/internal/analysis/analyzers/ctxleak"
	"beambench/internal/analysis/analyzers/determinism"
	"beambench/internal/analysis/analyzers/errwrap"
	"beambench/internal/analysis/analyzers/hotalloc"
	"beambench/internal/analysis/analyzers/locksafe"
	"beambench/internal/analysis/load"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	ctxleak.Analyzer,
	errwrap.Analyzer,
	locksafe.Analyzer,
	hotalloc.Analyzer,
}

func main() {
	opts := options{env: os.Getenv}
	flag.BoolVar(&opts.verbose, "v", false, "list every package as it is analyzed")
	flag.BoolVar(&opts.fix, "fix", false, "apply suggested fixes in place, then re-analyze; exit 0 only if the re-run is clean")
	flag.BoolVar(&opts.jsonOut, "json", false, "write the machine-readable report to stdout (human findings move to stderr)")
	flag.BoolVar(&opts.sarifOut, "sarif", false, "write a SARIF 2.1.0 report to stdout (human findings move to stderr)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: beamvet [-v] [-fix] [-json|-sarif] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if opts.jsonOut && opts.sarifOut {
		fmt.Fprintln(os.Stderr, "beamvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	os.Exit(run(".", flag.Args(), opts, os.Stdout, os.Stderr))
}

// options collects the flag state so tests can drive run directly.
type options struct {
	verbose  bool
	fix      bool
	jsonOut  bool
	sarifOut bool
	// env reads environment variables; tests stub it to exercise the
	// GitHub annotation path without being on Actions.
	env func(string) string
}

// run analyzes the patterns (resolved relative to dir) and returns the
// process exit code: 0 clean, 1 findings, 2 operational failure. See
// the package comment for the -fix contract.
func run(dir string, patterns []string, opts options, stdout, stderr io.Writer) int {
	if opts.env == nil {
		opts.env = os.Getenv
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := filepath.Abs(dir)
	if err != nil {
		root = dir
	}

	res, code := analyze(dir, patterns, opts.verbose, stderr)
	if code != 0 {
		return code
	}

	fixFailed := false
	if opts.fix && res.count > 0 {
		var applyErr error
		res, fixFailed, applyErr = applyAll(dir, patterns, res, opts, stderr)
		if applyErr != nil {
			fmt.Fprintln(stderr, "beamvet:", applyErr)
			return 2
		}
	}

	// Findings go to stdout normally; with a machine-readable report on
	// stdout they move to stderr so the payload stays parseable.
	human := stdout
	if opts.jsonOut || opts.sarifOut {
		human = stderr
	}
	var findings []analysis.Finding
	for _, pd := range res.diags {
		for _, d := range pd.diags {
			fmt.Fprintf(human, "%s: %s: %s\n", pd.pkg.Fset.Position(d.Pos), d.Check, d.Message)
			findings = append(findings, analysis.NewFinding(pd.pkg.Fset, root, d))
		}
	}
	if opts.env("GITHUB_ACTIONS") == "true" {
		for _, f := range findings {
			fmt.Fprintf(stderr, "::error file=%s,line=%d,col=%d::%s: %s\n", f.File, f.Line, f.Column, f.Check, f.Message)
		}
	}

	report := analysis.NewReport(analyzers, findings)
	if opts.jsonOut {
		if err := report.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "beamvet:", err)
			return 2
		}
	}
	if opts.sarifOut {
		if err := report.WriteSARIF(stdout); err != nil {
			fmt.Fprintln(stderr, "beamvet:", err)
			return 2
		}
	}

	if res.count > 0 || fixFailed {
		fmt.Fprintf(stderr, "beamvet: %d finding(s)\n", res.count)
		return 1
	}
	return 0
}

// pkgDiags pairs a loaded package with its surviving diagnostics.
type pkgDiags struct {
	pkg   *load.Package
	diags []analysis.Diagnostic
}

// analysisResult is one full pass over the requested packages.
type analysisResult struct {
	diags []pkgDiags
	count int
}

func analyze(dir string, patterns []string, verbose bool, stderr io.Writer) (*analysisResult, int) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "beamvet:", err)
		return nil, 2
	}
	res := &analysisResult{}
	for _, pkg := range pkgs {
		if verbose {
			fmt.Fprintln(stderr, "beamvet:", pkg.ImportPath)
		}
		diags, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "beamvet:", err)
			return nil, 2
		}
		res.diags = append(res.diags, pkgDiags{pkg: pkg, diags: diags})
		res.count += len(diags)
	}
	return res, 0
}

// applyAll applies suggested fixes package by package, writes the
// rewritten files, and re-analyzes from disk. It returns the re-run's
// result plus fixFailed=true when the fix pass itself already knows
// exit 0 is impossible (unfixable or conflicted findings), so a clean
// re-run cannot mask them.
func applyAll(dir string, patterns []string, res *analysisResult, opts options, stderr io.Writer) (*analysisResult, bool, error) {
	applied, unfixable, conflicted := 0, 0, 0
	for _, pd := range res.diags {
		if len(pd.diags) == 0 {
			continue
		}
		ar, err := analysis.ApplyFixes(pd.pkg.Fset, pd.diags, nil)
		if err != nil {
			return nil, true, err
		}
		if err := analysis.WriteFixes(ar); err != nil {
			return nil, true, err
		}
		applied += ar.Applied
		unfixable += len(ar.Unfixable)
		conflicted += len(ar.Conflicted)
		for _, f := range ar.Files {
			if opts.verbose {
				fmt.Fprintln(stderr, "beamvet: fixed", f.Filename)
			}
		}
	}
	fmt.Fprintf(stderr, "beamvet: applied %d fix(es)", applied)
	if unfixable > 0 {
		fmt.Fprintf(stderr, ", %d finding(s) have no mechanical fix", unfixable)
	}
	if conflicted > 0 {
		fmt.Fprintf(stderr, ", %d fix(es) skipped as overlapping (re-run -fix)", conflicted)
	}
	fmt.Fprintln(stderr)

	rerun, code := analyze(dir, patterns, opts.verbose, stderr)
	if code != 0 {
		return nil, true, fmt.Errorf("re-analysis after fixes failed")
	}
	return rerun, unfixable > 0 || conflicted > 0, nil
}
