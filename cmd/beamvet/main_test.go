package main

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot walks up from this file to the module root so the tests are
// independent of the test binary's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestRepoIsClean is the acceptance invariant: the entire repository
// passes its own analyzers. If this fails, a determinism, ctxleak, or
// errwrap violation (or a stale //beamvet:allow) slipped in.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over every package")
	}
	var stdout, stderr strings.Builder
	if code := run(repoRoot(t), []string{"./..."}, false, &stdout, &stderr); code != 0 {
		t.Errorf("beamvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestFindingsExit pins the exit-code contract on a fixture package
// that is known to violate every analyzer-visible rule.
func TestFindingsExit(t *testing.T) {
	fixture := filepath.Join("internal", "analysis", "analyzers", "determinism", "testdata", "src", "a")
	var stdout, stderr strings.Builder
	code := run(filepath.Join(repoRoot(t), fixture), []string{"."}, false, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("beamvet on a violating fixture = exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	for _, wantSub := range []string{
		"determinism: time.Now in output-producing package",
		"map iteration order reaches the output",
	} {
		if !strings.Contains(stdout.String(), wantSub) {
			t.Errorf("output missing %q:\n%s", wantSub, stdout.String())
		}
	}
}

func TestBadPatternExit(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(repoRoot(t), []string{"./no/such/dir/..."}, false, &stdout, &stderr); code != 2 {
		t.Errorf("beamvet on a bad pattern = exit %d, want 2", code)
	}
}
