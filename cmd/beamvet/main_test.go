package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"beambench/internal/analysis"
)

// repoRoot walks up from this file to the module root so the tests are
// independent of the test binary's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestRepoIsClean is the acceptance invariant: the entire repository
// passes its own analyzers. If this fails, a determinism, ctxleak,
// errwrap, locksafe, or hotalloc violation (or a stale
// //beamvet:allow) slipped in.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over every package")
	}
	var stdout, stderr strings.Builder
	if code := run(repoRoot(t), []string{"./..."}, options{}, &stdout, &stderr); code != 0 {
		t.Errorf("beamvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestFindingsExit pins the exit-code contract on a fixture package
// that is known to violate every analyzer-visible rule.
func TestFindingsExit(t *testing.T) {
	fixture := filepath.Join("internal", "analysis", "analyzers", "determinism", "testdata", "src", "a")
	var stdout, stderr strings.Builder
	code := run(filepath.Join(repoRoot(t), fixture), []string{"."}, options{}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("beamvet on a violating fixture = exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	for _, wantSub := range []string{
		"determinism: time.Now in output-producing package",
		"map iteration order reaches the output",
	} {
		if !strings.Contains(stdout.String(), wantSub) {
			t.Errorf("output missing %q:\n%s", wantSub, stdout.String())
		}
	}
}

func TestBadPatternExit(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(repoRoot(t), []string{"./no/such/dir/..."}, options{}, &stdout, &stderr); code != 2 {
		t.Errorf("beamvet on a bad pattern = exit %d, want 2", code)
	}
}

// TestJSONReport pins the -json contract: stdout is exactly the
// machine-readable report, human findings move to stderr, and the exit
// code still reflects the findings.
func TestJSONReport(t *testing.T) {
	fixture := filepath.Join("internal", "analysis", "analyzers", "hotalloc", "testdata", "src", "a")
	var stdout, stderr strings.Builder
	code := run(filepath.Join(repoRoot(t), fixture), []string{"."}, options{jsonOut: true}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("beamvet -json on a violating fixture = exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var report analysis.Report
	if err := json.Unmarshal([]byte(stdout.String()), &report); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if report.Tool != "beamvet" || report.Version != analysis.ReportVersion {
		t.Errorf("report header = %q v%d, want beamvet v%d", report.Tool, report.Version, analysis.ReportVersion)
	}
	if report.Count == 0 || len(report.Findings) != report.Count {
		t.Errorf("count=%d findings=%d, want a consistent non-zero inventory", report.Count, len(report.Findings))
	}
	checks := map[string]bool{}
	for _, c := range report.Checks {
		checks[c.Name] = true
	}
	for _, want := range []string{"determinism", "ctxleak", "errwrap", "locksafe", "hotalloc"} {
		if !checks[want] {
			t.Errorf("report.checks missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "hotalloc") {
		t.Errorf("human findings did not move to stderr under -json:\n%s", stderr.String())
	}
}

// TestGitHubAnnotations checks the ::error workflow-annotation path
// without being on Actions.
func TestGitHubAnnotations(t *testing.T) {
	fixture := filepath.Join("internal", "analysis", "analyzers", "hotalloc", "testdata", "src", "a")
	env := func(k string) string {
		if k == "GITHUB_ACTIONS" {
			return "true"
		}
		return ""
	}
	var stdout, stderr strings.Builder
	run(filepath.Join(repoRoot(t), fixture), []string{"."}, options{env: env}, &stdout, &stderr)
	if !strings.Contains(stderr.String(), "::error file=") {
		t.Errorf("no ::error annotations on stderr under GITHUB_ACTIONS:\n%s", stderr.String())
	}
}

// TestFixEndToEnd drives the full -fix contract on a throwaway module:
// exit 0 only because every finding was repaired and the re-run from
// the rewritten sources is clean, and a second -fix run is a no-op.
func TestFixEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list twice over a scratch module")
	}
	src, err := os.ReadFile(filepath.Join(repoRoot(t),
		"internal", "analysis", "analyzers", "hotalloc", "testdata", "src", "fixable", "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join(repoRoot(t),
		"internal", "analysis", "analyzers", "hotalloc", "testdata", "src", "fixable", "fixable.go.golden"))
	if err != nil {
		t.Fatal(err)
	}

	// The scratch module keeps "testdata" in its path so the analyzer
	// scopes cover it.
	dir := t.TempDir()
	writeFile := func(name string, content []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", []byte("module fixfixture/testdata\n\ngo 1.24\n"))
	writeFile("fixable.go", src)

	var stdout, stderr strings.Builder
	if code := run(dir, []string{"."}, options{fix: true}, &stdout, &stderr); code != 0 {
		t.Fatalf("beamvet -fix on a fully fixable module = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(fixed) != string(golden) {
		t.Fatalf("-fix output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", fixed, golden)
	}

	// Idempotence: -fix on the now-clean tree rewrites nothing.
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"."}, options{fix: true}, &stdout, &stderr); code != 0 {
		t.Fatalf("beamvet -fix on a clean tree = exit %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	again, err := os.ReadFile(filepath.Join(dir, "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Errorf("second -fix run changed the file: -fix is not idempotent")
	}
}

// TestFixUnfixableStillFails pins the strict half of the contract: a
// finding with no mechanical repair forces exit 1 even under -fix.
func TestFixUnfixableStillFails(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list twice over a scratch module")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module unfixable/testdata\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A hot-path conversion has no mechanical fix.
	src := `package unfixable

func Decode(b []byte) string { return string(b) }
`
	if err := os.WriteFile(filepath.Join(dir, "unfixable.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if code := run(dir, []string{"."}, options{fix: true}, &stdout, &stderr); code != 1 {
		t.Errorf("beamvet -fix with an unfixable finding = exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no mechanical fix") {
		t.Errorf("stderr does not say why -fix could not reach exit 0:\n%s", stderr.String())
	}
}
