module beambench

go 1.24
