module beambench

go 1.24

// The module is deliberately dependency-free: the build environment is
// offline, so nothing here can be downloaded. Lint tooling that would
// normally be pinned with a Go 1.24 `tool` directive (staticcheck,
// govulncheck) is pinned in hack/lint.sh instead — a tool directive
// needs go.sum entries that cannot be generated without module
// downloads. If that constraint ever lifts, move the pins to:
//
//	tool (
//		honnef.co/go/tools/cmd/staticcheck
//		golang.org/x/vuln/cmd/govulncheck
//	)
