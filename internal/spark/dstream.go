// Package spark simulates Apache Spark Streaming as described in Section
// II-C of Hesse et al. (ICDCS 2019): a driver program coordinating
// executors; streams processed as micro-batches (discretized streams) —
// sequences of RDDs — rather than tuple-at-a-time.
//
// Micro-batching amortizes scheduling and I/O over whole batches, which
// is why the paper measures the lowest native execution times on Spark.
// The per-batch and per-task launch costs, and the per-record costs the
// Beam runner adds inside each batch, follow the simcost model.
package spark

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Config controls a StreamingContext.
type Config struct {
	// BatchInterval is the micro-batch interval. In bounded benchmark
	// runs backlogged batches run back-to-back (as real Spark does when
	// processing lags); in Start/Stop mode the scheduler ticks at this
	// interval. Defaults to 500ms.
	BatchInterval time.Duration
	// DefaultParallelism is spark.default.parallelism, the setting the
	// paper uses to configure parallelism (Section III-A2). It sizes
	// shuffles requested via RepartitionDefault. Defaults to 1.
	DefaultParallelism int
	// MaxRatePerPartition caps records per partition per batch, like
	// spark.streaming.kafka.maxRatePerPartition. Defaults to 10000.
	MaxRatePerPartition int
}

func (c *Config) validate() error {
	if c.BatchInterval == 0 {
		c.BatchInterval = 500 * time.Millisecond
	}
	if c.BatchInterval < 0 {
		return fmt.Errorf("spark: negative batch interval %v", c.BatchInterval)
	}
	if c.DefaultParallelism == 0 {
		c.DefaultParallelism = 1
	}
	if c.DefaultParallelism < 0 {
		return fmt.Errorf("spark: negative default parallelism %d", c.DefaultParallelism)
	}
	if c.MaxRatePerPartition == 0 {
		c.MaxRatePerPartition = 10_000
	}
	if c.MaxRatePerPartition < 0 {
		return fmt.Errorf("spark: negative max rate %d", c.MaxRatePerPartition)
	}
	return nil
}

// StreamingContext builds and runs a micro-batch streaming application,
// the analogue of Spark's StreamingContext owned by the driver program.
type StreamingContext struct {
	cluster *Cluster
	cfg     Config

	inputs  []*DStream
	outputs []*outputOp
	err     error
	state   ctxState

	stopCh chan struct{}
	doneCh chan struct{}

	mu      sync.Mutex
	runErr  error
	metrics StreamingMetrics
}

type ctxState int

const (
	stateBuilding ctxState = iota + 1
	stateRunning
	stateStopped
)

// StreamingMetrics aggregates execution counters across batches.
type StreamingMetrics struct {
	// Batches is the number of micro-batches executed.
	Batches int64
	// RecordsIn counts records entering the pipeline.
	RecordsIn int64
	// RecordsOut counts records delivered to output operations.
	RecordsOut int64
}

// NewStreamingContext returns a context in building state.
func NewStreamingContext(cluster *Cluster, cfg Config) (*StreamingContext, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &StreamingContext{cluster: cluster, cfg: cfg, state: stateBuilding}, nil
}

// DefaultParallelism reports the configured spark.default.parallelism.
func (ssc *StreamingContext) DefaultParallelism() int {
	return ssc.cfg.DefaultParallelism
}

func (ssc *StreamingContext) fail(err error) {
	if ssc.err == nil {
		ssc.err = err
	}
}

// stageKind classifies one lineage node.
type stageKind int

const (
	stageInput stageKind = iota + 1
	stageNarrow
	stageShuffle
	// stageStateful is a keyed stage whose per-partition processors
	// persist across micro-batches (see DStream.Stateful).
	stageStateful
	// stageUnion concatenates the partitions of several parent streams
	// (DStream.Union) — no shuffle, the branches' RDD partitions sit side
	// by side.
	stageUnion
	// stageAssign is the timestamp/watermark assigner: a pass-through
	// stage whose persistent per-partition generators stamp the
	// lineage's event-time watermark (DStream.AssignTimestampsBounded).
	stageAssign
)

// narrowFn processes one record, emitting zero or more records.
type narrowFn func(rec []byte, emit func([]byte))

// narrowFactory builds the per-task function for a (batch, partition),
// allowing per-task state such as sampling RNGs or runner cost meters.
// A factory error fails the task (and with it the batch), the channel
// through which per-instance initialization failures such as a Beam
// DoFn Setup error surface.
type narrowFactory func(task TaskContext) (narrowFn, error)

// TaskContext describes the task evaluating a stage partition.
type TaskContext struct {
	// BatchID numbers the micro-batch, starting at 0.
	BatchID int64
	// Partition is the RDD partition index.
	Partition int
	// Charge adds simulated per-record cost to the running task.
	Charge func(d time.Duration)
	// Watermark is the event-time watermark of the stage's input lineage
	// at the current batch boundary — the minimum over the upstream
	// timestamp assigners (AssignTimestampsBounded), end-of-time on the
	// final flush pass. Stateful stages fire panes off it at EndBatch.
	// The zero time means no upstream assigner has claimed progress.
	Watermark time.Time
}

// DStream is a discretized stream: a lineage of transformations applied
// to every micro-batch RDD.
type DStream struct {
	ssc     *StreamingContext
	parent  *DStream
	kind    stageKind
	name    string // stage label for telemetry; see Named
	factory narrowFactory
	width   int // for stageShuffle: target partition count
	// shuffleKey, when set on a stageShuffle, routes records by key hash
	// instead of round-robin (RepartitionByKey).
	shuffleKey func(rec []byte) ([]byte, error)
	// state holds a stateful stage's persistent per-partition processors.
	state *statefulNode
	// parents holds a union stage's merged input branches.
	parents []*DStream
	// assign holds an assign stage's persistent watermark generators.
	assign *assignNode

	input inputSource
}

// Named sets the stage's telemetry label (per-stage throughput is
// reported under it) and returns the stream for chaining. Constructors
// assign generic defaults ("Map", "Filter", ...); the Beam runner
// overrides them with the translated operator names.
func (ds *DStream) Named(name string) *DStream {
	ds.name = name
	return ds
}

// inputSource supplies per-batch input partitions.
type inputSource interface {
	// nextBatch returns the records per partition for one batch and
	// whether any data remains (for bounded runs). An all-empty batch
	// with remaining=true means the source is idle.
	nextBatch(batchID int64) (parts [][][]byte, remaining bool, err error)
}

func (ssc *StreamingContext) newInput(src inputSource) *DStream {
	ds := &DStream{ssc: ssc, kind: stageInput, name: "Input", input: src}
	ssc.inputs = append(ssc.inputs, ds)
	return ds
}

// Union merges this stream with the others, like
// StreamingContext.union: each batch's RDD holds the branches'
// partitions side by side, without a shuffle. The branches may be
// rooted at different inputs; the micro-batch scheduler fetches one
// batch per input and the union concatenates the branches' results.
func (ds *DStream) Union(others ...*DStream) *DStream {
	if len(others) == 0 {
		ds.ssc.fail(fmt.Errorf("spark: union needs at least two streams"))
		return ds
	}
	parents := append([]*DStream{ds}, others...)
	for _, p := range parents {
		if p == nil || p.ssc != ds.ssc {
			ds.ssc.fail(fmt.Errorf("spark: union across streaming contexts"))
			return ds
		}
	}
	return &DStream{ssc: ds.ssc, kind: stageUnion, name: "Union", parents: parents}
}

// Map applies a 1:1 transformation.
func (ds *DStream) Map(fn func([]byte) []byte) *DStream {
	if fn == nil {
		ds.ssc.fail(fmt.Errorf("spark: nil map function"))
		return ds
	}
	return ds.narrow(func(TaskContext) (narrowFn, error) {
		return func(rec []byte, emit func([]byte)) { emit(fn(rec)) }, nil
	}).Named("Map")
}

// Filter keeps records matching the predicate.
func (ds *DStream) Filter(fn func([]byte) bool) *DStream {
	if fn == nil {
		ds.ssc.fail(fmt.Errorf("spark: nil filter function"))
		return ds
	}
	return ds.narrow(func(TaskContext) (narrowFn, error) {
		return func(rec []byte, emit func([]byte)) {
			if fn(rec) {
				emit(rec)
			}
		}, nil
	}).Named("Filter")
}

// FlatMap applies a 1:N transformation.
func (ds *DStream) FlatMap(fn func(rec []byte, emit func([]byte))) *DStream {
	if fn == nil {
		ds.ssc.fail(fmt.Errorf("spark: nil flatMap function"))
		return ds
	}
	return ds.narrow(func(TaskContext) (narrowFn, error) { return narrowFn(fn), nil }).Named("FlatMap")
}

// Sample keeps approximately fraction of the records, seeded
// deterministically per batch and partition.
func (ds *DStream) Sample(fraction float64, seed uint64) *DStream {
	if fraction < 0 || fraction > 1 {
		ds.ssc.fail(fmt.Errorf("spark: sample fraction %v outside [0,1]", fraction))
		return ds
	}
	return ds.narrow(func(task TaskContext) (narrowFn, error) {
		rng := rand.New(rand.NewPCG(seed, uint64(task.BatchID)<<32|uint64(task.Partition)))
		return func(rec []byte, emit func([]byte)) {
			if rng.Float64() < fraction {
				emit(rec)
			}
		}, nil
	}).Named("Sample")
}

// Transform applies a custom per-task stage, the hook the Beam runner
// uses to interpose DoFn invocation and coder costs.
func (ds *DStream) Transform(factory func(task TaskContext) func(rec []byte, emit func([]byte))) *DStream {
	if factory == nil {
		ds.ssc.fail(fmt.Errorf("spark: nil transform factory"))
		return ds
	}
	return ds.narrow(func(task TaskContext) (narrowFn, error) {
		return narrowFn(factory(task)), nil
	}).Named("Transform")
}

// TransformE is Transform for factories whose per-task initialization
// can fail; the error fails the task and propagates out of the run.
func (ds *DStream) TransformE(factory func(task TaskContext) (func(rec []byte, emit func([]byte)), error)) *DStream {
	if factory == nil {
		ds.ssc.fail(fmt.Errorf("spark: nil transform factory"))
		return ds
	}
	return ds.narrow(func(task TaskContext) (narrowFn, error) {
		fn, err := factory(task)
		if err != nil {
			return nil, err
		}
		return narrowFn(fn), nil
	}).Named("Transform")
}

func (ds *DStream) narrow(factory narrowFactory) *DStream {
	return &DStream{ssc: ds.ssc, parent: ds, kind: stageNarrow, factory: factory}
}

// Repartition redistributes records round-robin into n partitions,
// introducing a shuffle boundary.
func (ds *DStream) Repartition(n int) *DStream {
	if n <= 0 {
		ds.ssc.fail(fmt.Errorf("spark: repartition to %d partitions", n))
		return ds
	}
	return &DStream{ssc: ds.ssc, parent: ds, kind: stageShuffle, width: n}
}

// RepartitionDefault redistributes to spark.default.parallelism
// partitions, the knob the paper tunes per run.
func (ds *DStream) RepartitionDefault() *DStream {
	return ds.Repartition(ds.ssc.cfg.DefaultParallelism)
}

// outputOp is a registered terminal action run once per batch.
type outputOp struct {
	name   string
	stream *DStream
	open   func(task TaskContext) (recordWriter, error)
}

// recordWriter consumes the records of one output partition.
type recordWriter interface {
	write(rec []byte) error
	close() error
}

// ForeachRecord registers an output operation calling fn for every
// record of every batch, for tests and examples.
func (ds *DStream) ForeachRecord(name string, fn func(rec []byte) error) {
	if fn == nil {
		ds.ssc.fail(fmt.Errorf("spark: nil foreach function"))
		return
	}
	ds.ssc.outputs = append(ds.ssc.outputs, &outputOp{
		name:   name,
		stream: ds,
		open: func(TaskContext) (recordWriter, error) {
			return funcWriter(fn), nil
		},
	})
}

type funcWriter func(rec []byte) error

func (w funcWriter) write(rec []byte) error { return w(rec) }
func (w funcWriter) close() error           { return nil }
