package spark

import (
	"fmt"
	"sync"
	"time"

	"beambench/internal/watermark"
)

// StatefulProcessor is a keyed per-partition operator whose state
// survives across micro-batches — the engine's state path (the
// updateStateByKey/mapWithState family). One instance exists per stage
// partition for the lifetime of the run; records of one partition are
// delivered in batch order.
type StatefulProcessor interface {
	// Process handles one record of the current batch; task carries the
	// running task's cost meter.
	Process(task TaskContext, rec []byte, emit func([]byte)) error
	// EndBatch marks a micro-batch boundary; window firing happens here,
	// so pane emission is quantized to batch boundaries as micro-batch
	// semantics dictate.
	EndBatch(task TaskContext, emit func([]byte)) error
	// EndStream flushes remaining state when the bounded input ends.
	EndStream(task TaskContext, emit func([]byte)) error
}

// StatefulFactory builds the processor of one stage partition; it runs
// once per partition on first use, not per batch.
type StatefulFactory func(partition int) (StatefulProcessor, error)

// Stateful adds a keyed stateful stage whose per-partition processors
// persist across micro-batches. The stage is a barrier in the lineage
// (like a shuffle): upstream narrow stages compute per batch, the
// stateful stage consumes the batch, and its emissions feed the
// downstream stages of the same batch. When the bounded input drains,
// the scheduler runs one final flush pass in which EndStream emissions
// flow through the downstream lineage.
//
// A stateful stage must be consumed by exactly one output operation:
// Spark recomputes lineage per output (no cache()), and replaying
// records into persistent state would double-count.
func (ds *DStream) Stateful(name string, factory StatefulFactory) *DStream {
	if factory == nil {
		ds.ssc.fail(fmt.Errorf("spark: stateful stage %q: nil factory", name))
		return ds
	}
	out := &DStream{
		ssc:    ds.ssc,
		parent: ds,
		kind:   stageStateful,
		name:   name,
		state:  &statefulNode{factory: factory},
	}
	return out
}

// statefulNode is the persistent run-time state of one Stateful stage.
type statefulNode struct {
	factory StatefulFactory

	mu        sync.Mutex
	instances []StatefulProcessor
}

// instancesFor returns the stage's processors, creating them on first
// use and pinning the partition count for the rest of the run.
func (n *statefulNode) instancesFor(parts int) ([]StatefulProcessor, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.instances == nil {
		n.instances = make([]StatefulProcessor, parts)
		for p := range n.instances {
			inst, err := n.factory(p)
			if err != nil {
				n.instances = nil
				return nil, err
			}
			n.instances[p] = inst
		}
	}
	if len(n.instances) != parts {
		return nil, fmt.Errorf("spark: stateful stage saw %d partitions after %d; keyed state needs a stable layout",
			parts, len(n.instances))
	}
	return n.instances, nil
}

// current returns the already-created processors (possibly nil), for the
// end-of-input flush pass.
func (n *statefulNode) current() []StatefulProcessor {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.instances
}

// RepartitionByKey redistributes records into n partitions by key hash,
// so all records with equal keys land in the same partition — the
// shuffle a keyed stateful stage needs when upstream partitioning is
// round-robin. It introduces a shuffle boundary like Repartition.
func (ds *DStream) RepartitionByKey(n int, key func(rec []byte) ([]byte, error)) *DStream {
	if n <= 0 {
		ds.ssc.fail(fmt.Errorf("spark: repartition by key to %d partitions", n))
		return ds
	}
	if key == nil {
		ds.ssc.fail(fmt.Errorf("spark: repartition by key: nil key selector"))
		return ds
	}
	return &DStream{ssc: ds.ssc, parent: ds, kind: stageShuffle, width: n, shuffleKey: key}
}

// ReduceByKeyAndWindow adds the engine's windowed aggregation: a keyed
// per-(window, key) count over event-time tumbling windows, held in
// micro-batch state that persists across batches. A per-partition
// watermark (internal/watermark) with bounded out-of-orderness drives
// pane firing at micro-batch boundaries — so output is quantized to
// batch ends, the engine's natural clock — and the remaining windows
// flush when the bounded input ends.
//
// Records must reach the stage keyed (single input partition, or via
// RepartitionByKey); the state is partition-local.
func (ds *DStream) ReduceByKeyAndWindow(name string, size, bound time.Duration,
	eventTime func(rec []byte) (time.Time, error),
	key func(rec []byte) ([]byte, error),
	format func(windowStart time.Time, key []byte, count int64) []byte,
) *DStream {
	switch {
	case size <= 0:
		ds.ssc.fail(fmt.Errorf("spark: window size must be positive, got %v", size))
		return ds
	case eventTime == nil, key == nil, format == nil:
		ds.ssc.fail(fmt.Errorf("spark: reduceByKeyAndWindow %q: nil event-time, key or format fn", name))
		return ds
	}
	return ds.Stateful(name, func(int) (StatefulProcessor, error) {
		state, err := watermark.NewTumblingState[int64](size)
		if err != nil {
			return nil, err
		}
		return &windowCountState{
			gen:       watermark.NewGenerator(bound),
			state:     state,
			eventTime: eventTime,
			key:       key,
			format:    format,
		}, nil
	})
}

// windowCountState is the ReduceByKeyAndWindow processor.
type windowCountState struct {
	gen       *watermark.Generator
	state     *watermark.TumblingState[int64]
	eventTime func(rec []byte) (time.Time, error)
	key       func(rec []byte) ([]byte, error)
	format    func(time.Time, []byte, int64) []byte
}

func (s *windowCountState) Process(task TaskContext, rec []byte, emit func([]byte)) error {
	et, err := s.eventTime(rec)
	if err != nil {
		return fmt.Errorf("spark: window event time: %w", err)
	}
	key, err := s.key(rec)
	if err != nil {
		return fmt.Errorf("spark: window key: %w", err)
	}
	s.state.Upsert(et, string(key), func(c *int64) { *c++ })
	s.gen.Observe(et)
	return nil
}

func (s *windowCountState) EndBatch(task TaskContext, emit func([]byte)) error {
	return s.state.FireReady(s.gen.Current(), func(p watermark.Pane[int64]) error {
		emit(s.format(p.Start, []byte(p.Key), p.Acc))
		return nil
	})
}

func (s *windowCountState) EndStream(task TaskContext, emit func([]byte)) error {
	s.gen.Finalize()
	return s.state.FireAll(func(p watermark.Pane[int64]) error {
		emit(s.format(p.Start, []byte(p.Key), p.Acc))
		return nil
	})
}
