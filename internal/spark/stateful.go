package spark

import (
	"fmt"
	"sync"
	"time"

	"beambench/internal/watermark"
)

// StatefulProcessor is a keyed per-partition operator whose state
// survives across micro-batches — the engine's state path (the
// updateStateByKey/mapWithState family). One instance exists per stage
// partition for the lifetime of the run; records of one partition are
// delivered in batch order.
type StatefulProcessor interface {
	// Process handles one record of the current batch; task carries the
	// running task's cost meter.
	Process(task TaskContext, rec []byte, emit func([]byte)) error
	// EndBatch marks a micro-batch boundary; window firing happens here,
	// so pane emission is quantized to batch boundaries as micro-batch
	// semantics dictate.
	EndBatch(task TaskContext, emit func([]byte)) error
	// EndStream flushes remaining state when the bounded input ends.
	EndStream(task TaskContext, emit func([]byte)) error
}

// StatefulFactory builds the processor of one stage partition; it runs
// once per partition on first use, not per batch.
type StatefulFactory func(partition int) (StatefulProcessor, error)

// Stateful adds a keyed stateful stage whose per-partition processors
// persist across micro-batches. The stage is a barrier in the lineage
// (like a shuffle): upstream narrow stages compute per batch, the
// stateful stage consumes the batch, and its emissions feed the
// downstream stages of the same batch. When the bounded input drains,
// the scheduler runs one final flush pass in which EndStream emissions
// flow through the downstream lineage.
//
// A stateful stage must be consumed by exactly one output operation:
// Spark recomputes lineage per output (no cache()), and replaying
// records into persistent state would double-count.
func (ds *DStream) Stateful(name string, factory StatefulFactory) *DStream {
	if factory == nil {
		ds.ssc.fail(fmt.Errorf("spark: stateful stage %q: nil factory", name))
		return ds
	}
	out := &DStream{
		ssc:    ds.ssc,
		parent: ds,
		kind:   stageStateful,
		name:   name,
		state:  &statefulNode{factory: factory},
	}
	return out
}

// statefulNode is the persistent run-time state of one Stateful stage.
type statefulNode struct {
	factory StatefulFactory

	mu        sync.Mutex
	instances []StatefulProcessor
}

// instancesFor returns the stage's processors, creating them on first
// use and pinning the partition count for the rest of the run.
func (n *statefulNode) instancesFor(parts int) ([]StatefulProcessor, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.instances == nil {
		n.instances = make([]StatefulProcessor, parts)
		for p := range n.instances {
			inst, err := n.factory(p)
			if err != nil {
				n.instances = nil
				return nil, err
			}
			n.instances[p] = inst
		}
	}
	if len(n.instances) != parts {
		return nil, fmt.Errorf("spark: stateful stage saw %d partitions after %d; keyed state needs a stable layout",
			parts, len(n.instances))
	}
	return n.instances, nil
}

// current returns the already-created processors (possibly nil), for the
// end-of-input flush pass.
func (n *statefulNode) current() []StatefulProcessor {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.instances
}

// RepartitionByKey redistributes records into n partitions by key hash,
// so all records with equal keys land in the same partition — the
// shuffle a keyed stateful stage needs when upstream partitioning is
// round-robin. It introduces a shuffle boundary like Repartition.
func (ds *DStream) RepartitionByKey(n int, key func(rec []byte) ([]byte, error)) *DStream {
	if n <= 0 {
		ds.ssc.fail(fmt.Errorf("spark: repartition by key to %d partitions", n))
		return ds
	}
	if key == nil {
		ds.ssc.fail(fmt.Errorf("spark: repartition by key: nil key selector"))
		return ds
	}
	return &DStream{ssc: ds.ssc, parent: ds, kind: stageShuffle, width: n, shuffleKey: key}
}

// ValueFn extracts the numeric column a windowed aggregate folds; nil
// selects a pure count.
type ValueFn func(rec []byte) (int64, error)

// WindowFormatFn renders one fired pane as an output record.
type WindowFormatFn func(windowStart time.Time, key []byte, value int64) []byte

// WindowConfig parameterizes a keyed windowed aggregation
// (AggByKeyAndWindow).
type WindowConfig struct {
	// Size is the tumbling window length in event time; ignored when
	// Assigner is set.
	Size time.Duration
	// Assigner selects the window family (tumbling, sliding, session);
	// nil selects tumbling windows of Size.
	Assigner watermark.Assigner
	// Agg selects the reduction over Value; zero selects AggCount.
	Agg watermark.AggKind
	// Value extracts the aggregated column; nil counts records.
	Value ValueFn
	// EventTime derives each record's event timestamp (window
	// assignment). Pane firing is driven by the propagated watermark
	// (TaskContext.Watermark), so the lineage needs a timestamp assigner
	// upstream — AssignTimestampsBounded after the input.
	EventTime EventTimeFn
	// Key derives each record's grouping key.
	Key func(rec []byte) ([]byte, error)
	// Format renders fired panes.
	Format WindowFormatFn
}

func (c *WindowConfig) validate() error {
	if c.Assigner == nil {
		a, err := watermark.NewTumblingAssigner(c.Size)
		if err != nil {
			return fmt.Errorf("spark: windowed aggregation: %w", err)
		}
		c.Assigner = a
	}
	if c.Agg == 0 {
		c.Agg = watermark.AggCount
	}
	if !c.Agg.Valid() {
		return fmt.Errorf("spark: windowed aggregation: invalid agg kind %d", c.Agg)
	}
	if c.EventTime == nil || c.Key == nil || c.Format == nil {
		return fmt.Errorf("spark: windowed aggregation: nil event-time, key or format fn")
	}
	return nil
}

// AggByKeyAndWindow adds the engine's windowed aggregation: a keyed
// per-(window, key) aggregate — count, sum, min, max or avg over a
// record column — under any window assigner, held in micro-batch state
// that persists across batches. Panes fire at micro-batch boundaries
// off the propagated watermark the scheduler delivers in
// TaskContext.Watermark (the minimum over the lineage's upstream
// timestamp assigners) — so output is quantized to batch ends, the
// engine's natural clock — and the remaining windows flush when the
// bounded input ends.
//
// Records must reach the stage keyed (single input partition, or via
// RepartitionByKey); the state is partition-local.
func (ds *DStream) AggByKeyAndWindow(name string, cfg WindowConfig) *DStream {
	if err := cfg.validate(); err != nil {
		ds.ssc.fail(fmt.Errorf("spark: %s: %w", name, err))
		return ds
	}
	return ds.Stateful(name, func(int) (StatefulProcessor, error) {
		state, err := watermark.NewWindowState[watermark.NumAcc](cfg.Assigner,
			func(into *watermark.NumAcc, from watermark.NumAcc) { into.Merge(from) })
		if err != nil {
			return nil, err
		}
		return &windowAggState{cfg: cfg, state: state}, nil
	})
}

// ReduceByKeyAndWindow is AggByKeyAndWindow specialized to the original
// benchmark query: a keyed per-(window, key) count over event-time
// tumbling windows. Pair it with AssignTimestampsBounded upstream —
// pane firing is driven by the propagated watermark.
func (ds *DStream) ReduceByKeyAndWindow(name string, size time.Duration,
	eventTime EventTimeFn,
	key func(rec []byte) ([]byte, error),
	format WindowFormatFn,
) *DStream {
	return ds.AggByKeyAndWindow(name, WindowConfig{
		Size: size, EventTime: eventTime, Key: key, Format: format,
	})
}

// windowAggState is the AggByKeyAndWindow processor.
type windowAggState struct {
	cfg   WindowConfig
	state *watermark.WindowState[watermark.NumAcc]
}

func (s *windowAggState) Process(task TaskContext, rec []byte, emit func([]byte)) error {
	et, err := s.cfg.EventTime(rec)
	if err != nil {
		return fmt.Errorf("spark: window event time: %w", err)
	}
	key, err := s.cfg.Key(rec)
	if err != nil {
		return fmt.Errorf("spark: window key: %w", err)
	}
	v := int64(0)
	if s.cfg.Value != nil {
		if v, err = s.cfg.Value(rec); err != nil {
			return fmt.Errorf("spark: window value: %w", err)
		}
	}
	// Same shape as the apex/flink window operators: the string hop
	// and update closure are the generic pane API until combiner
	// lifting lands (ROADMAP: zero-alloc record path).
	//beamvet:allow hotalloc pane state keys by string and updates through the generic accumulator closure until combiner lifting lands
	s.state.Upsert(et, string(key), func(acc *watermark.NumAcc) { acc.Add(v) })
	return nil
}

func (s *windowAggState) EndBatch(task TaskContext, emit func([]byte)) error {
	return s.state.FireReady(task.Watermark, s.emitPane(emit))
}

func (s *windowAggState) EndStream(task TaskContext, emit func([]byte)) error {
	return s.state.FireAll(s.emitPane(emit))
}

func (s *windowAggState) emitPane(emit func([]byte)) func(watermark.Pane[watermark.NumAcc]) error {
	return func(p watermark.Pane[watermark.NumAcc]) error {
		emit(s.cfg.Format(p.Start, []byte(p.Key), p.Acc.Result(s.cfg.Agg)))
		return nil
	}
}
