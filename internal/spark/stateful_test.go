package spark

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

var winEpoch = time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC)

func windowedRecord(sec int, key string) []byte {
	return []byte(fmt.Sprintf("%d|%s", sec, key))
}

func testEventTime(rec []byte) (time.Time, error) {
	var sec int
	if _, err := fmt.Sscanf(string(rec), "%d|", &sec); err != nil {
		return time.Time{}, err
	}
	return winEpoch.Add(time.Duration(sec) * time.Second), nil
}

func testKey(rec []byte) ([]byte, error) {
	i := strings.IndexByte(string(rec), '|')
	return rec[i+1:], nil
}

func testFormat(start time.Time, key []byte, count int64) []byte {
	return []byte(fmt.Sprintf("%d:%s=%d", start.Sub(winEpoch)/time.Second, key, count))
}

// runWindowed drives a ReduceByKeyAndWindow job over the input with the
// given per-batch size and returns the collected output in order.
func runWindowed(t *testing.T, input [][]byte, perBatch int) []string {
	t.Helper()
	cluster := newTestCluster(t, ClusterConfig{})
	ssc, err := NewStreamingContext(cluster, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	ssc.SliceStream(input, perBatch).
		AssignTimestampsBounded(testEventTime, 0).
		ReduceByKeyAndWindow("WindowedCount", time.Second, testEventTime, testKey, testFormat).
		ForeachRecord("collect", func(rec []byte) error {
			got = append(got, string(rec))
			return nil
		})
	if _, err := ssc.RunBounded(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReduceByKeyAndWindowCountsAcrossBatches(t *testing.T) {
	input := [][]byte{
		windowedRecord(0, "a"),
		windowedRecord(0, "b"),
		windowedRecord(0, "a"),
		windowedRecord(1, "a"),
		windowedRecord(2, "b"),
	}
	want := []string{"0:a=2", "0:b=1", "1:a=1", "2:b=1"}
	// The pane sequence must not depend on how micro-batches slice the
	// input: state persists across batches and windows fire in event-time
	// order at batch boundaries.
	for _, perBatch := range []int{1, 2, 5} {
		got := runWindowed(t, input, perBatch)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("perBatch=%d: panes = %v, want %v", perBatch, got, want)
		}
	}
}

// TestStatefulStateSurvivesBatches pins the state path itself: a window
// split across two micro-batches must produce one pane with the full
// count, not two partial panes.
func TestStatefulStateSurvivesBatches(t *testing.T) {
	input := [][]byte{
		windowedRecord(0, "a"),
		windowedRecord(0, "a"), // same window, lands in batch 2 at perBatch=1
		windowedRecord(3, "a"),
	}
	got := runWindowed(t, input, 1)
	want := []string{"0:a=2", "3:a=1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("panes = %v, want %v", got, want)
	}
}

func TestRepartitionByKeyKeepsKeysTogether(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	ssc, err := NewStreamingContext(cluster, Config{DefaultParallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	var input [][]byte
	for i := range 90 {
		input = append(input, windowedRecord(i/30, fmt.Sprintf("k%d", i%6)))
	}
	var mu sync.Mutex
	counts := make(map[string]int)
	ssc.SliceStream(input, 10).
		AssignTimestampsBounded(testEventTime, 0).
		RepartitionByKey(3, testKey).
		ReduceByKeyAndWindow("WindowedCount", time.Second, testEventTime, testKey, testFormat).
		ForeachRecord("collect", func(rec []byte) error {
			mu.Lock()
			counts[string(rec)]++
			mu.Unlock()
			return nil
		})
	if _, err := ssc.RunBounded(); err != nil {
		t.Fatal(err)
	}
	// 3 windows x 6 keys, 5 records each: every pane exactly once with
	// the full count — the keyed shuffle reunited each key's records.
	if len(counts) != 18 {
		t.Fatalf("distinct panes = %d, want 18: %v", len(counts), counts)
	}
	for pane, n := range counts {
		if n != 1 {
			t.Errorf("pane %q emitted %d times", pane, n)
		}
		if !strings.HasSuffix(pane, "=5") {
			t.Errorf("pane %q count wrong, want =5", pane)
		}
	}
}

func TestStatefulStageRejectsTwoOutputs(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	ssc, err := NewStreamingContext(cluster, Config{})
	if err != nil {
		t.Fatal(err)
	}
	windowed := ssc.SliceStream([][]byte{windowedRecord(0, "a")}, 0).
		AssignTimestampsBounded(testEventTime, 0).
		ReduceByKeyAndWindow("WindowedCount", time.Second, testEventTime, testKey, testFormat)
	windowed.ForeachRecord("one", func([]byte) error { return nil })
	windowed.ForeachRecord("two", func([]byte) error { return nil })
	if _, err := ssc.RunBounded(); err == nil {
		t.Error("stateful stage with two outputs accepted")
	}
}

func TestReduceByKeyAndWindowValidation(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	ssc, err := NewStreamingContext(cluster, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ssc.SliceStream([][]byte{windowedRecord(0, "a")}, 0).
		ReduceByKeyAndWindow("bad", 0, testEventTime, testKey, testFormat).
		ForeachRecord("collect", func([]byte) error { return nil })
	if _, err := ssc.RunBounded(); err == nil {
		t.Error("zero window size accepted")
	}
}
