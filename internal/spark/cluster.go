package spark

import (
	"errors"
	"fmt"
	"sync"

	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/simcost"
)

// Errors reported by the cluster and streaming context.
var (
	ErrClusterStopped = errors.New("spark: cluster not running")
	ErrContextState   = errors.New("spark: invalid streaming context state")
)

// ClusterConfig sizes a Spark standalone cluster. Defaults match the
// paper's two worker nodes with eight cores each.
type ClusterConfig struct {
	// Executors is the number of executor processes; defaults to 2.
	Executors int
	// CoresPerExecutor bounds concurrent tasks per executor; defaults
	// to 8.
	CoresPerExecutor int
	// Costs is the latency model; zero charges nothing.
	Costs simcost.Costs
	// Sim scales the cost model; nil charges nothing.
	Sim *simcost.Simulator
	// Metrics, when non-nil, receives per-stage throughput while
	// applications run: the input stream, every named narrow stage and
	// every output operation mark their record counts per micro-batch.
	// Nil disables collection.
	Metrics *metrics.Collector
	// Trace, when non-nil, records a span per micro-batch and a
	// watermark gauge per stateful stage. Nil disables tracing.
	Trace *obs.Tracer
}

func (c *ClusterConfig) validate() error {
	if c.Executors == 0 {
		c.Executors = 2
	}
	if c.CoresPerExecutor == 0 {
		c.CoresPerExecutor = 8
	}
	if c.Executors < 0 || c.CoresPerExecutor < 0 {
		return fmt.Errorf("spark: negative cluster size %d x %d", c.Executors, c.CoresPerExecutor)
	}
	return nil
}

// Cluster models a Spark standalone cluster (Section II-C of the paper):
// a cluster manager granting executors to applications; each executor
// runs tasks on its cores. Applications hold their executors exclusively,
// so one Cluster here serves one application at a time.
type Cluster struct {
	cfg ClusterConfig

	mu      sync.Mutex
	started bool
	slots   chan struct{}
}

// NewCluster returns a stopped cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg}, nil
}

// Start brings the cluster online.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.slots = make(chan struct{}, c.cfg.Executors*c.cfg.CoresPerExecutor)
}

// Stop takes the cluster offline.
func (c *Cluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = false
}

// Running reports whether the cluster accepts applications.
func (c *Cluster) Running() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started
}

// TotalCores reports the task-slot capacity.
func (c *Cluster) TotalCores() int {
	return c.cfg.Executors * c.cfg.CoresPerExecutor
}

// Costs exposes the cluster's latency model, so runner translations can
// charge consistent per-record costs.
func (c *Cluster) Costs() simcost.Costs {
	return c.cfg.Costs
}

// Trace exposes the cluster's tracer (nil when tracing is disabled), so
// runner translations can record into the same timeline as the runtime.
func (c *Cluster) Trace() *obs.Tracer {
	return c.cfg.Trace
}

// runTask executes fn on an executor core, blocking while all cores are
// busy. The returned meter charge discipline: fn receives a fresh meter.
func (c *Cluster) runTask(fn func(meter *simcost.Meter) error) error {
	c.mu.Lock()
	slots := c.slots
	started := c.started
	c.mu.Unlock()
	if !started {
		return ErrClusterStopped
	}
	slots <- struct{}{}
	defer func() { <-slots }()
	meter := c.cfg.Sim.NewMeter()
	defer meter.Flush()
	meter.Charge(c.cfg.Costs.SparkTaskLaunch)
	return fn(meter)
}
