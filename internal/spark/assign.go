package spark

import (
	"fmt"
	"sync"
	"time"

	"beambench/internal/watermark"
)

// EventTimeFn extracts a record's event timestamp from the record
// itself, e.g. a time column of the payload.
type EventTimeFn func(rec []byte) (time.Time, error)

// AssignTimestampsBounded adds the timestamp/watermark assigner stage:
// each partition's records feed a persistent watermark.Generator with
// the given out-of-orderness bound, so the stage's watermark — the
// minimum over its partitions — tracks the event-time progress of
// everything admitted so far. Records pass through unchanged; the
// watermark travels out of band, delivered to downstream stateful
// stages in TaskContext.Watermark at each batch boundary (the
// micro-batch engine's control-event channel). Place it where event
// time enters the lineage, right after the input.
func (ds *DStream) AssignTimestampsBounded(eventTime EventTimeFn, bound time.Duration) *DStream {
	if eventTime == nil {
		ds.ssc.fail(fmt.Errorf("spark: assign timestamps: nil event-time fn"))
		return ds
	}
	return &DStream{
		ssc:    ds.ssc,
		parent: ds,
		kind:   stageAssign,
		name:   "AssignTimestamps",
		assign: &assignNode{eventTime: eventTime, bound: bound},
	}
}

// assignNode is the persistent run-time state of one assign stage: one
// watermark generator per partition, surviving across micro-batches
// like a statefulNode's processors.
type assignNode struct {
	eventTime EventTimeFn
	bound     time.Duration

	mu   sync.Mutex
	gens map[int]*watermark.Generator
}

// generator returns the partition's generator, creating it on first
// use. The generator itself is then owned by the partition's task.
func (n *assignNode) generator(p int) *watermark.Generator {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.gens == nil {
		n.gens = make(map[int]*watermark.Generator)
	}
	g := n.gens[p]
	if g == nil {
		g = watermark.NewGenerator(n.bound)
		n.gens[p] = g
	}
	return g
}

// watermark returns the stage's output watermark: the minimum over the
// partitions seen so far, or the zero time before any partition
// observed a record (no progress claimed yet).
func (n *assignNode) watermark() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	var min time.Time
	first := true
	for _, g := range n.gens {
		w := g.Current()
		if first || w.Before(min) {
			min = w
			first = false
		}
	}
	return min
}
