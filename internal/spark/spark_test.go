package spark

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"beambench/internal/broker"
)

func newTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func newContext(t *testing.T, c *Cluster, cfg Config) *StreamingContext {
	t.Helper()
	ssc, err := NewStreamingContext(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ssc
}

func loadTopic(t *testing.T, b *broker.Broker, topic string, n int) [][]byte {
	t.Helper()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	values := make([][]byte, n)
	for i := range n {
		values[i] = []byte(fmt.Sprintf("rec-%05d", i))
		if err := p.Send(topic, nil, values[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return values
}

func topicValues(t *testing.T, b *broker.Broker, topic string) [][]byte {
	t.Helper()
	c, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(topic); err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out = append(out, r.Value)
		}
	}
}

// collector gathers output records thread-safely.
type collector struct {
	mu   sync.Mutex
	recs [][]byte
}

func (c *collector) add(rec []byte) error {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, cp)
	return nil
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

func TestConfigValidation(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "negative interval", cfg: Config{BatchInterval: -time.Second}},
		{name: "negative parallelism", cfg: Config{DefaultParallelism: -1}},
		{name: "negative rate", cfg: Config{MaxRatePerPartition: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewStreamingContext(c, tt.cfg); err == nil {
				t.Error("bad config accepted")
			}
		})
	}
	ssc := newContext(t, c, Config{})
	if ssc.DefaultParallelism() != 1 {
		t.Errorf("default parallelism = %d, want 1", ssc.DefaultParallelism())
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Executors: -1}); err == nil {
		t.Error("negative executors accepted")
	}
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalCores() != 16 {
		t.Errorf("default cores = %d, want 16", c.TotalCores())
	}
}

func TestBoundedIdentity(t *testing.T) {
	b := broker.New()
	input := loadTopic(t, b, "in", 1000)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{MaxRatePerPartition: 300})
	ssc.KafkaDirectStream(b, "in", 0).SaveToKafka("out", b, "out", broker.ProducerConfig{})
	m, err := ssc.RunBounded()
	if err != nil {
		t.Fatal(err)
	}
	// 1000 records at 300/batch: 4 batches.
	if m.Batches != 4 {
		t.Errorf("Batches = %d, want 4", m.Batches)
	}
	if m.RecordsIn != 1000 || m.RecordsOut != 1000 {
		t.Errorf("records in/out = %d/%d, want 1000/1000", m.RecordsIn, m.RecordsOut)
	}
	got := topicValues(t, b, "out")
	if len(got) != len(input) {
		t.Fatalf("output has %d records, want %d", len(got), len(input))
	}
	for i := range input {
		if !bytes.Equal(got[i], input[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], input[i])
		}
	}
}

func TestTransformationChain(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", 100)
	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{})
	out := &collector{}
	ssc.KafkaDirectStream(b, "in", 0).
		Filter(func(rec []byte) bool { return rec[len(rec)-1]%2 == 0 }).
		Map(bytes.ToUpper).
		FlatMap(func(rec []byte, emit func([]byte)) {
			emit(rec)
			emit(rec)
		}).
		ForeachRecord("collect", out.add)
	m, err := ssc.RunBounded()
	if err != nil {
		t.Fatal(err)
	}
	if out.len() != 100 {
		t.Errorf("collected %d records, want 100 (50 evens doubled)", out.len())
	}
	if m.RecordsOut != 100 {
		t.Errorf("RecordsOut = %d, want 100", m.RecordsOut)
	}
}

func TestSampleFractionAndDeterminism(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", 10_000)
	run := func() int {
		cluster := newTestCluster(t, ClusterConfig{})
		ssc := newContext(t, cluster, Config{})
		out := &collector{}
		ssc.KafkaDirectStream(b, "in", 0).Sample(0.4, 7).ForeachRecord("c", out.add)
		if _, err := ssc.RunBounded(); err != nil {
			t.Fatal(err)
		}
		return out.len()
	}
	n1 := run()
	n2 := run()
	if n1 != n2 {
		t.Errorf("sample not deterministic: %d vs %d", n1, n2)
	}
	ratio := float64(n1) / 10_000
	if ratio < 0.35 || ratio > 0.45 {
		t.Errorf("sample ratio %v, want ~0.4", ratio)
	}
}

func TestRepartitionSplitsWork(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", 90)
	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{DefaultParallelism: 3})
	var mu sync.Mutex
	partsSeen := make(map[int]int)
	out := &collector{}
	ssc.KafkaDirectStream(b, "in", 0).
		RepartitionDefault().
		Transform(func(task TaskContext) func([]byte, func([]byte)) {
			return func(rec []byte, emit func([]byte)) {
				mu.Lock()
				partsSeen[task.Partition]++
				mu.Unlock()
				emit(rec)
			}
		}).
		ForeachRecord("c", out.add)
	if _, err := ssc.RunBounded(); err != nil {
		t.Fatal(err)
	}
	if out.len() != 90 {
		t.Errorf("collected %d, want 90", out.len())
	}
	if len(partsSeen) != 3 {
		t.Errorf("records in %d partitions, want 3: %v", len(partsSeen), partsSeen)
	}
	for p, n := range partsSeen {
		if n != 30 {
			t.Errorf("partition %d processed %d records, want 30", p, n)
		}
	}
}

func TestPrecheckErrors(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", 1)
	cluster := newTestCluster(t, ClusterConfig{})

	t.Run("no input", func(t *testing.T) {
		ssc := newContext(t, cluster, Config{})
		if _, err := ssc.RunBounded(); err == nil {
			t.Error("no-input context ran")
		}
	})
	t.Run("no output", func(t *testing.T) {
		ssc := newContext(t, cluster, Config{})
		ssc.KafkaDirectStream(b, "in", 0)
		if _, err := ssc.RunBounded(); err == nil {
			t.Error("no-output context ran")
		}
	})
	t.Run("stopped cluster", func(t *testing.T) {
		stopped, err := NewCluster(ClusterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ssc, err := NewStreamingContext(stopped, Config{})
		if err != nil {
			t.Fatal(err)
		}
		out := &collector{}
		ssc.KafkaDirectStream(b, "in", 0).ForeachRecord("c", out.add)
		if _, err := ssc.RunBounded(); !errors.Is(err, ErrClusterStopped) {
			t.Errorf("RunBounded = %v, want ErrClusterStopped", err)
		}
	})
	t.Run("unknown topic", func(t *testing.T) {
		ssc := newContext(t, cluster, Config{})
		out := &collector{}
		ssc.KafkaDirectStream(b, "missing", 0).ForeachRecord("c", out.add)
		if _, err := ssc.RunBounded(); err == nil {
			t.Error("unknown topic accepted")
		}
	})
	t.Run("nil transforms", func(t *testing.T) {
		ssc := newContext(t, cluster, Config{})
		out := &collector{}
		ssc.KafkaDirectStream(b, "in", 0).Map(nil).ForeachRecord("c", out.add)
		if _, err := ssc.RunBounded(); err == nil {
			t.Error("nil map accepted")
		}
	})
	t.Run("double run", func(t *testing.T) {
		ssc := newContext(t, cluster, Config{})
		out := &collector{}
		ssc.KafkaDirectStream(b, "in", 0).ForeachRecord("c", out.add)
		if _, err := ssc.RunBounded(); err != nil {
			t.Fatal(err)
		}
		if _, err := ssc.RunBounded(); !errors.Is(err, ErrContextState) {
			t.Errorf("second run = %v, want ErrContextState", err)
		}
	})
}

func TestOutputErrorFailsRun(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", 10)
	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{})
	boom := errors.New("boom")
	ssc.KafkaDirectStream(b, "in", 0).ForeachRecord("c", func(rec []byte) error {
		if bytes.HasSuffix(rec, []byte("5")) {
			return boom
		}
		return nil
	})
	if _, err := ssc.RunBounded(); !errors.Is(err, boom) {
		t.Errorf("RunBounded = %v, want boom", err)
	}
}

func TestSaveToKafkaUnknownTopicFails(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", 5)
	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{})
	ssc.KafkaDirectStream(b, "in", 0).SaveToKafka("out", b, "missing", broker.ProducerConfig{})
	if _, err := ssc.RunBounded(); err == nil {
		t.Error("missing output topic accepted")
	}
}

func TestMultipleOutputsRecompute(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", 50)
	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{})
	evens := &collector{}
	all := &collector{}
	base := ssc.KafkaDirectStream(b, "in", 0)
	base.Filter(func(rec []byte) bool { return rec[len(rec)-1]%2 == 0 }).ForeachRecord("evens", evens.add)
	base.ForeachRecord("all", all.add)
	if _, err := ssc.RunBounded(); err != nil {
		t.Fatal(err)
	}
	if evens.len() != 25 || all.len() != 50 {
		t.Errorf("outputs = %d, %d; want 25, 50", evens.len(), all.len())
	}
}

func TestStartStopStreaming(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{BatchInterval: 5 * time.Millisecond})
	out := &collector{}
	ssc.KafkaDirectStream(b, "in", 0).ForeachRecord("c", out.add)
	if err := ssc.Start(); err != nil {
		t.Fatal(err)
	}
	// Produce while the scheduler runs.
	p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range 20 {
		if err := p.Send("in", nil, []byte(fmt.Sprintf("live-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for out.len() < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m, err := ssc.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if out.len() != 20 {
		t.Errorf("collected %d records, want 20", out.len())
	}
	if m.Batches == 0 {
		t.Error("no batches executed")
	}
	if _, err := ssc.Stop(); err == nil {
		t.Error("second Stop succeeded")
	}
}

func TestStopWithoutStart(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{})
	if _, err := ssc.Stop(); !errors.Is(err, ErrContextState) {
		t.Errorf("Stop without Start = %v, want ErrContextState", err)
	}
}

func TestKafkaDirectStreamIgnoresLateRecords(t *testing.T) {
	// Records produced after the bounded snapshot (taken on the first
	// batch) must not be read by the bounded stream.
	b := broker.New()
	loadTopic(t, b, "in", 30)
	src := &kafkaDirect{b: b, topic: "in", partitions: 1, maxPerPart: 10}

	parts, remaining, err := src.nextBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if countRecords(parts) != 10 || !remaining {
		t.Fatalf("first batch = %d records, remaining=%v; want 10, true", countRecords(parts), remaining)
	}

	// Late arrivals after the snapshot.
	p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for range 5 {
		if err := p.Send("in", nil, []byte("late")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	total := 10
	for batch := int64(1); remaining; batch++ {
		parts, remaining, err = src.nextBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, part := range parts {
			for _, rec := range part {
				if bytes.Equal(rec, []byte("late")) {
					t.Fatal("bounded stream read a late record")
				}
				total++
			}
		}
	}
	if total != 30 {
		t.Errorf("bounded stream read %d records, want 30", total)
	}
}
