package spark

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"beambench/internal/keyhash"
	"beambench/internal/metrics"
	"beambench/internal/simcost"
	"beambench/internal/watermark"
)

// RunBounded drives the application until the input source is exhausted,
// processing backlogged micro-batches back-to-back, and returns the
// aggregated metrics. This is the mode the benchmark uses: the input
// topic is preloaded, so the job consumes everything and finishes.
func (ssc *StreamingContext) RunBounded() (StreamingMetrics, error) {
	if err := ssc.precheck(); err != nil {
		return StreamingMetrics{}, err
	}
	ssc.state = stateRunning
	defer func() { ssc.state = stateStopped }()

	driver := ssc.cluster.cfg.Sim.NewMeter()
	driver.Charge(ssc.cluster.cfg.Costs.EngineJobStart)
	driver.Flush()

	for batchID := int64(0); ; batchID++ {
		batch := make(map[*DStream][][][]byte, len(ssc.inputs))
		n := 0
		remaining := false
		for _, in := range ssc.inputs {
			parts, more, err := in.input.nextBatch(batchID)
			if err != nil {
				return ssc.snapshotMetrics(), fmt.Errorf("spark: batch %d input: %w", batchID, err)
			}
			batch[in] = parts
			n += countRecords(parts)
			remaining = remaining || more
		}
		if n == 0 {
			if !remaining {
				// Bounded input drained: stateful stages flush their
				// remaining state through the downstream lineage in one
				// final pass.
				if ssc.hasStatefulStage() {
					if err := ssc.runFlushBatch(batchID, driver); err != nil {
						return ssc.snapshotMetrics(), err
					}
				}
				return ssc.snapshotMetrics(), nil
			}
			// Idle batch: the bounded source claims more data is coming
			// (e.g. a concurrent producer); yield briefly.
			time.Sleep(time.Millisecond)
			continue
		}
		if err := ssc.runBatch(batchID, batch, driver); err != nil {
			return ssc.snapshotMetrics(), err
		}
	}
}

// walkUp visits ds and every node upstream of it (parents of union
// stages included).
func walkUp(ds *DStream, fn func(*DStream)) {
	for cur := ds; cur != nil; cur = cur.parent {
		fn(cur)
		if cur.kind == stageUnion {
			for _, p := range cur.parents {
				walkUp(p, fn)
			}
			return
		}
	}
}

// hasStatefulStage reports whether any output's lineage contains a
// stateful stage.
func (ssc *StreamingContext) hasStatefulStage() bool {
	found := false
	for _, out := range ssc.outputs {
		walkUp(out.stream, func(cur *DStream) {
			if cur.kind == stageStateful {
				found = true
			}
		})
	}
	return found
}

// lineageWatermark computes the watermark entering a stateful stage:
// the minimum over the assign stages in its upstream lineage, each of
// which has already processed the current batch when the stateful
// stage runs. A lineage without an assigner stays at the zero
// watermark — its panes hold until the end-of-input flush.
func lineageWatermark(ds *DStream) time.Time {
	var w time.Time
	found := false
	walkUp(ds, func(s *DStream) {
		if s.kind == stageAssign {
			sw := s.assign.watermark()
			if !found || sw.Before(w) {
				w = sw
				found = true
			}
		}
	})
	return w
}

// Start launches the micro-batch scheduler at the configured interval,
// for unbounded operation. Use Stop to terminate and collect metrics.
func (ssc *StreamingContext) Start() error {
	if err := ssc.precheck(); err != nil {
		return err
	}
	ssc.state = stateRunning
	ssc.stopCh = make(chan struct{})
	ssc.doneCh = make(chan struct{})
	go ssc.schedulerLoop()
	return nil
}

// Stop terminates a Start-ed context, waits for the scheduler to drain,
// and returns the metrics and any batch error.
func (ssc *StreamingContext) Stop() (StreamingMetrics, error) {
	if ssc.state != stateRunning || ssc.stopCh == nil {
		return ssc.snapshotMetrics(), fmt.Errorf("%w: not running", ErrContextState)
	}
	close(ssc.stopCh)
	<-ssc.doneCh
	ssc.state = stateStopped
	ssc.mu.Lock()
	defer ssc.mu.Unlock()
	return ssc.metrics, ssc.runErr
}

// snapshotMetrics reads the metrics under the lock. The driver paths
// that call it are sequential points (between batches, or before the
// scheduler starts), but batch workers update the counters
// concurrently during a batch, so every read pays for the lock rather
// than reasoning per call site about which phase it runs in.
func (ssc *StreamingContext) snapshotMetrics() StreamingMetrics {
	ssc.mu.Lock()
	defer ssc.mu.Unlock()
	return ssc.metrics
}

func (ssc *StreamingContext) schedulerLoop() {
	defer close(ssc.doneCh)
	driver := ssc.cluster.cfg.Sim.NewMeter()
	driver.Charge(ssc.cluster.cfg.Costs.EngineJobStart)
	driver.Flush()
	ticker := time.NewTicker(ssc.cfg.BatchInterval)
	defer ticker.Stop()
	var batchID int64
	for {
		select {
		case <-ssc.stopCh:
			return
		case <-ticker.C:
			batch := make(map[*DStream][][][]byte, len(ssc.inputs))
			n := 0
			var err error
			for _, in := range ssc.inputs {
				parts, _, perr := in.input.nextBatch(batchID)
				if perr != nil {
					err = perr
					break
				}
				batch[in] = parts
				n += countRecords(parts)
			}
			if err == nil && n > 0 {
				err = ssc.runBatch(batchID, batch, driver)
			}
			if err != nil {
				ssc.mu.Lock()
				if ssc.runErr == nil {
					ssc.runErr = err
				}
				ssc.mu.Unlock()
				return
			}
			batchID++
		}
	}
}

func (ssc *StreamingContext) precheck() error {
	if ssc.err != nil {
		return ssc.err
	}
	if ssc.state != stateBuilding {
		return fmt.Errorf("%w: already started", ErrContextState)
	}
	if !ssc.cluster.Running() {
		return ErrClusterStopped
	}
	if len(ssc.inputs) == 0 {
		return errors.New("spark: no input stream")
	}
	if len(ssc.outputs) == 0 {
		return errors.New("spark: no output operations registered")
	}
	for _, out := range ssc.outputs {
		if out.stream == nil {
			return fmt.Errorf("spark: output %q has no stream", out.name)
		}
	}
	// Lineage is recomputed per output (no cache()); replaying records
	// into a persistent stateful stage from a second output would
	// double-count its state.
	statefulUses := make(map[*DStream]int)
	for _, out := range ssc.outputs {
		walkUp(out.stream, func(cur *DStream) {
			if cur.kind == stageStateful {
				statefulUses[cur]++
			}
		})
	}
	for st, n := range statefulUses {
		if n > 1 {
			return fmt.Errorf("spark: stateful stage %q consumed by more than one output operation", st.name)
		}
	}
	return nil
}

// runBatch executes one micro-batch: for every registered output
// operation, recompute its lineage over the batch (Spark semantics
// without cache()) and run the output action. batch maps each input
// stream to its partitions for this batch.
func (ssc *StreamingContext) runBatch(batchID int64, batch map[*DStream][][][]byte, driver *simcost.Meter) error {
	span := ssc.cluster.cfg.Trace.Span("spark/driver", "batch-"+strconv.FormatInt(batchID, 10))
	defer span.End()
	driver.Charge(ssc.cluster.cfg.Costs.SparkBatch)
	driver.Flush()
	var n int64
	for _, in := range ssc.inputs {
		c := int64(countRecords(batch[in]))
		n += c
		if col := ssc.cluster.cfg.Metrics; col != nil {
			col.Stage(in.name).Mark(c)
		}
	}
	ssc.mu.Lock()
	ssc.metrics.Batches++
	ssc.metrics.RecordsIn += n
	ssc.mu.Unlock()

	for _, out := range ssc.outputs {
		data, err := ssc.compute(out.stream, batchID, batch, false)
		if err != nil {
			return fmt.Errorf("spark: batch %d: %w", batchID, err)
		}
		written, err := ssc.runOutput(out, batchID, data)
		if err != nil {
			return fmt.Errorf("spark: batch %d output %q: %w", batchID, out.name, err)
		}
		ssc.mu.Lock()
		ssc.metrics.RecordsOut += int64(written)
		ssc.mu.Unlock()
	}
	return nil
}

// runFlushBatch runs the end-of-input pass: stateful stages emit their
// remaining state (EndStream) and the emissions flow through the
// downstream lineage and output operations like a regular batch.
func (ssc *StreamingContext) runFlushBatch(batchID int64, driver *simcost.Meter) error {
	span := ssc.cluster.cfg.Trace.Span("spark/driver", "flush-batch")
	defer span.End()
	driver.Charge(ssc.cluster.cfg.Costs.SparkBatch)
	driver.Flush()
	ssc.mu.Lock()
	ssc.metrics.Batches++
	ssc.mu.Unlock()
	for _, out := range ssc.outputs {
		data, err := ssc.compute(out.stream, batchID, nil, true)
		if err != nil {
			return fmt.Errorf("spark: flush batch: %w", err)
		}
		written, err := ssc.runOutput(out, batchID, data)
		if err != nil {
			return fmt.Errorf("spark: flush batch output %q: %w", out.name, err)
		}
		ssc.mu.Lock()
		ssc.metrics.RecordsOut += int64(written)
		ssc.mu.Unlock()
	}
	return nil
}

// narrowStage is one named narrow stage of a fused task group.
type narrowStage struct {
	name    string
	factory narrowFactory
}

// compute recursively evaluates the lineage of ds over one batch.
// batch maps each input stream to its partitions; with flush set (the
// end-of-input pass) the inputs contribute nothing, stateful stages
// emit their remaining state, and the watermark is end-of-time.
// Consecutive narrow stages fuse into single task groups, as Spark's
// DAG scheduler does; shuffles, unions, assigners and stateful stages
// are barriers.
func (ssc *StreamingContext) compute(ds *DStream, batchID int64, batch map[*DStream][][][]byte, flush bool) ([][][]byte, error) {
	switch ds.kind {
	case stageInput:
		if ds.input == nil {
			return nil, errors.New("spark: stream is not rooted at an input")
		}
		return batch[ds], nil
	case stageUnion:
		var out [][][]byte
		for _, p := range ds.parents {
			parts, err := ssc.compute(p, batchID, batch, flush)
			if err != nil {
				return nil, err
			}
			out = append(out, parts...)
		}
		return out, nil
	case stageShuffle:
		parts, err := ssc.compute(ds.parent, batchID, batch, flush)
		if err != nil {
			return nil, err
		}
		return ssc.shuffle(parts, ds.width, ds.shuffleKey)
	case stageAssign:
		parts, err := ssc.compute(ds.parent, batchID, batch, flush)
		if err != nil {
			return nil, err
		}
		return ssc.runAssignStage(ds, parts)
	case stageStateful:
		parts, err := ssc.compute(ds.parent, batchID, batch, flush)
		if err != nil {
			return nil, err
		}
		wm := watermark.EndOfTime
		if !flush {
			// The upstream assigners have processed this batch already
			// (compute above), so the lineage watermark reflects every
			// record about to enter the stateful stage.
			wm = lineageWatermark(ds)
		}
		return ssc.runStatefulStage(ds, batchID, parts, flush, wm)
	case stageNarrow:
		var chain []narrowStage
		top := ds
		for {
			chain = append(chain, narrowStage{name: top.name, factory: top.factory})
			if top.parent == nil || top.parent.kind != stageNarrow {
				break
			}
			top = top.parent
		}
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		parts, err := ssc.compute(top.parent, batchID, batch, flush)
		if err != nil {
			return nil, err
		}
		return ssc.runNarrowStage(chain, batchID, parts)
	default:
		return nil, fmt.Errorf("spark: unexpected stage kind %d", ds.kind)
	}
}

// runAssignStage feeds one batch through the timestamp assigner: each
// partition's records advance that partition's persistent generator,
// then pass through unchanged. One task per partition, like any
// narrow stage.
func (ssc *StreamingContext) runAssignStage(st *DStream, parts [][][]byte) ([][][]byte, error) {
	var handle *metrics.Stage
	if c := ssc.cluster.cfg.Metrics; c != nil {
		handle = c.Stage(st.name)
	}
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for p := range parts {
		if len(parts[p]) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = ssc.cluster.runTask(func(meter *simcost.Meter) error {
				gen := st.assign.generator(p)
				for _, rec := range parts[p] {
					et, err := st.assign.eventTime(rec)
					if err != nil {
						return fmt.Errorf("spark: assign timestamps: %w", err)
					}
					gen.Observe(et)
				}
				handle.Mark(int64(len(parts[p])))
				return nil
			})
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// runStatefulStage delivers one batch's partitions into the stage's
// persistent processors (creating them on first use) and collects their
// emissions; window firing happens at the batch boundary (EndBatch),
// driven by the lineage watermark delivered in TaskContext.Watermark.
// On the flush pass it instead drains the processors' remaining state
// (EndStream) under the end-of-time watermark.
func (ssc *StreamingContext) runStatefulStage(st *DStream, batchID int64, parts [][][]byte, flush bool, wm time.Time) ([][][]byte, error) {
	var (
		instances []StatefulProcessor
		err       error
	)
	if flush {
		// Only already-created processors can hold state to drain.
		instances = st.state.current()
		if instances == nil {
			return nil, nil
		}
	} else {
		instances, err = st.state.instancesFor(len(parts))
		if err != nil {
			return nil, err
		}
	}

	var handle *metrics.Stage
	if c := ssc.cluster.cfg.Metrics; c != nil {
		handle = c.Stage(st.name)
	}
	// The watermark delivered into the stage this batch, for the obs
	// monitor's per-operator lag track.
	ssc.cluster.cfg.Trace.Gauge("watermark-lag/" + st.name).SetTime(wm)
	out := make([][][]byte, len(instances))
	errs := make([]error, len(instances))
	var wg sync.WaitGroup
	for p := range instances {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = ssc.cluster.runTask(func(meter *simcost.Meter) error {
				task := TaskContext{BatchID: batchID, Partition: p, Charge: meter.Charge, Watermark: wm}
				var result [][]byte
				emit := func(rec []byte) { result = append(result, rec) }
				inst := instances[p]
				if flush {
					if err := inst.EndStream(task, emit); err != nil {
						return err
					}
				} else {
					for _, rec := range parts[p] {
						if err := inst.Process(task, rec, emit); err != nil {
							return err
						}
					}
					if err := inst.EndBatch(task, emit); err != nil {
						return err
					}
				}
				handle.Mark(int64(len(result)))
				out[p] = result
				return nil
			})
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runNarrowStage runs one fused stage as parallel tasks, one per
// partition, bounded by the cluster's executor cores. When telemetry is
// enabled each task counts per-stage emissions locally and marks them in
// one call at task end, keeping the record loop allocation- and
// atomic-free.
func (ssc *StreamingContext) runNarrowStage(stages []narrowStage, batchID int64, parts [][][]byte) ([][][]byte, error) {
	collector := ssc.cluster.cfg.Metrics
	var handles []*metrics.Stage
	if collector != nil {
		handles = make([]*metrics.Stage, len(stages))
		for i, s := range stages {
			handles[i] = collector.Stage(s.name)
		}
	}
	out := make([][][]byte, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for p := range parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = ssc.cluster.runTask(func(meter *simcost.Meter) error {
				task := TaskContext{
					BatchID:   batchID,
					Partition: p,
					Charge:    meter.Charge,
				}
				var result [][]byte
				sinkEmit := func(rec []byte) { result = append(result, rec) }
				handler := sinkEmit
				var counts []int64
				if handles != nil {
					counts = make([]int64, len(stages))
				}
				for i := len(stages) - 1; i >= 0; i-- {
					fn, err := stages[i].factory(task)
					if err != nil {
						return err
					}
					next := handler
					if handles != nil {
						inner := next
						count := &counts[i]
						next = func(rec []byte) {
							*count++
							inner(rec)
						}
					}
					handler = func(rec []byte) { fn(rec, next) }
				}
				for _, rec := range parts[p] {
					handler(rec)
				}
				for i, h := range handles {
					h.Mark(counts[i])
				}
				out[p] = result
				return nil
			})
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// shuffle redistributes records into width partitions — round-robin, or
// by key hash when keyFn is set (RepartitionByKey) so equal keys land in
// one partition — charging the shuffle write/fetch cost and copying each
// record (serialize to shuffle files, deserialize on fetch).
func (ssc *StreamingContext) shuffle(parts [][][]byte, width int, keyFn func([]byte) ([]byte, error)) ([][][]byte, error) {
	out := make([][][]byte, width)
	meter := ssc.cluster.cfg.Sim.NewMeter()
	defer meter.Flush()
	i := 0
	for _, part := range parts {
		for _, rec := range part {
			cp := make([]byte, len(rec))
			copy(cp, rec)
			meter.Charge(ssc.cluster.cfg.Costs.SparkShufflePerRecord)
			target := i % width
			if keyFn != nil {
				key, err := keyFn(rec)
				if err != nil {
					return nil, fmt.Errorf("spark: keyed shuffle: %w", err)
				}
				target = keyhash.Partition(key, width)
			}
			out[target] = append(out[target], cp)
			i++
		}
	}
	return out, nil
}

// runOutput executes the output action over the final partitions, one
// task per partition, and reports the number of records written.
func (ssc *StreamingContext) runOutput(op *outputOp, batchID int64, parts [][][]byte) (int, error) {
	counts := make([]int, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for p := range parts {
		if len(parts[p]) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = ssc.cluster.runTask(func(meter *simcost.Meter) error {
				task := TaskContext{BatchID: batchID, Partition: p, Charge: meter.Charge}
				w, err := op.open(task)
				if err != nil {
					return err
				}
				for _, rec := range parts[p] {
					if err := w.write(rec); err != nil {
						_ = w.close()
						return err
					}
					counts[p]++
				}
				return w.close()
			})
		}(p)
	}
	wg.Wait()
	total := 0
	for p := range parts {
		if errs[p] != nil {
			return total, errs[p]
		}
		total += counts[p]
	}
	if c := ssc.cluster.cfg.Metrics; c != nil {
		c.Stage(op.name).Mark(int64(total))
	}
	return total, nil
}

func countRecords(parts [][][]byte) int {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return n
}
