package spark

import (
	"fmt"

	"beambench/internal/broker"
)

// KafkaDirectStream creates an input DStream reading a topic with the
// direct (receiver-less) approach: every batch fetches up to
// MaxRatePerPartition records per partition, and the stream's RDDs have
// one partition per Kafka partition.
//
// The stream ends once target records have been appended to the topic
// in total and every partition is drained — the end-of-input contract
// that works whether the topic is preloaded or still filling while the
// application runs. A target <= 0 degrades to a bounded snapshot of the
// topic's contents at the first batch, for direct engine-API use
// outside the harness; records appended after the snapshot are ignored.
func (ssc *StreamingContext) KafkaDirectStream(b *broker.Broker, topic string, target int64) *DStream {
	parts, err := b.Partitions(topic)
	if err != nil {
		ssc.fail(fmt.Errorf("spark: kafka direct stream: %w", err))
		return ssc.newInput(&kafkaDirect{})
	}
	return ssc.newInput(&kafkaDirect{
		b:          b,
		topic:      topic,
		partitions: parts,
		maxPerPart: ssc.cfg.MaxRatePerPartition,
		target:     target,
	}).Named("KafkaDirectStream " + topic)
}

// kafkaDirect is the direct-stream source: every batch polls each
// partition once, and the stream reports records remaining until the
// end-of-input contract (broker.EndOfInput) is met. Its RDD partition
// layout (one consumer per Kafka partition) rules out the shared
// Complete check, but since the stream always owns every partition its
// admitted count alone decides termination.
type kafkaDirect struct {
	b          *broker.Broker
	topic      string
	partitions int
	maxPerPart int
	target     int64

	consumers []*broker.Consumer
	eoi       *broker.EndOfInput
}

func (k *kafkaDirect) init() error {
	if k.b == nil {
		return fmt.Errorf("spark: kafka direct stream not initialized")
	}
	if k.consumers != nil {
		return nil
	}
	assigned := make([]int, k.partitions)
	for p := range assigned {
		assigned[p] = p
	}
	eoi, err := broker.NewEndOfInput(k.b, k.topic, k.target, assigned)
	if err != nil {
		return err
	}
	k.eoi = eoi
	k.consumers = make([]*broker.Consumer, k.partitions)
	for p := range k.partitions {
		c, err := k.b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: k.maxPerPart})
		if err != nil {
			return err
		}
		if err := c.Assign(k.topic, p, 0); err != nil {
			return err
		}
		k.consumers[p] = c
	}
	return nil
}

func (k *kafkaDirect) nextBatch(int64) ([][][]byte, bool, error) {
	if err := k.init(); err != nil {
		return nil, false, err
	}
	if k.eoi.Drained() {
		return nil, false, nil
	}
	parts := make([][][]byte, k.partitions)
	for p := range k.partitions {
		if bound, ok := k.eoi.Bound(p); ok {
			if pos, _ := k.consumers[p].Position(k.topic, p); pos >= bound {
				continue // snapshot mode: partition read to its bound
			}
		}
		recs, err := k.consumers[p].Poll()
		if err != nil {
			return nil, false, err
		}
		vals := make([][]byte, 0, len(recs))
		for _, r := range recs {
			if !k.eoi.Admit(r) {
				continue // appended after the bounded snapshot
			}
			vals = append(vals, r.Value)
		}
		parts[p] = vals
	}
	return parts, !k.eoi.Drained(), nil
}

// SaveToKafka registers an output operation writing every record value
// to a topic. Each task opens its own producer with the given config.
func (ds *DStream) SaveToKafka(name string, b *broker.Broker, topic string, cfg broker.ProducerConfig) {
	ds.ssc.outputs = append(ds.ssc.outputs, &outputOp{
		name:   name,
		stream: ds,
		open: func(TaskContext) (recordWriter, error) {
			if _, err := b.Partitions(topic); err != nil {
				return nil, fmt.Errorf("spark: save to kafka: %w", err)
			}
			p, err := b.NewProducer(cfg)
			if err != nil {
				return nil, fmt.Errorf("spark: save to kafka: %w", err)
			}
			return &kafkaWriter{producer: p, topic: topic}, nil
		},
	})
}

type kafkaWriter struct {
	producer *broker.Producer
	topic    string
}

func (w *kafkaWriter) write(rec []byte) error {
	return w.producer.Send(w.topic, nil, rec)
}

func (w *kafkaWriter) close() error {
	return w.producer.Close()
}

// SliceStream creates an input DStream over in-memory records, delivered
// in batches of perBatch, for tests, examples and runner Create support.
func (ssc *StreamingContext) SliceStream(records [][]byte, perBatch int) *DStream {
	if perBatch <= 0 {
		perBatch = len(records)
	}
	return ssc.newInput(&sliceSource{records: records, perBatch: perBatch}).Named("SliceStream")
}

type sliceSource struct {
	records  [][]byte
	perBatch int
	pos      int
}

func (s *sliceSource) nextBatch(int64) ([][][]byte, bool, error) {
	if s.pos >= len(s.records) {
		return nil, false, nil
	}
	end := min(s.pos+s.perBatch, len(s.records))
	batch := s.records[s.pos:end]
	s.pos = end
	return [][][]byte{batch}, s.pos < len(s.records), nil
}
