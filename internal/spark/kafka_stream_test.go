package spark

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"beambench/internal/broker"
)

// TestKafkaDirectStreamConsumesConcurrentlyFilledTopic pins the
// end-of-input contract: given the target record count, the direct
// stream must keep scheduling micro-batches while the topic is still
// being filled and terminate once the target is drained, preserving
// single-partition order.
func TestKafkaDirectStreamConsumesConcurrentlyFilledTopic(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	const n = 300
	values := make([][]byte, n)
	for i := range n {
		values[i] = fmt.Appendf(nil, "rec-%05d", i)
	}
	senderDone := make(chan error, 1)
	go func() {
		p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 7})
		if err != nil {
			senderDone <- err
			return
		}
		for i, v := range values {
			if i%25 == 0 {
				time.Sleep(time.Millisecond)
			}
			if err := p.Send("in", nil, v); err != nil {
				senderDone <- err
				return
			}
		}
		senderDone <- p.Close()
	}()

	cluster := newTestCluster(t, ClusterConfig{})
	ssc := newContext(t, cluster, Config{})
	ssc.KafkaDirectStream(b, "in", n).SaveToKafka("out", b, "out", broker.ProducerConfig{})
	metrics, err := ssc.RunBounded()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-senderDone; err != nil {
		t.Fatal(err)
	}
	if metrics.RecordsIn != n {
		t.Errorf("RecordsIn = %d, want %d", metrics.RecordsIn, n)
	}
	got := topicValues(t, b, "out")
	if len(got) != n {
		t.Fatalf("output has %d records, want %d", len(got), n)
	}
	for i := range values {
		if !bytes.Equal(got[i], values[i]) {
			t.Fatalf("record %d = %q, want %q (order broken)", i, got[i], values[i])
		}
	}
	// The sender's pauses force the bounded run through idle batches, so
	// the stream must have split the input across several micro-batches
	// rather than snapshotting it up front.
	if metrics.Batches < 2 {
		t.Errorf("Batches = %d, want several (stream consumed while filling)", metrics.Batches)
	}
}
