package aol

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordTSVRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give Record
	}{
		{name: "full", give: Record{UserID: "123", Query: "cheap flights", QueryTime: "2006-03-01 00:00:01", ItemRank: 3, ClickURL: "http://www.example.com/"}},
		{name: "no click", give: Record{UserID: "9", Query: "weather", QueryTime: "2006-03-01 00:00:02", ItemRank: -1}},
		{name: "empty query", give: Record{UserID: "1", Query: "", QueryTime: "2006-03-01 00:00:03", ItemRank: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			line := tt.give.TSV()
			got, err := ParseTSV(line)
			if err != nil {
				t.Fatalf("ParseTSV(%q): %v", line, err)
			}
			if got != tt.give {
				t.Errorf("round trip = %+v, want %+v", got, tt.give)
			}
		})
	}
}

func TestParseTSVErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "too few columns", give: "a\tb\tc"},
		{name: "too many columns", give: "a\tb\tc\t1\te\tf"},
		{name: "bad rank", give: "a\tb\tc\tnope\te"},
		{name: "negative rank", give: "a\tb\tc\t-2\te"},
		{name: "empty line", give: ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseTSV(tt.give); err == nil {
				t.Errorf("ParseTSV(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestRecordTSVColumnCount(t *testing.T) {
	r := Record{UserID: "1", Query: "two words", QueryTime: "t", ItemRank: -1}
	if got := strings.Count(r.TSV(), "\t"); got != Columns-1 {
		t.Errorf("TSV has %d tabs, want %d", got, Columns-1)
	}
}

func TestFirstColumn(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "user\tquery\ttime\t\t", want: "user"},
		{give: "notabs", want: "notabs"},
		{give: "\tleading", want: ""},
		{give: "", want: ""},
	}
	for _, tt := range tests {
		if got := string(FirstColumn([]byte(tt.give))); got != tt.want {
			t.Errorf("FirstColumn(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestParseTSVPropertyRoundTrip(t *testing.T) {
	// Any record built from tab-free strings round-trips through TSV.
	clean := func(s string) string {
		s = strings.ReplaceAll(s, "\t", " ")
		return strings.ReplaceAll(s, "\n", " ")
	}
	f := func(user, query, qtime, url string, rank uint8, hasClick bool) bool {
		rec := Record{
			UserID:    clean(user),
			Query:     clean(query),
			QueryTime: clean(qtime),
			ItemRank:  -1,
		}
		if hasClick {
			rec.ItemRank = int(rank)
			rec.ClickURL = clean(url)
		}
		got, err := ParseTSV(rec.TSV())
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaledGrepHits(t *testing.T) {
	tests := []struct {
		give int
		want int
	}{
		{give: 0, want: 0},
		{give: -5, want: 0},
		{give: 1, want: 1},
		{give: 100, want: 1},
		{give: PaperRecordCount, want: PaperGrepHits},
		{give: 1000, want: 3},
		{give: 100_000, want: 300},
	}
	for _, tt := range tests {
		if got := ScaledGrepHits(tt.give); got != tt.want {
			t.Errorf("ScaledGrepHits(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestGeneratorExactGrepHits(t *testing.T) {
	tests := []struct {
		name     string
		records  int
		grepHits int
		want     int
	}{
		{name: "default ratio 10k", records: 10_000, grepHits: -1, want: 30},
		{name: "explicit hits", records: 1000, grepHits: 17, want: 17},
		{name: "all hits", records: 50, grepHits: 50, want: 50},
		{name: "zero hits", records: 100, grepHits: 0, want: 0},
		{name: "single record", records: 1, grepHits: -1, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := NewGenerator(Config{Records: tt.records, Seed: 7, GrepHits: tt.grepHits})
			if err != nil {
				t.Fatal(err)
			}
			var hits, total int
			for {
				rec, ok := g.Next()
				if !ok {
					break
				}
				total++
				if strings.Contains(rec.TSV(), GrepNeedle) {
					hits++
				}
			}
			if total != tt.records {
				t.Errorf("generated %d records, want %d", total, tt.records)
			}
			if hits != tt.want {
				t.Errorf("grep hits = %d, want %d", hits, tt.want)
			}
		})
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{Records: 500, Seed: 99, GrepHits: -1}
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.All(), g2.All()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("record %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedSensitivity(t *testing.T) {
	g1, err := NewGenerator(Config{Records: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(Config{Records: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.All(), g2.All()
	same := 0
	for i := range a {
		if bytes.Equal(a[i], b[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGeneratorRecordsAreValidTSV(t *testing.T) {
	g, err := NewGenerator(Config{Records: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		rec, ok := g.Next()
		if !ok {
			break
		}
		line := rec.TSV()
		parsed, err := ParseTSV(line)
		if err != nil {
			t.Fatalf("record %d invalid: %v (%q)", i, err, line)
		}
		if parsed != rec {
			t.Fatalf("record %d does not round-trip", i)
		}
		if parsed.ItemRank >= 0 && parsed.ClickURL == "" {
			t.Fatalf("record %d has rank without URL: %q", i, line)
		}
		if parsed.ItemRank < 0 && parsed.ClickURL != "" {
			t.Fatalf("record %d has URL without rank: %q", i, line)
		}
	}
}

func TestGeneratorClickProbability(t *testing.T) {
	g, err := NewGenerator(Config{Records: 5000, Seed: 3, ClickProbability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	clicks := 0
	for {
		rec, ok := g.Next()
		if !ok {
			break
		}
		if rec.ItemRank >= 0 {
			clicks++
		}
	}
	ratio := float64(clicks) / 5000
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("click ratio %v, want ~0.5", ratio)
	}
}

func TestGeneratorConfigErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "negative records", cfg: Config{Records: -1}},
		{name: "hits exceed records", cfg: Config{Records: 10, GrepHits: 11}},
		{name: "bad click probability", cfg: Config{Records: 10, ClickProbability: 1.5}},
		{name: "negative click probability", cfg: Config{Records: 10, ClickProbability: -0.2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewGenerator(tt.cfg); err == nil {
				t.Error("expected config error")
			}
		})
	}
}

func TestWriteTSV(t *testing.T) {
	g, err := NewGenerator(Config{Records: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := g.WriteTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("wrote %d records, want 50", n)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 50 {
		t.Errorf("output has %d lines, want 50", len(lines))
	}
	for i, line := range lines {
		if _, err := ParseTSV(line); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
	}
}

func TestVocabularyContainsNoNeedle(t *testing.T) {
	for _, w := range _vocabulary {
		if strings.Contains(w, GrepNeedle) {
			t.Errorf("vocabulary word %q contains needle", w)
		}
	}
	for _, d := range _domains {
		if strings.Contains(d, GrepNeedle) {
			t.Errorf("domain %q contains needle", d)
		}
	}
}

func TestGeneratorRemaining(t *testing.T) {
	g, err := NewGenerator(Config{Records: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Remaining() != 3 {
		t.Errorf("Remaining = %d, want 3", g.Remaining())
	}
	g.Next()
	if g.Remaining() != 2 {
		t.Errorf("Remaining = %d, want 2", g.Remaining())
	}
	g.Next()
	g.Next()
	if _, ok := g.Next(); ok {
		t.Error("generator produced more than configured")
	}
	if g.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", g.Remaining())
	}
}
