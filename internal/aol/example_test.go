package aol_test

import (
	"fmt"

	"beambench/internal/aol"
)

// Example generates a tiny deterministic workload and parses one record
// back from its tab-separated form.
func Example() {
	gen, err := aol.NewGenerator(aol.Config{Records: 3, Seed: 1, GrepHits: 0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		line := rec.TSV()
		parsed, err := aol.ParseTSV(line)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(parsed.QueryTime, len(line) > 0)
	}
	// Output:
	// 2006-03-01 00:00:00 true
	// 2006-03-01 00:00:01 true
	// 2006-03-01 00:00:02 true
}
