package aol

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"
)

// PaperRecordCount is the exact workload size of the paper (Section
// III-A1): 1,000,001 records.
const PaperRecordCount = 1_000_001

// PaperGrepHits is the number of records matching "test" in the paper's
// workload: 3,003 (about 0.3% of the input).
const PaperGrepHits = 3_003

// _vocabulary is the word pool for synthetic queries. No word contains
// the substring "test" and queries are space-joined, so the needle can
// only appear where the generator plants it deliberately.
var _vocabulary = []string{
	"weather", "forecast", "recipe", "chicken", "parmesan", "flight",
	"cheap", "tickets", "hotel", "deals", "movie", "times", "lyrics",
	"song", "baseball", "scores", "news", "local", "restaurant", "pizza",
	"delivery", "dog", "training", "tips", "car", "insurance", "quotes",
	"home", "loan", "rates", "garden", "plants", "shoes", "running",
	"laptop", "reviews", "phone", "plans", "jobs", "hiring", "resume",
	"template", "wedding", "dresses", "vacation", "packages", "museum",
	"hours", "library", "books", "guitar", "chords", "piano", "lessons",
	"yoga", "classes", "gym", "membership", "tax", "filing", "help",
	"history", "facts", "science", "fair", "projects", "math", "homework",
	"spanish", "translation", "map", "directions", "traffic", "report",
	"stock", "prices", "crypto", "market", "bank", "login", "email",
	"account", "password", "reset", "printer", "driver", "download",
	"update", "windows", "error", "fix", "slow", "computer",
}

// _domains is the pool of click URL hosts; none contains "test".
var _domains = []string{
	"www.example.com", "www.searchly.org", "www.dailynews.net",
	"www.shopmart.com", "www.wikihow.org", "www.recipesbox.com",
	"www.travelplanner.net", "www.sportsfeed.org", "www.musicworld.com",
	"www.financehub.net",
}

// Config controls synthetic dataset generation.
type Config struct {
	// Records is the number of records to generate.
	Records int
	// Seed makes generation deterministic; two generators with equal
	// configs produce byte-identical datasets.
	Seed uint64
	// GrepHits is the exact number of records whose query contains
	// GrepNeedle. If negative, the paper's ratio (3,003 per 1,000,001)
	// is applied, rounding to the nearest integer and at least 1 for a
	// non-empty dataset.
	GrepHits int
	// ClickProbability is the fraction of records with ItemRank and
	// ClickURL present. The original log has clicks on roughly half of
	// the entries; defaults to 0.5 when zero.
	ClickProbability float64
	// QueryTimeStep spaces consecutive records' query times; defaults to
	// one second, the original log's typical cadence. The query-time
	// column has second granularity, so steps below a second make
	// several consecutive records share an event-time second — the knob
	// windowed-aggregation tests use to put multiple records (and users)
	// into one tumbling window.
	QueryTimeStep time.Duration
}

// Validate checks the configuration and applies documented defaults.
func (c *Config) Validate() error {
	if c.Records < 0 {
		return fmt.Errorf("aol: negative record count %d", c.Records)
	}
	if c.GrepHits < 0 {
		c.GrepHits = ScaledGrepHits(c.Records)
	}
	if c.GrepHits > c.Records {
		return fmt.Errorf("aol: grep hits %d exceed record count %d", c.GrepHits, c.Records)
	}
	if c.ClickProbability == 0 {
		c.ClickProbability = 0.5
	}
	if c.ClickProbability < 0 || c.ClickProbability > 1 {
		return fmt.Errorf("aol: click probability %v outside [0,1]", c.ClickProbability)
	}
	if c.QueryTimeStep == 0 {
		c.QueryTimeStep = time.Second
	}
	if c.QueryTimeStep < 0 {
		return fmt.Errorf("aol: negative query time step %v", c.QueryTimeStep)
	}
	return nil
}

// ScaledGrepHits returns the paper's grep selectivity (3,003 hits per
// 1,000,001 records) scaled to n records, at least 1 for n > 0.
func ScaledGrepHits(n int) int {
	if n <= 0 {
		return 0
	}
	hits := (n*PaperGrepHits + PaperRecordCount/2) / PaperRecordCount
	if hits < 1 {
		hits = 1
	}
	if hits > n {
		hits = n
	}
	return hits
}

// Generator produces a deterministic stream of synthetic Records.
type Generator struct {
	cfg       Config
	rng       *rand.Rand
	produced  int
	hitEvery  int
	hitsLeft  int
	baseEpoch time.Time
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa5a5a5a55a5a5a5a)),
		hitsLeft:  cfg.GrepHits,
		baseEpoch: time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC),
	}
	if cfg.GrepHits > 0 {
		g.hitEvery = cfg.Records / cfg.GrepHits
		if g.hitEvery < 1 {
			g.hitEvery = 1
		}
	}
	return g, nil
}

// Remaining reports how many records the generator will still produce.
func (g *Generator) Remaining() int {
	return g.cfg.Records - g.produced
}

// Next returns the next record. ok is false once the configured number
// of records has been produced.
func (g *Generator) Next() (rec Record, ok bool) {
	if g.produced >= g.cfg.Records {
		return Record{}, false
	}
	idx := g.produced
	g.produced++

	rec.UserID = fmt.Sprintf("%d", 100000+g.rng.IntN(900000))
	rec.Query = g.query(idx)
	rec.QueryTime = g.baseEpoch.Add(time.Duration(idx) * g.cfg.QueryTimeStep).Format("2006-01-02 15:04:05")
	rec.ItemRank = -1
	if g.rng.Float64() < g.cfg.ClickProbability {
		rec.ItemRank = 1 + g.rng.IntN(10)
		rec.ClickURL = "http://" + _domains[g.rng.IntN(len(_domains))] + "/"
	}
	return rec, true
}

// query builds the query text for record idx, planting the grep needle
// at evenly spaced positions so exactly cfg.GrepHits records match.
func (g *Generator) query(idx int) string {
	words := 1 + g.rng.IntN(4)
	parts := make([]string, 0, words+1)
	for range words {
		parts = append(parts, _vocabulary[g.rng.IntN(len(_vocabulary))])
	}
	if g.plantNeedle(idx) {
		pos := g.rng.IntN(len(parts) + 1)
		parts = append(parts, "")
		copy(parts[pos+1:], parts[pos:])
		parts[pos] = GrepNeedle
		g.hitsLeft--
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += " " + p
	}
	return out
}

// plantNeedle decides whether record idx carries the needle: evenly
// spaced with a final catch-up so the exact count is always reached.
func (g *Generator) plantNeedle(idx int) bool {
	if g.hitsLeft <= 0 {
		return false
	}
	if g.cfg.Records-idx <= g.hitsLeft {
		return true // must plant in every remaining record
	}
	return g.hitEvery > 0 && idx%g.hitEvery == g.hitEvery/2
}

// All generates the entire configured dataset as a slice of TSV-encoded
// lines. Intended for small and medium datasets; the harness streams
// records instead for paper-scale runs.
func (g *Generator) All() [][]byte {
	out := make([][]byte, 0, g.Remaining())
	for {
		rec, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, rec.AppendTSV(nil))
	}
}

// WriteTSV streams the remaining records to w, one per line.
// It returns the number of records written.
func (g *Generator) WriteTSV(w io.Writer) (int, error) {
	var (
		buf []byte
		n   int
	)
	for {
		rec, ok := g.Next()
		if !ok {
			return n, nil
		}
		buf = rec.AppendTSV(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return n, fmt.Errorf("aol: write record %d: %w", n, err)
		}
		n++
	}
}
