// Package aol synthesizes a workload equivalent to the AOL Search Query
// Log used by StreamBench and by Hesse et al. (ICDCS 2019, Section
// III-A1): records with five tab-separated columns — user ID, search
// query, query time, clicked item rank (optional) and clicked URL
// (optional).
//
// The real log is not redistributable, so the generator produces a
// deterministic synthetic equivalent that preserves everything the
// benchmark queries observe: record count, column structure, record
// sizes, the ~40% sample selectivity, and the grep selectivity — for the
// paper's 1,000,001 records exactly 3,003 rows contain the search string
// "test" (0.3%), scaled proportionally for other sizes.
package aol

import (
	"fmt"
	"strconv"
	"strings"
)

// Columns is the number of tab-separated columns in a record.
const Columns = 5

// GrepNeedle is the search string used by the StreamBench grep query.
const GrepNeedle = "test"

// Record is one search-log entry.
type Record struct {
	// UserID is the anonymized numeric user identifier.
	UserID string
	// Query is the search query text.
	Query string
	// QueryTime is the time the query was issued, formatted
	// "2006-01-02 15:04:05" like the original log.
	QueryTime string
	// ItemRank is the rank of the clicked result; -1 when absent.
	ItemRank int
	// ClickURL is the clicked result URL; empty when absent.
	ClickURL string
}

// TSV renders the record as a tab-separated line (no trailing newline).
// Absent ItemRank/ClickURL render as empty columns, as in the source log.
func (r Record) TSV() string {
	return string(r.AppendTSV(nil))
}

// AppendTSV appends the tab-separated encoding of r to dst and returns
// the extended slice.
func (r Record) AppendTSV(dst []byte) []byte {
	dst = append(dst, r.UserID...)
	dst = append(dst, '\t')
	dst = append(dst, r.Query...)
	dst = append(dst, '\t')
	dst = append(dst, r.QueryTime...)
	dst = append(dst, '\t')
	if r.ItemRank >= 0 {
		dst = strconv.AppendInt(dst, int64(r.ItemRank), 10)
	}
	dst = append(dst, '\t')
	dst = append(dst, r.ClickURL...)
	return dst
}

// ParseTSV parses a tab-separated line produced by AppendTSV.
func ParseTSV(line string) (Record, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != Columns {
		return Record{}, fmt.Errorf("aol: record has %d columns, want %d", len(parts), Columns)
	}
	rank := -1
	if parts[3] != "" {
		v, err := strconv.Atoi(parts[3])
		if err != nil {
			return Record{}, fmt.Errorf("aol: item rank: %w", err)
		}
		if v < 0 {
			return Record{}, fmt.Errorf("aol: negative item rank %d", v)
		}
		rank = v
	}
	return Record{
		UserID:    parts[0],
		Query:     parts[1],
		QueryTime: parts[2],
		ItemRank:  rank,
		ClickURL:  parts[4],
	}, nil
}

// FirstColumn returns the first tab-separated column of a raw line
// without parsing the rest. It is the projection used by the StreamBench
// projection query.
func FirstColumn(line []byte) []byte {
	for i, b := range line {
		if b == '\t' {
			return line[:i]
		}
	}
	return line
}
