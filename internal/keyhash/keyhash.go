// Package keyhash is the one key-to-partition routing function every
// engine shares. Keyed correctness across the simulators — Flink's
// KeyBy edges, Spark's RepartitionByKey shuffle, Apex's keyed streams —
// requires that equal keys land in the same partition *within* an
// engine; sharing the function additionally guarantees the three
// engines can never silently diverge in how they spread keys, and any
// future change (hash function, sign handling) lands everywhere at
// once.
package keyhash

import "hash/fnv"

// Partition maps a key to a partition index in [0, n). n must be
// positive.
func Partition(key []byte, n int) int {
	h := fnv.New32a()
	_, _ = h.Write(key)
	// Mask to a non-negative int before the modulo: int(uint32) is
	// negative for high hash values on 32-bit ints.
	return int(h.Sum32()&0x7fffffff) % n
}
