package metrics

import (
	"testing"

	"beambench/internal/goleak"
)

// TestMain gates the package on goroutine hygiene: collector stages and
// throughput markers are banged on from worker goroutines in the tests,
// and none of them may outlive its test.
func TestMain(m *testing.M) {
	goleak.VerifyTestMain(m)
}
