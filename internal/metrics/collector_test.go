package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestThroughputWindows(t *testing.T) {
	var tp Throughput
	base := time.Unix(1_000_000, 0)
	tp.MarkAt(base, 10)
	tp.MarkAt(base.Add(300*time.Millisecond), 5)
	tp.MarkAt(base.Add(1*time.Second), 20)
	tp.MarkAt(base.Add(5*time.Second), 1)

	if got := tp.Total(); got != 36 {
		t.Fatalf("Total = %d, want 36", got)
	}
	ws := tp.Windows()
	want := []Window{{Sec: 1_000_000, Count: 15}, {Sec: 1_000_001, Count: 20}, {Sec: 1_000_005, Count: 1}}
	if len(ws) != len(want) {
		t.Fatalf("Windows = %+v, want %+v", ws, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("window %d = %+v, want %+v", i, ws[i], want[i])
		}
	}
	active, mean, peak := tp.Rates()
	if active != 3 || peak != 20 || mean != 12 {
		t.Errorf("Rates = %d/%v/%v, want 3/12/20", active, mean, peak)
	}
}

// TestThroughputRingEviction marks across more seconds than the ring
// holds; every count must survive into the overflow map.
func TestThroughputRingEviction(t *testing.T) {
	var tp Throughput
	base := time.Unix(2_000_000, 0)
	const seconds = throughputRing * 3
	for i := range seconds {
		tp.MarkAt(base.Add(time.Duration(i)*time.Second), 2)
	}
	if got := tp.Total(); got != seconds*2 {
		t.Fatalf("Total = %d, want %d", got, seconds*2)
	}
	ws := tp.Windows()
	if len(ws) != seconds {
		t.Fatalf("got %d windows, want %d", len(ws), seconds)
	}
	var sum int64
	for _, w := range ws {
		sum += w.Count
	}
	if sum != seconds*2 {
		t.Errorf("window sum = %d, want %d", sum, seconds*2)
	}
}

func TestThroughputConcurrent(t *testing.T) {
	var tp Throughput
	var wg sync.WaitGroup
	const workers, perWorker = 8, 10_000
	base := time.Now()
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range perWorker {
				tp.MarkAt(base.Add(time.Duration(i)*time.Millisecond), 1)
			}
		}(w)
	}
	wg.Wait()
	if got := tp.Total(); got != workers*perWorker {
		t.Errorf("Total = %d, want %d", got, workers*perWorker)
	}
	var sum int64
	for _, w := range tp.Windows() {
		sum += w.Count
	}
	if sum != workers*perWorker {
		t.Errorf("window sum = %d, want %d", sum, workers*perWorker)
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.ObserveLatency(time.Second) // must not panic
	s := c.Stage("x")
	if s != nil {
		t.Fatalf("nil collector returned non-nil stage")
	}
	s.Mark(5) // nil stage: no-op
	s.MarkAt(time.Now(), 5)
	if s.Records() != 0 {
		t.Error("nil stage recorded marks")
	}
	if got := c.LatencySummary(); got != (LatencySummary{}) {
		t.Errorf("nil collector LatencySummary = %+v", got)
	}
	if got := c.StageSummaries(); got != nil {
		t.Errorf("nil collector StageSummaries = %+v", got)
	}

	var r *Registry
	if r.Collector("cell") != nil {
		t.Error("nil registry returned a collector")
	}
	if cells := r.Cells(); cells != nil {
		t.Errorf("nil registry Cells = %v", cells)
	}
}

func TestCollectorStagesAndLatency(t *testing.T) {
	c := NewCollector()
	c.Stage("read").Mark(100)
	c.Stage("write").Mark(40)
	c.Stage("read").Mark(50)
	for i := range 1000 {
		c.ObserveLatency(time.Duration(i+1) * time.Millisecond)
	}

	sums := c.StageSummaries()
	if len(sums) != 2 || sums[0].Name != "read" || sums[1].Name != "write" {
		t.Fatalf("StageSummaries order = %+v", sums)
	}
	if sums[0].Records != 150 || sums[1].Records != 40 {
		t.Errorf("records = %d/%d, want 150/40", sums[0].Records, sums[1].Records)
	}

	lat := c.LatencySummary()
	if lat.Count != 1000 {
		t.Errorf("latency count = %d, want 1000", lat.Count)
	}
	if lat.Max != 1.0 {
		t.Errorf("latency max = %v, want 1.0", lat.Max)
	}
	// p50 of 1..1000ms is ~500ms; the sketch guarantees ±1% rank error.
	if lat.P50 < 0.480 || lat.P50 > 0.520 {
		t.Errorf("latency p50 = %v, want ~0.5", lat.P50)
	}
	if lat.P99 < 0.985 || lat.P99 > 1.0 {
		t.Errorf("latency p99 = %v, want ~0.99", lat.P99)
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	collectors := make([]*Collector, 16)
	for i := range collectors {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			collectors[i] = r.Collector("same-cell")
			collectors[i].Stage("s").Mark(1)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(collectors); i++ {
		if collectors[i] != collectors[0] {
			t.Fatal("Registry returned distinct collectors for one cell")
		}
	}
	if got := collectors[0].Stage("s").Records(); got != 16 {
		t.Errorf("shared stage records = %d, want 16", got)
	}
	if cells := r.Cells(); len(cells) != 1 || cells[0] != "same-cell" {
		t.Errorf("Cells = %v", cells)
	}
	if _, ok := r.Get("same-cell"); !ok {
		t.Error("Get failed for existing cell")
	}
	if _, ok := r.Get("missing"); ok {
		t.Error("Get succeeded for missing cell")
	}
}
