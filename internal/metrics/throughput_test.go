package metrics

import (
	"testing"
	"time"
)

// TestThroughputCurrent pins the satellite contract: Current exposes
// the in-flight one-second window that Windows/Rates only surface
// after it closes.
func TestThroughputCurrent(t *testing.T) {
	var tp Throughput
	now := time.Unix(5000, 0)
	if got := tp.CurrentAt(now); got != 0 {
		t.Errorf("empty CurrentAt = %d, want 0", got)
	}
	tp.MarkAt(now, 3)
	tp.MarkAt(now.Add(200*time.Millisecond), 4)
	if got := tp.CurrentAt(now); got != 7 {
		t.Errorf("CurrentAt(open window) = %d, want 7", got)
	}
	// A different second reads zero: the window holds only "now".
	if got := tp.CurrentAt(now.Add(time.Second)); got != 0 {
		t.Errorf("CurrentAt(next second) = %d, want 0", got)
	}
	// Marks in a later window don't leak into the old one's reading,
	// even when the ring slot is reused.
	later := now.Add(throughputRing * time.Second)
	tp.MarkAt(later, 9)
	if got := tp.CurrentAt(later); got != 9 {
		t.Errorf("CurrentAt(reused slot) = %d, want 9", got)
	}
	if got := tp.CurrentAt(now); got != 0 {
		t.Errorf("CurrentAt(evicted window) = %d, want 0", got)
	}
	// The closed windows stay intact for Windows().
	ws := tp.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %+v, want 2", ws)
	}
	if ws[0].Count != 7 || ws[1].Count != 9 {
		t.Errorf("window counts = %+v", ws)
	}
}

// TestStageCurrent covers the collector passthrough, including the nil
// stage.
func TestStageCurrent(t *testing.T) {
	var s *Stage
	if s.Current() != 0 {
		t.Error("nil stage Current != 0")
	}
	c := NewCollector()
	st := c.Stage("sink")
	st.Mark(5)
	if got := st.Current(); got != 5 {
		t.Errorf("Current = %d, want 5", got)
	}
	// EachStage visits registered stages in order.
	var names []string
	c.Stage("src")
	c.EachStage(func(s *Stage) { names = append(names, s.Name()) })
	if len(names) != 2 || names[0] != "sink" || names[1] != "src" {
		t.Errorf("EachStage order = %v", names)
	}
	var nilc *Collector
	nilc.EachStage(func(*Stage) { t.Error("nil collector visited a stage") })
}
