// Package metrics is the benchmark's streaming telemetry subsystem:
// low-overhead event-time latency sketches and windowed per-stage
// throughput counters, collected while runs execute and reported per
// benchmark cell.
//
// The design follows the measurement literature the harness reproduces:
// Karimov et al. ("Benchmarking Distributed Stream Data Processing
// Systems", ICDE 2018) argue that abstraction overhead surfaces in
// per-record event-time latency rather than in wall-clock means, and
// ESPBench (Hesse et al., 2021) makes latency percentiles a first-class
// benchmark output. Execution time alone — the only metric of the
// source paper — hides tail behaviour entirely.
//
// Three layers:
//
//   - Sketch is a CKMS biased-quantile sketch (Cormode, Korn,
//     Muthukrishnan, Srivastava: "Effective Computation of Biased
//     Quantiles over Data Streams") in its targeted-quantile variant:
//     it answers configured quantiles (default p50/p90/p99) within a
//     per-quantile rank-error guarantee using O(1/ε·log εn) space,
//     independent of the number of observations.
//   - Throughput counts records per one-second window with a fixed ring
//     of atomically updated buckets, so concurrent producers pay one
//     atomic add on the hot path.
//   - Collector groups one latency sketch plus named per-stage
//     throughput counters for one benchmark cell; Registry keys
//     collectors by cell so all producers (engine subtasks, runner
//     stages, the harness result calculator) write into shared state
//     concurrently without coordination beyond stage-handle lookup.
//
// Producers resolve a *Stage handle once per task and call Mark on it;
// the harness observes per-record latency into the cell's sketch during
// result calculation (broker append-time differences, see
// internal/harness). Everything is optional: a nil *Collector disables
// collection with no hot-path cost beyond a nil check.
package metrics
