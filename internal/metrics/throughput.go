package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// throughputRing is the number of live one-second buckets. Buckets older
// than the ring's span are evicted into an overflow map under a mutex,
// so the hot path stays a couple of atomic operations.
const throughputRing = 64

// tpBucket is one live one-second window.
type tpBucket struct {
	sec atomic.Int64 // unix second this bucket currently counts
	n   atomic.Int64
}

// Throughput counts records per one-second wall-clock window. Mark is
// safe for concurrent use and lock-free while callers stay within the
// current ring span; Total is always exact, while a record racing a
// bucket rotation may be attributed to a neighbouring window.
type Throughput struct {
	total   atomic.Int64
	buckets [throughputRing]tpBucket

	mu       sync.Mutex
	overflow map[int64]int64
	inited   [throughputRing]bool
}

// Mark counts n records at the current time.
func (t *Throughput) Mark(n int64) {
	t.MarkAt(time.Now(), n)
}

// MarkAt counts n records in the window containing ts.
func (t *Throughput) MarkAt(ts time.Time, n int64) {
	if n <= 0 {
		return
	}
	t.total.Add(n)
	sec := ts.Unix()
	b := &t.buckets[sec%throughputRing]
	if b.sec.Load() == sec {
		b.n.Add(n)
		return
	}
	t.rotate(b, sec, n)
}

// rotate evicts a bucket's previous window into the overflow map and
// claims it for sec.
func (t *Throughput) rotate(b *tpBucket, sec int64, n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := b.sec.Load()
	idx := sec % throughputRing
	if old != sec {
		if t.inited[idx] {
			if t.overflow == nil {
				t.overflow = make(map[int64]int64)
			}
			t.overflow[old] += b.n.Swap(0)
		}
		t.inited[idx] = true
		b.sec.Store(sec)
	}
	b.n.Add(n)
}

// Total reports the records counted so far.
func (t *Throughput) Total() int64 { return t.total.Load() }

// Current reports the count so far in the in-flight one-second window —
// the window containing now, which Windows/Rates only expose after it
// closes. The lag monitor samples this for instantaneous rate tracks.
func (t *Throughput) Current() int64 {
	return t.CurrentAt(time.Now())
}

// CurrentAt reports the in-flight count of the window containing ts.
func (t *Throughput) CurrentAt(ts time.Time) int64 {
	sec := ts.Unix()
	b := &t.buckets[sec%throughputRing]
	if b.sec.Load() == sec {
		return b.n.Load()
	}
	return 0
}

// Window is one second of activity.
type Window struct {
	// Sec is the window's unix second.
	Sec int64
	// Count is the number of records marked within it.
	Count int64
}

// Windows returns the non-empty one-second windows in time order.
func (t *Throughput) Windows() []Window {
	t.mu.Lock()
	defer t.mu.Unlock()
	agg := make(map[int64]int64, len(t.overflow)+throughputRing)
	for sec, n := range t.overflow {
		if n > 0 {
			agg[sec] += n
		}
	}
	for i := range t.buckets {
		if !t.inited[i] {
			continue
		}
		if n := t.buckets[i].n.Load(); n > 0 {
			agg[t.buckets[i].sec.Load()] += n
		}
	}
	out := make([]Window, 0, len(agg))
	for sec, n := range agg {
		out = append(out, Window{Sec: sec, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sec < out[j].Sec })
	return out
}

// Rates summarizes the windows: seconds with activity, mean records/sec
// over those seconds, and the busiest window's records/sec.
func (t *Throughput) Rates() (activeSeconds int64, mean, peak float64) {
	ws := t.Windows()
	if len(ws) == 0 {
		return 0, 0, 0
	}
	var total int64
	var max int64
	for _, w := range ws {
		total += w.Count
		if w.Count > max {
			max = w.Count
		}
	}
	return int64(len(ws)), float64(total) / float64(len(ws)), float64(max)
}
