package metrics

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"beambench/internal/stats"
)

func TestSketchEmpty(t *testing.T) {
	s := MustSketch()
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty sketch Quantile = %v, want 0", got)
	}
	if s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty sketch Count/Min/Max = %d/%v/%v, want zeros", s.Count(), s.Min(), s.Max())
	}
}

func TestSketchRejectsBadTargets(t *testing.T) {
	for _, target := range []Target{
		{Quantile: 0, Epsilon: 0.01},
		{Quantile: 1, Epsilon: 0.01},
		{Quantile: 0.5, Epsilon: 0},
		{Quantile: 0.5, Epsilon: 1},
	} {
		if _, err := NewSketch(target); err == nil {
			t.Errorf("NewSketch(%+v) succeeded, want error", target)
		}
	}
}

func TestSketchSingleValue(t *testing.T) {
	s := MustSketch()
	s.Insert(42)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	if s.Min() != 42 || s.Max() != 42 || s.Count() != 1 {
		t.Errorf("Min/Max/Count = %v/%v/%d", s.Min(), s.Max(), s.Count())
	}
}

func TestSketchExactMinMax(t *testing.T) {
	s := MustSketch()
	rng := rand.New(rand.NewPCG(1, 2))
	min, max := math.Inf(1), math.Inf(-1)
	for range 10_000 {
		v := rng.NormFloat64()
		s.Insert(v)
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if s.Min() != min || s.Max() != max {
		t.Errorf("Min/Max = %v/%v, want %v/%v", s.Min(), s.Max(), min, max)
	}
}

// rankErrorOK verifies the CKMS guarantee for one target: the returned
// value must occupy a rank within epsilon*n of quantile*n in the sorted
// input. The check is rank-based (not value-based), exactly the paper's
// guarantee statement.
func rankErrorOK(t *testing.T, sorted []float64, got float64, target Target) {
	t.Helper()
	n := float64(len(sorted))
	lo := sort.SearchFloat64s(sorted, got)                                      // first index with v >= got
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > got }) // first index with v > got
	if lo == hi {
		t.Fatalf("q=%v: sketch returned %v, which is not an input element", target.Quantile, got)
	}
	// Ranks are 1-based; the value covers ranks lo+1..hi.
	want := target.Quantile * n
	slack := target.Epsilon*n + 1 // +1 absorbs the ceil in the query rule
	if float64(hi) < want-slack || float64(lo+1) > want+slack {
		t.Errorf("q=%v eps=%v: returned value covers ranks [%d,%d], want within %v±%v",
			target.Quantile, target.Epsilon, lo+1, hi, want, slack)
	}
}

// TestSketchEpsilonGuarantee is the property test of the satellite task:
// on 100k-element random and adversarially sorted inputs, every targeted
// quantile must be within its epsilon rank guarantee of the exact
// nearest-rank percentile from internal/stats.
func TestSketchEpsilonGuarantee(t *testing.T) {
	const n = 100_000
	rng := rand.New(rand.NewPCG(7, 11))

	random := make([]float64, n)
	for i := range random {
		random[i] = rng.Float64() * 1e6
	}
	ascending := make([]float64, n)
	for i := range ascending {
		ascending[i] = float64(i)
	}
	descending := make([]float64, n)
	for i := range descending {
		descending[i] = float64(n - i)
	}
	// Heavy-tailed input: the regime latency distributions live in.
	lognormal := make([]float64, n)
	for i := range lognormal {
		lognormal[i] = math.Exp(rng.NormFloat64() * 2)
	}

	inputs := map[string][]float64{
		"random":     random,
		"ascending":  ascending,
		"descending": descending,
		"lognormal":  lognormal,
	}
	for name, input := range inputs {
		t.Run(name, func(t *testing.T) {
			s := MustSketch()
			for _, v := range input {
				s.Insert(v)
			}
			sorted := make([]float64, len(input))
			copy(sorted, input)
			sort.Float64s(sorted)

			for _, target := range DefaultTargets() {
				got := s.Quantile(target.Quantile)
				rankErrorOK(t, sorted, got, target)

				// Cross-check against the exact nearest-rank value: the
				// sketch answer must be between the percentiles at
				// q-eps and q+eps (with one-rank slack at the edges).
				loQ := math.Max(0, target.Quantile-target.Epsilon)
				hiQ := math.Min(1, target.Quantile+target.Epsilon)
				exactLo, err := stats.Percentile(input, loQ)
				if err != nil {
					t.Fatal(err)
				}
				exactHi, err := stats.Percentile(input, hiQ)
				if err != nil {
					t.Fatal(err)
				}
				idx := sort.SearchFloat64s(sorted, got)
				if idx > 0 {
					idx--
				}
				if got < exactLo && sorted[idx] < exactLo || got > exactHi && idx+1 < len(sorted) && sorted[idx+1] > exactHi {
					t.Errorf("q=%v: sketch=%v outside exact band [%v, %v]",
						target.Quantile, got, exactLo, exactHi)
				}
			}
		})
	}
}

// TestSketchSpaceSublinear pins the whole point of the sketch: after
// 100k inserts the summary must hold a small fraction of the stream.
func TestSketchSpaceSublinear(t *testing.T) {
	s := MustSketch()
	rng := rand.New(rand.NewPCG(3, 5))
	for range 100_000 {
		s.Insert(rng.Float64())
	}
	if got := s.SampleCount(); got > 5_000 {
		t.Errorf("sketch stores %d tuples for 100k inserts; compression is not working", got)
	}
}

func TestSketchReset(t *testing.T) {
	s := MustSketch()
	for i := range 1000 {
		s.Insert(float64(i))
	}
	s.Reset()
	if s.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", s.Count())
	}
	s.Insert(5)
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("Quantile after Reset+Insert = %v, want 5", got)
	}
}

func TestPercentileAgainstQuantileSketchInputs(t *testing.T) {
	// Nearest-rank percentile on a known small input.
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {0.91, 10}, {1, 10},
	}
	for _, c := range cases {
		got, err := stats.Percentile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Percentile(xs, %v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := stats.Percentile(nil, 0.5); err == nil {
		t.Error("Percentile(nil) succeeded, want error")
	}
	if _, err := stats.Percentile(xs, 1.5); err == nil {
		t.Error("Percentile(q=1.5) succeeded, want error")
	}
}
