package metrics

import (
	"fmt"
	"math"
	"slices"
)

// Target is one quantile the sketch must answer accurately: a query for
// Quantile q returns a value whose rank is within Epsilon*n of q*n.
// Tighter epsilons on higher quantiles keep the tail accurate without
// paying tail-grade space for the median.
type Target struct {
	Quantile float64
	Epsilon  float64
}

// DefaultTargets returns the benchmark's latency quantiles: the median,
// p90 and p99, with the error budget concentrated on the tail.
func DefaultTargets() []Target {
	return []Target{
		{Quantile: 0.50, Epsilon: 0.010},
		{Quantile: 0.90, Epsilon: 0.005},
		{Quantile: 0.99, Epsilon: 0.001},
	}
}

// sample is one stored tuple of the CKMS summary: a value, the number of
// observations it stands for (g), and the uncertainty of its rank
// (delta). The classic invariant g_i + delta_i <= f(r_i, n) bounds the
// rank error of any query.
type sample struct {
	v     float64
	g     int64
	delta int64
}

// insertBuffer is how many observations are buffered before they are
// sorted and merged into the summary in one pass. Buffering amortizes
// the merge so Insert is O(1) amortized on the hot path; a larger
// buffer trades a slightly higher per-flush sort cost for fewer
// merge/compress walks over the summary.
const insertBuffer = 2048

// Sketch estimates quantiles of a stream within the per-target error
// guarantees, using space logarithmic in the stream length. It is not
// safe for concurrent use; Collector serializes access for producers.
type Sketch struct {
	targets []Target
	// above[i] and below[i] are the precomputed invariant coefficients
	// 2ε/φ and 2ε/(1-φ) of target i, so the hot path divides nothing.
	above   []float64
	below   []float64
	samples []sample // sorted by v
	scratch []sample // reused merge buffer
	buf     []float64
	n       int64
	min     float64
	max     float64
}

// NewSketch returns an empty sketch answering the given targets
// (DefaultTargets when none are given).
func NewSketch(targets ...Target) (*Sketch, error) {
	if len(targets) == 0 {
		targets = DefaultTargets()
	}
	for _, t := range targets {
		if t.Quantile <= 0 || t.Quantile >= 1 {
			return nil, fmt.Errorf("metrics: target quantile %v outside (0,1)", t.Quantile)
		}
		if t.Epsilon <= 0 || t.Epsilon >= 1 {
			return nil, fmt.Errorf("metrics: target epsilon %v outside (0,1)", t.Epsilon)
		}
	}
	s := &Sketch{
		targets: append([]Target(nil), targets...),
		above:   make([]float64, len(targets)),
		below:   make([]float64, len(targets)),
		buf:     make([]float64, 0, insertBuffer),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
	for i, t := range targets {
		s.above[i] = 2 * t.Epsilon / t.Quantile
		s.below[i] = 2 * t.Epsilon / (1 - t.Quantile)
	}
	return s, nil
}

// MustSketch is NewSketch for statically known targets.
func MustSketch(targets ...Target) *Sketch {
	s, err := NewSketch(targets...)
	if err != nil {
		panic(err)
	}
	return s
}

// Targets returns the configured accuracy targets.
func (s *Sketch) Targets() []Target {
	return append([]Target(nil), s.targets...)
}

// Insert adds one observation.
func (s *Sketch) Insert(v float64) {
	s.buf = append(s.buf, v)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if len(s.buf) == cap(s.buf) {
		s.flush()
	}
}

// Count reports the number of observations inserted.
func (s *Sketch) Count() int64 { return s.n + int64(len(s.buf)) }

// Min returns the smallest observation, exactly (0 when empty).
func (s *Sketch) Min() float64 {
	if s.Count() == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, exactly (0 when empty).
func (s *Sketch) Max() float64 {
	if s.Count() == 0 {
		return 0
	}
	return s.max
}

// invariant is f(r, n) of the targeted-quantile CKMS variant: the
// maximum permissible g+delta for a sample at rank r, the minimum over
// all targets of the error each one tolerates there.
func (s *Sketch) invariant(r float64) float64 {
	n := float64(s.n)
	m := math.MaxFloat64
	for i, t := range s.targets {
		var f float64
		if t.Quantile*n <= r {
			f = s.above[i] * r
		} else {
			f = s.below[i] * (n - r)
		}
		if f < m {
			m = f
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// flush sorts the buffered observations, merges them into the summary
// in one linear pass, and compresses.
func (s *Sketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	slices.Sort(s.buf)
	if cap(s.scratch) < len(s.samples)+len(s.buf) {
		s.scratch = make([]sample, 0, 2*(len(s.samples)+len(s.buf)))
	}
	merged := s.scratch[:0]
	var r float64 // rank mass of merged samples preceding the insert point
	i := 0
	for _, v := range s.buf {
		for i < len(s.samples) && s.samples[i].v <= v {
			r += float64(s.samples[i].g)
			merged = append(merged, s.samples[i])
			i++
		}
		var delta int64
		if len(merged) > 0 && i < len(s.samples) {
			// Mid-stream insert: the new sample's rank is uncertain by
			// the invariant's budget at its position. End inserts are
			// exact (they become the new min or max).
			delta = int64(math.Floor(s.invariant(r))) - 1
			if delta < 0 {
				delta = 0
			}
		}
		merged = append(merged, sample{v: v, g: 1, delta: delta})
		r++
		s.n++
	}
	merged = append(merged, s.samples[i:]...)
	// The old samples slice becomes the next flush's merge buffer.
	s.scratch = s.samples[:0]
	s.samples = merged
	s.buf = s.buf[:0]
	s.compress()
}

// compress merges adjacent samples whose combined weight still satisfies
// the invariant, scanning from the high end as in the paper.
func (s *Sketch) compress() {
	if len(s.samples) < 3 {
		return
	}
	out := s.samples[:0]
	// Walk forward, greedily merging each sample into its successor when
	// the combined weight respects the invariant at the sample's own
	// rank (the rank including it — evaluating one position early would
	// overstate the budget on the biased side); always keep the first
	// and last sample exact.
	r := float64(0)
	keep := s.samples[0]
	for i := 1; i < len(s.samples); i++ {
		next := s.samples[i]
		canMerge := len(out) > 0 && // never merge away the minimum
			float64(keep.g+next.g+next.delta) <= s.invariant(r+float64(keep.g))
		if canMerge {
			next.g += keep.g
			keep = next
			continue
		}
		r += float64(keep.g)
		out = append(out, keep)
		keep = next
	}
	out = append(out, keep)
	s.samples = out
}

// Quantile returns the estimated q-quantile (0 < q < 1). For accuracy
// within a guarantee, q should be one of the configured targets; other
// quantiles are answered on a best-effort basis. Returns 0 on an empty
// sketch.
func (s *Sketch) Quantile(q float64) float64 {
	s.flush()
	if s.n == 0 {
		return 0
	}
	if len(s.samples) == 1 {
		return s.samples[0].v
	}
	t := math.Ceil(q * float64(s.n))
	t += math.Ceil(s.invariant(t) / 2)
	prev := s.samples[0]
	var r float64
	for _, c := range s.samples[1:] {
		r += float64(prev.g)
		if r+float64(c.g+c.delta) > t {
			return prev.v
		}
		prev = c
	}
	return prev.v
}

// SampleCount reports how many tuples the summary currently stores (the
// sketch's space), for tests and capacity planning.
func (s *Sketch) SampleCount() int {
	s.flush()
	return len(s.samples)
}

// Reset empties the sketch, keeping its targets.
func (s *Sketch) Reset() {
	s.samples = s.samples[:0]
	s.buf = s.buf[:0]
	s.n = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}
