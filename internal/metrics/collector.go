package metrics

import (
	"sync"
	"time"
)

// Stage is the throughput counter of one named pipeline stage (an engine
// operator, a fused executable stage, a sink). Producers resolve the
// handle once per task and Mark on it; both are safe for concurrent use.
type Stage struct {
	name string
	tp   Throughput
}

// Name returns the stage's name.
func (s *Stage) Name() string { return s.name }

// Mark counts n records through the stage now. A nil stage (collection
// disabled) is a no-op.
func (s *Stage) Mark(n int64) {
	if s == nil {
		return
	}
	s.tp.Mark(n)
}

// MarkAt counts n records through the stage at ts. A nil stage is a
// no-op.
func (s *Stage) MarkAt(ts time.Time, n int64) {
	if s == nil {
		return
	}
	s.tp.MarkAt(ts, n)
}

// Records reports the total records marked through the stage.
func (s *Stage) Records() int64 {
	if s == nil {
		return 0
	}
	return s.tp.Total()
}

// Current reports the stage's in-flight one-second window count — the
// instantaneous rate signal the obs lag monitor samples mid-run.
func (s *Stage) Current() int64 {
	if s == nil {
		return 0
	}
	return s.tp.Current()
}

// StageSummary is the reported throughput of one stage.
type StageSummary struct {
	// Name is the stage name as the engine labels it.
	Name string `json:"name"`
	// Records is the total record count through the stage.
	Records int64 `json:"records"`
	// ActiveSeconds counts one-second windows with activity.
	ActiveSeconds int64 `json:"activeSeconds"`
	// MeanRate is records/sec averaged over the active windows.
	MeanRate float64 `json:"meanRate"`
	// PeakRate is the busiest window's records/sec.
	PeakRate float64 `json:"peakRate"`
}

// LatencySummary is the reported event-time latency distribution of one
// benchmark cell, in seconds.
type LatencySummary struct {
	// Count is the number of records the distribution covers.
	Count int64 `json:"count"`
	// P50, P90 and P99 are the targeted quantiles of per-record
	// event-time latency (output append time minus input append time).
	P50 float64 `json:"p50Sec"`
	P90 float64 `json:"p90Sec"`
	P99 float64 `json:"p99Sec"`
	// Max is the exact largest observed latency.
	Max float64 `json:"maxSec"`
}

// Collector gathers the telemetry of one benchmark cell: an event-time
// latency sketch fed by the harness result calculator, and per-stage
// throughput counters fed concurrently by engine subtasks. A nil
// *Collector disables collection everywhere it is threaded.
type Collector struct {
	mu      sync.RWMutex
	latency *Sketch
	stages  map[string]*Stage
	order   []string
}

// NewCollector returns an empty collector with the default latency
// targets.
func NewCollector() *Collector {
	return &Collector{
		latency: MustSketch(),
		stages:  make(map[string]*Stage),
	}
}

// ObserveLatency records one event-time latency observation. Safe for
// concurrent use; a nil collector is a no-op.
func (c *Collector) ObserveLatency(d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.latency.Insert(d.Seconds())
	c.mu.Unlock()
}

// ObserveLatencySeconds records a batch of latency observations (in
// seconds) under one lock — the bulk path the harness result calculator
// uses after pairing a whole run. Safe for concurrent use; a nil
// collector is a no-op.
func (c *Collector) ObserveLatencySeconds(ds []float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	for _, d := range ds {
		c.latency.Insert(d)
	}
	c.mu.Unlock()
}

// Stage returns the named stage's counter, creating it on first use.
// Safe for concurrent use; a nil collector returns a nil stage, whose
// methods are no-ops.
func (c *Collector) Stage(name string) *Stage {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	s, ok := c.stages[name]
	c.mu.RUnlock()
	if ok {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.stages[name]; ok {
		return s
	}
	s = &Stage{name: name}
	c.stages[name] = s
	c.order = append(c.order, name)
	return s
}

// EachStage calls fn for every registered stage in first-use order,
// without copying — the obs monitor iterates this at sampling cadence.
// fn must not call back into the collector. Nil-safe.
func (c *Collector) EachStage(fn func(*Stage)) {
	if c == nil {
		return
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, name := range c.order {
		fn(c.stages[name])
	}
}

// LatencySummary reports the collected latency distribution.
func (c *Collector) LatencySummary() LatencySummary {
	if c == nil {
		return LatencySummary{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return LatencySummary{
		Count: c.latency.Count(),
		P50:   c.latency.Quantile(0.50),
		P90:   c.latency.Quantile(0.90),
		P99:   c.latency.Quantile(0.99),
		Max:   c.latency.Max(),
	}
}

// StageSummaries reports every stage's throughput in first-use order.
func (c *Collector) StageSummaries() []StageSummary {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	names := append([]string(nil), c.order...)
	c.mu.RUnlock()
	out := make([]StageSummary, 0, len(names))
	for _, name := range names {
		s := c.Stage(name)
		active, mean, peak := s.tp.Rates()
		out = append(out, StageSummary{
			Name:          name,
			Records:       s.tp.Total(),
			ActiveSeconds: active,
			MeanRate:      mean,
			PeakRate:      peak,
		})
	}
	return out
}

// Registry keys collectors by benchmark cell, get-or-create, safe for
// concurrent use by the matrix scheduler's workers.
type Registry struct {
	mu    sync.RWMutex
	cells map[string]*Collector
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cells: make(map[string]*Collector)}
}

// Collector returns the cell's collector, creating it on first use. A
// nil registry returns a nil collector (collection disabled).
func (r *Registry) Collector(cell string) *Collector {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.cells[cell]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cells[cell]; ok {
		return c
	}
	c = NewCollector()
	r.cells[cell] = c
	r.order = append(r.order, cell)
	return c
}

// Get returns the cell's collector without creating it.
func (r *Registry) Get(cell string) (*Collector, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.cells[cell]
	return c, ok
}

// Cells lists the registered cell keys in first-use order.
func (r *Registry) Cells() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}
