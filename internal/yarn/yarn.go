// Package yarn simulates Apache Hadoop YARN (Section II-D of Hesse et
// al., ICDCS 2019) to the extent Apache Apex depends on it: a Resource
// Manager distributing cluster resources as containers — logical bundles
// of memory and virtual cores tied to a node — plus Node Manager daemons
// reporting via heartbeats. The paper configures Apex parallelism through
// the number of YARN vcores, so vcore accounting is load-bearing here.
package yarn

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors reported by the cluster.
var (
	ErrStopped            = errors.New("yarn: cluster not running")
	ErrInsufficientVCores = errors.New("yarn: insufficient vcores")
	ErrInsufficientMemory = errors.New("yarn: insufficient memory")
	ErrUnknownContainer   = errors.New("yarn: unknown container")
	ErrAppFinished        = errors.New("yarn: application finished")
)

// Resource is a logical bundle of memory and virtual cores.
type Resource struct {
	MemoryMB int
	VCores   int
}

func (r Resource) validate() error {
	if r.MemoryMB <= 0 || r.VCores <= 0 {
		return fmt.Errorf("yarn: invalid resource %+v", r)
	}
	return nil
}

// ClusterConfig sizes the cluster. Defaults match the paper's two worker
// nodes with 64 GB memory and 8 cores each; the per-node vcore count is
// the setting the paper varies to control Apex parallelism.
type ClusterConfig struct {
	NodeManagers    int
	MemoryPerNodeMB int
	VCoresPerNode   int
	// HeartbeatInterval is the Node Manager heartbeat period; defaults
	// to 20ms (scaled down from YARN's 1s to suit simulation runs).
	HeartbeatInterval time.Duration
}

func (c *ClusterConfig) validate() error {
	if c.NodeManagers == 0 {
		c.NodeManagers = 2
	}
	if c.MemoryPerNodeMB == 0 {
		c.MemoryPerNodeMB = 64 * 1024
	}
	if c.VCoresPerNode == 0 {
		c.VCoresPerNode = 8
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.NodeManagers < 0 || c.MemoryPerNodeMB < 0 || c.VCoresPerNode < 0 || c.HeartbeatInterval < 0 {
		return fmt.Errorf("yarn: negative cluster configuration %+v", *c)
	}
	return nil
}

// Cluster is a Resource Manager with its Node Managers.
type Cluster struct {
	cfg ClusterConfig

	mu         sync.Mutex
	running    bool
	nodes      []*node
	apps       map[string]*Application
	containers map[string]*Container
	nextApp    int
	nextCtr    int
	stopHB     chan struct{}
	hbDone     chan struct{}
}

type node struct {
	id            int
	free          Resource
	lastHeartbeat time.Time
}

// NewCluster returns a stopped cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:        cfg,
		apps:       make(map[string]*Application),
		containers: make(map[string]*Container),
	}
	for i := range cfg.NodeManagers {
		c.nodes = append(c.nodes, &node{
			id:   i,
			free: Resource{MemoryMB: cfg.MemoryPerNodeMB, VCores: cfg.VCoresPerNode},
		})
	}
	return c, nil
}

// Start brings the Resource Manager online and starts Node Manager
// heartbeats.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	c.running = true
	now := time.Now()
	for _, n := range c.nodes {
		n.lastHeartbeat = now
	}
	c.stopHB = make(chan struct{})
	c.hbDone = make(chan struct{})
	go c.heartbeatLoop(c.stopHB, c.hbDone)
}

// Stop halts heartbeats and rejects further requests.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	stop, done := c.stopHB, c.hbDone
	c.mu.Unlock()
	close(stop)
	<-done
}

// Running reports whether the Resource Manager accepts requests.
func (c *Cluster) Running() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.running
}

func (c *Cluster) heartbeatLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			c.mu.Lock()
			for _, n := range c.nodes {
				n.lastHeartbeat = now
			}
			c.mu.Unlock()
		}
	}
}

// NodeReport describes one Node Manager's state.
type NodeReport struct {
	NodeID        int
	FreeMemoryMB  int
	FreeVCores    int
	LastHeartbeat time.Time
}

// NodeReports lists per-node resource availability and heartbeat times.
func (c *Cluster) NodeReports() []NodeReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeReport, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = NodeReport{
			NodeID:        n.id,
			FreeMemoryMB:  n.free.MemoryMB,
			FreeVCores:    n.free.VCores,
			LastHeartbeat: n.lastHeartbeat,
		}
	}
	return out
}

// TotalVCores reports the cluster's vcore capacity.
func (c *Cluster) TotalVCores() int {
	return c.cfg.NodeManagers * c.cfg.VCoresPerNode
}

// FreeVCores reports currently unallocated vcores.
func (c *Cluster) FreeVCores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	free := 0
	for _, n := range c.nodes {
		free += n.free.VCores
	}
	return free
}

// Application is a submitted YARN application with its Application
// Master container.
type Application struct {
	ID   string
	Name string

	cluster *Cluster
	am      *Container

	mu       sync.Mutex
	finished bool
	owned    map[string]*Container
}

// SubmitApplication registers an application and allocates its
// Application Master container (for Apex: the STRAM).
func (c *Cluster) SubmitApplication(name string, amResource Resource) (*Application, error) {
	if err := amResource.validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.running {
		return nil, ErrStopped
	}
	c.nextApp++
	app := &Application{
		ID:      fmt.Sprintf("application_%04d", c.nextApp),
		Name:    name,
		cluster: c,
		owned:   make(map[string]*Container),
	}
	am, err := c.allocateLocked(app, amResource)
	if err != nil {
		return nil, fmt.Errorf("yarn: submit %q: %w", name, err)
	}
	app.am = am
	c.apps[app.ID] = app
	return app, nil
}

// AMContainer returns the Application Master's container.
func (a *Application) AMContainer() *Container { return a.am }

// AllocateContainer requests one container.
func (a *Application) AllocateContainer(res Resource) (*Container, error) {
	if err := res.validate(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	finished := a.finished
	a.mu.Unlock()
	if finished {
		return nil, ErrAppFinished
	}
	a.cluster.mu.Lock()
	defer a.cluster.mu.Unlock()
	if !a.cluster.running {
		return nil, ErrStopped
	}
	return a.cluster.allocateLocked(a, res)
}

// allocateLocked places a container on the node with the most free
// vcores (simple spreading placement). Caller holds the cluster lock.
func (c *Cluster) allocateLocked(app *Application, res Resource) (*Container, error) {
	var best *node
	for _, n := range c.nodes {
		if n.free.VCores >= res.VCores && n.free.MemoryMB >= res.MemoryMB {
			if best == nil || n.free.VCores > best.free.VCores {
				best = n
			}
		}
	}
	if best == nil {
		for _, n := range c.nodes {
			if n.free.MemoryMB >= res.MemoryMB {
				return nil, fmt.Errorf("%w: requested %d", ErrInsufficientVCores, res.VCores)
			}
		}
		return nil, fmt.Errorf("%w: requested %d MB", ErrInsufficientMemory, res.MemoryMB)
	}
	best.free.VCores -= res.VCores
	best.free.MemoryMB -= res.MemoryMB
	c.nextCtr++
	ctr := &Container{
		ID:       fmt.Sprintf("container_%06d", c.nextCtr),
		NodeID:   best.id,
		Resource: res,
		app:      app,
		killed:   make(chan struct{}),
	}
	c.containers[ctr.ID] = ctr
	app.mu.Lock()
	app.owned[ctr.ID] = ctr
	app.mu.Unlock()
	return ctr, nil
}

// ReleaseContainer returns a container's resources to its node.
func (a *Application) ReleaseContainer(ctr *Container) error {
	if ctr == nil {
		return ErrUnknownContainer
	}
	a.cluster.mu.Lock()
	defer a.cluster.mu.Unlock()
	return a.cluster.releaseLocked(ctr)
}

func (c *Cluster) releaseLocked(ctr *Container) error {
	stored, ok := c.containers[ctr.ID]
	if !ok || stored != ctr {
		return fmt.Errorf("%w: %s", ErrUnknownContainer, ctr.ID)
	}
	delete(c.containers, ctr.ID)
	n := c.nodes[ctr.NodeID]
	n.free.VCores += ctr.Resource.VCores
	n.free.MemoryMB += ctr.Resource.MemoryMB
	ctr.app.mu.Lock()
	delete(ctr.app.owned, ctr.ID)
	ctr.app.mu.Unlock()
	return nil
}

// Finish releases all containers of the application, including the AM.
func (a *Application) Finish() {
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return
	}
	a.finished = true
	owned := make([]*Container, 0, len(a.owned))
	for _, ctr := range a.owned {
		owned = append(owned, ctr)
	}
	a.mu.Unlock()

	a.cluster.mu.Lock()
	defer a.cluster.mu.Unlock()
	for _, ctr := range owned {
		_ = a.cluster.releaseLocked(ctr)
	}
}

// KillContainer force-kills a container (failure injection): its
// resources return to the node and its Done channel closes so the
// process inside can observe the kill.
func (c *Cluster) KillContainer(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr, ok := c.containers[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	if err := c.releaseLocked(ctr); err != nil {
		return err
	}
	close(ctr.killed)
	return nil
}

// Container is a granted resource bundle tied to a node.
type Container struct {
	ID       string
	NodeID   int
	Resource Resource

	app    *Application
	killed chan struct{}
}

// Done returns a channel closed when the container is killed.
func (c *Container) Done() <-chan struct{} { return c.killed }

// Alive reports whether the container has not been killed.
func (c *Container) Alive() bool {
	select {
	case <-c.killed:
		return false
	default:
		return true
	}
}
