package yarn

import (
	"errors"
	"testing"
	"time"
)

func newRunningCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func TestClusterDefaults(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalVCores() != 16 {
		t.Errorf("TotalVCores = %d, want 16", c.TotalVCores())
	}
	reports := c.NodeReports()
	if len(reports) != 2 {
		t.Fatalf("NodeReports = %d nodes, want 2", len(reports))
	}
	if reports[0].FreeMemoryMB != 64*1024 {
		t.Errorf("free memory = %d, want 65536", reports[0].FreeMemoryMB)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{NodeManagers: -1}); err == nil {
		t.Error("negative node managers accepted")
	}
}

func TestSubmitRequiresRunning(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitApplication("app", Resource{MemoryMB: 1024, VCores: 1}); !errors.Is(err, ErrStopped) {
		t.Errorf("submit on stopped cluster = %v, want ErrStopped", err)
	}
}

func TestApplicationLifecycle(t *testing.T) {
	c := newRunningCluster(t, ClusterConfig{})
	app, err := c.SubmitApplication("stram", Resource{MemoryMB: 2048, VCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if app.AMContainer() == nil {
		t.Fatal("no AM container")
	}
	if c.FreeVCores() != 15 {
		t.Errorf("free vcores after AM = %d, want 15", c.FreeVCores())
	}

	ctr, err := app.AllocateContainer(Resource{MemoryMB: 4096, VCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.FreeVCores() != 13 {
		t.Errorf("free vcores = %d, want 13", c.FreeVCores())
	}
	if !ctr.Alive() {
		t.Error("fresh container not alive")
	}

	if err := app.ReleaseContainer(ctr); err != nil {
		t.Fatal(err)
	}
	if c.FreeVCores() != 15 {
		t.Errorf("free vcores after release = %d, want 15", c.FreeVCores())
	}
	if err := app.ReleaseContainer(ctr); !errors.Is(err, ErrUnknownContainer) {
		t.Errorf("double release = %v, want ErrUnknownContainer", err)
	}

	app.Finish()
	if c.FreeVCores() != c.TotalVCores() {
		t.Errorf("free vcores after finish = %d, want %d", c.FreeVCores(), c.TotalVCores())
	}
	if _, err := app.AllocateContainer(Resource{MemoryMB: 1, VCores: 1}); !errors.Is(err, ErrAppFinished) {
		t.Errorf("allocate after finish = %v, want ErrAppFinished", err)
	}
	app.Finish() // idempotent
}

func TestVCoreExhaustion(t *testing.T) {
	c := newRunningCluster(t, ClusterConfig{NodeManagers: 1, VCoresPerNode: 2, MemoryPerNodeMB: 8192})
	app, err := c.SubmitApplication("app", Resource{MemoryMB: 1024, VCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.AllocateContainer(Resource{MemoryMB: 1024, VCores: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := app.AllocateContainer(Resource{MemoryMB: 1024, VCores: 1}); !errors.Is(err, ErrInsufficientVCores) {
		t.Errorf("over-allocation = %v, want ErrInsufficientVCores", err)
	}
}

func TestMemoryExhaustion(t *testing.T) {
	c := newRunningCluster(t, ClusterConfig{NodeManagers: 1, VCoresPerNode: 8, MemoryPerNodeMB: 2048})
	app, err := c.SubmitApplication("app", Resource{MemoryMB: 1024, VCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.AllocateContainer(Resource{MemoryMB: 4096, VCores: 1}); !errors.Is(err, ErrInsufficientMemory) {
		t.Errorf("memory over-allocation = %v, want ErrInsufficientMemory", err)
	}
}

func TestResourceValidation(t *testing.T) {
	c := newRunningCluster(t, ClusterConfig{})
	if _, err := c.SubmitApplication("app", Resource{}); err == nil {
		t.Error("zero resource accepted")
	}
	app, err := c.SubmitApplication("app", Resource{MemoryMB: 1, VCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.AllocateContainer(Resource{MemoryMB: -1, VCores: 1}); err == nil {
		t.Error("negative memory accepted")
	}
}

func TestContainerSpreadAcrossNodes(t *testing.T) {
	c := newRunningCluster(t, ClusterConfig{NodeManagers: 2, VCoresPerNode: 4, MemoryPerNodeMB: 8192})
	app, err := c.SubmitApplication("app", Resource{MemoryMB: 512, VCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	nodesUsed := map[int]int{app.AMContainer().NodeID: 1}
	for range 3 {
		ctr, err := app.AllocateContainer(Resource{MemoryMB: 512, VCores: 1})
		if err != nil {
			t.Fatal(err)
		}
		nodesUsed[ctr.NodeID]++
	}
	if len(nodesUsed) != 2 {
		t.Errorf("containers on %d nodes, want spread over 2: %v", len(nodesUsed), nodesUsed)
	}
}

func TestKillContainer(t *testing.T) {
	c := newRunningCluster(t, ClusterConfig{})
	app, err := c.SubmitApplication("app", Resource{MemoryMB: 1024, VCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := app.AllocateContainer(Resource{MemoryMB: 1024, VCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	free := c.FreeVCores()
	if err := c.KillContainer(ctr.ID); err != nil {
		t.Fatal(err)
	}
	if ctr.Alive() {
		t.Error("killed container still alive")
	}
	select {
	case <-ctr.Done():
	default:
		t.Error("Done channel not closed after kill")
	}
	if c.FreeVCores() != free+1 {
		t.Errorf("vcores not returned after kill: %d, want %d", c.FreeVCores(), free+1)
	}
	if err := c.KillContainer(ctr.ID); !errors.Is(err, ErrUnknownContainer) {
		t.Errorf("double kill = %v, want ErrUnknownContainer", err)
	}
}

func TestHeartbeatsAdvance(t *testing.T) {
	c := newRunningCluster(t, ClusterConfig{HeartbeatInterval: 5 * time.Millisecond})
	before := c.NodeReports()[0].LastHeartbeat
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.NodeReports()[0].LastHeartbeat.After(before) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("heartbeat timestamp did not advance")
}

func TestStopIsIdempotentAndHaltsHeartbeats(t *testing.T) {
	c, err := NewCluster(ClusterConfig{HeartbeatInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Start() // idempotent
	c.Stop()
	c.Stop() // idempotent
	hb := c.NodeReports()[0].LastHeartbeat
	time.Sleep(20 * time.Millisecond)
	if got := c.NodeReports()[0].LastHeartbeat; !got.Equal(hb) {
		t.Error("heartbeats continued after Stop")
	}
}
