package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// endOfTimeNanos matches watermark.EndOfTime.UnixNano(): an operator
// whose watermark gauge holds it has drained and reports zero lag.
// (Duplicated as a constant to keep obs free of engine imports.)
const endOfTimeNanos = math.MaxInt64

// A Sampler produces one counter sample per tick; returning ok=false
// skips the tick (e.g. the topic is gone during teardown).
type Sampler func() (value float64, ok bool)

// A MultiSampler emits zero or more named samples per tick via yield;
// the set of names may change between ticks (stages register lazily).
type MultiSampler func(yield func(name string, value float64))

// GaugeSummary is the per-run time series digest of one counter track,
// carried into the report so a cell answers "what was the peak lag"
// without re-opening the trace.
type GaugeSummary struct {
	Name    string  `json:"name"`
	Samples int     `json:"samples"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Last    float64 `json:"last"`
}

// Monitor is the per-run sampling goroutine: at each tick it runs the
// registered samplers and converts the scope's watermark gauges into
// frontier-relative lag, recording everything as counter events on the
// tracer and accumulating summaries. A nil Monitor no-ops; Start
// without Stop leaks nothing because Stop is idempotent and the
// goroutine owns a done channel + WaitGroup.
type Monitor struct {
	t        *Tracer
	interval time.Duration

	mu       sync.Mutex
	samplers []namedSampler
	multi    []MultiSampler
	series   map[string]*GaugeSummary
	order    []string
	stopped  bool

	done chan struct{}
	wg   sync.WaitGroup
}

type namedSampler struct {
	name string
	fn   Sampler
}

// NewMonitor builds a monitor sampling at interval (minimum 1ms) on
// the given tracer scope. A nil tracer yields a nil monitor.
func NewMonitor(t *Tracer, interval time.Duration) *Monitor {
	if t == nil {
		return nil
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	return &Monitor{
		t:        t,
		interval: interval,
		series:   make(map[string]*GaugeSummary),
		done:     make(chan struct{}),
	}
}

// Sample registers a named sampler. Nil-safe.
func (m *Monitor) Sample(name string, fn Sampler) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.samplers = append(m.samplers, namedSampler{name: name, fn: fn})
	m.mu.Unlock()
}

// SampleEach registers a multi-sampler. Nil-safe.
func (m *Monitor) SampleEach(fn MultiSampler) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.multi = append(m.multi, fn)
	m.mu.Unlock()
}

// Start launches the sampling goroutine. Nil-safe.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		tick := time.NewTicker(m.interval)
		defer tick.Stop()
		for {
			select {
			case <-m.done:
				return
			case <-tick.C:
				m.tick()
			}
		}
	}()
}

// Stop terminates the goroutine, takes one final sample so runs
// shorter than the interval still observe their gauges, and returns
// the accumulated summaries sorted by name. Idempotent; the second
// call returns the same summaries without sampling again.
func (m *Monitor) Stop() []GaugeSummary {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	alreadyStopped := m.stopped
	m.stopped = true
	m.mu.Unlock()
	if !alreadyStopped {
		close(m.done)
	}
	m.wg.Wait()
	if !alreadyStopped {
		m.tick()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]GaugeSummary, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, *m.series[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// tick runs every sampler once and converts watermark gauges to
// frontier-relative lag seconds.
func (m *Monitor) tick() {
	m.mu.Lock()
	samplers := m.samplers
	multi := m.multi
	m.mu.Unlock()

	for _, s := range samplers {
		if v, ok := s.fn(); ok {
			m.record(s.name, v)
		}
	}
	for _, fn := range multi {
		fn(m.record)
	}

	gauges := m.t.Gauges()
	// Frontier: the most advanced live watermark in this scope. Gauges
	// never set (0) or already drained (EndOfTime) don't define it.
	var frontier int64
	for _, g := range gauges {
		v := g.Load()
		if v != 0 && v != endOfTimeNanos && v > frontier {
			frontier = v
		}
	}
	for _, g := range gauges {
		v := g.Load()
		switch {
		case v == 0:
			// Operator hasn't seen a watermark yet; no sample.
		case v == endOfTimeNanos:
			m.record(g.Name(), 0)
		default:
			lag := float64(frontier-v) / 1e9
			if lag < 0 {
				lag = 0
			}
			m.record(g.Name(), lag)
		}
	}
}

// record emits a counter event and folds the value into the series
// summary. The counter event carries the fully scoped name (trace
// tracks must be unique per run); the series summary carries the bare
// name, so the summaries of one cell's runs merge by gauge in
// MergeGaugeSummaries. Sampler names arrive bare and get the scope
// prefix for the event; gauge names from Tracer.Gauge arrive scoped
// and get it stripped for the summary.
func (m *Monitor) record(name string, v float64) {
	full, bare := name, name
	if m.t.prefix != "" {
		if isScoped(name, m.t.prefix) {
			bare = name[len(m.t.prefix)+1:]
		} else {
			full = m.t.prefix + "/" + name
		}
	}
	m.t.core.record(Event{Track: full, Name: full, Phase: PhaseCounter, Start: m.t.Now(), Value: v})
	m.mu.Lock()
	s, ok := m.series[bare]
	if !ok {
		s = &GaugeSummary{Name: bare}
		m.series[bare] = s
		m.order = append(m.order, bare)
	}
	s.Samples++
	if v > s.Max {
		s.Max = v
	}
	s.Mean += (v - s.Mean) / float64(s.Samples)
	s.Last = v
	m.mu.Unlock()
}

// isScoped reports whether name already carries the scope prefix —
// gauge names from Tracer.Gauge do, raw sampler names don't.
func isScoped(name, prefix string) bool {
	return len(name) > len(prefix) && name[:len(prefix)] == prefix && name[len(prefix)] == '/'
}

// MergeGaugeSummaries folds b's series into a by name, weighting means
// by sample count, for aggregating the runs of one cell.
func MergeGaugeSummaries(a, b []GaugeSummary) []GaugeSummary {
	if len(a) == 0 {
		return b
	}
	byName := make(map[string]int, len(a))
	for i := range a {
		byName[a[i].Name] = i
	}
	for _, s := range b {
		i, ok := byName[s.Name]
		if !ok {
			byName[s.Name] = len(a)
			a = append(a, s)
			continue
		}
		dst := &a[i]
		total := dst.Samples + s.Samples
		if total > 0 {
			dst.Mean = (dst.Mean*float64(dst.Samples) + s.Mean*float64(s.Samples)) / float64(total)
		}
		dst.Samples = total
		if s.Max > dst.Max {
			dst.Max = s.Max
		}
		dst.Last = s.Last
	}
	sort.Slice(a, func(i, j int) bool { return a[i].Name < a[j].Name })
	return a
}
