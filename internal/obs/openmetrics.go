package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// OpenMetricsContentType is the content type the /metrics endpoint
// serves. The text is also valid Prometheus exposition format (modulo
// the trailing "# EOF", which Prometheus scrapers ignore).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// The exposition families. Names follow the Prometheus conventions:
// base units (seconds, records), a shared beambench_ prefix, counters
// carrying the _total sample suffix.
const (
	famUptime        = "beambench_uptime_seconds"
	famWorkload      = "beambench_workload_records"
	famCells         = "beambench_cells"
	famRunsDone      = "beambench_cell_runs_completed"
	famStageRecords  = "beambench_stage_records"
	famStageRate     = "beambench_stage_rate_records"
	famConsumerLag   = "beambench_consumer_lag_records"
	famWatermarkLag  = "beambench_watermark_lag_seconds"
	famTopicRecords  = "beambench_topic_records"
	famLatencySec    = "beambench_latency_seconds"
	famLatencyCount  = "beambench_latency_observations"
	famLatencyMaxSec = "beambench_latency_max_seconds"
)

// WriteOpenMetrics renders the plane's current snapshot in OpenMetrics
// text format — hand-rolled, no client library: a # TYPE and # HELP
// line per family, samples with escaped label values, and the
// terminating # EOF the format requires. Counter families expose the
// _total sample suffix and are monotone over the plane's lifetime
// (stage totals and run counts only grow). Nil-safe: a nil plane
// writes an empty, valid exposition.
func (p *Plane) WriteOpenMetrics(w io.Writer) error {
	snap := p.Snapshot()
	bw := bufio.NewWriter(w)

	family(bw, famUptime, "gauge", "Seconds since the telemetry plane was created.")
	sample(bw, famUptime, nil, fmtFloat(snap.UptimeSec))

	family(bw, famWorkload, "gauge", "Configured workload size in records.")
	sample(bw, famWorkload, nil, strconv.Itoa(snap.Records))

	family(bw, famCells, "gauge", "Matrix cells by lifecycle state.")
	for _, st := range []struct {
		name string
		n    int
	}{
		{string(CellPending), snap.Progress.Pending},
		{string(CellRunning), snap.Progress.Running},
		{string(CellDone), snap.Progress.Done},
		{string(CellSkipped), snap.Progress.Skipped},
		{string(CellFailed), snap.Progress.Failed},
	} {
		sample(bw, famCells, labels{{"state", st.name}}, strconv.Itoa(st.n))
	}

	family(bw, famRunsDone, "counter", "Completed runs per matrix cell.")
	for _, c := range snap.Cells {
		sample(bw, famRunsDone+"_total", labels{{"cell", c.Key}}, strconv.Itoa(c.RunsDone))
	}

	family(bw, famStageRecords, "counter", "Records marked through a pipeline stage, accumulated over the cell's runs.")
	for _, c := range snap.Cells {
		for _, s := range c.Stages {
			sample(bw, famStageRecords+"_total", labels{{"cell", c.Key}, {"stage", s.Name}}, strconv.FormatInt(s.Records, 10))
		}
	}

	family(bw, famStageRate, "gauge", "Records counted in a stage's in-flight one-second window.")
	for _, c := range snap.Cells {
		for _, s := range c.Stages {
			sample(bw, famStageRate, labels{{"cell", c.Key}, {"stage", s.Name}}, strconv.FormatInt(s.CurrentRate, 10))
		}
	}

	family(bw, famConsumerLag, "gauge", "Per-partition consumer lag (end offset minus fetch position) of the running cell's topics.")
	for _, c := range snap.Cells {
		for _, l := range c.ConsumerLag {
			sample(bw, famConsumerLag, labels{
				{"cell", c.Key}, {"topic", l.Topic}, {"partition", strconv.Itoa(l.Partition)},
			}, strconv.FormatInt(l.Lag, 10))
		}
	}

	family(bw, famWatermarkLag, "gauge", "Frontier-relative watermark lag per operator of the running cell.")
	for _, c := range snap.Cells {
		for _, l := range c.WatermarkLag {
			sample(bw, famWatermarkLag, labels{{"cell", c.Key}, {"operator", l.Operator}}, fmtFloat(l.LagSec))
		}
	}

	family(bw, famTopicRecords, "gauge", "Benchmark topic end offsets of each cell's most recent run.")
	for _, c := range snap.Cells {
		sample(bw, famTopicRecords, labels{{"cell", c.Key}, {"topic", "input"}}, strconv.FormatInt(c.InputRecords, 10))
		sample(bw, famTopicRecords, labels{{"cell", c.Key}, {"topic", "output"}}, strconv.FormatInt(c.OutputRecords, 10))
	}

	family(bw, famLatencySec, "gauge", "Event-time latency quantiles of the cell's sketch so far.")
	for _, c := range snap.Cells {
		if c.Latency == nil {
			continue
		}
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", c.Latency.P50}, {"0.9", c.Latency.P90}, {"0.99", c.Latency.P99}} {
			sample(bw, famLatencySec, labels{{"cell", c.Key}, {"quantile", q.q}}, fmtFloat(q.v))
		}
	}
	family(bw, famLatencyCount, "counter", "Event-time latency observations sketched per cell.")
	for _, c := range snap.Cells {
		if c.Latency == nil {
			continue
		}
		sample(bw, famLatencyCount+"_total", labels{{"cell", c.Key}}, strconv.FormatInt(c.Latency.Count, 10))
	}
	family(bw, famLatencyMaxSec, "gauge", "Largest event-time latency observed per cell.")
	for _, c := range snap.Cells {
		if c.Latency == nil {
			continue
		}
		sample(bw, famLatencyMaxSec, labels{{"cell", c.Key}}, fmtFloat(c.Latency.Max))
	}

	if _, err := bw.WriteString("# EOF\n"); err != nil {
		return err
	}
	return bw.Flush()
}

type labelPair struct{ k, v string }
type labels []labelPair

func family(w *bufio.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
}

func sample(w *bufio.Writer, name string, ls labels, value string) {
	w.WriteString(name)
	if len(ls) > 0 {
		w.WriteByte('{')
		for i, l := range ls {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l.k)
			w.WriteString(`="`)
			w.WriteString(escapeLabelValue(l.v))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// fmtFloat renders a float sample value; OpenMetrics wants plain
// decimal or scientific notation, which strconv's 'g' produces.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue applies the exposition-format escaping rules for
// label values: backslash, double quote, and line feed.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// MetricPoint is one parsed exposition sample.
type MetricPoint struct {
	// Name is the full sample name, including any _total suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// MetricFamily is one parsed exposition family: its declared type and
// every sample that belongs to it.
type MetricFamily struct {
	Name string
	Type string
	Help string
	// Points holds the family's samples in exposition order.
	Points []MetricPoint
}

// ParseOpenMetrics parses exposition text back into families — the
// conformance half of the contract: everything WriteOpenMetrics emits
// must round-trip through this parser, and the tests scrape a live
// endpoint and feed it here. The parser is strict about what the
// writer produces (TYPE before samples, escaped label values, a final
// # EOF) and rejects text that violates it.
func ParseOpenMetrics(r io.Reader) ([]MetricFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var fams []MetricFamily
	byName := map[string]int{}
	sawEOF := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("obs: line %d: content after # EOF", lineNo)
		}
		switch {
		case line == "# EOF":
			sawEOF = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
			}
			if _, dup := byName[parts[0]]; dup {
				return nil, fmt.Errorf("obs: line %d: duplicate family %q", lineNo, parts[0])
			}
			byName[parts[0]] = len(fams)
			fams = append(fams, MetricFamily{Name: parts[0], Type: parts[1]})
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("obs: line %d: malformed HELP line %q", lineNo, line)
			}
			i, ok := byName[parts[0]]
			if !ok {
				return nil, fmt.Errorf("obs: line %d: HELP before TYPE for %q", lineNo, parts[0])
			}
			fams[i].Help = parts[1]
		case strings.HasPrefix(line, "#"):
			// Other comments are legal exposition text; skip.
		case strings.TrimSpace(line) == "":
			return nil, fmt.Errorf("obs: line %d: blank line in exposition", lineNo)
		default:
			pt, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			i, ok := byName[familyOf(pt.Name, byName)]
			if !ok {
				return nil, fmt.Errorf("obs: line %d: sample %q has no TYPE declaration", lineNo, pt.Name)
			}
			fams[i].Points = append(fams[i].Points, pt)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("obs: exposition missing terminating # EOF")
	}
	return fams, nil
}

// familyOf resolves a sample name to its declaring family: exact match
// first, then the counter convention of stripping a _total suffix.
func familyOf(name string, byName map[string]int) string {
	if _, ok := byName[name]; ok {
		return name
	}
	if base, ok := strings.CutSuffix(name, "_total"); ok {
		if _, declared := byName[base]; declared {
			return base
		}
	}
	return name
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (MetricPoint, error) {
	pt := MetricPoint{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return pt, fmt.Errorf("malformed sample %q", line)
	} else {
		pt.Name = rest[:i]
		if rest[i] == '{' {
			body, tail, err := splitLabelBlock(rest[i+1:])
			if err != nil {
				return pt, err
			}
			if err := parseLabels(body, pt.Labels); err != nil {
				return pt, err
			}
			rest = strings.TrimPrefix(tail, " ")
		} else {
			rest = rest[i+1:]
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return pt, fmt.Errorf("malformed sample value in %q: %w", line, err)
	}
	pt.Value = v
	return pt, nil
}

// splitLabelBlock scans to the closing brace of a label block,
// honouring backslash escapes inside quoted values, and returns the
// block body and the remainder after the brace.
func splitLabelBlock(s string) (body, tail string, err error) {
	inQuote, escaped := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return s[:i], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label block in %q", s)
}

// parseLabels parses `k="v",k2="v2"` into dst, unescaping values.
func parseLabels(body string, dst map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", body)
		}
		key := body[i : i+eq]
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return fmt.Errorf("unterminated label value in %q", body)
			}
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return fmt.Errorf("dangling escape in %q", body)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("unknown escape \\%c in %q", body[i+1], body)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		dst[key] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return fmt.Errorf("expected ',' between labels in %q", body)
			}
			i++
		}
	}
	return nil
}

// FamilyNames lists the parsed family names, sorted — a convenience
// for conformance assertions.
func FamilyNames(fams []MetricFamily) []string {
	out := make([]string, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}
