package obs

import (
	"testing"
	"time"

	"beambench/internal/broker"
)

func TestMonitorSamplesAndSummaries(t *testing.T) {
	tr := NewTracer(1 << 10)
	scope := tr.Scoped("cell/run0")
	m := NewMonitor(scope, time.Millisecond)

	var lag float64 = 10
	m.Sample("consumer-lag/input/p0", func() (float64, bool) {
		v := lag
		lag -= 1
		if lag < 0 {
			lag = 0
		}
		return v, true
	})
	m.Sample("skipped", func() (float64, bool) { return 99, false })
	m.Start()
	time.Sleep(10 * time.Millisecond)
	sums := m.Stop()

	byName := map[string]GaugeSummary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	// Summaries carry the bare gauge name — the scope identifies the
	// run, and bare names let one cell's runs merge by gauge.
	got, ok := byName["consumer-lag/input/p0"]
	if !ok {
		t.Fatalf("no consumer-lag summary; got %+v", sums)
	}
	if got.Samples < 2 {
		t.Errorf("only %d samples in 10ms at 1ms cadence", got.Samples)
	}
	if got.Max != 10 {
		t.Errorf("max = %v, want 10 (first sample)", got.Max)
	}
	if got.Mean <= 0 || got.Mean > 10 {
		t.Errorf("mean = %v out of range", got.Mean)
	}
	if _, ok := byName["skipped"]; ok {
		t.Error("sampler returning ok=false produced a series")
	}
	// Counter events landed in the shared ring under the scope prefix.
	found := false
	for _, ev := range tr.Events() {
		if ev.Phase == PhaseCounter && ev.Track == "cell/run0/consumer-lag/input/p0" {
			found = true
		}
	}
	if !found {
		t.Error("no counter events recorded on the scoped track")
	}
	// Stop is idempotent and stable.
	again := m.Stop()
	if len(again) != len(sums) {
		t.Errorf("second Stop() returned %d series, want %d", len(again), len(sums))
	}
}

func TestMonitorFinalTickCoversShortRuns(t *testing.T) {
	tr := NewTracer(64)
	m := NewMonitor(tr, time.Hour) // cadence far beyond the run
	m.Sample("x", func() (float64, bool) { return 7, true })
	m.Start()
	sums := m.Stop()
	if len(sums) != 1 || sums[0].Samples != 1 || sums[0].Last != 7 {
		t.Errorf("final tick on Stop missing: %+v", sums)
	}
}

func TestMonitorWatermarkLagIsFrontierRelative(t *testing.T) {
	tr := NewTracer(256)
	m := NewMonitor(tr, time.Hour)
	ahead := tr.Gauge("watermark-lag/source")
	behind := tr.Gauge("watermark-lag/gbk")
	unset := tr.Gauge("watermark-lag/idle")
	done := tr.Gauge("watermark-lag/sink")
	_ = unset

	base := time.Unix(1000, 0)
	ahead.SetTime(base.Add(5 * time.Second))
	behind.SetTime(base)
	done.SetTime(time.Unix(0, 1<<63-1)) // watermark.EndOfTime

	m.Start()
	sums := m.Stop()
	byName := map[string]GaugeSummary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	if s := byName["watermark-lag/source"]; s.Last != 0 {
		t.Errorf("frontier operator lag = %v, want 0", s.Last)
	}
	if s := byName["watermark-lag/gbk"]; s.Last != 5 {
		t.Errorf("behind operator lag = %v s, want 5", s.Last)
	}
	if s := byName["watermark-lag/sink"]; s.Last != 0 {
		t.Errorf("drained operator lag = %v, want 0", s.Last)
	}
	if _, ok := byName["watermark-lag/idle"]; ok {
		t.Error("never-set gauge produced samples")
	}
}

// TestConsumerLagPerPartitionP2 is the satellite test: with a
// two-partition topic and interleaved appends, the broker-derived lag
// must be correct per partition, not as an aggregate.
func TestConsumerLagPerPartitionP2(t *testing.T) {
	b := broker.New()
	defer b.Close()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	prod, err := b.NewProducer(broker.ProducerConfig{
		// Route by key byte so the interleaving is explicit.
		Partitioner: func(key []byte, partitions int) int { return int(key[0]) % partitions },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave appends: 6 records to p0, 4 to p1.
	for i := 0; i < 10; i++ {
		part := i % 2
		if i >= 8 {
			part = 0 // the tail goes to p0 only
		}
		if err := prod.Send("in", []byte{byte(part)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}

	// Two consumers, one per partition, drain different amounts:
	// p0 fetches 2 of its 6, p1 fetches all 4.
	c0, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.Assign("in", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Poll(); err != nil {
		t.Fatal(err)
	}
	c1, err := b.NewConsumer(broker.ConsumerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Assign("in", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Poll(); err != nil {
		t.Fatal(err)
	}

	ends, err := b.EndOffsets("in")
	if err != nil {
		t.Fatal(err)
	}
	consumed, err := b.ConsumedOffsets("in")
	if err != nil {
		t.Fatal(err)
	}
	if ends[0] != 6 || ends[1] != 4 {
		t.Fatalf("end offsets = %v, want [6 4]", ends)
	}
	if consumed[0] != 2 || consumed[1] != 4 {
		t.Fatalf("consumed offsets = %v, want [2 4]", consumed)
	}

	// Wire the same derivation the harness monitor uses and check the
	// per-partition counter tracks disagree — lag is not an aggregate.
	tr := NewTracer(256)
	m := NewMonitor(tr, time.Hour)
	for p := 0; p < 2; p++ {
		part := p
		m.Sample("consumer-lag/in/p"+string(rune('0'+part)), func() (float64, bool) {
			ends, err1 := b.EndOffsets("in")
			cons, err2 := b.ConsumedOffsets("in")
			if err1 != nil || err2 != nil {
				return 0, false
			}
			return float64(ends[part] - cons[part]), true
		})
	}
	m.Start()
	sums := m.Stop()
	byName := map[string]GaugeSummary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	if s := byName["consumer-lag/in/p0"]; s.Last != 4 {
		t.Errorf("p0 lag = %v, want 4 (6 appended, 2 consumed)", s.Last)
	}
	if s := byName["consumer-lag/in/p1"]; s.Last != 0 {
		t.Errorf("p1 lag = %v, want 0 (fully drained)", s.Last)
	}
}

func TestMergeGaugeSummaries(t *testing.T) {
	a := []GaugeSummary{{Name: "x", Samples: 2, Max: 4, Mean: 3, Last: 4}}
	b := []GaugeSummary{
		{Name: "x", Samples: 2, Max: 10, Mean: 9, Last: 8},
		{Name: "y", Samples: 1, Max: 1, Mean: 1, Last: 1},
	}
	out := MergeGaugeSummaries(a, b)
	if len(out) != 2 {
		t.Fatalf("merged %d series, want 2", len(out))
	}
	x := out[0]
	if x.Name != "x" || x.Samples != 4 || x.Max != 10 || x.Last != 8 {
		t.Errorf("merged x = %+v", x)
	}
	if want := (3.0*2 + 9.0*2) / 4; x.Mean != want {
		t.Errorf("merged mean = %v, want %v", x.Mean, want)
	}
}
