// Package obs is the run-observation layer: span tracing, lag gauges,
// and profiling hooks that let a benchmark cell be inspected *while it
// runs* rather than only through the aggregate report.
//
// # Contract
//
// Everything in this package follows the nil-safe collector pattern
// established by internal/metrics: a nil *Tracer, nil *Gauge, nil
// *Monitor, or zero Span is a valid, fully disabled instance — every
// method is a no-op and the record hot path performs zero allocations.
// Callers therefore thread a single *Tracer through engine configs
// unconditionally and never branch on "is tracing on".
//
// Timestamps are monotonic. A Tracer reads the wall clock exactly once,
// at construction, to anchor the trace; every event time after that is
// a time.Since against that anchor, so spans are immune to wall-clock
// steps mid-run. Code in this package that needs another wall-clock
// read must carry a `beamvet:allow determinism` directive — the
// package is inside the determinism analyzer's scope on purpose.
//
// # Spans and counters
//
// Span events land in a fixed-capacity ring guarded by a single short
// mutex hold. When the ring is full the oldest events are overwritten
// and Dropped reports how many; recording never blocks and never
// allocates after the ring is built. The trace exports as Chrome
// trace-event JSON (WriteChromeTrace) and opens directly in Perfetto
// or chrome://tracing. Gauges hold the latest value of a sampled
// quantity (consumer offsets, watermarks) in an atomic; the Monitor
// goroutine turns them into counter tracks at a configurable cadence
// and into per-run max/mean summaries for the report.
//
// # Watermark-lag semantics
//
// Event times in this benchmark are synthetic (the AOL QueryTime
// column), so "processing time minus watermark" is meaningless.
// Watermark lag is instead frontier-relative: at each sample the
// monitor takes the most advanced live watermark across the run's
// operators as the frontier and reports each operator's distance
// behind it, in seconds. An operator at watermark.EndOfTime has
// drained and reports zero lag.
package obs
