// Package obs is the run-observation layer: span tracing, lag gauges,
// and profiling hooks that let a benchmark cell be inspected *while it
// runs* rather than only through the aggregate report.
//
// # Contract
//
// Everything in this package follows the nil-safe collector pattern
// established by internal/metrics: a nil *Tracer, nil *Gauge, nil
// *Monitor, or zero Span is a valid, fully disabled instance — every
// method is a no-op and the record hot path performs zero allocations.
// Callers therefore thread a single *Tracer through engine configs
// unconditionally and never branch on "is tracing on".
//
// Timestamps are monotonic. A Tracer reads the wall clock exactly once,
// at construction, to anchor the trace; every event time after that is
// a time.Since against that anchor, so spans are immune to wall-clock
// steps mid-run. Code in this package that needs another wall-clock
// read must carry a `beamvet:allow determinism` directive — the
// package is inside the determinism analyzer's scope on purpose.
//
// # Spans and counters
//
// Span events land in a fixed-capacity ring guarded by a single short
// mutex hold. When the ring is full the oldest events are overwritten
// and Dropped reports how many; recording never blocks and never
// allocates after the ring is built. The trace exports as Chrome
// trace-event JSON (WriteChromeTrace) and opens directly in Perfetto
// or chrome://tracing. Gauges hold the latest value of a sampled
// quantity (consumer offsets, watermarks) in an atomic; the Monitor
// goroutine turns them into counter tracks at a configurable cadence
// and into per-run max/mean summaries for the report.
//
// # Watermark-lag semantics
//
// Event times in this benchmark are synthetic (the AOL QueryTime
// column), so "processing time minus watermark" is meaningless.
// Watermark lag is instead frontier-relative: at each sample the
// monitor takes the most advanced live watermark across the run's
// operators as the frontier and reports each operator's distance
// behind it, in seconds. An operator at watermark.EndOfTime has
// drained and reports zero lag. WatermarkLags applies the same
// computation on demand for the snapshot path.
//
// # Snapshots and exposition
//
// The Plane is the pull-based live-telemetry registry: the harness
// registers every matrix cell on it (pending -> running -> done /
// skipped / failed) and attaches each run's live sources (the metrics
// collector, the run-scoped tracer's gauge registry, and two broker
// accessors for consumer lag and topic end offsets). Nothing is
// sampled until someone asks: Snapshot() walks the cells and reads
// each source at call time, so a plane attached to a run that nobody
// scrapes costs exactly the field assignments in StartRun/EndRun.
// Consistency is per-cell — each cell's fields are read under its own
// short mutex hold, never under a global lock, and none of the sources
// sit on a per-record path (the collector is internally locked, gauges
// are atomics, broker accessors take broker-internal locks).
//
// Serve exposes the plane over HTTP: /metrics in OpenMetrics text
// exposition (hand-rolled writer + strict parser in openmetrics.go, no
// dependencies), /snapshot as versioned JSON (SnapshotSchemaVersion),
// and /debug/pprof on an explicitly built mux. The same nil-safe
// contract applies end to end: a nil *Plane is a valid disabled plane
// — Cell returns a nil *LiveCell whose lifecycle methods no-op, and a
// nil plane still serves the empty snapshot — so the harness threads
// Config.Plane unconditionally, exactly like Config.Trace.
package obs
