package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// scrapeClient returns a client whose idle connections are torn down at
// test end, keeping the package's goleak gate clean.
func scrapeClient(t *testing.T) *http.Client {
	t.Helper()
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr, Timeout: 10 * time.Second}
}

func get(t *testing.T, c *http.Client, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServeEndpoints(t *testing.T) {
	p := populatedPlane(t)
	s, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	c := scrapeClient(t)

	code, body, hdr := get(t, c, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if got := hdr.Get("Content-Type"); got != OpenMetricsContentType {
		t.Fatalf("/metrics content type = %q", got)
	}
	if _, err := ParseOpenMetrics(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	code, body, hdr = get(t, c, s.URL()+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status = %d", code)
	}
	if got := hdr.Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Fatalf("/snapshot content type = %q", got)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot does not decode: %v", err)
	}
	if snap.Schema != SnapshotSchemaVersion || len(snap.Cells) != 2 {
		t.Fatalf("/snapshot payload = %+v", snap)
	}

	code, body, _ = get(t, c, s.URL()+"/debug/pprof/")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/ status = %d, body %d bytes", code, len(body))
	}
	code, _, _ = get(t, c, s.URL()+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine status = %d", code)
	}
}

func TestServeCloseIdempotent(t *testing.T) {
	s, err := NewPlane(1, 1).Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	var nilServer *Server
	if err := nilServer.Close(); err != nil {
		t.Fatalf("nil close: %v", err)
	}
}

func TestServeRejectsBadAddr(t *testing.T) {
	if _, err := NewPlane(1, 1).Serve("definitely:not:an:addr"); err == nil {
		t.Fatal("bad address accepted")
	}
}
