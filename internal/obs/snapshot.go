package obs

import (
	"sort"
	"strings"
	"sync"

	"beambench/internal/metrics"
)

// SnapshotSchemaVersion is the /snapshot JSON contract version. Bump it
// when a field changes meaning or disappears; adding fields is
// backward-compatible and does not bump.
const SnapshotSchemaVersion = 1

// CellState is a live cell's position in the matrix lifecycle.
type CellState string

const (
	// CellPending is a matrix cell the scheduler has not started yet.
	CellPending CellState = "pending"
	// CellRunning is a cell with a run currently executing.
	CellRunning CellState = "running"
	// CellDone is a cell whose runs all completed.
	CellDone CellState = "done"
	// CellSkipped is a cell whose runner rejected the pipeline.
	CellSkipped CellState = "skipped"
	// CellFailed is a cell whose run returned an error.
	CellFailed CellState = "failed"
)

// LagSample is one partition's consumer lag at scrape time: end offset
// minus the consumers' fetch position.
type LagSample struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
	Lag       int64  `json:"lag"`
}

// WatermarkLag is one operator's frontier-relative watermark lag at
// scrape time, in seconds (see the package comment for the semantics).
type WatermarkLag struct {
	Operator string  `json:"operator"`
	LagSec   float64 `json:"lagSec"`
}

// StageSnapshot is one pipeline stage's throughput view at scrape time.
type StageSnapshot struct {
	Name string `json:"name"`
	// Records is the total marked through the stage so far (monotone
	// over the cell's lifetime — stages accumulate across runs).
	Records int64 `json:"records"`
	// CurrentRate is the in-flight one-second window count, the
	// instantaneous rate signal.
	CurrentRate int64 `json:"currentRate"`
}

// CellSnapshot is one matrix cell's view at scrape time.
type CellSnapshot struct {
	Key      string    `json:"key"`
	State    CellState `json:"state"`
	RunsDone int       `json:"runsDone"`
	// SkipReason carries the unsupported-transform message for skipped
	// cells.
	SkipReason string `json:"skipReason,omitempty"`
	// InputRecords / OutputRecords are the benchmark topics' end
	// offsets — for a running cell scraped live from the broker, for a
	// finished cell the last observed values.
	InputRecords  int64 `json:"inputRecords"`
	OutputRecords int64 `json:"outputRecords"`
	// Stages lists per-stage throughput, sorted by stage name for a
	// byte-stable feed.
	Stages []StageSnapshot `json:"stages,omitempty"`
	// Latency is the cell's event-time latency sketch so far; nil until
	// the first run's result calculation lands observations.
	Latency *metrics.LatencySummary `json:"latency,omitempty"`
	// ConsumerLag and WatermarkLag are live only while a run executes;
	// both empty on finished cells.
	ConsumerLag  []LagSample    `json:"consumerLag,omitempty"`
	WatermarkLag []WatermarkLag `json:"watermarkLag,omitempty"`
}

// Progress counts the matrix cells by state.
type Progress struct {
	Total   int `json:"total"`
	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Skipped int `json:"skipped"`
	Failed  int `json:"failed"`
}

// Snapshot is one consistent view of the whole run, the /snapshot JSON
// payload and the input of the -watch dashboard. Cells appear in
// registration order (the harness registers them in canonical matrix
// order).
type Snapshot struct {
	Schema int `json:"schema"`
	// Records and Runs echo the benchmark configuration so a consumer
	// can derive per-record rates without a side channel.
	Records int `json:"records"`
	Runs    int `json:"runs"`
	// UptimeSec is the plane's age — scrape deltas divide by this.
	UptimeSec float64        `json:"uptimeSec"`
	Progress  Progress       `json:"progress"`
	Cells     []CellSnapshot `json:"cells"`
}

// CellSources are the live handles a cell's current run exposes to the
// plane. Every field is optional; nil fields simply yield no samples.
// All of them must be safe for concurrent use at scrape cadence — the
// plane calls them from the HTTP handler goroutine while the run
// executes (the collector is internally locked, gauges are atomics,
// and the broker accessors take broker-internal locks; none of these
// sit on the per-record hot path).
type CellSources struct {
	// Collector is the cell's metrics collector (stages + latency).
	Collector *metrics.Collector
	// Tracer is the run-scoped tracer whose gauge registry carries the
	// engines' watermark gauges.
	Tracer *Tracer
	// ConsumerLag samples per-partition consumer lag from the run's
	// broker.
	ConsumerLag func() []LagSample
	// TopicEnds reports the input and output topics' record counts
	// (end offsets); ok=false when the broker cannot answer (topic torn
	// down mid-run).
	TopicEnds func() (in, out int64, ok bool)
}

// LiveCell is one matrix cell's registration on the plane. The harness
// drives its lifecycle: StartRun when a run launches, EndRun when it
// finishes, Finish when the cell completes. A nil LiveCell no-ops.
type LiveCell struct {
	key string

	mu         sync.Mutex
	state      CellState
	runsDone   int
	skipReason string
	src        CellSources
	lastIn     int64
	lastOut    int64
}

// Plane is the live telemetry plane: the registry of matrix cells the
// exposition server snapshots. A nil *Plane is a valid disabled plane —
// every method no-ops and returns zero values — so the harness threads
// it unconditionally, matching the package's nil-safe contract.
type Plane struct {
	clock *Tracer // anchor for UptimeSec; never exported

	mu      sync.Mutex
	records int
	runs    int
	cells   map[string]*LiveCell
	order   []string
}

// NewPlane builds an empty plane. records and runs echo the benchmark
// configuration into every snapshot.
func NewPlane(records, runs int) *Plane {
	return &Plane{
		clock:   NewTracer(1),
		cells:   make(map[string]*LiveCell),
		records: records,
		runs:    runs,
	}
}

// Expect pre-registers cells as pending, in the given order — the
// harness passes the canonical matrix order so the dashboard's row
// order matches the report's. Nil-safe.
func (p *Plane) Expect(keys []string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, k := range keys {
		p.cellLocked(k)
	}
}

// Cell returns the cell registered under key, creating it (pending) on
// first use. A nil plane returns a nil cell, whose methods no-op.
func (p *Plane) Cell(key string) *LiveCell {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cellLocked(key)
}

func (p *Plane) cellLocked(key string) *LiveCell {
	if lc, ok := p.cells[key]; ok {
		return lc
	}
	lc := &LiveCell{key: key, state: CellPending}
	p.cells[key] = lc
	p.order = append(p.order, key)
	return lc
}

// StartRun attaches a run's live sources and marks the cell running.
// Nil-safe.
func (lc *LiveCell) StartRun(src CellSources) {
	if lc == nil {
		return
	}
	lc.mu.Lock()
	lc.state = CellRunning
	lc.src = src
	lc.mu.Unlock()
}

// EndRun records a completed run and detaches the run's broker-backed
// sources (the broker is about to be discarded), keeping the final
// topic end offsets and the collector, whose stage totals and latency
// sketch persist across runs. Nil-safe.
func (lc *LiveCell) EndRun() {
	if lc == nil {
		return
	}
	lc.mu.Lock()
	if lc.src.TopicEnds != nil {
		if in, out, ok := lc.src.TopicEnds(); ok {
			lc.lastIn, lc.lastOut = in, out
		}
	}
	lc.runsDone++
	lc.src.ConsumerLag = nil
	lc.src.TopicEnds = nil
	lc.src.Tracer = nil
	lc.mu.Unlock()
}

// Finish moves the cell to a terminal state (done, skipped, or
// failed); reason carries the skip or failure message. Nil-safe.
func (lc *LiveCell) Finish(state CellState, reason string) {
	if lc == nil {
		return
	}
	lc.mu.Lock()
	lc.state = state
	lc.skipReason = reason
	lc.mu.Unlock()
}

// snapshot materializes the cell's view. Called from the plane's
// scrape path only.
func (lc *LiveCell) snapshot() CellSnapshot {
	lc.mu.Lock()
	state := lc.state
	runsDone := lc.runsDone
	reason := lc.skipReason
	src := lc.src
	in, out := lc.lastIn, lc.lastOut
	lc.mu.Unlock()

	cs := CellSnapshot{
		Key:           lc.key,
		State:         state,
		RunsDone:      runsDone,
		SkipReason:    reason,
		InputRecords:  in,
		OutputRecords: out,
	}
	if src.TopicEnds != nil {
		if i, o, ok := src.TopicEnds(); ok {
			cs.InputRecords, cs.OutputRecords = i, o
		}
	}
	if src.ConsumerLag != nil {
		cs.ConsumerLag = src.ConsumerLag()
	}
	if src.Tracer != nil {
		cs.WatermarkLag = WatermarkLags(src.Tracer)
	}
	if src.Collector != nil {
		src.Collector.EachStage(func(s *metrics.Stage) {
			cs.Stages = append(cs.Stages, StageSnapshot{
				Name:        s.Name(),
				Records:     s.Records(),
				CurrentRate: s.Current(),
			})
		})
		sort.Slice(cs.Stages, func(i, j int) bool { return cs.Stages[i].Name < cs.Stages[j].Name })
		if lat := src.Collector.LatencySummary(); lat.Count > 0 {
			cs.Latency = &lat
		}
	}
	return cs
}

// Snapshot takes one consistent view of the plane. Consistency is
// per-cell: each cell's fields are read under its own lock, so a cell
// never mixes two runs' sources, but cells scraped early in the walk
// may be one run ahead of cells scraped late — the dashboard tolerance,
// not a correctness issue. Nil-safe: a nil plane yields a zero
// snapshot.
func (p *Plane) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{Schema: SnapshotSchemaVersion}
	}
	p.mu.Lock()
	order := append([]string(nil), p.order...)
	cells := make([]*LiveCell, 0, len(order))
	for _, k := range order {
		cells = append(cells, p.cells[k])
	}
	records, runs := p.records, p.runs
	p.mu.Unlock()

	snap := Snapshot{
		Schema:    SnapshotSchemaVersion,
		Records:   records,
		Runs:      runs,
		UptimeSec: p.clock.Now().Seconds(),
		Cells:     make([]CellSnapshot, 0, len(cells)),
	}
	for _, lc := range cells {
		cs := lc.snapshot()
		snap.Cells = append(snap.Cells, cs)
		snap.Progress.Total++
		switch cs.State {
		case CellPending:
			snap.Progress.Pending++
		case CellRunning:
			snap.Progress.Running++
		case CellDone:
			snap.Progress.Done++
		case CellSkipped:
			snap.Progress.Skipped++
		case CellFailed:
			snap.Progress.Failed++
		}
	}
	return snap
}

// WatermarkLags converts a run-scoped tracer's watermark gauges into
// frontier-relative lag, the same computation the Monitor performs per
// tick (see the package comment): the most advanced live watermark
// defines the frontier, each operator reports its distance behind it,
// a drained operator (EndOfTime) reports zero, and a gauge never set
// yields no sample. Gauge names arrive fully scoped
// ("cell/runN/watermark-lag/op"); the operator label is the bare
// segment after the "watermark-lag/" marker.
func WatermarkLags(tr *Tracer) []WatermarkLag {
	gauges := tr.Gauges()
	if len(gauges) == 0 {
		return nil
	}
	var frontier int64
	for _, g := range gauges {
		v := g.Load()
		if v != 0 && v != endOfTimeNanos && v > frontier {
			frontier = v
		}
	}
	out := make([]WatermarkLag, 0, len(gauges))
	for _, g := range gauges {
		v := g.Load()
		if v == 0 {
			continue
		}
		lag := 0.0
		if v != endOfTimeNanos {
			lag = float64(frontier-v) / 1e9
			if lag < 0 {
				lag = 0
			}
		}
		out = append(out, WatermarkLag{Operator: operatorLabel(g.Name()), LagSec: lag})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Operator < out[j].Operator })
	return out
}

// operatorLabel strips the scope prefix up to and including the
// "watermark-lag/" marker, leaving the operator name the engine chose.
func operatorLabel(name string) string {
	const marker = "watermark-lag/"
	if i := strings.Index(name, marker); i >= 0 {
		return name[i+len(marker):]
	}
	return name
}
