package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format, the
// subset Perfetto and chrome://tracing understand: complete spans
// ("X"), counters ("C"), instants ("i"), and thread-name metadata
// ("M"). Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace snapshots the tracer's events and writes them as
// Chrome trace-event JSON. Span and instant tracks become named
// threads under pid 1; counter events become counter tracks. If events
// were dropped from the ring, a final "obs/dropped-events" counter
// records how many.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	sortEvents(evs)

	tids := make(map[string]int)
	var tidOrder []string
	tidOf := func(track string) int {
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		tidOrder = append(tidOrder, track)
		return id
	}

	out := make([]chromeEvent, 0, len(evs)+len(tids)+1)
	for _, ev := range evs {
		switch ev.Phase {
		case PhaseComplete:
			out = append(out, chromeEvent{
				Name: ev.Name, Phase: "X", TS: micros(ev.Start), Dur: micros(ev.Dur),
				PID: 1, TID: tidOf(ev.Track),
			})
		case PhaseInstant:
			out = append(out, chromeEvent{
				Name: ev.Name, Phase: "i", TS: micros(ev.Start),
				PID: 1, TID: tidOf(ev.Track), Scope: "t",
			})
		case PhaseCounter:
			out = append(out, chromeEvent{
				Name: ev.Track, Phase: "C", TS: micros(ev.Start),
				PID: 1, Args: map[string]any{"value": ev.Value},
			})
		}
	}
	if d := t.Dropped(); d > 0 {
		out = append(out, chromeEvent{
			Name: "obs/dropped-events", Phase: "C", TS: micros(t.Now()),
			PID: 1, Args: map[string]any{"value": float64(d)},
		})
	}
	meta := make([]chromeEvent, 0, len(tidOrder))
	for _, track := range tidOrder {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tids[track],
			Args: map[string]any{"name": track},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the trace to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create trace file: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StageStat aggregates the complete-events of one track: how often the
// track's spans fired and their total wall time.
type StageStat struct {
	Track string
	Count int
	Total time.Duration
}

// CounterStat summarizes one counter track's samples.
type CounterStat struct {
	Track   string
	Samples int
	Max     float64
	Mean    float64
	Last    float64
}

// Summary is the resultcalc-style digest of a trace file: top stages
// by wall time and peak/mean per counter track.
type Summary struct {
	Stages   []StageStat
	Counters []CounterStat
}

// Summarize parses Chrome trace-event JSON (either the object form
// WriteChromeTrace emits or a bare event array) and aggregates spans
// per track and counters per series.
func Summarize(r io.Reader) (*Summary, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	var wrapped chromeTrace
	if err := json.Unmarshal(raw, &wrapped); err != nil {
		if err2 := json.Unmarshal(raw, &wrapped.TraceEvents); err2 != nil {
			return nil, fmt.Errorf("obs: parse trace: %w", err)
		}
	}

	threadName := make(map[int]string)
	for _, ev := range wrapped.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			if name, ok := ev.Args["name"].(string); ok {
				threadName[ev.TID] = name
			}
		}
	}

	stages := make(map[string]*StageStat)
	var stageOrder []string
	counters := make(map[string]*CounterStat)
	var counterOrder []string
	for _, ev := range wrapped.TraceEvents {
		switch ev.Phase {
		case "X":
			track := threadName[ev.TID]
			if track == "" {
				track = ev.Name
			}
			st, ok := stages[track]
			if !ok {
				st = &StageStat{Track: track}
				stages[track] = st
				stageOrder = append(stageOrder, track)
			}
			st.Count++
			st.Total += time.Duration(ev.Dur * 1e3)
		case "C":
			v, ok := ev.Args["value"].(float64)
			if !ok {
				continue
			}
			cs, found := counters[ev.Name]
			if !found {
				cs = &CounterStat{Track: ev.Name}
				counters[ev.Name] = cs
				counterOrder = append(counterOrder, ev.Name)
			}
			cs.Samples++
			if v > cs.Max {
				cs.Max = v
			}
			// Mean accumulates as a running sum until the final pass.
			cs.Mean += v
			cs.Last = v
		}
	}

	s := &Summary{}
	for _, track := range stageOrder {
		s.Stages = append(s.Stages, *stages[track])
	}
	sort.SliceStable(s.Stages, func(i, j int) bool { return s.Stages[i].Total > s.Stages[j].Total })
	for _, name := range counterOrder {
		cs := *counters[name]
		cs.Mean /= float64(cs.Samples)
		s.Counters = append(s.Counters, cs)
	}
	sort.SliceStable(s.Counters, func(i, j int) bool { return s.Counters[i].Max > s.Counters[j].Max })
	return s, nil
}

// Format renders the summary as the text `beambench -trace-summary`
// prints: top stages by wall time, then counter tracks by peak value.
func (s *Summary) Format(topN int) string {
	var b strings.Builder
	b.WriteString("Top stages by wall time\n")
	n := len(s.Stages)
	if topN > 0 && n > topN {
		n = topN
	}
	for _, st := range s.Stages[:n] {
		fmt.Fprintf(&b, "  %-58s %4d span(s) %12s\n", st.Track, st.Count, st.Total.Round(time.Microsecond))
	}
	if len(s.Stages) > n {
		fmt.Fprintf(&b, "  ... %d more track(s)\n", len(s.Stages)-n)
	}
	b.WriteString("Counter tracks (peak / mean / last)\n")
	n = len(s.Counters)
	if topN > 0 && n > topN {
		n = topN
	}
	for _, cs := range s.Counters[:n] {
		fmt.Fprintf(&b, "  %-58s %10.2f / %8.2f / %8.2f  (%d samples)\n", cs.Track, cs.Max, cs.Mean, cs.Last, cs.Samples)
	}
	if len(s.Counters) > n {
		fmt.Fprintf(&b, "  ... %d more track(s)\n", len(s.Counters)-n)
	}
	return b.String()
}
