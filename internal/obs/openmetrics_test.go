package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"beambench/internal/metrics"
)

// populatedPlane builds a plane with one running cell exercising every
// family the writer knows.
func populatedPlane(t *testing.T) *Plane {
	t.Helper()
	p := NewPlane(500, 2)
	p.Expect([]string{`cell "weird\name`, "cell-two"})

	col := metrics.NewCollector()
	col.Stage("source").Mark(42)
	col.ObserveLatency(100 * time.Millisecond)

	tr := NewTracer(4).Scoped(`cell "weird\name/run0`)
	tr.Gauge("watermark-lag/op").SetTime(time.Unix(50, 0))

	p.Cell(`cell "weird\name`).StartRun(CellSources{
		Collector:   col,
		Tracer:      tr,
		ConsumerLag: func() []LagSample { return []LagSample{{Topic: "input", Partition: 1, Lag: 9}} },
		TopicEnds:   func() (int64, int64, bool) { return 100, 42, true },
	})
	return p
}

func TestWriteOpenMetricsRoundTrip(t *testing.T) {
	p := populatedPlane(t)
	var buf bytes.Buffer
	if err := p.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition missing # EOF terminator:\n%s", text)
	}

	fams, err := ParseOpenMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatalf("writer output does not parse: %v\n%s", err, text)
	}
	byName := map[string]MetricFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	// Every family must carry a TYPE and HELP.
	for _, f := range fams {
		if f.Type == "" || f.Help == "" {
			t.Fatalf("family %q missing type/help: %+v", f.Name, f)
		}
	}

	// Counter families expose _total samples.
	sr := byName[famStageRecords]
	if sr.Type != "counter" {
		t.Fatalf("%s type = %q, want counter", famStageRecords, sr.Type)
	}
	if len(sr.Points) != 1 || sr.Points[0].Name != famStageRecords+"_total" {
		t.Fatalf("stage records points = %+v", sr.Points)
	}
	if sr.Points[0].Value != 42 {
		t.Fatalf("stage records value = %v", sr.Points[0].Value)
	}
	// The hairy cell key round-trips through label escaping.
	if got := sr.Points[0].Labels["cell"]; got != `cell "weird\name` {
		t.Fatalf("cell label = %q", got)
	}

	lag := byName[famConsumerLag]
	if len(lag.Points) != 1 || lag.Points[0].Labels["partition"] != "1" || lag.Points[0].Value != 9 {
		t.Fatalf("consumer lag points = %+v", lag.Points)
	}
	wm := byName[famWatermarkLag]
	if len(wm.Points) != 1 || wm.Points[0].Labels["operator"] != "op" {
		t.Fatalf("watermark lag points = %+v", wm.Points)
	}
	cells := byName[famCells]
	stateTotals := map[string]float64{}
	for _, pt := range cells.Points {
		stateTotals[pt.Labels["state"]] = pt.Value
	}
	if stateTotals["running"] != 1 || stateTotals["pending"] != 1 {
		t.Fatalf("cell state samples = %+v", stateTotals)
	}
	if lq := byName[famLatencySec]; len(lq.Points) != 3 {
		t.Fatalf("latency quantile points = %+v", lq.Points)
	}
}

func TestWriteOpenMetricsNilPlane(t *testing.T) {
	var p *Plane
	var buf bytes.Buffer
	if err := p.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseOpenMetrics(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("nil plane exposition does not parse: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("nil plane exposition has no families")
	}
}

func TestParseOpenMetricsRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing EOF":        "# TYPE x gauge\n# HELP x x.\nx 1\n",
		"sample before TYPE": "y 1\n# EOF\n",
		"content after EOF":  "# EOF\nx 1\n",
		"bad value":          "# TYPE x gauge\n# HELP x x.\nx one\n# EOF\n",
		"unterminated block": "# TYPE x gauge\n# HELP x x.\nx{a=\"b 1\n# EOF\n",
	}
	for name, text := range cases {
		if _, err := ParseOpenMetrics(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabelValue(in); got != want {
		t.Fatalf("escape = %q, want %q", got, want)
	}
	if got := escapeLabelValue("plain"); got != "plain" {
		t.Fatalf("plain value rewritten: %q", got)
	}
}
