package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
)

// sanitize turns a cell key ("flink native WindowedCount") into a
// filename fragment.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

// CaptureCPU starts a CPU profile writing to dir/cpu_<name>.pprof and
// returns a stop function that finishes the profile and closes the
// file. Only one CPU profile can run per process; the harness rejects
// CPU profiling with parallel workers for exactly that reason.
func CaptureCPU(dir, name string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	path := filepath.Join(dir, "cpu_"+sanitize(name)+".pprof")
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// CaptureHeap writes a heap profile to dir/mem_<name>.pprof after a GC
// so the snapshot reflects live memory, not garbage.
func CaptureHeap(dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("obs: profile dir: %w", err)
	}
	path := filepath.Join(dir, "mem_"+sanitize(name)+".pprof")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return f.Close()
}
