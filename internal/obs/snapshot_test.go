package obs

import (
	"math"
	"testing"
	"time"

	"beambench/internal/metrics"
)

func TestPlaneNilSafe(t *testing.T) {
	var p *Plane
	p.Expect([]string{"a"})
	lc := p.Cell("a")
	if lc != nil {
		t.Fatalf("nil plane returned non-nil cell")
	}
	lc.StartRun(CellSources{})
	lc.EndRun()
	lc.Finish(CellDone, "")
	snap := p.Snapshot()
	if snap.Schema != SnapshotSchemaVersion {
		t.Fatalf("nil plane snapshot schema = %d, want %d", snap.Schema, SnapshotSchemaVersion)
	}
	if len(snap.Cells) != 0 || snap.Progress.Total != 0 {
		t.Fatalf("nil plane snapshot not empty: %+v", snap)
	}
}

func TestPlaneLifecycle(t *testing.T) {
	p := NewPlane(1000, 3)
	p.Expect([]string{"cell-a", "cell-b", "cell-c"})

	snap := p.Snapshot()
	if snap.Records != 1000 || snap.Runs != 3 {
		t.Fatalf("snapshot config = %d/%d, want 1000/3", snap.Records, snap.Runs)
	}
	if snap.Progress.Total != 3 || snap.Progress.Pending != 3 {
		t.Fatalf("after Expect: %+v", snap.Progress)
	}

	col := metrics.NewCollector()
	col.Stage("source").Mark(10)
	col.Stage("sink").Mark(7)
	col.ObserveLatency(250 * time.Millisecond)

	lc := p.Cell("cell-b")
	lc.StartRun(CellSources{
		Collector:   col,
		ConsumerLag: func() []LagSample { return []LagSample{{Topic: "input", Partition: 0, Lag: 3}} },
		TopicEnds:   func() (int64, int64, bool) { return 10, 7, true },
	})

	snap = p.Snapshot()
	if snap.Progress.Running != 1 || snap.Progress.Pending != 2 {
		t.Fatalf("after StartRun: %+v", snap.Progress)
	}
	var cb CellSnapshot
	for _, c := range snap.Cells {
		if c.Key == "cell-b" {
			cb = c
		}
	}
	if cb.State != CellRunning {
		t.Fatalf("cell-b state = %q", cb.State)
	}
	if cb.InputRecords != 10 || cb.OutputRecords != 7 {
		t.Fatalf("cell-b offsets = %d/%d", cb.InputRecords, cb.OutputRecords)
	}
	if len(cb.ConsumerLag) != 1 || cb.ConsumerLag[0].Lag != 3 {
		t.Fatalf("cell-b lag = %+v", cb.ConsumerLag)
	}
	// Stages must come back sorted by name for a byte-stable feed.
	if len(cb.Stages) != 2 || cb.Stages[0].Name != "sink" || cb.Stages[1].Name != "source" {
		t.Fatalf("cell-b stages not name-sorted: %+v", cb.Stages)
	}
	if cb.Latency == nil || cb.Latency.Count != 1 {
		t.Fatalf("cell-b latency = %+v", cb.Latency)
	}

	// EndRun keeps the final offsets and the collector, drops the
	// broker-backed sources.
	lc.EndRun()
	snap = p.Snapshot()
	for _, c := range snap.Cells {
		if c.Key != "cell-b" {
			continue
		}
		if c.RunsDone != 1 {
			t.Fatalf("runsDone = %d", c.RunsDone)
		}
		if c.InputRecords != 10 || c.OutputRecords != 7 {
			t.Fatalf("offsets lost on EndRun: %d/%d", c.InputRecords, c.OutputRecords)
		}
		if len(c.ConsumerLag) != 0 {
			t.Fatalf("consumer lag survived EndRun: %+v", c.ConsumerLag)
		}
		if len(c.Stages) != 2 {
			t.Fatalf("stages lost on EndRun: %+v", c.Stages)
		}
	}

	lc.Finish(CellDone, "")
	p.Cell("cell-a").Finish(CellSkipped, "unsupported")
	p.Cell("cell-c").Finish(CellFailed, "boom")
	snap = p.Snapshot()
	if snap.Progress.Done != 1 || snap.Progress.Skipped != 1 || snap.Progress.Failed != 1 {
		t.Fatalf("terminal states: %+v", snap.Progress)
	}
	for _, c := range snap.Cells {
		if c.Key == "cell-a" && c.SkipReason != "unsupported" {
			t.Fatalf("skip reason = %q", c.SkipReason)
		}
	}
}

func TestPlaneCellOrderIsRegistrationOrder(t *testing.T) {
	p := NewPlane(1, 1)
	p.Expect([]string{"z", "a", "m"})
	snap := p.Snapshot()
	got := []string{snap.Cells[0].Key, snap.Cells[1].Key, snap.Cells[2].Key}
	want := []string{"z", "a", "m"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell order = %v, want %v", got, want)
		}
	}
}

func TestWatermarkLags(t *testing.T) {
	tr := NewTracer(8).Scoped("Flink P2 WindowedCount/run0")
	ahead := tr.Gauge("watermark-lag/source")
	behind := tr.Gauge("watermark-lag/window")
	drained := tr.Gauge("watermark-lag/sink")
	unset := tr.Gauge("watermark-lag/idle")
	_ = unset

	base := time.Unix(100, 0)
	ahead.SetTime(base.Add(5 * time.Second))
	behind.SetTime(base.Add(2 * time.Second))
	drained.Set(math.MaxInt64)

	lags := WatermarkLags(tr)
	if len(lags) != 3 {
		t.Fatalf("got %d lags (%+v), want 3 (unset gauge yields no sample)", len(lags), lags)
	}
	byOp := map[string]float64{}
	for _, l := range lags {
		byOp[l.Operator] = l.LagSec
	}
	if byOp["source"] != 0 {
		t.Fatalf("frontier operator lag = %v, want 0", byOp["source"])
	}
	if byOp["window"] != 3 {
		t.Fatalf("window lag = %v, want 3", byOp["window"])
	}
	if byOp["sink"] != 0 {
		t.Fatalf("drained operator lag = %v, want 0", byOp["sink"])
	}
	// Operator labels are the bare names: scope prefix and the
	// watermark-lag/ marker stripped.
	for op := range byOp {
		if op == "" || len(op) > len("source") {
			t.Fatalf("operator label %q not stripped", op)
		}
	}
}

func TestWatermarkLagsNilTracer(t *testing.T) {
	if got := WatermarkLags(nil); got != nil {
		t.Fatalf("nil tracer lags = %+v", got)
	}
}
