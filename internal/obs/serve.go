package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// shutdownGrace bounds how long Close waits for in-flight scrapes
// before tearing connections down hard.
const shutdownGrace = 5 * time.Second

// Server is the exposition endpoint of one plane: /metrics in
// OpenMetrics text format, /snapshot as versioned JSON, and
// /debug/pprof for live profiling. It serves scrape traffic only —
// nothing on it touches a per-record path.
type Server struct {
	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	serveErr error
}

// Serve starts an exposition server for the plane on addr (host:port;
// an empty host or port 0 binds an ephemeral port — read the actual
// address back with Addr). The caller owns the returned server and
// must Close it; Close is idempotent and leaves no goroutine behind.
// A nil plane still serves — every endpoint just exposes the empty
// snapshot — so callers can build the server before the harness fills
// the plane in.
func (p *Plane) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", OpenMetricsContentType)
		_ = p.WriteOpenMetrics(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Snapshot())
	})
	// The pprof handlers are registered explicitly rather than through
	// net/http/pprof's DefaultServeMux side effect, so the benchmark
	// binary never exposes profiling on a mux it did not build.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	s.wg.Add(1)
	go func() {
		// Signals completion via the WaitGroup; Serve returns once Close
		// or Shutdown tears the listener down.
		defer s.wg.Done()
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr reports the server's bound address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL reports the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close shuts the server down: a graceful Shutdown bounded by
// shutdownGrace (scrapes in flight finish), then a hard Close, then a
// wait for the accept goroutine. Idempotent and nil-safe; no goroutine
// survives it.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	_ = s.srv.Close()
	s.wg.Wait()
	s.mu.Lock()
	if err == nil {
		err = s.serveErr
	}
	s.mu.Unlock()
	return err
}
