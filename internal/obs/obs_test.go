package obs

import (
	"testing"
	"time"
)

func TestSpanAndInstantRecording(t *testing.T) {
	tr := NewTracer(64)
	sp := tr.Span("harness", "run")
	tr.Instant("panes", "pane-fire")
	sp.End()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Recording order: the instant lands before the span's End.
	if evs[0].Phase != PhaseInstant || evs[0].Track != "panes" {
		t.Errorf("first event = %+v, want instant on panes", evs[0])
	}
	if evs[1].Phase != PhaseComplete || evs[1].Track != "harness" || evs[1].Name != "run" {
		t.Errorf("second event = %+v, want complete span harness/run", evs[1])
	}
	if evs[1].Dur < 0 {
		t.Errorf("span duration negative: %v", evs[1].Dur)
	}
	if d := tr.Dropped(); d != 0 {
		t.Errorf("Dropped() = %d, want 0", d)
	}
}

// TestRingOverflow is the satellite contract: when the ring fills, the
// oldest events are dropped, the drop count is reported, and recording
// keeps succeeding without blocking.
func TestRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Counter("c", float64(i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(evs))
	}
	// The four newest survive: values 6..9.
	for i, ev := range evs {
		if want := float64(6 + i); ev.Value != want {
			t.Errorf("event %d value = %v, want %v (oldest must be dropped first)", i, ev.Value, want)
		}
	}
	if d := tr.Dropped(); d != 6 {
		t.Errorf("Dropped() = %d, want 6", d)
	}
}

func TestScopedPrefixesTracksAndGauges(t *testing.T) {
	tr := NewTracer(16)
	scope := tr.Scoped("flink native WindowedCount/run0")
	scope.Span("harness", "execute").End()
	g := scope.Gauge("watermark-lag/GroupByKey")
	if got, want := g.Name(), "flink native WindowedCount/run0/watermark-lag/GroupByKey"; got != want {
		t.Errorf("gauge name = %q, want %q", got, want)
	}
	evs := tr.Events() // scope shares the parent ring
	if len(evs) != 1 || evs[0].Track != "flink native WindowedCount/run0/harness" {
		t.Fatalf("events = %+v, want one span on the scoped track", evs)
	}
	// Nested scopes compose.
	inner := scope.Scoped("sub")
	if got := inner.Gauge("g").Name(); got != "flink native WindowedCount/run0/sub/g" {
		t.Errorf("nested gauge name = %q", got)
	}
	// The parent's gauge registry is per scope.
	if n := len(tr.Gauges()); n != 0 {
		t.Errorf("root tracer has %d gauges, want 0", n)
	}
	if n := len(scope.Gauges()); n != 1 {
		t.Errorf("scope has %d gauges, want 1", n)
	}
}

func TestGaugeSetTime(t *testing.T) {
	tr := NewTracer(4)
	g := tr.Gauge("wm")
	ts := time.Unix(10, 500)
	g.SetTime(ts)
	if got := g.Load(); got != ts.UnixNano() {
		t.Errorf("Load() = %d, want %d", got, ts.UnixNano())
	}
	g.Set(42)
	if got := g.Load(); got != 42 {
		t.Errorf("Load() = %d, want 42", got)
	}
}

// TestNilTracerIsDisabled pins the nil-safe contract: every method on a
// nil tracer, gauge, span, and monitor is a no-op.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	sp := tr.Span("a", "b")
	sp.End()
	tr.Instant("a", "b")
	tr.Counter("a", 1)
	tr.Gauge("g").Set(1)
	tr.Gauge("g").SetTime(time.Unix(1, 0))
	if tr.Gauge("g").Load() != 0 {
		t.Error("nil gauge Load() != 0")
	}
	if tr.Scoped("x") != nil {
		t.Error("nil.Scoped() != nil")
	}
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Gauges() != nil {
		t.Error("nil tracer reports state")
	}
	if m := NewMonitor(nil, time.Millisecond); m != nil {
		t.Error("NewMonitor(nil) != nil")
	}
	var m *Monitor
	m.Sample("s", func() (float64, bool) { return 0, true })
	m.SampleEach(func(func(string, float64)) {})
	m.Start()
	if m.Stop() != nil {
		t.Error("nil monitor Stop() != nil")
	}
}

// TestNilHotPathAllocations is the acceptance criterion: with tracing
// disabled, the record hot path performs zero allocations.
func TestNilHotPathAllocations(t *testing.T) {
	var tr *Tracer
	g := tr.Gauge("wm")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Span("track", "name")
		tr.Instant("track", "name")
		tr.Counter("track", 1)
		g.Set(7)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil hot path allocates %v per op, want 0", allocs)
	}
}

// TestEnabledHotPathAllocations: an enabled tracer's record path reuses
// the preallocated ring — recording itself must not allocate either.
func TestEnabledHotPathAllocations(t *testing.T) {
	tr := NewTracer(1 << 10)
	g := tr.Gauge("wm")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Span("track", "name")
		g.Set(7)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("enabled hot path allocates %v per op, want 0", allocs)
	}
}

func TestDroppedCountsOnlyOverwrites(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 8; i++ {
		tr.Counter("c", float64(i))
	}
	if d := tr.Dropped(); d != 0 {
		t.Errorf("full-but-not-overflowed ring reports %d dropped", d)
	}
	tr.Counter("c", 8)
	if d := tr.Dropped(); d != 1 {
		t.Errorf("Dropped() = %d after one overwrite, want 1", d)
	}
}
