package obs

import (
	"testing"

	"beambench/internal/goleak"
)

// TestMain gates the package on goroutine hygiene: the Monitor's
// sampling goroutine must never outlive its Stop.
func TestMain(m *testing.M) {
	goleak.VerifyTestMain(m)
}
