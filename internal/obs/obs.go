package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is the Chrome trace-event phase of a recorded Event.
type Phase byte

const (
	// PhaseComplete is a span with a start and a duration ("X").
	PhaseComplete Phase = 'X'
	// PhaseCounter is a sampled value on a counter track ("C").
	PhaseCounter Phase = 'C'
	// PhaseInstant is a point-in-time marker ("i").
	PhaseInstant Phase = 'i'
)

// Event is one recorded trace event. Track maps to a Chrome trace
// thread (spans, instants) or counter series name; Start is an offset
// from the tracer's anchor, so events from one tracer share a single
// monotonic timeline.
type Event struct {
	Track string
	Name  string
	Phase Phase
	Start time.Duration
	Dur   time.Duration // PhaseComplete only
	Value float64       // PhaseCounter only
}

// core is the state shared by a root tracer and all its Scoped views:
// one anchor, one event ring, one drop counter.
type core struct {
	anchor time.Time

	mu  sync.Mutex
	buf []Event // ring storage, len == cap, overwritten in place
	seq uint64  // total events ever recorded
}

// Tracer records spans, instants, and counter samples into a shared
// ring, and owns a registry of named gauges. A nil Tracer is a valid
// disabled tracer: every method no-ops and allocates nothing.
//
// Scoped returns a view that prefixes track and gauge names, sharing
// the parent's ring; the harness gives each cell run its own scope so
// concurrent runs stay distinguishable in one trace file.
type Tracer struct {
	core   *core
	prefix string

	mu     sync.Mutex
	gauges map[string]*Gauge
	order  []string
}

// NewTracer builds a tracer whose ring holds up to capacity events;
// older events are overwritten once the ring is full. The single
// wall-clock read here anchors the monotonic timeline for every event
// and scope derived from this tracer.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	//beamvet:allow determinism trace anchor: sole wall-clock read, per doc.go contract
	anchor := time.Now()
	return &Tracer{core: &core{anchor: anchor, buf: make([]Event, capacity)}}
}

// Scoped returns a tracer view whose track and gauge names are
// prefixed with prefix + "/". It shares the parent's ring and anchor
// but owns its own gauge registry, so Gauges() reports only this
// scope's gauges. Nil-safe.
func (t *Tracer) Scoped(prefix string) *Tracer {
	if t == nil {
		return nil
	}
	p := prefix
	if t.prefix != "" {
		p = t.prefix + "/" + prefix
	}
	return &Tracer{core: t.core, prefix: p}
}

// Now is the current offset on the tracer's monotonic timeline.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.core.anchor)
}

func (t *Tracer) track(name string) string {
	if t.prefix == "" {
		return name
	}
	return t.prefix + "/" + name
}

func (c *core) record(ev Event) {
	c.mu.Lock()
	c.buf[c.seq%uint64(len(c.buf))] = ev
	c.seq++
	c.mu.Unlock()
}

// Span is an in-flight complete-event; End records it. The zero Span
// (from a nil tracer) is valid and End is a no-op.
type Span struct {
	t     *Tracer
	track string
	name  string
	start time.Duration
}

// Span opens a span on the given track. Call End on the returned value
// when the work finishes; until then nothing is recorded.
func (t *Tracer) Span(track, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, track: t.track(track), name: name, start: t.Now()}
}

// End records the span. Safe on the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := s.t.Now()
	s.t.core.record(Event{Track: s.track, Name: s.name, Phase: PhaseComplete, Start: s.start, Dur: now - s.start})
}

// Instant records a point-in-time marker on the given track.
func (t *Tracer) Instant(track, name string) {
	if t == nil {
		return
	}
	t.core.record(Event{Track: t.track(track), Name: name, Phase: PhaseInstant, Start: t.Now()})
}

// Counter records one sample of a counter series.
func (t *Tracer) Counter(track string, value float64) {
	if t == nil {
		return
	}
	t.core.record(Event{Track: t.track(track), Name: t.track(track), Phase: PhaseCounter, Start: t.Now(), Value: value})
}

// Events returns a copy of the retained events in recording order
// (oldest surviving event first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.seq
	capacity := uint64(len(c.buf))
	if n > capacity {
		n = capacity
	}
	out := make([]Event, 0, n)
	start := c.seq - n
	for i := uint64(0); i < n; i++ {
		out = append(out, c.buf[(start+i)%capacity])
	}
	return out
}

// Dropped reports how many events have been overwritten because the
// ring was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seq <= uint64(len(c.buf)) {
		return 0
	}
	return c.seq - uint64(len(c.buf))
}

// Gauge holds the most recent value of a sampled quantity. Writers set
// it from the hot path with a single atomic store; the Monitor reads
// it at its own cadence. A nil Gauge no-ops.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Gauge returns the gauge registered under name in this scope,
// creating it on first use. Nil-safe: a nil tracer returns a nil
// gauge, whose Set/SetTime are no-ops.
func (t *Tracer) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	full := t.track(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	if g, ok := t.gauges[full]; ok {
		return g
	}
	if t.gauges == nil {
		t.gauges = make(map[string]*Gauge)
	}
	g := &Gauge{name: full}
	t.gauges[full] = g
	t.order = append(t.order, full)
	return g
}

// Set stores a raw value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetTime stores a timestamp (e.g. a watermark) as Unix nanoseconds.
func (g *Gauge) SetTime(ts time.Time) {
	if g == nil {
		return
	}
	g.v.Store(ts.UnixNano())
}

// Load returns the last stored value, zero if never set or nil.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name is the gauge's fully scoped name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Gauges snapshots this scope's gauges in first-use order.
func (t *Tracer) Gauges() []*Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Gauge, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, t.gauges[name])
	}
	return out
}

// sortEvents orders a snapshot by start offset for export; recording
// order across goroutines is already close, but counter samples from
// the monitor interleave with span ends.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
}
