package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWriteChromeTraceShape(t *testing.T) {
	tr := NewTracer(64)
	sp := tr.Span("harness", "run")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Instant("panes", "pane")
	tr.Counter("lag", 3)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if parsed.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", parsed.Unit)
	}
	var phases []string
	threadNames := map[float64]string{}
	for _, ev := range parsed.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases = append(phases, ph)
		if ph == "M" {
			tid, _ := ev["tid"].(float64)
			args, _ := ev["args"].(map[string]any)
			name, _ := args["name"].(string)
			threadNames[tid] = name
		}
	}
	joined := strings.Join(phases, "")
	for _, want := range []string{"X", "i", "C", "M"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace lacks a %q event: %v", want, phases)
		}
	}
	// Both span tracks got thread-name metadata.
	names := make(map[string]bool)
	for _, n := range threadNames {
		names[n] = true
	}
	if !names["harness"] || !names["panes"] {
		t.Errorf("thread names = %v, want harness and panes", names)
	}
	// The counter event carries its value in args.
	found := false
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == "C" && ev["name"] == "lag" {
			args, _ := ev["args"].(map[string]any)
			if args["value"] == 3.0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("counter event lag=3 missing from trace")
	}
}

func TestWriteChromeTraceReportsDrops(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Counter("c", float64(i))
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs/dropped-events") {
		t.Error("trace with overwrites lacks the obs/dropped-events counter")
	}
}

func TestSummarizeRoundTrip(t *testing.T) {
	tr := NewTracer(256)
	for i := 0; i < 3; i++ {
		sp := tr.Span("flink/subtask-0", "subtask")
		time.Sleep(200 * time.Microsecond)
		sp.End()
	}
	sp := tr.Span("harness", "run")
	time.Sleep(20 * time.Millisecond) // dominates the µs-scale subtask spans
	sp.End()
	tr.Counter("consumer-lag/input/p0", 10)
	tr.Counter("consumer-lag/input/p0", 4)
	tr.Counter("consumer-lag/input/p0", 6)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stages) != 2 {
		t.Fatalf("stages = %+v, want 2 tracks", s.Stages)
	}
	// harness/run slept longest: it must rank first.
	if s.Stages[0].Track != "harness" || s.Stages[0].Count != 1 {
		t.Errorf("top stage = %+v, want harness with 1 span", s.Stages[0])
	}
	if s.Stages[1].Track != "flink/subtask-0" || s.Stages[1].Count != 3 {
		t.Errorf("second stage = %+v, want flink/subtask-0 with 3 spans", s.Stages[1])
	}
	if len(s.Counters) != 1 {
		t.Fatalf("counters = %+v, want 1 series", s.Counters)
	}
	cs := s.Counters[0]
	if cs.Track != "consumer-lag/input/p0" || cs.Samples != 3 || cs.Max != 10 || cs.Last != 6 {
		t.Errorf("counter summary = %+v", cs)
	}
	if want := (10.0 + 4 + 6) / 3; cs.Mean != want {
		t.Errorf("counter mean = %v, want %v", cs.Mean, want)
	}
	text := s.Format(10)
	if !strings.Contains(text, "harness") || !strings.Contains(text, "consumer-lag/input/p0") {
		t.Errorf("formatted summary missing tracks:\n%s", text)
	}
}

func TestSummarizeBareArray(t *testing.T) {
	raw := `[{"name":"a","ph":"X","ts":1,"dur":100,"pid":1,"tid":1},
	         {"name":"lag","ph":"C","ts":2,"pid":1,"args":{"value":5}}]`
	s, err := Summarize(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stages) != 1 || len(s.Counters) != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Stages[0].Total != 100*time.Microsecond {
		t.Errorf("stage total = %v, want 100µs", s.Stages[0].Total)
	}
}
