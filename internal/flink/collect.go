package flink

import "sync"

// RecordCollector is a thread-safe record buffer usable as a sink from
// multiple subtasks, for tests and examples.
type RecordCollector struct {
	mu      sync.Mutex
	records [][]byte
}

// NewRecordCollector returns an empty collector.
func NewRecordCollector() *RecordCollector {
	return &RecordCollector{}
}

// Invoke stores a copy of the record.
func (c *RecordCollector) Invoke(rec []byte) error {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = append(c.records, cp)
	return nil
}

// Close implements Sink; it is a no-op.
func (c *RecordCollector) Close() error { return nil }

// Len reports the number of collected records.
func (c *RecordCollector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Records returns a copy of the collected records in arrival order.
func (c *RecordCollector) Records() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.records))
	for i, r := range c.records {
		cp := make([]byte, len(r))
		copy(cp, r)
		out[i] = cp
	}
	return out
}

// Strings returns the collected records as strings in arrival order.
func (c *RecordCollector) Strings() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.records))
	for i, r := range c.records {
		out[i] = string(r)
	}
	return out
}
