package flink

import "sync/atomic"

// OperatorMetrics counts records flowing through one logical operator,
// aggregated across its subtasks.
type OperatorMetrics struct {
	// Name is the operator's display name.
	Name string

	in  atomic.Int64
	out atomic.Int64
}

func (m *OperatorMetrics) incIn()  { m.in.Add(1) }
func (m *OperatorMetrics) incOut() { m.out.Add(1) }

func (m *OperatorMetrics) reset() {
	m.in.Store(0)
	m.out.Store(0)
}

// snapshot freezes the counters into a plain value.
func (m *OperatorMetrics) snapshot() OperatorStats {
	return OperatorStats{
		Name:       m.Name,
		RecordsIn:  m.in.Load(),
		RecordsOut: m.out.Load(),
	}
}

// OperatorStats is an immutable snapshot of one operator's counters.
type OperatorStats struct {
	Name       string
	RecordsIn  int64
	RecordsOut int64
}
