package flink

import (
	"errors"
	"fmt"
	"sync"

	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/simcost"
)

// Errors reported by the cluster.
var (
	ErrClusterStopped = errors.New("flink: cluster not running")
	ErrNoSlots        = errors.New("flink: not enough free task slots")
)

// ClusterConfig sizes a standalone Flink-style cluster. The defaults
// match the paper's setup: two worker nodes (Task Managers), each with
// eight CPU cores worth of task slots.
type ClusterConfig struct {
	// TaskManagers is the number of worker processes; defaults to 2.
	TaskManagers int
	// SlotsPerTaskManager is the number of task slots per Task Manager;
	// defaults to 8.
	SlotsPerTaskManager int
	// RestartAttempts is the fixed-delay restart strategy budget: how
	// many times a failed job is restarted before the failure is
	// reported. Defaults to 0 (fail fast), as restarts would distort
	// benchmark timings.
	RestartAttempts int
	// Costs is the latency model; zero charges nothing.
	Costs simcost.Costs
	// Sim scales the cost model; nil charges nothing.
	Sim *simcost.Simulator
	// Metrics, when non-nil, receives per-operator throughput while jobs
	// run: every operator's emissions (and every sink's writes) are
	// marked under the operator's name. Marks are cumulative like
	// monitoring counters: with RestartAttempts > 0 they include the
	// work a failed attempt performed, unlike the per-attempt
	// OperatorMetrics snapshots, which reset on every attempt. Nil
	// disables collection.
	Metrics *metrics.Collector
	// Trace, when non-nil, records a span per subtask attempt and a
	// watermark gauge per operator chain. Nil disables tracing.
	Trace *obs.Tracer
}

func (c *ClusterConfig) validate() error {
	if c.TaskManagers == 0 {
		c.TaskManagers = 2
	}
	if c.SlotsPerTaskManager == 0 {
		c.SlotsPerTaskManager = 8
	}
	if c.TaskManagers < 0 || c.SlotsPerTaskManager < 0 {
		return fmt.Errorf("flink: negative cluster size %d x %d", c.TaskManagers, c.SlotsPerTaskManager)
	}
	if c.RestartAttempts < 0 {
		return fmt.Errorf("flink: negative restart attempts %d", c.RestartAttempts)
	}
	return nil
}

// Cluster is a standalone Flink-style cluster: one Job Manager
// scheduling work onto Task Manager slots (Section II-B of the paper).
type Cluster struct {
	cfg ClusterConfig
	jm  *jobManager

	mu      sync.Mutex
	started bool
}

// NewCluster returns a stopped cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	c.jm = newJobManager(cfg.TaskManagers, cfg.SlotsPerTaskManager)
	return c, nil
}

// Start brings the cluster online. Starting a started cluster is a no-op.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
}

// Stop takes the cluster offline; running jobs finish but new submissions
// fail. The benchmark restarts the cluster between runs, mirroring the
// paper's process (Section III-A2).
func (c *Cluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = false
}

// Running reports whether the cluster accepts jobs.
func (c *Cluster) Running() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started
}

// TotalSlots reports the cluster's slot capacity.
func (c *Cluster) TotalSlots() int {
	return c.cfg.TaskManagers * c.cfg.SlotsPerTaskManager
}

// Costs exposes the cluster's latency model, so runner translations can
// charge consistent per-record costs.
func (c *Cluster) Costs() simcost.Costs {
	return c.cfg.Costs
}

// Trace exposes the cluster's tracer (nil when tracing is disabled), so
// runner translations can record into the same timeline as the runtime.
func (c *Cluster) Trace() *obs.Tracer {
	return c.cfg.Trace
}

// FreeSlots reports currently unoccupied slots.
func (c *Cluster) FreeSlots() int {
	return c.jm.freeSlots()
}

// jobManager tracks slot occupancy across task managers. With slot
// sharing (Flink's default) a job occupies max-parallelism many slots,
// spread round-robin over task managers.
type jobManager struct {
	mu   sync.Mutex
	tms  []*taskManager
	next int
}

type taskManager struct {
	id    int
	total int
	used  int
}

func newJobManager(tms, slotsPer int) *jobManager {
	jm := &jobManager{tms: make([]*taskManager, tms)}
	for i := range jm.tms { //beamvet:allow locksafe constructor-time writes before the jobManager escapes
		jm.tms[i] = &taskManager{id: i, total: slotsPer}
	}
	return jm
}

func (jm *jobManager) freeSlots() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	free := 0
	for _, tm := range jm.tms {
		free += tm.total - tm.used
	}
	return free
}

// acquire reserves n shared slots, spread round-robin across task
// managers, and returns the owning task-manager IDs.
func (jm *jobManager) acquire(n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flink: invalid slot request %d", n)
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	free := 0
	for _, tm := range jm.tms {
		free += tm.total - tm.used
	}
	if free < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNoSlots, n, free)
	}
	owners := make([]int, 0, n)
	for len(owners) < n {
		tm := jm.tms[jm.next%len(jm.tms)]
		jm.next++
		if tm.used < tm.total {
			tm.used++
			owners = append(owners, tm.id)
		}
	}
	return owners, nil
}

// release returns slots to their task managers.
func (jm *jobManager) release(owners []int) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	for _, id := range owners {
		if id >= 0 && id < len(jm.tms) && jm.tms[id].used > 0 {
			jm.tms[id].used--
		}
	}
}
