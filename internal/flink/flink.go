// Package flink simulates Apache Flink's streaming runtime as described
// in Section II-B of Hesse et al. (ICDCS 2019): a standalone cluster with
// one Job Manager and several Task Managers whose task slots execute
// subtasks; tuple-at-a-time processing; and operator chaining, which
// fuses forward-connected operators of equal parallelism into a single
// task to avoid serialization and hand-over costs.
//
// Chaining is the load-bearing mechanism for the paper's Flink results:
// the native grep job (Figure 12) collapses into one chained task, while
// the Beam runner emits per-primitive operators with chaining disabled
// (Figure 13), paying a network hop and coder costs at every boundary.
package flink

import (
	"errors"
	"fmt"
	"time"

	"beambench/internal/dag"
)

// Collector receives records emitted by an operator. Collect reports an
// error when the job is shutting down; operators must stop emitting and
// return it.
type Collector interface {
	Collect(record []byte) error
}

// OperatorContext gives per-subtask operator instances access to their
// runtime environment.
type OperatorContext interface {
	// SubtaskIndex is this instance's index in [0, Parallelism).
	SubtaskIndex() int
	// Parallelism is the operator's parallel instance count.
	Parallelism() int
	// Charge adds simulated processing cost to this subtask, used by
	// runners to model per-record overheads (coders, wrappers).
	Charge(d time.Duration)
}

// Source produces records by pushing them into the context's collector.
type Source interface {
	// Run emits records until the source is exhausted or ctx reports
	// shutdown. Run must return nil on clean exhaustion.
	Run(out Collector) error
}

// SourceFactory builds one Source instance per subtask.
type SourceFactory func(ctx OperatorContext) (Source, error)

// Sink consumes records.
type Sink interface {
	// Invoke handles one record.
	Invoke(record []byte) error
	// Close flushes and releases resources; called once per subtask.
	Close() error
}

// SinkFactory builds one Sink instance per subtask.
type SinkFactory func(ctx OperatorContext) (Sink, error)

// ProcessFunc transforms one record into zero or more records.
type ProcessFunc func(record []byte, out Collector) error

// ProcessFactory builds one ProcessFunc per subtask, allowing per-subtask
// state and cost accounting.
type ProcessFactory func(ctx OperatorContext) (ProcessFunc, error)

// FlushFunc emits an operator's buffered state when its input is
// exhausted (bounded streams); stateful operators such as grouping use
// it to release their final aggregates.
type FlushFunc func(out Collector) error

// FlushableProcessFactory builds a per-subtask process function together
// with an end-of-input flush.
type FlushableProcessFactory func(ctx OperatorContext) (ProcessFunc, FlushFunc, error)

// WatermarkFunc handles an advanced watermark: a control event asserting
// that no record with an earlier event time will arrive on this subtask's
// input anymore. Stateful operators fire the panes the watermark released
// into out; the runtime then forwards the watermark downstream.
type WatermarkFunc func(w time.Time, out Collector) error

// WatermarkedProcessFactory builds a per-subtask process function
// together with a watermark handler (pane firing) and an end-of-input
// flush. It is the construction hook for event-time stateful operators
// under control-event watermark propagation: the runtime delivers the
// min-over-inputs watermark of the subtask's senders to the handler.
type WatermarkedProcessFactory func(ctx OperatorContext) (ProcessFunc, WatermarkFunc, FlushFunc, error)

// WatermarkEmitter lets a timestamp-assigning operator inject the
// watermarks it generates into the dataflow as control events; the
// runtime threads them through the rest of the chain and across task
// boundaries to every downstream subtask.
type WatermarkEmitter interface {
	EmitWatermark(w time.Time) error
}

// AssignerFactory builds a per-subtask process function that may emit
// watermarks through the given emitter — the construction hook for
// timestamp assignment near the source, where event time enters the
// dataflow.
type AssignerFactory func(ctx OperatorContext, wm WatermarkEmitter) (ProcessFunc, error)

// KeySelector extracts the partitioning key from a record for hash
// partitioning (KeyBy).
type KeySelector func(record []byte) ([]byte, error)

// partitioning selects how records travel to the next operator.
type partitioning int

const (
	// partitionForward keeps records in the same subtask index; it is
	// the default and a precondition for chaining.
	partitionForward partitioning = iota + 1
	// partitionRebalance distributes records round-robin.
	partitionRebalance
	// partitionHash routes records by key hash, so equal keys reach the
	// same subtask (KeyBy).
	partitionHash
)

type opKind int

const (
	opSource opKind = iota + 1
	opTransform
	opSink
)

// inEdge is one input connection of an operator: the upstream operator
// and the partitioning records travel under.
type inEdge struct {
	from *operator
	part partitioning
	key  KeySelector
}

// operator is a node of the logical stream graph.
type operator struct {
	id          int
	name        string
	kind        opKind
	parallelism int
	chainable   bool

	sourceFactory  SourceFactory
	processFactory ProcessFactory
	flushFactory   FlushableProcessFactory
	wmFactory      WatermarkedProcessFactory
	assignFactory  AssignerFactory
	sinkFactory    SinkFactory

	inputs  []inEdge
	outputs []*operator

	metrics *OperatorMetrics
}

// Environment builds a streaming job, the analogue of Flink's
// StreamExecutionEnvironment.
type Environment struct {
	cluster         *Cluster
	parallelism     int
	chainingEnabled bool
	ops             []*operator
	err             error
}

// NewEnvironment returns an execution environment bound to a cluster
// with default parallelism 1.
func NewEnvironment(cluster *Cluster) *Environment {
	return &Environment{
		cluster:         cluster,
		parallelism:     1,
		chainingEnabled: true,
	}
}

// SetParallelism sets the default operator parallelism, the equivalent
// of the paper's `-p` submission flag (Section III-A2).
func (env *Environment) SetParallelism(p int) *Environment {
	if p <= 0 {
		env.fail(fmt.Errorf("flink: parallelism must be positive, got %d", p))
		return env
	}
	env.parallelism = p
	return env
}

// DisableOperatorChaining turns chaining off for the whole job, matching
// StreamExecutionEnvironment#disableOperatorChaining. The Beam runner
// uses this; it is also the ablation switch for the chaining benchmark.
func (env *Environment) DisableOperatorChaining() *Environment {
	env.chainingEnabled = false
	return env
}

func (env *Environment) fail(err error) {
	if env.err == nil {
		env.err = err
	}
}

// AddSource adds a source operator and returns its stream.
func (env *Environment) AddSource(name string, factory SourceFactory) *DataStream {
	op := &operator{
		name:          name,
		kind:          opSource,
		parallelism:   env.parallelism,
		chainable:     true,
		sourceFactory: factory,
	}
	env.addOp(op)
	if factory == nil {
		env.fail(fmt.Errorf("flink: source %q: nil factory", name))
	}
	return &DataStream{env: env, op: op}
}

func (env *Environment) addOp(op *operator) {
	op.id = len(env.ops)
	op.metrics = &OperatorMetrics{Name: op.name}
	env.ops = append(env.ops, op)
}

// Union merges this stream with the given streams into one: downstream
// operators observe the interleaved records of every input. The merge
// point is where watermark propagation earns its keep — the runtime
// holds the union's output watermark at the minimum over all inputs, so
// a lagging input holds back every downstream pane.
func (ds *DataStream) Union(name string, others ...*DataStream) *DataStream {
	if len(others) == 0 {
		ds.env.fail(fmt.Errorf("flink: union %q of a single stream", name))
		return ds
	}
	op := &operator{
		name:        name,
		kind:        opTransform,
		parallelism: ds.env.parallelism,
		chainable:   false, // a multi-input head never joins an upstream chain
		processFactory: func(OperatorContext) (ProcessFunc, error) {
			return func(rec []byte, out Collector) error { return out.Collect(rec) }, nil
		},
	}
	ds.env.addOp(op)
	ds.connect(op)
	for _, o := range others {
		if o == nil || o.env != ds.env {
			ds.env.fail(fmt.Errorf("flink: union %q across environments", name))
			return &DataStream{env: ds.env, op: op}
		}
		o.connect(op)
	}
	return &DataStream{env: ds.env, op: op}
}

// DataStream is a stream of records flowing out of an operator.
type DataStream struct {
	env   *Environment
	op    *operator
	rebal bool        // next operator reads rebalanced
	keyed KeySelector // next operator reads hash-partitioned by this key
}

// Map adds a 1:1 stateless transformation.
func (ds *DataStream) Map(name string, fn func([]byte) []byte) *DataStream {
	if fn == nil {
		ds.env.fail(fmt.Errorf("flink: map %q: nil function", name))
		return ds.transform(name, nil)
	}
	return ds.transform(name, func(OperatorContext) (ProcessFunc, error) {
		return func(rec []byte, out Collector) error {
			return out.Collect(fn(rec))
		}, nil
	})
}

// Filter adds a predicate operator that keeps matching records.
func (ds *DataStream) Filter(name string, fn func([]byte) bool) *DataStream {
	if fn == nil {
		ds.env.fail(fmt.Errorf("flink: filter %q: nil function", name))
		return ds.transform(name, nil)
	}
	return ds.transform(name, func(OperatorContext) (ProcessFunc, error) {
		return func(rec []byte, out Collector) error {
			if fn(rec) {
				return out.Collect(rec)
			}
			return nil
		}, nil
	})
}

// FlatMap adds a 1:N stateless transformation.
func (ds *DataStream) FlatMap(name string, fn func(record []byte, out Collector) error) *DataStream {
	if fn == nil {
		ds.env.fail(fmt.Errorf("flink: flatMap %q: nil function", name))
		return ds.transform(name, nil)
	}
	return ds.transform(name, func(OperatorContext) (ProcessFunc, error) {
		return ProcessFunc(fn), nil
	})
}

// Process adds a transformation with per-subtask construction, the
// analogue of a RichFunction. Runners use this to attach per-subtask
// cost accounting.
func (ds *DataStream) Process(name string, factory ProcessFactory) *DataStream {
	if factory == nil {
		ds.env.fail(fmt.Errorf("flink: process %q: nil factory", name))
	}
	return ds.transform(name, factory)
}

func (ds *DataStream) transform(name string, factory ProcessFactory) *DataStream {
	op := &operator{
		name:           name,
		kind:           opTransform,
		parallelism:    ds.env.parallelism,
		chainable:      true,
		processFactory: factory,
	}
	ds.env.addOp(op)
	ds.connect(op)
	return &DataStream{env: ds.env, op: op}
}

// Rebalance redistributes records round-robin to the next operator,
// breaking any chain at this point.
func (ds *DataStream) Rebalance() *DataStream {
	return &DataStream{env: ds.env, op: ds.op, rebal: true}
}

// KeyBy hash-partitions records by the selected key, so all records
// with equal keys reach the same subtask of the next operator. Like
// Rebalance, it breaks the chain at this point.
func (ds *DataStream) KeyBy(selector KeySelector) *DataStream {
	if selector == nil {
		ds.env.fail(fmt.Errorf("flink: KeyBy: nil key selector"))
		return ds
	}
	return &DataStream{env: ds.env, op: ds.op, keyed: selector}
}

// ProcessWithFlush adds a stateful transformation whose flush function
// runs when the bounded input is exhausted, before downstream operators
// observe end of stream. Grouping and windowed aggregations build on it.
func (ds *DataStream) ProcessWithFlush(name string, factory FlushableProcessFactory) *DataStream {
	if factory == nil {
		ds.env.fail(fmt.Errorf("flink: processWithFlush %q: nil factory", name))
	}
	op := &operator{
		name:         name,
		kind:         opTransform,
		parallelism:  ds.env.parallelism,
		chainable:    true,
		flushFactory: factory,
	}
	ds.env.addOp(op)
	ds.connect(op)
	return &DataStream{env: ds.env, op: op}
}

// ProcessWithWatermark adds an event-time stateful transformation driven
// by propagated watermarks: the runtime delivers the min-over-inputs
// watermark of the subtask's senders to the factory's watermark handler,
// which fires the released panes; the flush runs at end of input like
// ProcessWithFlush.
func (ds *DataStream) ProcessWithWatermark(name string, factory WatermarkedProcessFactory) *DataStream {
	if factory == nil {
		ds.env.fail(fmt.Errorf("flink: processWithWatermark %q: nil factory", name))
	}
	op := &operator{
		name:        name,
		kind:        opTransform,
		parallelism: ds.env.parallelism,
		chainable:   true,
		wmFactory:   factory,
	}
	ds.env.addOp(op)
	ds.connect(op)
	return &DataStream{env: ds.env, op: op}
}

// AssignTimestamps adds a timestamp-assignment operator: the factory's
// process function observes event times and injects the watermarks it
// generates into the dataflow through the emitter, from where the
// runtime threads them downstream as control events.
func (ds *DataStream) AssignTimestamps(name string, factory AssignerFactory) *DataStream {
	if factory == nil {
		ds.env.fail(fmt.Errorf("flink: assignTimestamps %q: nil factory", name))
	}
	op := &operator{
		name:          name,
		kind:          opTransform,
		parallelism:   ds.env.parallelism,
		chainable:     true,
		assignFactory: factory,
	}
	ds.env.addOp(op)
	ds.connect(op)
	return &DataStream{env: ds.env, op: op}
}

// DisableChaining prevents this stream's operator from being chained to
// its input, forcing a task boundary (network hop) before it.
func (ds *DataStream) DisableChaining() *DataStream {
	ds.op.chainable = false
	return ds
}

// SetParallelism overrides the parallelism of this stream's operator.
func (ds *DataStream) SetParallelism(p int) *DataStream {
	if p <= 0 {
		ds.env.fail(fmt.Errorf("flink: operator %q: parallelism must be positive, got %d", ds.op.name, p))
		return ds
	}
	ds.op.parallelism = p
	return ds
}

// AddSink terminates the stream in a sink operator.
func (ds *DataStream) AddSink(name string, factory SinkFactory) {
	if factory == nil {
		ds.env.fail(fmt.Errorf("flink: sink %q: nil factory", name))
	}
	op := &operator{
		name:        name,
		kind:        opSink,
		parallelism: ds.env.parallelism,
		chainable:   true,
		sinkFactory: factory,
	}
	ds.env.addOp(op)
	ds.connect(op)
}

func (ds *DataStream) connect(op *operator) {
	e := inEdge{from: ds.op, part: partitionForward}
	if ds.rebal {
		e.part = partitionRebalance
	}
	if ds.keyed != nil {
		e.part = partitionHash
		e.key = ds.keyed
	}
	op.inputs = append(op.inputs, e)
	ds.op.outputs = append(ds.op.outputs, op)
}

// ExecutionPlan renders the logical operator graph, the equivalent of
// the JSON plan the paper visualizes in Figures 12 and 13.
func (env *Environment) ExecutionPlan() (*dag.Graph, error) {
	if env.err != nil {
		return nil, env.err
	}
	g := dag.New()
	for _, op := range env.ops {
		kind := dag.KindOperator
		name := op.name
		switch op.kind {
		case opSource:
			kind = dag.KindSource
			name = "Source: " + op.name
		case opSink:
			kind = dag.KindSink
			name = "Sink: " + op.name
		}
		if err := g.AddNode(dag.Node{
			ID:          planID(op),
			Name:        name,
			Kind:        kind,
			Parallelism: op.parallelism,
		}); err != nil {
			return nil, err
		}
	}
	for _, op := range env.ops {
		for _, in := range op.inputs {
			if err := g.AddEdge(planID(in.from), planID(op)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

func planID(op *operator) string {
	return fmt.Sprintf("op%d", op.id)
}

// validate checks the logical graph before execution.
func (env *Environment) validate() error {
	if env.err != nil {
		return env.err
	}
	if len(env.ops) == 0 {
		return errors.New("flink: empty job")
	}
	var hasSource, hasSink bool
	for _, op := range env.ops {
		switch op.kind {
		case opSource:
			hasSource = true
		case opSink:
			hasSink = true
		case opTransform:
			if len(op.outputs) == 0 {
				return fmt.Errorf("flink: operator %q has no consumers", op.name)
			}
		}
	}
	if !hasSource {
		return errors.New("flink: job has no source")
	}
	if !hasSink {
		return errors.New("flink: job has no sink")
	}
	return nil
}
