package flink

import (
	"bytes"
	"testing"
	"time"

	"beambench/internal/broker"
)

// streamTopic creates the topic and starts a goroutine producing values
// into it with small delays, returning a channel closed when the sender
// finishes.
func streamTopic(t *testing.T, b *broker.Broker, topic string, values [][]byte) <-chan error {
	t.Helper()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 7})
		if err != nil {
			done <- err
			return
		}
		for i, v := range values {
			if i%25 == 0 {
				time.Sleep(time.Millisecond)
			}
			if err := p.Send(topic, nil, v); err != nil {
				done <- err
				return
			}
		}
		done <- p.Close()
	}()
	return done
}

// TestKafkaSourceConsumesConcurrentlyFilledTopic pins the end-of-input
// contract: given the target record count, the source must read a topic
// that is still being filled while the job runs, terminate once the
// target is reached, and preserve single-partition order.
func TestKafkaSourceConsumesConcurrentlyFilledTopic(t *testing.T) {
	b := broker.New()
	input := records(300)
	senderDone := streamTopic(t, b, "in", input)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}

	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	env.AddSource("src", KafkaSource(b, "in", int64(len(input)))).
		AddSink("snk", KafkaSink(b, "out", broker.ProducerConfig{}))
	if _, err := env.Execute("identity"); err != nil {
		t.Fatal(err)
	}
	if err := <-senderDone; err != nil {
		t.Fatal(err)
	}

	got := topicValues(t, b, "out")
	if len(got) != len(input) {
		t.Fatalf("output has %d records, want %d", len(got), len(input))
	}
	for i := range input {
		if !bytes.Equal(got[i], input[i]) {
			t.Fatalf("record %d = %q, want %q (order broken)", i, got[i], input[i])
		}
	}
}

// TestKafkaSourceTargetWithParallelSubtasks: with one input partition
// and parallelism 2, only subtask 0 owns data; the idle subtask must
// terminate without consuming and without stalling the job while the
// topic is still filling.
func TestKafkaSourceTargetWithParallelSubtasks(t *testing.T) {
	b := broker.New()
	input := records(200)
	senderDone := streamTopic(t, b, "in", input)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}

	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster).SetParallelism(2)
	env.AddSource("src", KafkaSource(b, "in", int64(len(input)))).
		AddSink("snk", KafkaSink(b, "out", broker.ProducerConfig{}))
	if _, err := env.Execute("identity"); err != nil {
		t.Fatal(err)
	}
	if err := <-senderDone; err != nil {
		t.Fatal(err)
	}
	if got := topicValues(t, b, "out"); len(got) != len(input) {
		t.Fatalf("output has %d records, want %d", len(got), len(input))
	}
}
