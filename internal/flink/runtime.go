package flink

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"beambench/internal/keyhash"
	"beambench/internal/metrics"
	"beambench/internal/simcost"
	"beambench/internal/watermark"
)

// errStopped is the internal signal that the job is shutting down; it is
// never surfaced to callers.
var errStopped = errors.New("flink: job stopped")

// _channelBuffer is the capacity of the in-flight record buffer of one
// network channel between subtasks, standing in for Flink's network
// buffer pool.
const _channelBuffer = 128

// streamElement is one unit travelling a network channel: a data record,
// or a watermark control event. Watermarks flow through the dataflow
// itself — stamped where event time is assigned, forwarded by every
// task, combined min-over-senders at every multi-input point — so they
// carry the sending subtask's identity for the receiver's MinTracker.
type streamElement struct {
	rec    []byte
	wm     time.Time
	ctrl   bool
	sender int
}

// JobResult summarizes a finished job.
type JobResult struct {
	// JobName is the submitted name.
	JobName string
	// Duration is the wall-clock execution time including deployment.
	Duration time.Duration
	// Attempts counts executions: 1 plus the restarts consumed.
	Attempts int
	// Operators holds per-operator record counters from the last attempt.
	Operators []OperatorStats
	// Tasks is the number of physical tasks (chains) the job ran as.
	Tasks int
}

// OperatorStat returns the stats of the named operator.
func (r *JobResult) OperatorStat(name string) (OperatorStats, bool) {
	for _, s := range r.Operators {
		if s.Name == name {
			return s, true
		}
	}
	return OperatorStats{}, false
}

// chain is a group of operators fused into one physical task.
type chain struct {
	ops         []*operator
	parallelism int
}

func (c *chain) head() *operator { return c.ops[0] }
func (c *chain) tail() *operator { return c.ops[len(c.ops)-1] }

// buildChains groups the logical operators into physical tasks using
// Flink's chaining rule: forward-connected operators of equal
// parallelism fuse, unless chaining is disabled for the job or operator.
// Multi-input operators (Union) always head their own chain.
func (env *Environment) buildChains() []*chain {
	chainOf := make(map[*operator]*chain, len(env.ops))
	var chains []*chain
	for _, op := range env.ops {
		if len(op.inputs) == 1 && env.canChain(op.inputs[0], op) {
			c := chainOf[op.inputs[0].from]
			if c != nil && c.tail() == op.inputs[0].from {
				c.ops = append(c.ops, op)
				chainOf[op] = c
				continue
			}
		}
		c := &chain{ops: []*operator{op}, parallelism: op.parallelism}
		chains = append(chains, c)
		chainOf[op] = c
	}
	return chains
}

func (env *Environment) canChain(e inEdge, down *operator) bool {
	return env.chainingEnabled &&
		down.chainable &&
		e.part == partitionForward &&
		e.from.parallelism == down.parallelism &&
		len(e.from.outputs) == 1
}

// runtimeChain wires one chain into the running job.
type runtimeChain struct {
	c      *chain
	inputs []chan streamElement // one per subtask; nil for source chains
	edges  []*runtimeEdge
	// senders is the number of distinct upstream subtasks feeding this
	// chain's input channels (summed over input edges); each gets a slot
	// in every subtask's watermark MinTracker.
	senders int
	// pendingUp counts open input edges; the last finishing upstream
	// chain closes the input channels.
	pendingUp int32
	wg        sync.WaitGroup
}

// runtimeEdge carries records from this chain to one downstream chain.
type runtimeEdge struct {
	mode  partitioning
	keyFn KeySelector
	// senderBase is the first global sender index this edge's subtasks
	// occupy in the destination's MinTracker.
	senderBase int
	dst        *runtimeChain
	targets    []chan streamElement
}

// jobRuntime tracks shutdown across subtasks.
type jobRuntime struct {
	stop chan struct{}

	mu  sync.Mutex
	err error
}

func (rt *jobRuntime) fail(err error) {
	if err == nil || errors.Is(err, errStopped) {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.err == nil {
		rt.err = err
		close(rt.stop)
	}
}

func (rt *jobRuntime) failure() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.err
}

// Execute deploys and runs the job to completion (all sources exhausted
// and sinks closed), applying the cluster's restart strategy on failure.
func (env *Environment) Execute(jobName string) (*JobResult, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if !env.cluster.Running() {
		return nil, ErrClusterStopped
	}
	// Wall-clock here times the job for JobResult.Duration telemetry;
	// it never reaches record bytes, which carry their own event time.
	//beamvet:allow determinism duration telemetry, not record output
	start := time.Now()
	attempts := 0
	for {
		attempts++
		err := env.runOnce()
		if err == nil {
			chains := env.buildChains()
			return &JobResult{
				JobName:   jobName,
				Duration:  time.Since(start),
				Attempts:  attempts,
				Operators: env.operatorStats(),
				Tasks:     len(chains),
			}, nil
		}
		if attempts > env.cluster.cfg.RestartAttempts {
			return nil, fmt.Errorf("flink: job %q failed after %d attempt(s): %w", jobName, attempts, err)
		}
	}
}

func (env *Environment) operatorStats() []OperatorStats {
	out := make([]OperatorStats, 0, len(env.ops))
	for _, op := range env.ops {
		out = append(out, op.metrics.snapshot())
	}
	return out
}

func (env *Environment) runOnce() error {
	for _, op := range env.ops {
		op.metrics.reset()
	}
	// Pre-register telemetry stages in graph order, so reports list
	// operators as the job declares them rather than in the (reversed)
	// chain-composition order subtasks resolve them in.
	if m := env.cluster.cfg.Metrics; m != nil {
		for _, op := range env.ops {
			m.Stage(op.name)
		}
	}
	chains := env.buildChains()

	maxPar := 1
	for _, op := range env.ops {
		if op.parallelism > maxPar {
			maxPar = op.parallelism
		}
	}
	slots, err := env.cluster.jm.acquire(maxPar)
	if err != nil {
		return err
	}
	defer env.cluster.jm.release(slots)

	// Deployment cost: client -> Job Manager -> Task Managers.
	deployMeter := env.cluster.cfg.Sim.NewMeter()
	deployMeter.Charge(env.cluster.cfg.Costs.EngineJobStart)
	deployMeter.Flush()

	// Wire runtime chains and channels.
	rcs := make([]*runtimeChain, len(chains))
	rcOf := make(map[*operator]*runtimeChain, len(env.ops))
	for i, c := range chains {
		rc := &runtimeChain{c: c}
		if len(c.head().inputs) > 0 {
			rc.inputs = make([]chan streamElement, c.parallelism)
			for j := range rc.inputs {
				rc.inputs[j] = make(chan streamElement, _channelBuffer)
			}
		}
		rcs[i] = rc
		for _, op := range c.ops {
			rcOf[op] = rc
		}
	}
	for _, rc := range rcs {
		head := rc.c.head()
		for _, in := range head.inputs {
			up := rcOf[in.from]
			mode := in.part
			if mode == partitionForward && up.c.parallelism != rc.c.parallelism {
				mode = partitionRebalance
			}
			up.edges = append(up.edges, &runtimeEdge{
				mode:       mode,
				keyFn:      in.key,
				senderBase: rc.senders,
				dst:        rc,
				targets:    rc.inputs,
			})
			rc.senders += up.c.parallelism
			rc.pendingUp++
		}
	}

	rt := &jobRuntime{stop: make(chan struct{})}
	var all sync.WaitGroup
	for _, rc := range rcs {
		rc.wg.Add(rc.c.parallelism)
		for idx := range rc.c.parallelism {
			all.Add(1)
			go func(rc *runtimeChain, idx int) {
				defer all.Done()
				defer rc.wg.Done()
				if err := env.runSubtask(rt, rc, idx); err != nil {
					rt.fail(err)
				}
			}(rc, idx)
		}
		// Close each downstream chain's channels once every input edge's
		// upstream chain is done — with multiple inputs (Union), the last
		// finishing upstream signals end of stream.
		all.Add(1)
		go func(rc *runtimeChain) {
			defer all.Done()
			rc.wg.Wait()
			for _, e := range rc.edges {
				if atomic.AddInt32(&e.dst.pendingUp, -1) == 0 {
					for _, ch := range e.dst.inputs {
						close(ch)
					}
				}
			}
		}(rc)
	}
	all.Wait()
	return rt.failure()
}

// subtaskContext implements OperatorContext for one subtask.
type subtaskContext struct {
	idx     int
	par     int
	meter   *simcost.Meter
	metrics *metrics.Collector
	markers []*stageMarker
}

func (c *subtaskContext) SubtaskIndex() int      { return c.idx }
func (c *subtaskContext) Parallelism() int       { return c.par }
func (c *subtaskContext) Charge(d time.Duration) { c.meter.Charge(d) }

func (c *subtaskContext) flush() {
	for _, m := range c.markers {
		m.flush()
	}
	c.meter.Flush()
}

// newMarker returns a per-subtask throughput marker for one operator, or
// nil when metrics collection is disabled.
func (c *subtaskContext) newMarker(name string) *stageMarker {
	if c.metrics == nil {
		return nil
	}
	m := &stageMarker{stage: c.metrics.Stage(name)}
	c.markers = append(c.markers, m)
	return m
}

// markerFlushEvery is how many records a subtask batches locally before
// one Mark call: the telemetry hot path stays a local increment, with a
// clock read and two atomics every 256 records.
const markerFlushEvery = 256

// stageMarker batches one subtask's marks for one stage. Methods on a
// nil marker are no-ops (collection disabled).
type stageMarker struct {
	stage   *metrics.Stage
	pending int64
}

func (m *stageMarker) mark() {
	if m == nil {
		return
	}
	m.pending++
	if m.pending >= markerFlushEvery {
		m.stage.Mark(m.pending)
		m.pending = 0
	}
}

func (m *stageMarker) flush() {
	if m == nil || m.pending == 0 {
		return
	}
	m.stage.Mark(m.pending)
	m.pending = 0
}

// wmHandler advances the watermark at one point of a chain's control
// path; handlers are composed back to front like collectors, ending in
// the broadcast to the chain's outgoing edges.
type wmHandler func(w time.Time) error

// emitterFunc adapts a wmHandler into the WatermarkEmitter a timestamp
// assigner injects through.
type emitterFunc func(w time.Time) error

func (f emitterFunc) EmitWatermark(w time.Time) error { return f(w) }

// runSubtask executes one parallel instance of a chain.
func (env *Environment) runSubtask(rt *jobRuntime, rc *runtimeChain, idx int) error {
	ctx := &subtaskContext{
		idx:     idx,
		par:     rc.c.parallelism,
		meter:   env.cluster.cfg.Sim.NewMeter(),
		metrics: env.cluster.cfg.Metrics,
	}
	defer ctx.flush()
	// One span per subtask attempt, on a track naming the chain (head
	// operator) and parallel instance.
	span := env.cluster.cfg.Trace.Span("flink/"+rc.c.head().name+"/subtask-"+strconv.Itoa(idx), "subtask")
	defer span.End()

	// Tail collector: either the network edges or nothing (sink ends the
	// chain and is handled inside the composed pipeline).
	var tail Collector = discardCollector{}
	var senders []*edgeSender
	if len(rc.edges) > 0 {
		cols := make([]Collector, len(rc.edges))
		for i, e := range rc.edges {
			s := &edgeSender{
				edge:    e,
				idx:     idx,
				stop:    rt.stop,
				meter:   ctx.meter,
				hopCost: env.cluster.cfg.Costs.NetworkHopPerRecord,
			}
			senders = append(senders, s)
			cols[i] = s
		}
		if len(cols) == 1 {
			tail = cols[0]
		} else {
			tail = multiCollector(cols)
		}
	}
	// The control path's tail: forward the subtask's output watermark on
	// every outgoing edge (broadcast — every downstream subtask tracks
	// this sender). The chain's output watermark also feeds a gauge the
	// obs monitor samples for per-operator watermark lag; subtasks of
	// one chain share the gauge (an atomic, last write wins).
	wmGauge := env.cluster.cfg.Trace.Gauge("watermark-lag/" + rc.c.tail().name)
	wmTail := wmHandler(func(w time.Time) error {
		wmGauge.SetTime(w)
		if w.Equal(watermark.EndOfTime) {
			env.cluster.cfg.Trace.Instant("drain/"+rc.c.tail().name, "end-of-input")
		}
		for _, s := range senders {
			if err := s.sendWatermark(w); err != nil {
				return err
			}
		}
		return nil
	})

	// Compose the chain back to front, collecting sinks to close and
	// stateful flushes to run at end of input. The watermark control path
	// composes alongside: a stage's watermark hook fires released panes
	// into the stage's own output collector before the watermark moves on
	// downstream.
	var (
		sinks   []Sink
		flushes []flushEntry
	)
	closeSinks := func() error {
		var firstErr error
		for _, s := range sinks {
			if err := s.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	current := tail
	currentWM := wmTail
	ops := rc.c.ops
	for i := len(ops) - 1; i >= 0; i-- {
		st, err := env.buildStage(ops[i], ctx, current, currentWM)
		if err != nil {
			_ = closeSinks()
			return err
		}
		if st.sink != nil {
			sinks = append(sinks, st.sink)
		}
		if st.flush.flush != nil {
			flushes = append(flushes, st.flush)
		}
		current = st.col
		if st.wm != nil {
			hook, out, next := st.wm, st.wmOut, currentWM
			currentWM = func(w time.Time) error {
				if err := hook(w, out); err != nil {
					return err
				}
				return next(w)
			}
		}
	}

	head := ops[0]
	var runErr error
	switch head.kind {
	case opSource:
		src, err := head.sourceFactory(ctx)
		if err != nil {
			runErr = fmt.Errorf("flink: open source %q: %w", head.name, err)
		} else {
			runErr = src.Run(current)
		}
	case opTransform, opSink:
		runErr = env.consumeInput(rc, idx, current, currentWM)
	default:
		runErr = fmt.Errorf("flink: unknown operator kind %d", head.kind)
	}

	// On clean end of input, flush stateful operators upstream-first so
	// their emissions flow through the downstream stages of the chain,
	// then propagate the end-of-stream watermark so downstream tasks
	// finalize this sender while other senders may still stream.
	if runErr == nil {
		for i := len(flushes) - 1; i >= 0; i-- {
			if err := flushes[i].flush(flushes[i].out); err != nil {
				runErr = err
				break
			}
		}
	}
	if runErr == nil {
		runErr = wmTail(watermark.EndOfTime)
	}

	closeErr := closeSinks()
	if runErr != nil && !errors.Is(runErr, errStopped) {
		return runErr
	}
	if closeErr != nil {
		return closeErr
	}
	return nil
}

// consumeInput drains one subtask's input channel: data records feed the
// composed collector chain; watermark control events advance the
// per-sender MinTracker, and each combined (min-over-senders) advance is
// delivered through the chain's control path. The sole head stage of an
// unfused stateful operator fires its panes there, exactly like a
// mid-chain one.
func (env *Environment) consumeInput(rc *runtimeChain, idx int, c Collector, wm wmHandler) error {
	tracker := watermark.NewMinTracker(rc.senders)
	var delivered time.Time
	for el := range rc.inputs[idx] {
		if !el.ctrl {
			if err := c.Collect(el.rec); err != nil {
				return err
			}
			continue
		}
		if el.wm.Equal(watermark.EndOfTime) {
			tracker.Finalize(el.sender)
		} else {
			tracker.Advance(el.sender, el.wm)
		}
		if combined := tracker.Combined(); combined.After(delivered) {
			delivered = combined
			if err := wm(combined); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushEntry pairs a stateful operator's flush with the collector its
// final emissions feed.
type flushEntry struct {
	flush FlushFunc
	out   Collector
}

// builtStage is one operator instantiated for a subtask: the collector
// feeding it, plus its sink, end-of-input flush and watermark hook.
type builtStage struct {
	col   Collector
	sink  Sink
	flush flushEntry
	wm    WatermarkFunc
	wmOut Collector
}

// buildStage instantiates one operator of the chain for this subtask.
// nextWM is the downstream control path, which timestamp assigners
// inject their generated watermarks into.
func (env *Environment) buildStage(op *operator, ctx *subtaskContext, next Collector, nextWM wmHandler) (builtStage, error) {
	switch op.kind {
	case opSource:
		// A source heads its own chain and is run directly; its stage is
		// just the emission counter its Run collector goes through.
		return builtStage{col: &countingCollector{next: next, metrics: op.metrics, marker: ctx.newMarker(op.name)}}, nil
	case opTransform:
		counting := &countingCollector{next: next, metrics: op.metrics, marker: ctx.newMarker(op.name)}
		switch {
		case op.wmFactory != nil:
			fn, wmFn, flush, err := op.wmFactory(ctx)
			if err != nil {
				return builtStage{}, fmt.Errorf("flink: open operator %q: %w", op.name, err)
			}
			return builtStage{
				col:   &processCollector{fn: fn, out: counting, metrics: op.metrics},
				flush: flushEntry{flush: flush, out: counting},
				wm:    wmFn,
				wmOut: counting,
			}, nil
		case op.assignFactory != nil:
			fn, err := op.assignFactory(ctx, emitterFunc(nextWM))
			if err != nil {
				return builtStage{}, fmt.Errorf("flink: open operator %q: %w", op.name, err)
			}
			return builtStage{col: &processCollector{fn: fn, out: counting, metrics: op.metrics}}, nil
		case op.flushFactory != nil:
			fn, flush, err := op.flushFactory(ctx)
			if err != nil {
				return builtStage{}, fmt.Errorf("flink: open operator %q: %w", op.name, err)
			}
			return builtStage{
				col:   &processCollector{fn: fn, out: counting, metrics: op.metrics},
				flush: flushEntry{flush: flush, out: counting},
			}, nil
		default:
			fn, err := op.processFactory(ctx)
			if err != nil {
				return builtStage{}, fmt.Errorf("flink: open operator %q: %w", op.name, err)
			}
			return builtStage{col: &processCollector{fn: fn, out: counting, metrics: op.metrics}}, nil
		}
	case opSink:
		sink, err := op.sinkFactory(ctx)
		if err != nil {
			return builtStage{}, fmt.Errorf("flink: open sink %q: %w", op.name, err)
		}
		return builtStage{
			col:  &sinkCollector{sink: sink, metrics: op.metrics, marker: ctx.newMarker(op.name)},
			sink: sink,
		}, nil
	default:
		return builtStage{}, fmt.Errorf("flink: operator %q cannot appear mid-chain", op.name)
	}
}

// discardCollector terminates chains that end in a sink (the sink
// collector never forwards) and tolerates dead-end transforms in tests.
type discardCollector struct{}

func (discardCollector) Collect([]byte) error { return nil }

// countingCollector counts emissions of an operator before forwarding.
type countingCollector struct {
	next    Collector
	metrics *OperatorMetrics
	marker  *stageMarker
}

func (c *countingCollector) Collect(rec []byte) error {
	c.metrics.incOut()
	c.marker.mark()
	return c.next.Collect(rec)
}

// processCollector applies a transform to each incoming record.
type processCollector struct {
	fn      ProcessFunc
	out     Collector
	metrics *OperatorMetrics
}

func (c *processCollector) Collect(rec []byte) error {
	c.metrics.incIn()
	return c.fn(rec, c.out)
}

// sinkCollector delivers records to a sink instance.
type sinkCollector struct {
	sink    Sink
	metrics *OperatorMetrics
	marker  *stageMarker
}

func (c *sinkCollector) Collect(rec []byte) error {
	c.metrics.incIn()
	c.marker.mark()
	return c.sink.Invoke(rec)
}

// multiCollector fans a record out to several collectors.
type multiCollector []Collector

func (m multiCollector) Collect(rec []byte) error {
	for _, c := range m {
		if err := c.Collect(rec); err != nil {
			return err
		}
	}
	return nil
}

// edgeSender ships records across a task boundary: it serializes (copies)
// the record, charges the per-record network hop, and delivers to the
// downstream subtask chosen by the edge's partitioning. Watermarks are
// control events: they broadcast to every downstream subtask under this
// sender's identity, so each receiver can hold its combined watermark at
// the minimum over all senders.
type edgeSender struct {
	edge    *runtimeEdge
	idx     int
	rr      int
	lastWM  time.Time
	stop    <-chan struct{}
	meter   *simcost.Meter
	hopCost time.Duration
}

func (e *edgeSender) Collect(rec []byte) error {
	wire := make([]byte, len(rec))
	copy(wire, rec)
	e.meter.Charge(e.hopCost)

	var target chan streamElement
	switch e.edge.mode {
	case partitionForward:
		target = e.edge.targets[e.idx%len(e.edge.targets)]
	case partitionHash:
		key, err := e.edge.keyFn(rec)
		if err != nil {
			return fmt.Errorf("flink: key selector: %w", err)
		}
		target = e.edge.targets[keyhash.Partition(key, len(e.edge.targets))]
	default:
		target = e.edge.targets[e.rr%len(e.edge.targets)]
		e.rr++
	}
	return e.send(target, streamElement{rec: wire})
}

// sendWatermark broadcasts one watermark control event; regressions and
// repeats are dropped (the control path is monotone per sender).
func (e *edgeSender) sendWatermark(w time.Time) error {
	if !w.After(e.lastWM) {
		return nil
	}
	e.lastWM = w
	el := streamElement{wm: w, ctrl: true, sender: e.edge.senderBase + e.idx}
	for _, target := range e.edge.targets {
		if err := e.send(target, el); err != nil {
			return err
		}
	}
	return nil
}

func (e *edgeSender) send(target chan streamElement, el streamElement) error {
	select {
	case target <- el:
		return nil
	case <-e.stop:
		return errStopped
	}
}
