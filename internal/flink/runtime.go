package flink

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"beambench/internal/keyhash"
	"beambench/internal/metrics"
	"beambench/internal/simcost"
)

// errStopped is the internal signal that the job is shutting down; it is
// never surfaced to callers.
var errStopped = errors.New("flink: job stopped")

// _channelBuffer is the capacity of the in-flight record buffer of one
// network channel between subtasks, standing in for Flink's network
// buffer pool.
const _channelBuffer = 128

// JobResult summarizes a finished job.
type JobResult struct {
	// JobName is the submitted name.
	JobName string
	// Duration is the wall-clock execution time including deployment.
	Duration time.Duration
	// Attempts counts executions: 1 plus the restarts consumed.
	Attempts int
	// Operators holds per-operator record counters from the last attempt.
	Operators []OperatorStats
	// Tasks is the number of physical tasks (chains) the job ran as.
	Tasks int
}

// OperatorStat returns the stats of the named operator.
func (r *JobResult) OperatorStat(name string) (OperatorStats, bool) {
	for _, s := range r.Operators {
		if s.Name == name {
			return s, true
		}
	}
	return OperatorStats{}, false
}

// chain is a group of operators fused into one physical task.
type chain struct {
	ops         []*operator
	parallelism int
}

func (c *chain) head() *operator { return c.ops[0] }
func (c *chain) tail() *operator { return c.ops[len(c.ops)-1] }

// buildChains groups the logical operators into physical tasks using
// Flink's chaining rule: forward-connected operators of equal
// parallelism fuse, unless chaining is disabled for the job or operator.
func (env *Environment) buildChains() []*chain {
	chainOf := make(map[*operator]*chain, len(env.ops))
	var chains []*chain
	for _, op := range env.ops {
		if op.input != nil && env.canChain(op.input, op) {
			c := chainOf[op.input]
			if c != nil && c.tail() == op.input {
				c.ops = append(c.ops, op)
				chainOf[op] = c
				continue
			}
		}
		c := &chain{ops: []*operator{op}, parallelism: op.parallelism}
		chains = append(chains, c)
		chainOf[op] = c
	}
	return chains
}

func (env *Environment) canChain(up, down *operator) bool {
	return env.chainingEnabled &&
		down.chainable &&
		down.inPart == partitionForward &&
		up.parallelism == down.parallelism &&
		len(up.outputs) == 1
}

// runtimeChain wires one chain into the running job.
type runtimeChain struct {
	c      *chain
	inputs []chan []byte // one per subtask; nil for source chains
	edges  []*runtimeEdge
	wg     sync.WaitGroup
}

// runtimeEdge carries records from this chain to one downstream chain.
type runtimeEdge struct {
	mode    partitioning
	keyFn   KeySelector
	targets []chan []byte
}

// jobRuntime tracks shutdown across subtasks.
type jobRuntime struct {
	stop chan struct{}

	mu  sync.Mutex
	err error
}

func (rt *jobRuntime) fail(err error) {
	if err == nil || errors.Is(err, errStopped) {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.err == nil {
		rt.err = err
		close(rt.stop)
	}
}

func (rt *jobRuntime) failure() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.err
}

// Execute deploys and runs the job to completion (all sources exhausted
// and sinks closed), applying the cluster's restart strategy on failure.
func (env *Environment) Execute(jobName string) (*JobResult, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if !env.cluster.Running() {
		return nil, ErrClusterStopped
	}
	start := time.Now()
	attempts := 0
	for {
		attempts++
		err := env.runOnce()
		if err == nil {
			chains := env.buildChains()
			return &JobResult{
				JobName:   jobName,
				Duration:  time.Since(start),
				Attempts:  attempts,
				Operators: env.operatorStats(),
				Tasks:     len(chains),
			}, nil
		}
		if attempts > env.cluster.cfg.RestartAttempts {
			return nil, fmt.Errorf("flink: job %q failed after %d attempt(s): %w", jobName, attempts, err)
		}
	}
}

func (env *Environment) operatorStats() []OperatorStats {
	out := make([]OperatorStats, 0, len(env.ops))
	for _, op := range env.ops {
		out = append(out, op.metrics.snapshot())
	}
	return out
}

func (env *Environment) runOnce() error {
	for _, op := range env.ops {
		op.metrics.reset()
	}
	// Pre-register telemetry stages in graph order, so reports list
	// operators as the job declares them rather than in the (reversed)
	// chain-composition order subtasks resolve them in.
	if m := env.cluster.cfg.Metrics; m != nil {
		for _, op := range env.ops {
			m.Stage(op.name)
		}
	}
	chains := env.buildChains()

	maxPar := 1
	for _, op := range env.ops {
		if op.parallelism > maxPar {
			maxPar = op.parallelism
		}
	}
	slots, err := env.cluster.jm.acquire(maxPar)
	if err != nil {
		return err
	}
	defer env.cluster.jm.release(slots)

	// Deployment cost: client -> Job Manager -> Task Managers.
	deployMeter := env.cluster.cfg.Sim.NewMeter()
	deployMeter.Charge(env.cluster.cfg.Costs.EngineJobStart)
	deployMeter.Flush()

	// Wire runtime chains and channels.
	rcs := make([]*runtimeChain, len(chains))
	rcOf := make(map[*operator]*runtimeChain, len(env.ops))
	for i, c := range chains {
		rc := &runtimeChain{c: c}
		if c.head().kind != opSource {
			rc.inputs = make([]chan []byte, c.parallelism)
			for j := range rc.inputs {
				rc.inputs[j] = make(chan []byte, _channelBuffer)
			}
		}
		rcs[i] = rc
		for _, op := range c.ops {
			rcOf[op] = rc
		}
	}
	for _, rc := range rcs {
		head := rc.c.head()
		if head.input == nil {
			continue
		}
		up := rcOf[head.input]
		mode := head.inPart
		if mode == partitionForward && up.c.parallelism != rc.c.parallelism {
			mode = partitionRebalance
		}
		up.edges = append(up.edges, &runtimeEdge{mode: mode, keyFn: head.inKey, targets: rc.inputs})
	}

	rt := &jobRuntime{stop: make(chan struct{})}
	var all sync.WaitGroup
	for _, rc := range rcs {
		rc.wg.Add(rc.c.parallelism)
		for idx := range rc.c.parallelism {
			all.Add(1)
			go func(rc *runtimeChain, idx int) {
				defer all.Done()
				defer rc.wg.Done()
				if err := env.runSubtask(rt, rc, idx); err != nil {
					rt.fail(err)
				}
			}(rc, idx)
		}
		// Close downstream channels when every subtask of this chain is
		// done, signalling end of stream.
		all.Add(1)
		go func(rc *runtimeChain) {
			defer all.Done()
			rc.wg.Wait()
			for _, e := range rc.edges {
				for _, ch := range e.targets {
					close(ch)
				}
			}
		}(rc)
	}
	all.Wait()
	return rt.failure()
}

// subtaskContext implements OperatorContext for one subtask.
type subtaskContext struct {
	idx     int
	par     int
	meter   *simcost.Meter
	metrics *metrics.Collector
	markers []*stageMarker
}

func (c *subtaskContext) SubtaskIndex() int      { return c.idx }
func (c *subtaskContext) Parallelism() int       { return c.par }
func (c *subtaskContext) Charge(d time.Duration) { c.meter.Charge(d) }

func (c *subtaskContext) flush() {
	for _, m := range c.markers {
		m.flush()
	}
	c.meter.Flush()
}

// newMarker returns a per-subtask throughput marker for one operator, or
// nil when metrics collection is disabled.
func (c *subtaskContext) newMarker(name string) *stageMarker {
	if c.metrics == nil {
		return nil
	}
	m := &stageMarker{stage: c.metrics.Stage(name)}
	c.markers = append(c.markers, m)
	return m
}

// markerFlushEvery is how many records a subtask batches locally before
// one Mark call: the telemetry hot path stays a local increment, with a
// clock read and two atomics every 256 records.
const markerFlushEvery = 256

// stageMarker batches one subtask's marks for one stage. Methods on a
// nil marker are no-ops (collection disabled).
type stageMarker struct {
	stage   *metrics.Stage
	pending int64
}

func (m *stageMarker) mark() {
	if m == nil {
		return
	}
	m.pending++
	if m.pending >= markerFlushEvery {
		m.stage.Mark(m.pending)
		m.pending = 0
	}
}

func (m *stageMarker) flush() {
	if m == nil || m.pending == 0 {
		return
	}
	m.stage.Mark(m.pending)
	m.pending = 0
}

// runSubtask executes one parallel instance of a chain.
func (env *Environment) runSubtask(rt *jobRuntime, rc *runtimeChain, idx int) error {
	ctx := &subtaskContext{
		idx:     idx,
		par:     rc.c.parallelism,
		meter:   env.cluster.cfg.Sim.NewMeter(),
		metrics: env.cluster.cfg.Metrics,
	}
	defer ctx.flush()

	// Tail collector: either the network edges or nothing (sink ends the
	// chain and is handled inside the composed pipeline).
	var tail Collector = discardCollector{}
	if len(rc.edges) > 0 {
		senders := make([]Collector, len(rc.edges))
		for i, e := range rc.edges {
			senders[i] = &edgeSender{
				edge:    e,
				idx:     idx,
				stop:    rt.stop,
				meter:   ctx.meter,
				hopCost: env.cluster.cfg.Costs.NetworkHopPerRecord,
			}
		}
		if len(senders) == 1 {
			tail = senders[0]
		} else {
			tail = multiCollector(senders)
		}
	}

	// Compose the chain back to front, collecting sinks to close and
	// stateful flushes to run at end of input.
	var (
		sinks   []Sink
		flushes []flushEntry
	)
	closeSinks := func() error {
		var firstErr error
		for _, s := range sinks {
			if err := s.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	current := tail
	ops := rc.c.ops
	for i := len(ops) - 1; i >= 1; i-- {
		c, s, fl, err := env.buildStage(ops[i], ctx, current)
		if err != nil {
			_ = closeSinks()
			return err
		}
		if s != nil {
			sinks = append(sinks, s)
		}
		if fl.flush != nil {
			flushes = append(flushes, fl)
		}
		current = c
	}

	head := ops[0]
	var runErr error
	switch head.kind {
	case opSource:
		runErr = env.runSource(head, ctx, current)
	case opTransform, opSink:
		c, s, fl, err := env.buildStage(head, ctx, current)
		if err != nil {
			_ = closeSinks()
			return err
		}
		if s != nil {
			sinks = append(sinks, s)
		}
		if fl.flush != nil {
			flushes = append(flushes, fl)
		}
		runErr = consumeInput(rc.inputs[idx], c)
	default:
		runErr = fmt.Errorf("flink: unknown operator kind %d", head.kind)
	}

	// On clean end of input, flush stateful operators upstream-first so
	// their emissions flow through the downstream stages of the chain.
	if runErr == nil {
		for i := len(flushes) - 1; i >= 0; i-- {
			if err := flushes[i].flush(flushes[i].out); err != nil {
				runErr = err
				break
			}
		}
	}

	closeErr := closeSinks()
	if runErr != nil && !errors.Is(runErr, errStopped) {
		return runErr
	}
	if closeErr != nil {
		return closeErr
	}
	return nil
}

// flushEntry pairs a stateful operator's flush with the collector its
// final emissions feed.
type flushEntry struct {
	flush FlushFunc
	out   Collector
}

func consumeInput(in <-chan []byte, c Collector) error {
	for rec := range in {
		if err := c.Collect(rec); err != nil {
			return err
		}
	}
	return nil
}

// buildStage instantiates one operator of the chain for this subtask and
// returns the collector feeding it, plus the sink to close and the
// flush to run at end of input, when present.
func (env *Environment) buildStage(op *operator, ctx *subtaskContext, next Collector) (Collector, Sink, flushEntry, error) {
	var noFlush flushEntry
	switch op.kind {
	case opTransform:
		counting := &countingCollector{next: next, metrics: op.metrics, marker: ctx.newMarker(op.name)}
		if op.flushFactory != nil {
			fn, flush, err := op.flushFactory(ctx)
			if err != nil {
				return nil, nil, noFlush, fmt.Errorf("flink: open operator %q: %w", op.name, err)
			}
			return &processCollector{fn: fn, out: counting, metrics: op.metrics},
				nil, flushEntry{flush: flush, out: counting}, nil
		}
		fn, err := op.processFactory(ctx)
		if err != nil {
			return nil, nil, noFlush, fmt.Errorf("flink: open operator %q: %w", op.name, err)
		}
		return &processCollector{fn: fn, out: counting, metrics: op.metrics}, nil, noFlush, nil
	case opSink:
		sink, err := op.sinkFactory(ctx)
		if err != nil {
			return nil, nil, noFlush, fmt.Errorf("flink: open sink %q: %w", op.name, err)
		}
		return &sinkCollector{sink: sink, metrics: op.metrics, marker: ctx.newMarker(op.name)}, sink, noFlush, nil
	default:
		return nil, nil, noFlush, fmt.Errorf("flink: operator %q cannot appear mid-chain", op.name)
	}
}

func (env *Environment) runSource(op *operator, ctx *subtaskContext, next Collector) error {
	src, err := op.sourceFactory(ctx)
	if err != nil {
		return fmt.Errorf("flink: open source %q: %w", op.name, err)
	}
	return src.Run(&countingCollector{next: next, metrics: op.metrics, marker: ctx.newMarker(op.name)})
}

// discardCollector terminates chains that end in a sink (the sink
// collector never forwards) and tolerates dead-end transforms in tests.
type discardCollector struct{}

func (discardCollector) Collect([]byte) error { return nil }

// countingCollector counts emissions of an operator before forwarding.
type countingCollector struct {
	next    Collector
	metrics *OperatorMetrics
	marker  *stageMarker
}

func (c *countingCollector) Collect(rec []byte) error {
	c.metrics.incOut()
	c.marker.mark()
	return c.next.Collect(rec)
}

// processCollector applies a transform to each incoming record.
type processCollector struct {
	fn      ProcessFunc
	out     Collector
	metrics *OperatorMetrics
}

func (c *processCollector) Collect(rec []byte) error {
	c.metrics.incIn()
	return c.fn(rec, c.out)
}

// sinkCollector delivers records to a sink instance.
type sinkCollector struct {
	sink    Sink
	metrics *OperatorMetrics
	marker  *stageMarker
}

func (c *sinkCollector) Collect(rec []byte) error {
	c.metrics.incIn()
	c.marker.mark()
	return c.sink.Invoke(rec)
}

// multiCollector fans a record out to several collectors.
type multiCollector []Collector

func (m multiCollector) Collect(rec []byte) error {
	for _, c := range m {
		if err := c.Collect(rec); err != nil {
			return err
		}
	}
	return nil
}

// edgeSender ships records across a task boundary: it serializes (copies)
// the record, charges the per-record network hop, and delivers to the
// downstream subtask chosen by the edge's partitioning.
type edgeSender struct {
	edge    *runtimeEdge
	idx     int
	rr      int
	stop    <-chan struct{}
	meter   *simcost.Meter
	hopCost time.Duration
}

func (e *edgeSender) Collect(rec []byte) error {
	wire := make([]byte, len(rec))
	copy(wire, rec)
	e.meter.Charge(e.hopCost)

	var target chan []byte
	switch e.edge.mode {
	case partitionForward:
		target = e.edge.targets[e.idx%len(e.edge.targets)]
	case partitionHash:
		key, err := e.edge.keyFn(rec)
		if err != nil {
			return fmt.Errorf("flink: key selector: %w", err)
		}
		target = e.edge.targets[keyhash.Partition(key, len(e.edge.targets))]
	default:
		target = e.edge.targets[e.rr%len(e.edge.targets)]
		e.rr++
	}
	select {
	case target <- wire:
		return nil
	case <-e.stop:
		return errStopped
	}
}
