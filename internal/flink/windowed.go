package flink

import (
	"fmt"
	"time"

	"beambench/internal/watermark"
)

// EventTimeFn extracts a record's event timestamp from the record
// itself, e.g. a time column of the payload.
type EventTimeFn func(rec []byte) (time.Time, error)

// WindowFormatFn renders one fired pane as an output record.
type WindowFormatFn func(windowStart time.Time, key []byte, count int64) []byte

// WindowConfig parameterizes a keyed tumbling-window aggregation.
type WindowConfig struct {
	// Size is the tumbling window length in event time.
	Size time.Duration
	// Bound is the watermark generator's assumed maximum event-time
	// out-of-orderness; panes fire once the subtask watermark (max event
	// time seen minus Bound) passes a window's end, and at end of input.
	Bound time.Duration
	// EventTime derives each record's event timestamp.
	EventTime EventTimeFn
	// Key derives each record's grouping key; the caller routes records
	// with KeyBy using the same selector, so every key's records reach
	// one subtask.
	Key KeySelector
	// Format renders fired panes.
	Format WindowFormatFn
}

func (c WindowConfig) validate() error {
	if c.Size <= 0 {
		return fmt.Errorf("flink: window size must be positive, got %v", c.Size)
	}
	if c.EventTime == nil {
		return fmt.Errorf("flink: windowed aggregation needs an event-time extractor")
	}
	if c.Key == nil {
		return fmt.Errorf("flink: windowed aggregation needs a key selector")
	}
	if c.Format == nil {
		return fmt.Errorf("flink: windowed aggregation needs a pane formatter")
	}
	return nil
}

// TumblingCountWindow adds the engine's windowed reduce operator: a
// keyed per-(window, key) count over event-time tumbling windows,
// driven by a per-subtask watermark (internal/watermark) with bounded
// out-of-orderness. Panes fire as soon as the watermark passes a
// window's end — ascending by window, keys in first-seen order — and
// the remaining windows flush when the bounded input ends (the source
// met broker.EndOfInput), so the operator terminates cleanly in both
// preload and streaming ingestion.
//
// Use after KeyBy with the same selector; the operator is stateful per
// subtask and relies on keyed routing for cross-subtask correctness.
// The subtask watermark assumes its input is event-time ordered up to
// Bound, which holds when the records originate from one ordered
// upstream subtask (the benchmark's single-partition topic). A keyed
// merge of several concurrently active upstream subtasks is reordered
// by channel buffering beyond any fixed bound; pipelines with that
// shape must size Bound accordingly or accept end-of-input-only pane
// firing (cf. the conservative watermark the Beam runners use).
func (ds *DataStream) TumblingCountWindow(name string, cfg WindowConfig) *DataStream {
	if err := cfg.validate(); err != nil {
		ds.env.fail(err)
		return ds.ProcessWithFlush(name, nil)
	}
	return ds.ProcessWithFlush(name, func(ctx OperatorContext) (ProcessFunc, FlushFunc, error) {
		gen := watermark.NewGenerator(cfg.Bound)
		state, err := watermark.NewTumblingState[int64](cfg.Size)
		if err != nil {
			return nil, nil, err
		}
		emitPane := func(out Collector) func(p watermark.Pane[int64]) error {
			return func(p watermark.Pane[int64]) error {
				return out.Collect(cfg.Format(p.Start, []byte(p.Key), p.Acc))
			}
		}
		process := func(rec []byte, out Collector) error {
			et, err := cfg.EventTime(rec)
			if err != nil {
				return fmt.Errorf("flink: %s event time: %w", name, err)
			}
			key, err := cfg.Key(rec)
			if err != nil {
				return fmt.Errorf("flink: %s key: %w", name, err)
			}
			state.Upsert(et, string(key), func(c *int64) { *c++ })
			// Tuple-at-a-time engine: check for ready panes whenever the
			// watermark advances.
			if gen.Observe(et) {
				return state.FireReady(gen.Current(), emitPane(out))
			}
			return nil
		}
		flush := func(out Collector) error {
			gen.Finalize()
			return state.FireAll(emitPane(out))
		}
		return process, flush, nil
	})
}
