package flink

import (
	"fmt"
	"time"

	"beambench/internal/watermark"
)

// EventTimeFn extracts a record's event timestamp from the record
// itself, e.g. a time column of the payload.
type EventTimeFn func(rec []byte) (time.Time, error)

// WindowFormatFn renders one fired pane as an output record.
type WindowFormatFn func(windowStart time.Time, key []byte, value int64) []byte

// ValueFn extracts the numeric column a windowed aggregate folds; nil
// selects a pure count.
type ValueFn func(rec []byte) (int64, error)

// AssignTimestampsBounded adds the standard bounded-out-of-orderness
// timestamp assigner: each record's event time feeds a
// watermark.Generator with the given bound, and every generator advance
// is emitted downstream as a watermark control event. Place it where
// event time enters the dataflow (after the source); every operator
// between it and the stateful consumers forwards the watermark
// min-over-inputs automatically.
func (ds *DataStream) AssignTimestampsBounded(name string, eventTime EventTimeFn, bound time.Duration) *DataStream {
	if eventTime == nil {
		ds.env.fail(fmt.Errorf("flink: assignTimestamps %q: nil event-time fn", name))
		return ds.AssignTimestamps(name, nil)
	}
	return ds.AssignTimestamps(name, func(ctx OperatorContext, wm WatermarkEmitter) (ProcessFunc, error) {
		gen := watermark.NewGenerator(bound)
		return func(rec []byte, out Collector) error {
			et, err := eventTime(rec)
			if err != nil {
				return fmt.Errorf("flink: %s event time: %w", name, err)
			}
			if err := out.Collect(rec); err != nil {
				return err
			}
			if gen.Observe(et) {
				return wm.EmitWatermark(gen.Current())
			}
			return nil
		}, nil
	})
}

// WindowConfig parameterizes a keyed windowed aggregation.
type WindowConfig struct {
	// Size is the tumbling window length in event time; ignored when
	// Assigner is set.
	Size time.Duration
	// Assigner selects the window family (tumbling, sliding, session);
	// nil selects tumbling windows of Size.
	Assigner watermark.Assigner
	// Agg selects the reduction over Value; zero selects AggCount.
	Agg watermark.AggKind
	// Value extracts the aggregated column; nil counts records.
	Value ValueFn
	// EventTime derives each record's event timestamp (window
	// assignment). Pane firing is driven by the propagated watermark, so
	// the pipeline needs a timestamp assigner upstream (typically
	// AssignTimestampsBounded right after the source).
	EventTime EventTimeFn
	// Key derives each record's grouping key; the caller routes records
	// with KeyBy using the same selector, so every key's records reach
	// one subtask.
	Key KeySelector
	// Format renders fired panes.
	Format WindowFormatFn
}

func (c *WindowConfig) validate() error {
	if c.Assigner == nil {
		a, err := watermark.NewTumblingAssigner(c.Size)
		if err != nil {
			return fmt.Errorf("flink: windowed aggregation: %w", err)
		}
		c.Assigner = a
	}
	if c.Agg == 0 {
		c.Agg = watermark.AggCount
	}
	if !c.Agg.Valid() {
		return fmt.Errorf("flink: windowed aggregation: invalid agg kind %d", c.Agg)
	}
	if c.EventTime == nil {
		return fmt.Errorf("flink: windowed aggregation needs an event-time extractor")
	}
	if c.Key == nil {
		return fmt.Errorf("flink: windowed aggregation needs a key selector")
	}
	if c.Format == nil {
		return fmt.Errorf("flink: windowed aggregation needs a pane formatter")
	}
	return nil
}

// AggWindow adds the engine's windowed reduce operator: a keyed
// per-(window, key) aggregate — count, sum, min, max or avg over a
// record column — under any window assigner. Panes fire off the
// propagated watermark: the runtime delivers the minimum watermark over
// the subtask's senders as control events arrive, releasing every
// window the watermark has passed — ascending by window, keys in
// first-seen order — and the remaining windows flush when the bounded
// input ends (the sources met broker.EndOfInput and the end-of-stream
// watermark arrived), so the operator terminates cleanly in both
// preload and streaming ingestion.
//
// Use after KeyBy with the same selector and with a timestamp assigner
// upstream; the operator is stateful per subtask and relies on keyed
// routing for cross-subtask correctness. Because the watermark is
// combined min-over-senders before delivery, a keyed merge of several
// concurrently active upstream subtasks needs no conservative fallback:
// no pane fires before every sender's watermark has passed its end.
func (ds *DataStream) AggWindow(name string, cfg WindowConfig) *DataStream {
	if err := cfg.validate(); err != nil {
		ds.env.fail(err)
		return ds.ProcessWithWatermark(name, nil)
	}
	return ds.ProcessWithWatermark(name, func(ctx OperatorContext) (ProcessFunc, WatermarkFunc, FlushFunc, error) {
		state, err := watermark.NewWindowState[watermark.NumAcc](cfg.Assigner, func(into *watermark.NumAcc, from watermark.NumAcc) {
			into.Merge(from)
		})
		if err != nil {
			return nil, nil, nil, err
		}
		emitPane := func(out Collector) func(p watermark.Pane[watermark.NumAcc]) error {
			return func(p watermark.Pane[watermark.NumAcc]) error {
				return out.Collect(cfg.Format(p.Start, []byte(p.Key), p.Acc.Result(cfg.Agg)))
			}
		}
		process := func(rec []byte, out Collector) error {
			et, err := cfg.EventTime(rec)
			if err != nil {
				return fmt.Errorf("flink: %s event time: %w", name, err)
			}
			key, err := cfg.Key(rec)
			if err != nil {
				return fmt.Errorf("flink: %s key: %w", name, err)
			}
			v := int64(0)
			if cfg.Value != nil {
				if v, err = cfg.Value(rec); err != nil {
					return fmt.Errorf("flink: %s value: %w", name, err)
				}
			}
			// Same shape as the apex/spark window operators: the string
			// hop and update closure are the generic pane API until
			// combiner lifting lands (ROADMAP: zero-alloc record path).
			//beamvet:allow hotalloc pane state keys by string and updates through the generic accumulator closure until combiner lifting lands
			state.Upsert(et, string(key), func(acc *watermark.NumAcc) { acc.Add(v) })
			return nil
		}
		onWatermark := func(w time.Time, out Collector) error {
			return state.FireReady(w, emitPane(out))
		}
		flush := func(out Collector) error {
			return state.FireAll(emitPane(out))
		}
		return process, onWatermark, flush, nil
	})
}

// TumblingCountWindow adds the classic keyed per-(window, key) count
// over event-time tumbling windows — AggWindow specialized to the
// original benchmark query. Pane firing is driven by the propagated
// watermark; pair it with AssignTimestampsBounded upstream.
func (ds *DataStream) TumblingCountWindow(name string, cfg WindowConfig) *DataStream {
	cfg.Assigner = nil
	cfg.Agg = watermark.AggCount
	cfg.Value = nil
	return ds.AggWindow(name, cfg)
}
