package flink

import (
	"errors"
	"fmt"
	"time"

	"beambench/internal/broker"
)

// _sourceIdlePoll is how long a Kafka source subtask waits for new data
// before re-checking whether the topic is complete.
const _sourceIdlePoll = 20 * time.Millisecond

// KafkaSource returns a source factory that reads a topic from the
// broker until target records have been appended to it in total and
// every assigned partition is drained — the end-of-input contract that
// lets the same source terminate correctly whether the benchmark
// preloads the input topic or streams into it while the job runs
// (Section III-A2 of the paper covers the preload case).
//
// A target <= 0 degrades to a bounded snapshot of the topic's contents
// at subtask start, for direct engine-API use outside the harness;
// records appended after the snapshot are ignored.
//
// Topic partitions are distributed over source subtasks round-robin;
// with one input partition (the paper's configuration) only subtask 0
// receives data and the others finish immediately.
func KafkaSource(b *broker.Broker, topic string, target int64) SourceFactory {
	return func(ctx OperatorContext) (Source, error) {
		parts, err := b.Partitions(topic)
		if err != nil {
			return nil, fmt.Errorf("flink: kafka source: %w", err)
		}
		var assigned []int
		for p := range parts {
			if p%ctx.Parallelism() == ctx.SubtaskIndex() {
				assigned = append(assigned, p)
			}
		}
		return &kafkaSource{b: b, topic: topic, assigned: assigned, target: target}, nil
	}
}

type kafkaSource struct {
	b        *broker.Broker
	topic    string
	assigned []int
	target   int64
}

// Run consumes the assigned partitions via blocking polls until the
// end-of-input contract (broker.EndOfInput) is met, emitting the record
// values.
func (s *kafkaSource) Run(out Collector) error {
	if len(s.assigned) == 0 {
		return nil
	}
	eoi, err := broker.NewEndOfInput(s.b, s.topic, s.target, s.assigned)
	if err != nil {
		return fmt.Errorf("flink: kafka source: %w", err)
	}
	consumer, err := s.b.NewConsumer(broker.ConsumerConfig{})
	if err != nil {
		return fmt.Errorf("flink: kafka source: %w", err)
	}
	for _, p := range s.assigned {
		if err := consumer.Assign(s.topic, p, 0); err != nil {
			return fmt.Errorf("flink: kafka source: %w", err)
		}
	}
	for {
		recs, err := consumer.PollWait(_sourceIdlePoll)
		if err != nil {
			return fmt.Errorf("flink: kafka source: %w", err)
		}
		for _, r := range recs {
			if !eoi.Admit(r) {
				continue // produced after the bounded snapshot
			}
			if err := out.Collect(r.Value); err != nil {
				return err
			}
		}
		done, err := eoi.Complete(consumer, len(recs) == 0)
		if err != nil {
			return fmt.Errorf("flink: kafka source: %w", err)
		}
		if done {
			return nil
		}
	}
}

// KafkaSink returns a sink factory writing record values to a topic.
// Each subtask owns one producer configured with cfg; the paper's native
// jobs use the default batching producer, while the Beam-on-Apex runner
// configures BatchSize 1 (synchronous per-record sends).
func KafkaSink(b *broker.Broker, topic string, cfg broker.ProducerConfig) SinkFactory {
	return func(ctx OperatorContext) (Sink, error) {
		if _, err := b.Partitions(topic); err != nil {
			return nil, fmt.Errorf("flink: kafka sink: %w", err)
		}
		producer, err := b.NewProducer(cfg)
		if err != nil {
			return nil, fmt.Errorf("flink: kafka sink: %w", err)
		}
		return &kafkaSink{producer: producer, topic: topic}, nil
	}
}

type kafkaSink struct {
	producer *broker.Producer
	topic    string
}

func (s *kafkaSink) Invoke(rec []byte) error {
	if err := s.producer.Send(s.topic, nil, rec); err != nil {
		return fmt.Errorf("flink: kafka sink: %w", err)
	}
	return nil
}

func (s *kafkaSink) Close() error {
	if err := s.producer.Close(); err != nil {
		return fmt.Errorf("flink: kafka sink close: %w", err)
	}
	return nil
}

// SliceSource returns a source factory emitting the given records from
// subtask 0, for tests and examples.
func SliceSource(records [][]byte) SourceFactory {
	return func(ctx OperatorContext) (Source, error) {
		if ctx.SubtaskIndex() != 0 {
			return sliceSource(nil), nil
		}
		return sliceSource(records), nil
	}
}

type sliceSource [][]byte

func (s sliceSource) Run(out Collector) error {
	for _, rec := range s {
		if err := out.Collect(rec); err != nil {
			return err
		}
	}
	return nil
}

// CollectSink returns a sink factory that appends records to a shared
// thread-safe collector, for tests and examples.
func CollectSink(dst *RecordCollector) SinkFactory {
	if dst == nil {
		return func(OperatorContext) (Sink, error) {
			return nil, errors.New("flink: collect sink: nil collector")
		}
	}
	return func(ctx OperatorContext) (Sink, error) {
		return dst, nil
	}
}
