package flink

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

var winEpoch = time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC)

// windowedRecord renders "sec|key" test records.
func windowedRecord(sec int, key string) []byte {
	return []byte(fmt.Sprintf("%d|%s", sec, key))
}

func testWindowConfig() WindowConfig {
	return WindowConfig{
		Size: time.Second,
		EventTime: func(rec []byte) (time.Time, error) {
			var sec int
			if _, err := fmt.Sscanf(string(rec), "%d|", &sec); err != nil {
				return time.Time{}, err
			}
			return winEpoch.Add(time.Duration(sec) * time.Second), nil
		},
		Key: func(rec []byte) ([]byte, error) {
			i := strings.IndexByte(string(rec), '|')
			return rec[i+1:], nil
		},
		Format: func(start time.Time, key []byte, count int64) []byte {
			return []byte(fmt.Sprintf("%d:%s=%d", start.Sub(winEpoch)/time.Second, key, count))
		},
	}
}

func TestTumblingCountWindowCountsPerWindowAndKey(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	cfg := testWindowConfig()

	input := [][]byte{
		windowedRecord(0, "a"),
		windowedRecord(0, "b"),
		windowedRecord(0, "a"),
		windowedRecord(1, "a"), // closes window 0
		windowedRecord(2, "b"), // closes window 1
	}
	env.AddSource("src", SliceSource(input)).
		AssignTimestampsBounded("assign", cfg.EventTime, 0).
		KeyBy(cfg.Key).
		TumblingCountWindow("WindowedCount", cfg).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("windowed"); err != nil {
		t.Fatal(err)
	}
	got := sink.Strings()
	want := []string{"0:a=2", "0:b=1", "1:a=1", "2:b=1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("panes = %v, want %v", got, want)
	}
}

// TestTumblingCountWindowFiresBeforeEndOfInput pins watermark-driven
// firing: a pane whose window the watermark passed must be emitted by
// the operator while the source is still running, not buffered to the
// final flush.
func TestTumblingCountWindowFiresBeforeEndOfInput(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	cfg := testWindowConfig()

	// Tag panes with a downstream marker counting how many records the
	// sink saw before the stateful operator's flush could have run: the
	// early pane must arrive while records still flow.
	input := [][]byte{windowedRecord(0, "a"), windowedRecord(5, "a")}
	env.AddSource("src", SliceSource(input)).
		AssignTimestampsBounded("assign", cfg.EventTime, 0).
		KeyBy(cfg.Key).
		TumblingCountWindow("WindowedCount", cfg).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("early"); err != nil {
		t.Fatal(err)
	}
	got := sink.Strings()
	want := []string{"0:a=1", "5:a=1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("panes = %v, want %v (window 0 fired by the record at t=5)", got, want)
	}
}

func TestTumblingCountWindowKeyedParallelism(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	cfg := testWindowConfig()

	var input [][]byte
	for i := range 60 {
		input = append(input, windowedRecord(i/10, fmt.Sprintf("k%d", i%5)))
	}
	env.AddSource("src", SliceSource(input)).
		AssignTimestampsBounded("assign", cfg.EventTime, 0).
		KeyBy(cfg.Key).
		TumblingCountWindow("WindowedCount", cfg).SetParallelism(3).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("windowed-p3"); err != nil {
		t.Fatal(err)
	}
	// 6 windows x 5 keys, 2 records each: each (window, key) pane must
	// appear exactly once with count 2 — keyed routing kept state whole.
	counts := make(map[string]int)
	for _, s := range sink.Strings() {
		counts[s]++
	}
	if len(counts) != 30 {
		t.Fatalf("distinct panes = %d, want 30", len(counts))
	}
	for pane, n := range counts {
		if n != 1 {
			t.Errorf("pane %q emitted %d times", pane, n)
		}
		if !strings.HasSuffix(pane, "=2") {
			t.Errorf("pane %q count wrong, want =2", pane)
		}
	}
}

func TestTumblingCountWindowConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*WindowConfig){
		"zero size":     func(c *WindowConfig) { c.Size = 0 },
		"nil eventtime": func(c *WindowConfig) { c.EventTime = nil },
		"nil key":       func(c *WindowConfig) { c.Key = nil },
		"nil format":    func(c *WindowConfig) { c.Format = nil },
	} {
		t.Run(name, func(t *testing.T) {
			cluster := newTestCluster(t, ClusterConfig{})
			env := NewEnvironment(cluster)
			sink := NewRecordCollector()
			cfg := testWindowConfig()
			mutate(&cfg)
			env.AddSource("src", SliceSource(records(1))).
				TumblingCountWindow("w", cfg).
				AddSink("sink", CollectSink(sink))
			if _, err := env.Execute("bad"); err == nil {
				t.Error("invalid window config accepted")
			}
		})
	}
}
