package flink

import (
	"bytes"
	"fmt"
	"testing"

	"beambench/internal/broker"
)

func loadTopic(t *testing.T, b *broker.Broker, topic string, values [][]byte) {
	t.Helper()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := p.Send(topic, nil, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func topicValues(t *testing.T, b *broker.Broker, topic string) [][]byte {
	t.Helper()
	c, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(topic); err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out = append(out, r.Value)
		}
	}
}

func TestKafkaSourceToKafkaSinkEndToEnd(t *testing.T) {
	b := broker.New()
	input := records(250)
	loadTopic(t, b, "input", input)
	if err := b.CreateTopic("output", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}

	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	env.AddSource("kafka-in", KafkaSource(b, "input", 0)).
		Filter("grep", func(rec []byte) bool { return bytes.Contains(rec, []byte("7")) }).
		AddSink("kafka-out", KafkaSink(b, "output", broker.ProducerConfig{}))
	if _, err := env.Execute("grep"); err != nil {
		t.Fatal(err)
	}

	got := topicValues(t, b, "output")
	var want int
	for _, v := range input {
		if bytes.Contains(v, []byte("7")) {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("output topic has %d records, want %d", len(got), want)
	}
	for _, v := range got {
		if !bytes.Contains(v, []byte("7")) {
			t.Errorf("unexpected output record %q", v)
		}
	}
}

func TestKafkaSourcePreservesOrderSinglePartition(t *testing.T) {
	b := broker.New()
	input := records(100)
	loadTopic(t, b, "in", input)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	env.AddSource("src", KafkaSource(b, "in", 0)).
		AddSink("snk", KafkaSink(b, "out", broker.ProducerConfig{}))
	if _, err := env.Execute("identity"); err != nil {
		t.Fatal(err)
	}
	got := topicValues(t, b, "out")
	if len(got) != len(input) {
		t.Fatalf("output has %d records, want %d", len(got), len(input))
	}
	for i := range input {
		if !bytes.Equal(got[i], input[i]) {
			t.Fatalf("record %d = %q, want %q (order broken)", i, got[i], input[i])
		}
	}
}

func TestKafkaSourceParallelismTwoSinglePartition(t *testing.T) {
	// The paper's setup: one input partition, parallelism 2. Only one
	// source subtask receives data; the job still completes correctly.
	b := broker.New()
	input := records(80)
	loadTopic(t, b, "in", input)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster).SetParallelism(2)
	env.AddSource("src", KafkaSource(b, "in", 0)).
		Map("id", func(r []byte) []byte { return r }).
		AddSink("snk", KafkaSink(b, "out", broker.ProducerConfig{}))
	if _, err := env.Execute("identity-p2"); err != nil {
		t.Fatal(err)
	}
	if got := topicValues(t, b, "out"); len(got) != 80 {
		t.Errorf("output has %d records, want 80", len(got))
	}
}

func TestKafkaSourceMultiPartitionDistribution(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{Partitioner: func(key []byte, n int) int {
		return int(key[0]) % n
	}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	for i := range n {
		if err := p.Send("in", []byte{byte(i)}, []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	sink := NewRecordCollector()
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster).SetParallelism(2)
	env.AddSource("src", KafkaSource(b, "in", 0)).AddSink("snk", CollectSink(sink))
	if _, err := env.Execute("multi"); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != n {
		t.Errorf("collected %d records, want %d", sink.Len(), n)
	}
}

func TestKafkaSourceUnknownTopic(t *testing.T) {
	b := broker.New()
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", KafkaSource(b, "missing", 0)).AddSink("snk", CollectSink(sink))
	if _, err := env.Execute("missing-topic"); err == nil {
		t.Error("job with missing input topic succeeded")
	}
}

func TestKafkaSinkUnknownTopic(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", records(5))
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	env.AddSource("src", KafkaSource(b, "in", 0)).
		AddSink("snk", KafkaSink(b, "missing", broker.ProducerConfig{}))
	if _, err := env.Execute("missing-output"); err == nil {
		t.Error("job with missing output topic succeeded")
	}
}

func TestKafkaEmptyInputTopic(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", nil)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	env.AddSource("src", KafkaSource(b, "in", 0)).
		AddSink("snk", KafkaSink(b, "out", broker.ProducerConfig{}))
	if _, err := env.Execute("empty"); err != nil {
		t.Fatal(err)
	}
	if got := topicValues(t, b, "out"); len(got) != 0 {
		t.Errorf("output has %d records, want 0", len(got))
	}
}
