package flink

import (
	"fmt"
	"strings"
	"testing"
)

func TestKeyByRoutesEqualKeysToOneSubtask(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()

	var input [][]byte
	for i := range 120 {
		input = append(input, []byte(fmt.Sprintf("key%d:payload%d", i%6, i)))
	}
	keyOf := func(rec []byte) ([]byte, error) {
		idx := strings.IndexByte(string(rec), ':')
		return rec[:idx], nil
	}

	env.AddSource("src", SliceSource(input)).
		KeyBy(keyOf).
		Process("tag", func(ctx OperatorContext) (ProcessFunc, error) {
			return func(rec []byte, out Collector) error {
				key, _ := keyOf(rec)
				return out.Collect([]byte(fmt.Sprintf("%s@%d", key, ctx.SubtaskIndex())))
			}, nil
		}).SetParallelism(3).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("keyby"); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 120 {
		t.Fatalf("collected %d records, want 120", sink.Len())
	}
	subtaskOf := make(map[string]string)
	for _, s := range sink.Strings() {
		parts := strings.SplitN(s, "@", 2)
		if prev, ok := subtaskOf[parts[0]]; ok && prev != parts[1] {
			t.Fatalf("key %q processed by subtasks %s and %s", parts[0], prev, parts[1])
		}
		subtaskOf[parts[0]] = parts[1]
	}
	if len(subtaskOf) != 6 {
		t.Errorf("saw %d keys, want 6", len(subtaskOf))
	}
}

func TestKeyByNilSelectorRejected(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(1))).
		KeyBy(nil).
		Map("id", func(r []byte) []byte { return r }).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("nilkey"); err == nil {
		t.Error("nil key selector accepted")
	}
}

func TestKeyByBreaksChain(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(10))).
		KeyBy(func(rec []byte) ([]byte, error) { return rec, nil }).
		Map("id", func(r []byte) []byte { return r }).
		AddSink("sink", CollectSink(sink))
	res, err := env.Execute("keyby-chain")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 2 {
		t.Errorf("Tasks = %d, want 2 (KeyBy breaks the chain)", res.Tasks)
	}
}

func TestKeySelectorErrorFailsJob(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(10))).
		KeyBy(func(rec []byte) ([]byte, error) { return nil, fmt.Errorf("bad key") }).
		Map("id", func(r []byte) []byte { return r }).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("badkey"); err == nil {
		t.Error("key selector error not surfaced")
	}
}

func TestProcessWithFlushEmitsStateAtEndOfInput(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(25))).
		ProcessWithFlush("count", func(ctx OperatorContext) (ProcessFunc, FlushFunc, error) {
			count := 0
			process := func(rec []byte, out Collector) error {
				count++
				return nil // buffer everything
			}
			flush := func(out Collector) error {
				return out.Collect([]byte(fmt.Sprintf("count=%d", count)))
			}
			return process, flush, nil
		}).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("flush"); err != nil {
		t.Fatal(err)
	}
	got := sink.Strings()
	if len(got) != 1 || got[0] != "count=25" {
		t.Errorf("flush output = %v, want [count=25]", got)
	}
}

func TestProcessWithFlushChainedDownstreamSeesFlush(t *testing.T) {
	// The flush of an upstream stateful operator must pass through the
	// downstream operators of the same chain.
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(5))).
		ProcessWithFlush("buffer", func(ctx OperatorContext) (ProcessFunc, FlushFunc, error) {
			var kept [][]byte
			process := func(rec []byte, out Collector) error {
				kept = append(kept, rec)
				return nil
			}
			flush := func(out Collector) error {
				for _, rec := range kept {
					if err := out.Collect(rec); err != nil {
						return err
					}
				}
				return nil
			}
			return process, flush, nil
		}).
		Map("decorate", func(r []byte) []byte { return append([]byte("seen:"), r...) }).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("flush-chain"); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 5 {
		t.Fatalf("collected %d, want 5", sink.Len())
	}
	for _, s := range sink.Strings() {
		if !strings.HasPrefix(s, "seen:") {
			t.Errorf("flush emission skipped downstream operator: %q", s)
		}
	}
}

func TestProcessWithFlushNilFactory(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(1))).
		ProcessWithFlush("bad", nil).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("nilflush"); err == nil {
		t.Error("nil flush factory accepted")
	}
}
