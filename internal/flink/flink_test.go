package flink

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
)

func newTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func records(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("rec-%04d", i))
	}
	return out
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{TaskManagers: -1}); err == nil {
		t.Error("negative task managers accepted")
	}
	if _, err := NewCluster(ClusterConfig{RestartAttempts: -1}); err == nil {
		t.Error("negative restart attempts accepted")
	}
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalSlots() != 16 {
		t.Errorf("default TotalSlots = %d, want 16 (2 TMs x 8 slots)", c.TotalSlots())
	}
}

func TestExecuteRequiresRunningCluster(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnvironment(c)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(1))).AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("job"); !errors.Is(err, ErrClusterStopped) {
		t.Errorf("Execute on stopped cluster = %v, want ErrClusterStopped", err)
	}
}

func TestLinearPipeline(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(100))).
		Map("upper", bytes.ToUpper).
		Filter("even", func(rec []byte) bool { return rec[len(rec)-1]%2 == 0 }).
		AddSink("sink", CollectSink(sink))
	res, err := env.Execute("linear")
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 50 {
		t.Errorf("sink received %d records, want 50", sink.Len())
	}
	for _, s := range sink.Strings() {
		if s != strings.ToUpper(s) {
			t.Errorf("record %q not uppercased", s)
		}
	}
	if res.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", res.Attempts)
	}
	// All operators chain into one task: source, map, filter, sink.
	if res.Tasks != 1 {
		t.Errorf("Tasks = %d, want 1 (fully chained)", res.Tasks)
	}
	src, ok := res.OperatorStat("src")
	if !ok || src.RecordsOut != 100 {
		t.Errorf("source stats = %+v, %v", src, ok)
	}
	flt, ok := res.OperatorStat("even")
	if !ok || flt.RecordsIn != 100 || flt.RecordsOut != 50 {
		t.Errorf("filter stats = %+v, %v", flt, ok)
	}
	if _, ok := res.OperatorStat("missing"); ok {
		t.Error("found stats for unknown operator")
	}
}

func TestFlatMapExpansion(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource([][]byte{[]byte("a b c"), []byte("d e")})).
		FlatMap("split", func(rec []byte, out Collector) error {
			for _, w := range bytes.Fields(rec) {
				if err := out.Collect(w); err != nil {
					return err
				}
			}
			return nil
		}).
		AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("flatmap"); err != nil {
		t.Fatal(err)
	}
	got := sink.Strings()
	sort.Strings(got)
	want := []string{"a", "b", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestChainingDisabledCreatesTasks(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster).DisableOperatorChaining()
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(10))).
		Map("m1", func(r []byte) []byte { return r }).
		Map("m2", func(r []byte) []byte { return r }).
		AddSink("sink", CollectSink(sink))
	res, err := env.Execute("unchained")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 4 {
		t.Errorf("Tasks = %d, want 4 (chaining disabled)", res.Tasks)
	}
	if sink.Len() != 10 {
		t.Errorf("sink received %d records, want 10", sink.Len())
	}
}

func TestDisableChainingOnOneOperator(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(10))).
		Map("m1", func(r []byte) []byte { return r }).DisableChaining().
		Map("m2", func(r []byte) []byte { return r }).
		AddSink("sink", CollectSink(sink))
	res, err := env.Execute("partial-chain")
	if err != nil {
		t.Fatal(err)
	}
	// src | m1->m2->sink = 2 tasks.
	if res.Tasks != 2 {
		t.Errorf("Tasks = %d, want 2", res.Tasks)
	}
}

func TestRebalanceBreaksChainAndRedistributes(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	seen := NewRecordCollector()
	env.AddSource("src", SliceSource(records(100))).
		Rebalance().
		Process("tag", func(ctx OperatorContext) (ProcessFunc, error) {
			return func(rec []byte, out Collector) error {
				if err := seen.Invoke([]byte(fmt.Sprintf("%d", ctx.SubtaskIndex()))); err != nil {
					return err
				}
				return out.Collect(rec)
			}, nil
		}).SetParallelism(2).
		AddSink("sink", CollectSink(sink))
	res, err := env.Execute("rebalance")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks < 2 {
		t.Errorf("Tasks = %d, want >= 2 (rebalance breaks chain)", res.Tasks)
	}
	if sink.Len() != 100 {
		t.Errorf("sink received %d records, want 100", sink.Len())
	}
	// Both subtasks must have processed records.
	subtasks := make(map[string]int)
	for _, s := range seen.Strings() {
		subtasks[s]++
	}
	if len(subtasks) != 2 {
		t.Errorf("records processed by %d subtasks, want 2: %v", len(subtasks), subtasks)
	}
	if subtasks["0"] != 50 || subtasks["1"] != 50 {
		t.Errorf("round-robin split = %v, want 50/50", subtasks)
	}
}

func TestParallelismMismatchAutoRebalances(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(40))).SetParallelism(1).
		Map("wide", func(r []byte) []byte { return r }).SetParallelism(4).
		AddSink("sink", CollectSink(sink)) // sink inherits env parallelism 1
	res, err := env.Execute("mismatch")
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 40 {
		t.Errorf("sink received %d records, want 40", sink.Len())
	}
	if res.Tasks != 3 {
		t.Errorf("Tasks = %d, want 3 (parallelism mismatch breaks chains)", res.Tasks)
	}
}

func TestJobValidationErrors(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})

	t.Run("empty job", func(t *testing.T) {
		env := NewEnvironment(cluster)
		if _, err := env.Execute("empty"); err == nil {
			t.Error("empty job executed")
		}
	})
	t.Run("no sink", func(t *testing.T) {
		env := NewEnvironment(cluster)
		env.AddSource("src", SliceSource(records(1))).Map("m", func(r []byte) []byte { return r })
		if _, err := env.Execute("nosink"); err == nil {
			t.Error("job without sink executed")
		}
	})
	t.Run("nil map fn", func(t *testing.T) {
		env := NewEnvironment(cluster)
		sink := NewRecordCollector()
		env.AddSource("src", SliceSource(records(1))).Map("m", nil).AddSink("s", CollectSink(sink))
		if _, err := env.Execute("nilfn"); err == nil {
			t.Error("nil map accepted")
		}
	})
	t.Run("bad parallelism", func(t *testing.T) {
		env := NewEnvironment(cluster)
		env.SetParallelism(0)
		sink := NewRecordCollector()
		env.AddSource("src", SliceSource(records(1))).AddSink("s", CollectSink(sink))
		if _, err := env.Execute("badp"); err == nil {
			t.Error("zero parallelism accepted")
		}
	})
}

func TestSlotExhaustion(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{TaskManagers: 1, SlotsPerTaskManager: 2})
	env := NewEnvironment(cluster).SetParallelism(3)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(1))).AddSink("s", CollectSink(sink))
	if _, err := env.Execute("toolarge"); !errors.Is(err, ErrNoSlots) {
		t.Errorf("Execute = %v, want ErrNoSlots", err)
	}
	if cluster.FreeSlots() != 2 {
		t.Errorf("slots leaked: free = %d, want 2", cluster.FreeSlots())
	}
}

func TestSlotsReleasedAfterJob(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster).SetParallelism(4)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(10))).AddSink("s", CollectSink(sink))
	if _, err := env.Execute("job"); err != nil {
		t.Fatal(err)
	}
	if cluster.FreeSlots() != cluster.TotalSlots() {
		t.Errorf("free slots after job = %d, want %d", cluster.FreeSlots(), cluster.TotalSlots())
	}
}

func TestOperatorFailureFailsJob(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	boom := errors.New("boom")
	env.AddSource("src", SliceSource(records(100))).
		FlatMap("explode", func(rec []byte, out Collector) error {
			if strings.HasSuffix(string(rec), "42") {
				return boom
			}
			return out.Collect(rec)
		}).
		AddSink("sink", CollectSink(sink))
	_, err := env.Execute("failing")
	if !errors.Is(err, boom) {
		t.Errorf("Execute = %v, want wrapped boom", err)
	}
	if cluster.FreeSlots() != cluster.TotalSlots() {
		t.Errorf("slots leaked after failure: %d != %d", cluster.FreeSlots(), cluster.TotalSlots())
	}
}

func TestRestartStrategyRecovers(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{RestartAttempts: 2})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	attempts := 0
	env.AddSource("src", func(ctx OperatorContext) (Source, error) {
		attempts++
		if attempts <= 2 {
			return nil, errors.New("transient open failure")
		}
		return sliceSource(records(5)), nil
	}).AddSink("sink", CollectSink(sink))
	res, err := env.Execute("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
	if sink.Len() != 5 {
		t.Errorf("sink received %d records, want 5", sink.Len())
	}
}

func TestRestartBudgetExhausted(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{RestartAttempts: 1})
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("src", func(ctx OperatorContext) (Source, error) {
		return nil, errors.New("permanent failure")
	}).AddSink("sink", CollectSink(sink))
	if _, err := env.Execute("doomed"); err == nil {
		t.Error("doomed job succeeded")
	}
}

func TestSourceParallelismFanOut(t *testing.T) {
	// With parallelism 2, subtask 0 emits (SliceSource) and both map
	// subtasks exist; records stay on subtask 0 under forward partitioning.
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster).SetParallelism(2)
	sink := NewRecordCollector()
	env.AddSource("src", SliceSource(records(20))).
		Map("id", func(r []byte) []byte { return r }).
		AddSink("sink", CollectSink(sink))
	res, err := env.Execute("par2")
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 20 {
		t.Errorf("sink received %d records, want 20", sink.Len())
	}
	if res.Tasks != 1 {
		t.Errorf("Tasks = %d, want 1 (equal parallelism chains)", res.Tasks)
	}
}

func TestExecutionPlanShapes(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})

	// Native grep shape (paper Figure 12): 3 nodes.
	env := NewEnvironment(cluster)
	sink := NewRecordCollector()
	env.AddSource("Custom Source", SliceSource(records(1))).
		Filter("Filter", func(r []byte) bool { return true }).
		AddSink("Unnamed", CollectSink(sink))
	plan, err := env.ExecutionPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 3 {
		t.Errorf("native plan has %d nodes, want 3", plan.Len())
	}
	text := plan.String()
	for _, want := range []string{"Source: Custom Source", "Filter", "Sink: Unnamed"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan missing %q:\n%s", want, text)
		}
	}
}

func TestExecutionPlanInvalidEnv(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	env.SetParallelism(-1)
	if _, err := env.ExecutionPlan(); err == nil {
		t.Error("plan of invalid env succeeded")
	}
}

func TestMultipleConsumersFanOut(t *testing.T) {
	cluster := newTestCluster(t, ClusterConfig{})
	env := NewEnvironment(cluster)
	sinkA := NewRecordCollector()
	sinkB := NewRecordCollector()
	src := env.AddSource("src", SliceSource(records(10)))
	src.Map("a", func(r []byte) []byte { return r }).AddSink("sa", CollectSink(sinkA))
	src.Map("b", func(r []byte) []byte { return r }).AddSink("sb", CollectSink(sinkB))
	if _, err := env.Execute("fanout"); err != nil {
		t.Fatal(err)
	}
	if sinkA.Len() != 10 || sinkB.Len() != 10 {
		t.Errorf("fan-out sinks = %d, %d; want 10, 10", sinkA.Len(), sinkB.Len())
	}
}
