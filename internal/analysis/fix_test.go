package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// fixtureFile registers content under name in a fresh FileSet and
// returns the set, the base Pos, and a readFile stub serving it.
func fixtureFile(name, content string) (*token.FileSet, func(int) token.Pos, func(string) ([]byte, error)) {
	fset := token.NewFileSet()
	f := fset.AddFile(name, -1, len(content))
	f.SetLinesForContent([]byte(content))
	pos := func(offset int) token.Pos { return f.Pos(offset) }
	read := func(n string) ([]byte, error) { return []byte(content), nil }
	return fset, pos, read
}

func TestApplyFixesSplicesBackToFront(t *testing.T) {
	src := "aaa bbb ccc\n"
	fset, pos, read := fixtureFile("x.go", src)
	diags := []Diagnostic{
		{Pos: pos(0), Check: "c", Message: "first", SuggestedFixes: []SuggestedFix{{
			Message:   "upcase aaa",
			TextEdits: []TextEdit{{Pos: pos(0), End: pos(3), NewText: []byte("AAA")}},
		}}},
		{Pos: pos(8), Check: "c", Message: "second", SuggestedFixes: []SuggestedFix{{
			Message:   "upcase ccc",
			TextEdits: []TextEdit{{Pos: pos(8), End: pos(11), NewText: []byte("CCC")}},
		}}},
	}
	res, err := ApplyFixes(fset, diags, read)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || len(res.Unfixable) != 0 || len(res.Conflicted) != 0 {
		t.Fatalf("Applied=%d Unfixable=%d Conflicted=%d, want 2/0/0", res.Applied, len(res.Unfixable), len(res.Conflicted))
	}
	if got := string(res.Files[0].Fixed); got != "AAA bbb CCC\n" {
		t.Errorf("fixed = %q, want %q", got, "AAA bbb CCC\n")
	}
}

func TestApplyFixesSkipsOverlapsWhole(t *testing.T) {
	src := "aaa bbb ccc\n"
	fset, pos, read := fixtureFile("x.go", src)
	diags := []Diagnostic{
		{Pos: pos(0), Check: "c", Message: "wide", SuggestedFixes: []SuggestedFix{{
			Message:   "rewrite everything",
			TextEdits: []TextEdit{{Pos: pos(0), End: pos(7), NewText: []byte("ZZZ")}},
		}}},
		// Overlaps the first fix: skipped whole even though its second
		// edit would have been disjoint.
		{Pos: pos(4), Check: "c", Message: "narrow", SuggestedFixes: []SuggestedFix{{
			Message: "two edits, one overlapping",
			TextEdits: []TextEdit{
				{Pos: pos(4), End: pos(7), NewText: []byte("BBB")},
				{Pos: pos(8), End: pos(11), NewText: []byte("CCC")},
			},
		}}},
		{Pos: pos(2), Check: "c", Message: "no fix"},
	}
	res, err := ApplyFixes(fset, diags, read)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || len(res.Conflicted) != 1 || len(res.Unfixable) != 1 {
		t.Fatalf("Applied=%d Conflicted=%d Unfixable=%d, want 1/1/1", res.Applied, len(res.Conflicted), len(res.Unfixable))
	}
	if got := string(res.Files[0].Fixed); got != "ZZZ ccc\n" {
		t.Errorf("fixed = %q, want %q (the conflicted fix must contribute nothing)", got, "ZZZ ccc\n")
	}
}

func TestApplyFixesDeletesWholeDirectiveLine(t *testing.T) {
	src := "code()\n\t//beamvet:allow c stale\nmore()\n"
	start := strings.Index(src, "//beamvet")
	end := start + len("//beamvet:allow c stale")
	fset, pos, read := fixtureFile("x.go", src)
	diags := []Diagnostic{{Pos: pos(start), Check: "directive", Message: "unused", SuggestedFixes: []SuggestedFix{{
		Message:   "delete the unused directive",
		TextEdits: []TextEdit{{Pos: pos(start), End: pos(end)}},
	}}}}
	res, err := ApplyFixes(fset, diags, read)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.Files[0].Fixed); got != "code()\nmore()\n" {
		t.Errorf("fixed = %q, want the directive's whole line gone", got)
	}
}

func TestWidenDeletion(t *testing.T) {
	cases := []struct {
		name       string
		content    string
		start, end int
		wantCut    string // the substring the widened range removes
	}{
		{"standalone line", "a\n\t// x\nb\n", 3, 7, "\t// x\n"},
		{"trailing comment keeps code", "code() // x\n", 7, 11, " // x"},
		{"no surrounding space", "abc", 1, 2, "b"},
	}
	for _, c := range cases {
		s, e := widenDeletion([]byte(c.content), c.start, c.end)
		if got := c.content[s:e]; got != c.wantCut {
			t.Errorf("%s: widenDeletion removes %q, want %q", c.name, got, c.wantCut)
		}
	}
}
