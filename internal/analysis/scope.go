package analysis

import "strings"

// PathInScope reports whether an import path falls inside any of the
// scope fragments. A fragment matches as a complete path segment run:
// "internal/flink" covers beambench/internal/flink and its
// subpackages but not internal/flinkstats. An empty scope matches
// everything.
func PathInScope(path string, scope []string) bool {
	if len(scope) == 0 {
		return true
	}
	slashed := "/" + path + "/"
	for _, frag := range scope {
		f := "/" + strings.Trim(frag, "/") + "/"
		if strings.Contains(slashed, f) {
			return true
		}
	}
	return false
}
