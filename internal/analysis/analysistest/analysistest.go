// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against `// want`
// expectations embedded in the fixtures — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// repo's own loader because the build environment is offline.
//
// An expectation is one or more Go string literals after `want` in a
// comment; each applies to diagnostics reported on the comment's line
// and is a regular expression matched against the diagnostic message:
//
//	emit(k) // want `called per map entry`
//
// Every diagnostic must be wanted and every want must be matched.
// Directive bookkeeping runs too, so fixtures exercise
// //beamvet:allow suppression and its failure modes exactly as
// cmd/beamvet applies them.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"beambench/internal/analysis"
	"beambench/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package dir under testdata/src, runs the
// analyzer (with directive filtering), and diffs diagnostics against
// the fixtures' want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fixture := range fixtures {
		dir := filepath.Join(testdata, "src", fixture)
		pkgs, err := load.Load(dir, ".")
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fixture, err)
		}
		for _, pkg := range pkgs {
			diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("fixture %s: %v", fixture, err)
			}
			wants := collectWants(t, pkg)
			for _, d := range diags {
				p := pkg.Fset.Position(d.Pos)
				if !claim(wants, p, d.Message) {
					t.Errorf("%s: unexpected diagnostic: %s: %s", p, d.Check, d.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
				}
			}
		}
	}
}

// RunFix loads each fixture package, runs the analyzer, applies every
// suggested fix in memory, and compares each rewritten file against
// its <file>.golden sibling. Nothing is written back: fixtures stay
// pristine across runs.
func RunFix(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fixture := range fixtures {
		dir := filepath.Join(testdata, "src", fixture)
		pkgs, err := load.Load(dir, ".")
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fixture, err)
		}
		for _, pkg := range pkgs {
			diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("fixture %s: %v", fixture, err)
			}
			res, err := analysis.ApplyFixes(pkg.Fset, diags, nil)
			if err != nil {
				t.Fatalf("fixture %s: applying fixes: %v", fixture, err)
			}
			if len(res.Unfixable) > 0 || len(res.Conflicted) > 0 {
				t.Errorf("fixture %s: %d unfixable and %d conflicted diagnostics; a fix fixture must repair completely",
					fixture, len(res.Unfixable), len(res.Conflicted))
			}
			if len(res.Files) == 0 {
				t.Errorf("fixture %s: no files changed; a fix fixture must carry fixable findings", fixture)
			}
			for _, f := range res.Files {
				golden, err := os.ReadFile(f.Filename + ".golden")
				if err != nil {
					t.Errorf("fixture %s: %v (every file -fix rewrites needs a golden)", fixture, err)
					continue
				}
				if string(f.Fixed) != string(golden) {
					t.Errorf("fixture %s: %s after fixes differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
						fixture, filepath.Base(f.Filename), f.Fixed, golden)
				}
			}
		}
	}
}

func claim(wants []*expectation, p token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantMarker anchors expectations so prose mentioning the word is not
// parsed: "want" must open the comment or follow a nested "//".
var wantMarker = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				rest := m[1]
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					lit, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want expectation %q", p.Filename, p.Line, rest)
					}
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", p.Filename, p.Line, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: want pattern %s: %v", p.Filename, p.Line, lit, err)
					}
					out = append(out, &expectation{file: p.Filename, line: p.Line, re: re, raw: lit})
					rest = rest[len(lit):]
				}
			}
		}
	}
	return out
}
