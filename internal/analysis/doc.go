// Package analysis is beambench's compile-time invariant checker: a
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic), a package
// loader built on `go list -export`, and the //beamvet:allow
// suppression directive. cmd/beamvet drives it; internal/analysis/
// analysistest runs fixture-based analyzer tests against the same
// machinery.
//
// # Why a bespoke analysis layer
//
// The paper's methodology — and this repo's 84-cell acceptance matrix —
// rests on byte-identical output across four engines. Runtime property
// tests only catch a nondeterministic path when a seed happens to
// expose it; these analyzers reject whole bug classes at compile time,
// before any benchmark runs. The x/tools module is deliberately not
// imported: the build environment is offline and the module has zero
// external dependencies. The API mirrors go/analysis closely enough
// that porting the analyzers upstream is mechanical.
//
// # The three invariants
//
// determinism — output-producing packages (internal/queries, the
// flink/spark/apex runtimes, internal/beam/graphx, and the runners)
// must not read the wall clock (time.Now), draw from the global rand
// source (package-level math/rand and math/rand/v2 functions), or let
// Go's randomized map iteration order reach the output (emitting per
// map entry, or appending to an outer slice inside range-over-map
// without a later sort). Event time comes from the record's query-time
// column; randomness flows from explicit seeds; grouped results are
// sorted before they are emitted.
//
// ctxleak — goroutines spawned in internal/{broker,harness,flink,
// spark,apex,beam} must have a termination contract: observe a
// context.Context or done channel, or signal completion via a
// sync.WaitGroup, a channel send, or close. Anything else outlives its
// benchmark cell and skews every measurement after it.
//
// errwrap — package-level Err* sentinels (beam.ErrUnsupported and
// friends) must be wrapped with %w in fmt.Errorf and matched with
// errors.Is, never ==, != or switch-case identity. The harness's
// skipped-cell contract depends on errors.Is matching through every
// wrapping layer.
//
// # Suppressing a finding
//
// Annotate the flagged line, or the line directly above it:
//
//	//beamvet:allow <check> <reason>
//
// where <check> is determinism, ctxleak, or errwrap. The reason is
// mandatory, and a directive that suppresses nothing is itself an
// error, so the annotation inventory cannot rot.
//
// # Running
//
//	go run ./cmd/beamvet ./...
//
// exits 0 only if every package is clean. CI runs it as a required
// gate next to go vet and staticcheck.
package analysis
