// Package analysis is beambench's compile-time invariant checker: a
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic, SuggestedFix), a
// package loader built on `go list -export`, the //beamvet:allow
// suppression directive, a fix applier, and machine-readable report
// writers (JSON and SARIF). cmd/beamvet drives it; internal/analysis/
// analysistest runs fixture-based analyzer tests against the same
// machinery.
//
// # Why a bespoke analysis layer
//
// The paper's methodology — and this repo's 84-cell acceptance matrix —
// rests on byte-identical output across four engines and on timings
// that a data race or an allocation storm on the record path would
// skew. Runtime property tests only catch a nondeterministic path when
// a seed happens to expose it; these analyzers reject whole bug
// classes at compile time, before any benchmark runs. The x/tools
// module is deliberately not imported: the build environment is
// offline and the module has zero external dependencies. The API
// mirrors go/analysis closely enough that porting the analyzers
// upstream is mechanical.
//
// # The five invariants
//
// determinism — output-producing packages (internal/queries, the
// flink/spark/apex runtimes, internal/beam/graphx, and the runners)
// must not read the wall clock (time.Now), draw from the global rand
// source (package-level math/rand and math/rand/v2 functions), or let
// Go's randomized map iteration order reach the output (emitting per
// map entry, or appending to an outer slice inside range-over-map
// without a later sort). Event time comes from the record's query-time
// column; randomness flows from explicit seeds; grouped results are
// sorted before they are emitted.
//
// ctxleak — goroutines spawned in internal/{broker,harness,flink,
// spark,apex,beam} must have a termination contract: observe a
// context.Context or done channel, or signal completion via a
// sync.WaitGroup, a channel send, or close. Anything else outlives its
// benchmark cell and skews every measurement after it.
//
// errwrap — package-level Err* sentinels (beam.ErrUnsupported and
// friends) must be wrapped with %w in fmt.Errorf and matched with
// errors.Is, never ==, != or switch-case identity. The harness's
// skipped-cell contract depends on errors.Is matching through every
// wrapping layer. Identity comparisons carry a suggested fix when the
// file already imports errors.
//
// locksafe — within internal/{broker,metrics,obs,flink,spark,apex}, a
// struct field that sits next to a sync.Mutex/RWMutex and is accessed
// under that lock on the majority of its in-package accesses is
// inferred guarded; every access outside the lock is then flagged, as
// is any field passed to sync/atomic functions somewhere but read or
// written plainly elsewhere. The inference is positional (a deferred
// Unlock holds to function end, a "Locked"-suffix function is
// caller-holds-lock, a goroutine body starts lock-free), so deliberate
// lock-free fast paths carry their memory-ordering argument in a
// //beamvet:allow locksafe annotation. Fields whose types synchronize
// themselves (sync/atomic values, and arrays/slices/structs composed
// of them) are exempt.
//
// hotalloc — code reachable from the per-record entry points (methods
// named Process/ProcessElement/Invoke/Encode/Decode/Mark/MarkAt/
// Insert and function literals taking []byte, walked through the
// same-package call graph) must avoid []byte<->string conversions
// (the compiler-optimized map-index and comparison forms are exempt),
// fmt.Sprint*, unsized make or append growth inside per-record loops
// (three-argument make and buf[:0] scratch reuse are capacity-managed
// and exempt), and closures that capture enclosing variables and
// escape. Findings that are the operation's contract — a coder's
// ownership copy, the fused-stage emitter closure whose cost the
// benchmark measures — are allow-annotated with the rationale, making
// the annotation set the repo's per-record allocation inventory.
//
// # Suppressing a finding
//
// Annotate the flagged line, or the line directly above it:
//
//	//beamvet:allow <check> <reason>
//
// where <check> is determinism, ctxleak, errwrap, locksafe, or
// hotalloc. The reason is mandatory, and a directive that suppresses
// nothing is itself an error (with a suggested fix that deletes it),
// so the annotation inventory cannot rot.
//
// # Suggested fixes
//
// A Diagnostic may carry SuggestedFixes, each a list of TextEdits.
// ApplyFixes applies the first fix of every diagnostic purely (the
// rewritten bytes are returned, not written), accepting edits in
// diagnostic order and skipping a fix whole if any of its edits
// overlaps an already-accepted edit. Deletions widen over surrounding
// whitespace, and over the entire line when it would be left blank.
// `beamvet -fix` writes the results and re-analyzes from the rewritten
// sources: it exits 0 only when every finding was fixable, every fix
// applied, and the re-run is clean — so -fix is idempotent and a 0
// means the tree is clean now. See cmd/beamvet's package comment for
// the full exit-code contract.
//
// # Machine-readable reports
//
// `beamvet -json` emits a Report (schema version ReportVersion):
// tool/version header, every check that ran, and one Finding per
// diagnostic with module-relative file, line, column, message, and
// fixability. `beamvet -sarif` emits the same findings as a SARIF
// 2.1.0 document for code-scanning ingestion. With either flag the
// human-readable findings move to stderr so stdout stays parseable.
//
// # Running
//
//	go run ./cmd/beamvet ./...
//
// exits 0 only if every package is clean. CI runs it as a required
// matrix job: a gate leg that uploads the JSON and SARIF reports, and
// a fix-idempotence leg asserting -fix rewrites nothing on a clean
// tree.
package analysis
