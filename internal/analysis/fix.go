package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"sort"
)

// A FileFix is the rewritten content of one file after applying
// suggested fixes.
type FileFix struct {
	Filename string
	// Orig is the content the edits were computed against.
	Orig []byte
	// Fixed is the content with every applied edit spliced in.
	Fixed []byte
}

// ApplyResult reports what ApplyFixes did and could not do.
type ApplyResult struct {
	// Files holds one entry per changed file.
	Files []FileFix
	// Applied counts diagnostics whose fix was fully applied.
	Applied int
	// Unfixable holds diagnostics that carry no suggested fix.
	Unfixable []Diagnostic
	// Conflicted holds diagnostics whose fix overlapped an
	// already-accepted edit and was therefore skipped; running -fix
	// again after the first batch lands will pick them up.
	Conflicted []Diagnostic
}

// ApplyFixes computes the result of applying the first suggested fix of
// every diagnostic. It is pure: file contents are read through readFile
// and the rewritten bytes are returned, never written — the caller
// decides where they land (disk for beamvet -fix, memory for the
// golden-fixture tests).
//
// Edits are accepted in diagnostic order; a fix any of whose edits
// overlaps an already-accepted edit is skipped whole and reported in
// Conflicted, so one -fix run never applies two repairs to the same
// source range. Within one file, accepted edits are spliced
// back-to-front so earlier offsets stay valid.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, readFile func(string) ([]byte, error)) (*ApplyResult, error) {
	if readFile == nil {
		readFile = os.ReadFile
	}
	res := &ApplyResult{}

	type edit struct {
		start, end int
		newText    []byte
	}
	perFile := make(map[string][]edit)
	contents := make(map[string][]byte)

	load := func(name string) ([]byte, error) {
		if b, ok := contents[name]; ok {
			return b, nil
		}
		b, err := readFile(name)
		if err != nil {
			return nil, err
		}
		contents[name] = b
		return b, nil
	}

	overlaps := func(name string, start, end int) bool {
		for _, e := range perFile[name] {
			if start < e.end && e.start < end {
				return true
			}
		}
		return false
	}

	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			res.Unfixable = append(res.Unfixable, d)
			continue
		}
		fix := d.SuggestedFixes[0]
		type resolved struct {
			file       string
			start, end int
			newText    []byte
		}
		var batch []resolved
		ok := true
		for _, te := range fix.TextEdits {
			tf := fset.File(te.Pos)
			if tf == nil || fset.File(te.End) != tf || te.End < te.Pos {
				return nil, fmt.Errorf("analysis: fix %q has an edit outside its file", fix.Message)
			}
			name := tf.Name()
			content, err := load(name)
			if err != nil {
				return nil, fmt.Errorf("analysis: applying fix %q: %v", fix.Message, err)
			}
			start, end := tf.Offset(te.Pos), tf.Offset(te.End)
			if len(te.NewText) == 0 {
				start, end = widenDeletion(content, start, end)
			}
			if overlaps(name, start, end) {
				ok = false
				break
			}
			// Edits within one fix must not overlap each other either.
			for _, b := range batch {
				if b.file == name && start < b.end && b.start < end {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			batch = append(batch, resolved{file: name, start: start, end: end, newText: te.NewText})
		}
		if !ok {
			res.Conflicted = append(res.Conflicted, d)
			continue
		}
		for _, b := range batch {
			perFile[b.file] = append(perFile[b.file], edit{start: b.start, end: b.end, newText: b.newText})
		}
		res.Applied++
	}

	names := make([]string, 0, len(perFile))
	for name := range perFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		edits := perFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		fixed := append([]byte(nil), contents[name]...)
		for _, e := range edits {
			fixed = append(fixed[:e.start], append(append([]byte(nil), e.newText...), fixed[e.end:]...)...)
		}
		res.Files = append(res.Files, FileFix{Filename: name, Orig: contents[name], Fixed: fixed})
	}
	return res, nil
}

// widenDeletion extends a deletion over surrounding horizontal
// whitespace and, when the deletion would leave its line blank, over
// the whole line including its newline — so removing a stand-alone
// directive comment removes its line, and removing a trailing comment
// also removes the spaces that separated it from the code.
func widenDeletion(content []byte, start, end int) (int, int) {
	ws := start
	for ws > 0 && (content[ws-1] == ' ' || content[ws-1] == '\t') {
		ws--
	}
	lineStart := ws
	for lineStart > 0 && content[lineStart-1] != '\n' {
		lineStart--
	}
	restBlank := true
	lineEnd := end
	for lineEnd < len(content) && content[lineEnd] != '\n' {
		if content[lineEnd] != ' ' && content[lineEnd] != '\t' {
			restBlank = false
		}
		lineEnd++
	}
	if ws == lineStart && restBlank {
		if lineEnd < len(content) {
			lineEnd++ // swallow the newline: the whole line goes
		}
		return lineStart, lineEnd
	}
	return ws, end
}

// Fixable reports whether the diagnostic carries at least one
// suggested fix.
func Fixable(d Diagnostic) bool { return len(d.SuggestedFixes) > 0 }

// WriteFixes writes every changed file in res back to disk.
func WriteFixes(res *ApplyResult) error {
	for _, f := range res.Files {
		if bytes.Equal(f.Orig, f.Fixed) {
			continue
		}
		info, err := os.Stat(f.Filename)
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.Filename, f.Fixed, info.Mode().Perm()); err != nil {
			return err
		}
	}
	return nil
}
