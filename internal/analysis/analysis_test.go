package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestPathInScope(t *testing.T) {
	scope := []string{"internal/flink", "internal/beam/runner", "/testdata/"}
	cases := []struct {
		path string
		want bool
	}{
		{"beambench/internal/flink", true},
		{"beambench/internal/flinkstats", false},
		{"beambench/internal/beam/runner/direct", true},
		{"beambench/internal/beam/runners", false},
		{"beambench/internal/analysis/analyzers/x/testdata/src/a", true},
		{"beambench/internal/spark", false},
	}
	for _, c := range cases {
		if got := PathInScope(c.path, scope); got != c.want {
			t.Errorf("PathInScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	if !PathInScope("anything", nil) {
		t.Error("empty scope must match everything")
	}
}

func TestCollectDirectives(t *testing.T) {
	src := `package p

//beamvet:allow determinism reason one
var a int

var b int //beamvet:allow ctxleak trailing with reason

//beamvet:allow determinism
var c int

//beamvet:allow bogus some reason
var d int

//beamvet:allow errwrap reason // trailing comment is not the reason
var e int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"determinism": true, "ctxleak": true, "errwrap": true}
	dirs := collectDirectives(fset, []*ast.File{f}, known)

	if len(dirs) != 5 {
		t.Fatalf("got %d directives, want 5", len(dirs))
	}
	if dirs[0].check != "determinism" || dirs[0].reason != "reason one" || dirs[0].bad != "" {
		t.Errorf("directive 0 parsed as %+v", dirs[0])
	}
	if dirs[1].check != "ctxleak" || dirs[1].bad != "" {
		t.Errorf("directive 1 parsed as %+v", dirs[1])
	}
	if dirs[2].bad == "" {
		t.Error("reason-less directive must be bad")
	}
	if dirs[3].bad == "" {
		t.Error("unknown-check directive must be bad")
	}
	if dirs[4].reason != "reason" {
		t.Errorf("nested // must end the directive; reason = %q", dirs[4].reason)
	}

	// Coverage: own line and the line below, nothing else.
	d := dirs[0] // line 3
	if !d.suppresses("determinism", "p.go", 3) || !d.suppresses("determinism", "p.go", 4) {
		t.Error("directive must cover its own line and the next")
	}
	if d.suppresses("determinism", "p.go", 5) || d.suppresses("ctxleak", "p.go", 4) ||
		d.suppresses("determinism", "q.go", 4) {
		t.Error("directive must not cover other lines, checks, or files")
	}
}
