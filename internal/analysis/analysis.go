package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. Name doubles as the check
// identifier accepted by //beamvet:allow directives.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported violation, positioned at Pos.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// A Pass carries one type-checked package through one analyzer. The
// analyzer inspects Files/TypesInfo and calls Reportf for violations;
// directive filtering happens later in RunPackage, so analyzers never
// see //beamvet:allow.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the package import path, used by scope-limited analyzers.
	Path string

	diags *[]Diagnostic
}

// Reportf records a diagnostic for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}
