package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. Name doubles as the check
// identifier accepted by //beamvet:allow directives.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported violation, positioned at Pos.
// SuggestedFixes, when non-empty, carry mechanical repairs that
// `beamvet -fix` can apply; a diagnostic without fixes must be repaired
// (or //beamvet:allow-annotated) by hand.
type Diagnostic struct {
	Pos            token.Pos
	Check          string
	Message        string
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained mechanical repair: applying all
// of its TextEdits must eliminate the diagnostic, so that a re-run
// after `beamvet -fix` reports zero findings (the idempotence
// contract). Edits within one fix must not overlap.
type SuggestedFix struct {
	// Message describes the repair, e.g. "replace == with errors.Is".
	Message string
	// TextEdits are the source changes, in any order.
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText. A
// deletion (empty NewText) that leaves its line blank removes the whole
// line, so deleting a stand-alone directive comment does not leave an
// empty line behind.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// A Pass carries one type-checked package through one analyzer. The
// analyzer inspects Files/TypesInfo and calls Reportf for violations;
// directive filtering happens later in RunPackage, so analyzers never
// see //beamvet:allow.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the package import path, used by scope-limited analyzers.
	Path string

	diags *[]Diagnostic
}

// Reportf records a diagnostic for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Report records a fully built diagnostic (used by analyzers that
// attach SuggestedFixes). The Check field is stamped with the running
// analyzer's name.
func (p *Pass) Report(d Diagnostic) {
	d.Check = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}
