package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveCheck is the pseudo-check name used for diagnostics about
// the //beamvet:allow directives themselves (malformed, missing reason,
// unknown check, unused). These are not suppressible.
const DirectiveCheck = "directive"

// directivePrefix introduces a suppression. Full syntax:
//
//	//beamvet:allow <check> <reason...>
//
// The directive suppresses diagnostics of <check> on its own line, or —
// when it stands alone on a line — on the line immediately below. The
// reason is mandatory: an annotation that cannot say why it is safe is
// a bug report, not an exemption.
const directivePrefix = "beamvet:allow"

type directive struct {
	pos    token.Pos
	end    token.Pos
	file   string
	line   int
	check  string
	reason string
	used   bool
	// bad holds a parse problem reported verbatim; bad directives
	// suppress nothing.
	bad string
}

// collectDirectives extracts every //beamvet:allow directive from the
// files. known maps valid check names.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				d := &directive{pos: c.Pos(), end: c.End(), file: p.Filename, line: p.Line}
				// A nested "//" ends the directive, so fixture files can
				// carry `// want` expectations on the same comment.
				rest, _, _ = strings.Cut(rest, "//")
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "beamvet:allow needs a check name and a reason"
				case !known[fields[0]]:
					d.bad = "beamvet:allow names unknown check " + quoted(fields[0])
				case len(fields) == 1:
					d.bad = "beamvet:allow " + fields[0] + " needs a reason"
				default:
					d.check = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func quoted(s string) string { return "\"" + s + "\"" }

// suppresses reports whether d covers a diagnostic of check at
// file:line. A directive covers its own line and the next one, so it
// can trail the flagged statement or sit on a comment line above it.
func (d *directive) suppresses(check, file string, line int) bool {
	return d.bad == "" && d.check == check && d.file == file &&
		(d.line == line || d.line == line-1)
}
