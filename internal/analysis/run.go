package analysis

import (
	"fmt"
	"sort"

	"beambench/internal/analysis/load"
)

// RunPackage runs every analyzer over pkg, applies //beamvet:allow
// directives, and returns the surviving diagnostics in file order.
// Directive bookkeeping produces its own diagnostics: a directive must
// parse, must name a known check, must carry a reason, and must
// actually suppress something — a stale allow is how an invariant rots
// silently, so it is an error too.
func RunPackage(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      pkg.ImportPath,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	dirs := collectDirectives(pkg.Fset, pkg.Files, known)

	kept := diags[:0]
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if dir.suppresses(d.Check, p.Filename, p.Line) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	for _, dir := range dirs {
		switch {
		case dir.bad != "":
			kept = append(kept, Diagnostic{Pos: dir.pos, Check: DirectiveCheck, Message: dir.bad})
		case !dir.used:
			// Deleting a stale directive is mechanical and always safe:
			// nothing it could suppress exists. beamvet -fix removes it.
			kept = append(kept, Diagnostic{
				Pos:   dir.pos,
				Check: DirectiveCheck,
				Message: fmt.Sprintf("unused beamvet:allow %s directive (nothing on this or the next line trips the check; delete it)",
					dir.check),
				SuggestedFixes: []SuggestedFix{{
					Message:   "delete the unused directive",
					TextEdits: []TextEdit{{Pos: dir.pos, End: dir.end}},
				}},
			})
		}
	}

	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
