// Package load type-checks Go packages for analysis without importing
// golang.org/x/tools. It shells out to `go list -export -deps -json`
// to enumerate packages and locate compiled export data in the build
// cache, parses the target packages' sources, and type-checks them with
// the standard library's gc-export-data importer. The environment is
// offline, so this is the whole loader: no module downloads, no
// go/packages.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
}

// Load enumerates the packages matched by patterns (resolved relative
// to dir; "." for the current module) and returns them type-checked.
// Only the named packages are returned; dependencies contribute export
// data. Test files are not loaded: beamvet enforces invariants on the
// code that produces benchmark output, and tests legitimately use
// wall-clock time and ad-hoc goroutines.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			if p.Incomplete {
				return nil, fmt.Errorf("package %s did not compile; fix the build before analyzing", p.ImportPath)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		p, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
