// Package a is a determinism-analyzer fixture: each flagged line
// carries a want expectation; the clean shapes document what passes.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"sort"
	"time"
)

func clock() {
	_ = time.Now() // want `time.Now in output-producing package`
	//beamvet:allow determinism duration telemetry only
	_ = time.Now() // suppressed by the directive above

	_ = time.Now() //beamvet:allow determinism trailing directive on the same line
}

func globalRand() {
	_ = rand.Intn(7)                         // want `rand.Intn draws from the global rand source`
	_ = randv2.IntN(7)                       // want `rand.IntN draws from the global rand source`
	rand.Shuffle(1, swap)                    // want `rand.Shuffle draws from the global rand source`
	_ = rand.New(rand.NewSource(42)).Intn(7) // seeded: methods on *rand.Rand pass
	_ = randv2.New(randv2.NewPCG(1, 2)).IntN(7)
}

func swap(i, j int) {}

func emitInMapOrder(m map[string]int, emit func(string)) {
	for k := range m {
		emit(k) // want `emit is called per map entry inside range-over-map`
	}
}

func appendInMapOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `out is appended inside range-over-map and never sorted`
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // sorted below: deterministic
	}
	sort.Strings(out)
	return out
}

type sink struct {
	rows []string
}

func appendToField(m map[string]int, s *sink) {
	for k := range m {
		s.rows = append(s.rows, k) // want `rows is appended inside range-over-map and never sorted`
	}
}

func appendToFieldThenSort(m map[string]int, s *sink) {
	for k := range m {
		s.rows = append(s.rows, k)
	}
	sort.Strings(s.rows)
}

// indexedStore writes each entry to a position derived from stored
// state, not from iteration order — deterministic, passes.
func indexedStore(m map[string]int) []string {
	out := make([]string, len(m))
	for k, i := range m {
		out[i] = k
	}
	return out
}

// sliceRange is not a map range; appending without a sort is fine.
func sliceRange(in []string, emit func(string)) {
	var out []string
	for _, v := range in {
		out = append(out, v)
		emit(v)
	}
}

// localAccumulator appends to a slice born inside the loop body; the
// per-entry slice never carries iteration order across entries.
func localAccumulator(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

func allowedEmit(m map[string]int, emit func(string)) {
	for k := range m {
		//beamvet:allow determinism downstream re-sorts per pane before output
		emit(k)
	}
}
