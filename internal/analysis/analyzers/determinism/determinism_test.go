package determinism_test

import (
	"testing"

	"beambench/internal/analysis"
	"beambench/internal/analysis/analysistest"
	"beambench/internal/analysis/analyzers/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "a")
}

// TestScope pins the package set the analyzer patrols: the query
// definitions, engine runtimes, shared plan, and runners are in;
// telemetry and infrastructure are out.
func TestScope(t *testing.T) {
	in := []string{
		"beambench/internal/queries",
		"beambench/internal/flink",
		"beambench/internal/spark",
		"beambench/internal/apex",
		"beambench/internal/beam/graphx",
		"beambench/internal/beam/runner/direct",
		"beambench/internal/beam/runner/flinkrunner",
		"beambench/internal/beam/runners",
	}
	out := []string{
		"beambench/internal/metrics",
		"beambench/internal/harness",
		"beambench/internal/broker",
		"beambench/internal/yarn",
		"beambench/internal/beam",
		"beambench/internal/flinkstats", // prefix of a segment must not match
	}
	for _, p := range in {
		if !analysis.PathInScope(p, determinism.Scope) {
			t.Errorf("%s should be in determinism scope", p)
		}
	}
	for _, p := range out {
		if analysis.PathInScope(p, determinism.Scope) {
			t.Errorf("%s should be out of determinism scope", p)
		}
	}
}
