// Package determinism flags nondeterminism in output-producing code.
// The benchmark's acceptance matrix asserts byte-identical output for
// every (system, API, parallelism, ingestion) cell, so any wall-clock
// read, global randomness, or map-iteration-ordered emission in the
// packages that compute or transport records is a cross-engine
// divergence waiting for the right seed. Three patterns are flagged:
//
//  1. time.Now — wall-clock reads. Event time must come from the
//     record's query-time column, never from the host clock.
//  2. math/rand and math/rand/v2 package-level functions — draws from
//     the global, process-seeded source. Randomness must flow from an
//     explicit seed (rand.New(rand.NewPCG(seed, ...))) so runs repeat.
//  3. range over a map whose body emits (calls a function-valued
//     callback for its side effect) or appends to a slice declared
//     outside the loop that is never subsequently sorted — Go map
//     iteration order is deliberately randomized, so either pattern
//     leaks that order into output.
//
// Legitimate uses (telemetry timestamps, duration measurement) are
// annotated //beamvet:allow determinism <reason>.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"beambench/internal/analysis"
)

// Scope limits the analyzer to output-producing packages: the query
// definitions, the four engine runtimes, the shared execution plan,
// and the runners. "/testdata/" keeps analysistest fixtures in scope.
// Harness, broker, metrics, and yarn are intentionally out: they
// measure and transport wall-clock facts and never produce record
// bytes. internal/obs is in: its trace clock is monotonic by
// contract, so any wall-clock read there must be explicitly allowed.
var Scope = []string{
	"internal/obs",
	"internal/queries",
	"internal/flink",
	"internal/spark",
	"internal/apex",
	"internal/beam/graphx",
	"internal/beam/runner",
	"internal/beam/runners",
	"/testdata/",
}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, global randomness, and map-ordered emission in output-producing packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Path, Scope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkClockAndRand(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			case *ast.FuncLit:
				checkMapRanges(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// randConstructors are the math/rand(/v2) package-level functions that
// build explicitly seeded generators rather than drawing from the
// global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func checkClockAndRand(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on an explicitly seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(sel.Pos(), "time.Now in output-producing package %s: derive event time from the record, not the host clock", pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(sel.Pos(), "%s.%s draws from the global rand source: use rand.New with an explicit seed so runs are reproducible", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRanges inspects one function body, skipping nested function
// literals (each is analyzed on its own so "a later sort" is judged
// within the scope that can actually contain one).
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ownStmts(body, func(n ast.Node) {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if _, isMap := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); isMap {
				ranges = append(ranges, rs)
			}
		}
	})
	for _, rs := range ranges {
		checkMapRange(pass, body, rs)
	}
}

func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	// Emission: a statement-level call to a function-valued expression
	// (an emit/collect callback) runs once per key in map order; no
	// later sort can undo that.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := funcValueCallee(pass, call); ok {
			pass.Reportf(call.Pos(), "map iteration order reaches the output: %s is called per map entry inside range-over-map; collect into a slice, sort, then emit", name)
		}
		return true
	})

	// Appends: growing an outer slice in map order is fine only if the
	// slice is deterministically reordered afterwards.
	for _, target := range outerAppendTargets(pass, rs) {
		if !sortedAfter(pass, fnBody, rs, target) {
			pass.Reportf(target.pos, "map iteration order reaches the output: %s is appended inside range-over-map and never sorted afterwards", target.name)
		}
	}
}

// funcValueCallee reports whether call invokes a function-typed value
// (parameter, field, or local variable) rather than a declared
// function or method, returning a printable name.
func funcValueCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[fun].(*types.Var); ok {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				return fun.Name, true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			if _, isFunc := sel.Type().Underlying().(*types.Signature); isFunc {
				return fun.Sel.Name, true
			}
		}
	}
	return "", false
}

// appendTarget is one `x = append(x, ...)` inside the range body where
// x is declared outside the range statement.
type appendTarget struct {
	obj  types.Object // non-nil for plain identifiers
	sel  *types.Selection
	name string
	pos  token.Pos
}

func outerAppendTargets(pass *analysis.Pass, rs *ast.RangeStmt) []appendTarget {
	var out []appendTarget
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			switch lhs := ast.Unparen(as.Lhs[i]).(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.ObjectOf(lhs)
				// Declared before the range statement = outlives it.
				if obj != nil && obj.Pos() < rs.Pos() {
					out = append(out, appendTarget{obj: obj, name: lhs.Name, pos: call.Pos()})
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
					out = append(out, appendTarget{sel: sel, name: lhs.Sel.Name, pos: call.Pos()})
				}
			}
		}
		return true
	})
	return out
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// sortedAfter reports whether, after the range statement, the
// enclosing function calls a recognized sort with the append target
// among its arguments. Recognized sorts: anything from package sort or
// slices, or any function whose name starts with "sort"/"Sort" (local
// helpers like sortInt64s).
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target appendTarget) bool {
	found := false
	ownStmts(fnBody, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return
		}
		if !isSortCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, target) {
				found = true
				return
			}
		}
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return hasSortPrefix(fun.Name)
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				return true
			}
		}
		return hasSortPrefix(fun.Sel.Name)
	}
	return false
}

func hasSortPrefix(name string) bool {
	return len(name) >= 4 && (name[:4] == "sort" || name[:4] == "Sort")
}

func mentions(pass *analysis.Pass, expr ast.Expr, target appendTarget) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if target.obj != nil && pass.TypesInfo.ObjectOf(n) == target.obj {
				hit = true
			}
		case *ast.SelectorExpr:
			if target.sel != nil {
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Obj() == target.sel.Obj() {
					hit = true
				}
			}
		}
		return !hit
	})
	return hit
}

// ownStmts walks a function body, visiting nodes but not descending
// into nested function literals.
func ownStmts(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
