package ctxleak_test

import (
	"testing"

	"beambench/internal/analysis"
	"beambench/internal/analysis/analysistest"
	"beambench/internal/analysis/analyzers/ctxleak"
)

func TestCtxleak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxleak.Analyzer, "a")
}

// TestScope pins the goroutine-spawning package set the analyzer
// patrols.
func TestScope(t *testing.T) {
	in := []string{
		"beambench/internal/broker",
		"beambench/internal/harness",
		"beambench/internal/flink",
		"beambench/internal/spark",
		"beambench/internal/apex",
		"beambench/internal/beam",
		"beambench/internal/beam/runner/direct",
	}
	out := []string{
		"beambench/internal/queries",
		"beambench/internal/metrics",
		"beambench/internal/aol",
	}
	for _, p := range in {
		if !analysis.PathInScope(p, ctxleak.Scope) {
			t.Errorf("%s should be in ctxleak scope", p)
		}
	}
	for _, p := range out {
		if analysis.PathInScope(p, ctxleak.Scope) {
			t.Errorf("%s should be out of ctxleak scope", p)
		}
	}
}
