// Package a is a ctxleak-analyzer fixture: goroutines with no
// termination contract are flagged; every escape hatch the runtimes
// legitimately use is represented as a passing shape.
package a

import (
	"context"
	"sync"
	"time"
)

func leaks() {
	go func() { // want `goroutine neither observes a context/done channel nor signals completion`
		for {
			time.Sleep(time.Second)
		}
	}()

	go spinForever() // want `goroutine neither observes a context/done channel nor signals completion`

	//beamvet:allow ctxleak demo of an acknowledged leak in fixtures
	go spinForever()
}

func spinForever() {
	for {
		time.Sleep(time.Second)
	}
}

func observesContext(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			time.Sleep(time.Millisecond)
		}
	}()
}

func observesDoneChannel(done chan struct{}) {
	go func() {
		<-done
	}()
	go func() {
		select {
		case <-done:
		case <-time.After(time.Second):
		}
	}()
	go func() {
		for range done {
		}
	}()
}

func signalsCompletion() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(time.Millisecond)
	}()
	<-done

	results := make(chan int, 1)
	go func() {
		results <- 42
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// signalCarryingArgs pass at the call site without resolving bodies.
func signalCarryingArgs(ctx context.Context, wg *sync.WaitGroup) {
	go worker(ctx)
	go step(wg)
	stop := make(chan struct{})
	go drain(stop)
	close(stop)
	wg.Wait()
}

func worker(ctx context.Context) { <-ctx.Done() }

func step(wg *sync.WaitGroup) { wg.Done() }

func drain(stop chan struct{}) { <-stop }

// scheduler spawns a named same-package method whose body selects on a
// stop channel two calls deep; the bounded call-graph walk resolves it.
type scheduler struct {
	stop chan struct{}
}

func (s *scheduler) Start() {
	go s.loop()
}

func (s *scheduler) loop() {
	s.tick()
}

func (s *scheduler) tick() {
	select {
	case <-s.stop:
	default:
	}
}

// gaugeMonitor mirrors the obs.Monitor sampling goroutine: a ticker
// loop that selects on a done channel and signals completion through a
// WaitGroup. This is the canonical periodic-sampler shape and must
// pass clean.
type gaugeMonitor struct {
	interval time.Duration
	done     chan struct{}
	wg       sync.WaitGroup
}

func (m *gaugeMonitor) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.done:
				return
			case <-t.C:
			}
		}
	}()
}

func (m *gaugeMonitor) Stop() {
	close(m.done)
	m.wg.Wait()
}
