// Package ctxleak flags goroutines with no termination contract. A
// benchmark cell tears its engines down between runs; a goroutine that
// neither observes a context/done channel nor signals its completion
// outlives the cell, skews the next measurement, and — under the
// matrix scheduler — accumulates across 84 cells. This is exactly the
// leak shape the streaming-ingestion work chased by hand in the
// sender/consumer paths.
//
// A `go` statement passes if the spawned function, or a same-package
// function it calls (to a small depth), does any of:
//
//   - use a value of type context.Context
//   - receive from, select over, range over, send on, or close a channel
//   - call Done or Wait on a sync.WaitGroup
//
// or if the call site hands it a context, channel, or *sync.WaitGroup
// argument. Calls into other packages are trusted: flagging what the
// analyzer cannot see would bury real findings in noise.
package ctxleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"beambench/internal/analysis"
)

// Scope covers the packages that spawn runtime goroutines: the broker,
// the harness, the three engine runtimes, the beam SDK/runners, and
// the observability monitor (its sampling goroutine must hold to the
// done-channel shape).
var Scope = []string{
	"internal/broker",
	"internal/obs",
	"internal/harness",
	"internal/flink",
	"internal/spark",
	"internal/apex",
	"internal/beam",
	"/testdata/",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxleak",
	Doc:  "flag go statements whose goroutine neither observes a context/done channel nor signals completion",
	Run:  run,
}

// maxDepth bounds the same-package call-graph walk from the spawned
// function. Depth 3 resolves the `go s.run()` -> runAttempt -> select
// shape without risking a blowup on mutual recursion.
const maxDepth = 3

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Path, Scope) {
		return nil
	}
	decls := declIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goStmtOK(pass, decls, gs.Call) {
				pass.Reportf(gs.Pos(), "goroutine neither observes a context/done channel nor signals completion (WaitGroup, close, or send): it can outlive the run and leak")
			}
			return true
		})
	}
	return nil
}

// declIndex maps this package's function and method objects to their
// declarations so the analyzer can look through `go s.run()`.
func declIndex(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

func goStmtOK(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	// Arguments that carry a termination signal into the goroutine
	// count: `go worker(ctx)`, `go drain(done)`, `go step(&wg)`.
	for _, arg := range call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && carriesSignal(t) {
			return true
		}
	}
	visited := make(map[*types.Func]bool)
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyObserves(pass, decls, fun.Body, visited, 0)
	default:
		if fn := calledFunc(pass, call); fn != nil {
			if decl, ok := decls[fn]; ok {
				return bodyObserves(pass, decls, decl.Body, visited, 0)
			}
		}
	}
	// Function values and cross-package calls: trust the callee.
	return true
}

func carriesSignal(t types.Type) bool {
	if isContext(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return isWaitGroup(u.Elem())
	}
	return isWaitGroup(t)
}

func bodyObserves(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, visited map[*types.Func]bool, depth int) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			ok = true
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ok = true
				}
			}
		case *ast.Ident:
			if t := pass.TypesInfo.TypeOf(n); t != nil && isContext(t) {
				ok = true
			}
		case *ast.CallExpr:
			ok = callObserves(pass, decls, n, visited, depth)
		}
		return !ok
	})
	return ok
}

func callObserves(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, visited map[*types.Func]bool, depth int) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return b.Name() == "close"
		}
	case *ast.SelectorExpr:
		// wg.Done() / wg.Wait() on a sync.WaitGroup receiver.
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if p, ok := recv.Underlying().(*types.Pointer); ok {
				recv = p.Elem()
			}
			if isWaitGroup(recv) && (fun.Sel.Name == "Done" || fun.Sel.Name == "Wait") {
				return true
			}
		}
	}
	// Look through same-package calls, bounded.
	if depth >= maxDepth {
		return false
	}
	if fn := calledFunc(pass, call); fn != nil && !visited[fn] {
		visited[fn] = true
		if decl, ok := decls[fn]; ok {
			return bodyObserves(pass, decls, decl.Body, visited, depth+1)
		}
	}
	return false
}

func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
