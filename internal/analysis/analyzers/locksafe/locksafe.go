// Package locksafe flags struct-field accesses that sidestep the
// field's inferred mutex. The benchmark's concurrency surface — the
// broker's partition logs, the metrics counters engine subtasks bang
// on, the obs monitor's sampling goroutine — is all guarded by the
// sibling-mutex idiom: a sync.Mutex (or RWMutex) field next to the
// data it protects. Which fields a mutex protects is convention, not
// syntax, so the analyzer infers it: within the declaring package, a
// field the majority of whose accesses happen while a sibling mutex of
// the same receiver is held is treated as guarded, and every access
// outside the lock is flagged. A single unguarded counter under the
// matrix scheduler's workers is a data race that skews every benchmark
// cell after it — exactly the failure mode sustained-rate benchmarking
// (Karimov et al.) cannot tolerate.
//
// Two patterns are flagged:
//
//  1. an access to an inferred-guarded field outside any sibling-mutex
//     critical section of the same receiver
//  2. mixed atomic/plain access: a field passed to sync/atomic
//     functions somewhere and read or written plainly elsewhere — the
//     plain side tears
//
// What counts as "under the lock": accesses positioned between a
// mu.Lock()/RLock() call and the matching Unlock in the same function
// (a deferred Unlock holds to function end), and every access inside a
// function whose name ends in "Locked" (the repo's caller-holds-lock
// naming convention). Goroutine bodies launched with `go` start
// lock-free: spawning under a lock does not propagate the lock into
// the goroutine.
//
// Self-synchronized fields are exempt: fields whose type (through
// pointers, arrays, and slices) lives in sync or sync/atomic, or is a
// struct made entirely of such types (an array of atomic counters
// needs no lock).
//
// The inference is per-package and positional — it ignores branch
// structure — so intentional lock-free accesses (constructor-time
// writes before the value escapes, immutable-after-start reads) must
// carry a //beamvet:allow locksafe <reason> annotation, which doubles
// as documentation of the memory-ordering argument.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"beambench/internal/analysis"
)

// Scope covers the packages with real concurrency: the broker, the
// telemetry counters, the obs monitor, and the three engine runtimes.
var Scope = []string{
	"internal/broker",
	"internal/metrics",
	"internal/obs",
	"internal/flink",
	"internal/spark",
	"internal/apex",
	"/testdata/",
}

var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flag accesses to mutex-guarded struct fields outside the lock, and atomic/plain mixed access",
	Run:  run,
}

// structInfo is one candidate struct: a package-local named struct
// with at least one sibling mutex field.
type structInfo struct {
	name        string
	mutexNames  []string
	mutexFields map[*types.Var]bool
	dataFields  map[*types.Var]bool
}

// access is one field use, classified by lock state.
type access struct {
	pos    token.Pos
	field  *types.Var
	si     *structInfo
	base   string // rendered receiver chain, e.g. "b@123" or "p@88.parts"
	locked bool
	atomic bool // passed to a sync/atomic function
}

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Path, Scope) {
		return nil
	}
	structs := candidateStructs(pass)
	if len(structs) == 0 {
		return nil
	}

	var accesses []access
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanUnit(pass, structs, fd.Body, strings.HasSuffix(fd.Name.Name, "Locked"), &accesses)
		}
	}

	// Inference: a field is guarded when the majority of its plain
	// accesses happen under a sibling lock; atomic-function uses are
	// tallied separately for the mixed-access check.
	type tally struct{ locked, unlocked, atomic int }
	counts := make(map[*types.Var]*tally)
	for _, a := range accesses {
		t := counts[a.field]
		if t == nil {
			t = &tally{}
			counts[a.field] = t
		}
		switch {
		case a.atomic:
			t.atomic++
		case a.locked:
			t.locked++
		default:
			t.unlocked++
		}
	}

	for _, a := range accesses {
		t := counts[a.field]
		switch {
		case a.atomic || a.locked:
			continue
		case t.atomic > 0:
			pass.Reportf(a.pos, "field %s.%s is accessed with sync/atomic elsewhere but plainly here: the plain access tears; use the atomic API everywhere or guard every access with %s",
				a.si.name, a.field.Name(), mutexList(a.si))
		case t.locked > t.unlocked:
			pass.Reportf(a.pos, "field %s.%s is guarded by %s on %d of %d accesses in this package but not here: lock around this access or annotate the lock-free fast path",
				a.si.name, a.field.Name(), mutexList(a.si), t.locked, t.locked+t.unlocked)
		}
	}
	return nil
}

func mutexList(si *structInfo) string {
	return si.name + "." + strings.Join(si.mutexNames, "/")
}

// candidateStructs finds package-local named structs with a sibling
// sync.Mutex/RWMutex field and classifies their fields.
func candidateStructs(pass *analysis.Pass) map[*types.Var]*structInfo {
	out := make(map[*types.Var]*structInfo)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		si := &structInfo{
			name:        tn.Name(),
			mutexFields: make(map[*types.Var]bool),
			dataFields:  make(map[*types.Var]bool),
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutex(f.Type()) {
				si.mutexFields[f] = true
				si.mutexNames = append(si.mutexNames, f.Name())
			}
		}
		if len(si.mutexFields) == 0 {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !si.mutexFields[f] && !selfSynchronized(f.Type()) {
				si.dataFields[f] = true
				out[f] = si
			}
		}
		for f := range si.mutexFields {
			out[f] = si
		}
	}
	return out
}

// scanUnit walks one function body (or one goroutine body, which
// starts lock-free), collecting lock events and field accesses, then
// classifies each access by a positional sweep. Goroutine bodies are
// queued as fresh units and skipped in the enclosing walk.
func scanUnit(pass *analysis.Pass, structs map[*types.Var]*structInfo, body *ast.BlockStmt, heldAlways bool, accesses *[]access) {
	type lockEvent struct {
		pos   token.Pos
		base  string
		si    *structInfo
		delta int
	}
	var events []lockEvent
	var local []access
	claimed := make(map[ast.Node]bool) // selectors consumed by lock calls or atomic args
	var goBodies []*ast.BlockStmt

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The goroutine does not inherit the spawner's lock; its
			// argument expressions are still evaluated here.
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				goBodies = append(goBodies, lit.Body)
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, visit)
				}
				return false
			}
		case *ast.DeferStmt:
			// A deferred Unlock runs at return: the lock stays held for
			// the rest of the unit, so no unlock event is recorded.
			if _, _, name, ok := mutexMethodCall(pass, structs, n.Call, claimed); ok && (name == "Unlock" || name == "RUnlock") {
				return false
			}
		case *ast.CallExpr:
			if base, si, name, ok := mutexMethodCall(pass, structs, n, claimed); ok {
				switch name {
				case "Lock", "RLock":
					events = append(events, lockEvent{pos: n.Pos(), base: base, si: si, delta: 1})
				case "Unlock", "RUnlock":
					events = append(events, lockEvent{pos: n.End(), base: base, si: si, delta: -1})
				}
				return true
			}
			claimAtomicArgs(pass, structs, n, claimed, &local)
		case *ast.SelectorExpr:
			if claimed[n] {
				return true
			}
			if field, si, ok := fieldAccess(pass, structs, n); ok && si.dataFields[field] {
				local = append(local, access{pos: n.Sel.Pos(), field: field, si: si, base: renderBase(pass, n.X)})
			}
		}
		return true
	}
	ast.Inspect(body, visit)

	for i := range local {
		a := &local[i]
		if a.atomic {
			continue
		}
		if heldAlways {
			a.locked = true
			continue
		}
		held := 0
		for _, e := range events {
			if e.pos < a.pos && e.si == a.si && e.base == a.base {
				held += e.delta
			}
		}
		a.locked = held > 0
	}
	*accesses = append(*accesses, local...)

	for _, gb := range goBodies {
		scanUnit(pass, structs, gb, false, accesses)
	}
}

// mutexMethodCall matches X.<mutexField>.Lock/RLock/Unlock/RUnlock()
// and claims the receiver selector so it is not double-counted as a
// field access.
func mutexMethodCall(pass *analysis.Pass, structs map[*types.Var]*structInfo, call *ast.CallExpr, claimed map[ast.Node]bool) (base string, si *structInfo, name string, ok bool) {
	fun, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, "", false
	}
	switch fun.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", nil, "", false
	}
	recv, isSel := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, "", false
	}
	field, sinfo, isField := fieldAccess(pass, structs, recv)
	if !isField || !sinfo.mutexFields[field] {
		return "", nil, "", false
	}
	claimed[recv] = true
	return renderBase(pass, recv.X), sinfo, fun.Sel.Name, true
}

// claimAtomicArgs records &X.f arguments of sync/atomic calls as
// atomic accesses and claims their selectors.
func claimAtomicArgs(pass *analysis.Pass, structs map[*types.Var]*structInfo, call *ast.CallExpr, claimed map[ast.Node]bool, local *[]access) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if field, si, isField := fieldAccess(pass, structs, sel); isField && si.dataFields[field] {
			claimed[sel] = true
			*local = append(*local, access{pos: sel.Sel.Pos(), field: field, si: si, base: renderBase(pass, sel.X), atomic: true})
		}
	}
}

// fieldAccess resolves a selector to a candidate struct field.
func fieldAccess(pass *analysis.Pass, structs map[*types.Var]*structInfo, sel *ast.SelectorExpr) (*types.Var, *structInfo, bool) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil, false
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil, false
	}
	si, ok := structs[field]
	return field, si, ok
}

// renderBase canonicalizes the receiver chain of an access so lock
// receivers and field receivers compare: identifiers are qualified by
// their object's declaration position (robust against shadowing),
// selector hops append field names, and index expressions collapse to
// [*] (a lock on one element guards accesses through the same
// syntactic path).
func renderBase(pass *analysis.Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
			return fmt.Sprintf("%s@%d", e.Name, obj.Pos())
		}
		return e.Name
	case *ast.SelectorExpr:
		return renderBase(pass, e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return renderBase(pass, e.X) + "[*]"
	case *ast.StarExpr:
		return renderBase(pass, e.X)
	default:
		return fmt.Sprintf("expr@%d", expr.Pos())
	}
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// selfSynchronized reports whether a field of this type needs no
// sibling lock: sync/atomic and sync types synchronize themselves,
// and so do arrays/slices/pointers of them, and structs composed
// entirely of such types.
func selfSynchronized(t types.Type) bool {
	return selfSync(t, 0)
}

func selfSync(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return selfSync(u.Elem(), depth+1)
	case *types.Slice:
		return selfSync(u.Elem(), depth+1)
	case *types.Pointer:
		return selfSync(u.Elem(), depth+1)
	case *types.Struct:
		if u.NumFields() == 0 {
			return false
		}
		for i := 0; i < u.NumFields(); i++ {
			if !selfSync(u.Field(i).Type(), depth+1) {
				return false
			}
		}
		return true
	}
	return false
}
