// Package a is a locksafe fixture: fields guarded by a sibling mutex
// on the majority of their accesses must be locked everywhere, and
// atomic/plain access must not mix.
package a

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	n    int
	hits int64
	name string
	// total synchronizes itself: never flagged, no lock required.
	total atomic.Int64
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// resetLocked follows the caller-holds-lock naming convention.
func (c *counter) resetLocked() {
	c.n = 0
}

func (c *counter) Peek() int {
	return c.n // want `field counter.n is guarded by counter.mu on 4 of 6 accesses`
}

func (c *counter) Spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	go func() {
		// The goroutine does not inherit the spawner's lock.
		c.n++ // want `field counter.n is guarded by counter.mu on 4 of 6 accesses`
	}()
}

func (c *counter) Hit() {
	atomic.AddInt64(&c.hits, 1)
	c.total.Add(1)
}

func (c *counter) Hits() int64 {
	return c.hits // want `field counter.hits is accessed with sync/atomic elsewhere but plainly here`
}

// Label is read-only after construction and never locked: the majority
// rule leaves it unguarded.
func (c *counter) Label() string {
	return c.name
}

func (c *counter) LabelLen() int {
	return len(c.name)
}

type table struct {
	rw   sync.RWMutex
	rows map[string]int
}

func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

func (t *table) set(k string, v int) {
	t.rw.Lock()
	t.rows[k] = v
	t.rw.Unlock()
}

func (t *table) size() int {
	return len(t.rows) // want `field table.rows is guarded by table.rw on 2 of 3 accesses`
}
