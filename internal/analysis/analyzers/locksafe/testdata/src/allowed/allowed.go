// Package allowed exercises //beamvet:allow locksafe suppression: a
// deliberate lock-free fast path carries its memory-ordering argument
// as the mandatory reason.
package allowed

import "sync"

type box struct {
	mu sync.Mutex
	v  int
}

func (b *box) bump() {
	b.mu.Lock()
	b.v++
	b.mu.Unlock()
}

func (b *box) bump2() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.v++
}

func (b *box) peek() int {
	//beamvet:allow locksafe stale reads are acceptable: v is monotonic and read for display only
	return b.v
}
