// Package monitor mirrors internal/obs.Monitor's shape — a sampling
// goroutine banging on mutex-guarded state, a done channel, and a
// WaitGroup — and must pass locksafe with zero diagnostics: the real
// monitor is the analyzer's reference for a correctly locked sampler.
package monitor

import "sync"

type sample struct{ v float64 }

type monitor struct {
	mu      sync.Mutex
	series  map[string][]sample
	stopped bool

	done chan struct{}
	wg   sync.WaitGroup
}

func newMonitor() *monitor {
	return &monitor{
		series: make(map[string][]sample),
		done:   make(chan struct{}),
	}
}

func (m *monitor) start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case <-m.done:
				return
			default:
			}
			m.sample()
		}
	}()
}

func (m *monitor) sample() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	m.series["cpu"] = append(m.series["cpu"], sample{v: 1})
}

func (m *monitor) stop() {
	m.mu.Lock()
	already := m.stopped
	m.stopped = true
	m.mu.Unlock()
	if already {
		return
	}
	close(m.done)
	m.wg.Wait()
}
