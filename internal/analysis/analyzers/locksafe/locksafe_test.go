package locksafe

import (
	"testing"

	"beambench/internal/analysis/analysistest"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "a", "allowed", "monitor")
}
