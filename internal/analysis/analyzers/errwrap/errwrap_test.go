package errwrap

import (
	"testing"

	"beambench/internal/analysis/analysistest"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "a", "fixable")
}

// TestFixGolden pins the errors.Is rewrite beamvet -fix applies to
// identity comparisons.
func TestFixGolden(t *testing.T) {
	analysistest.RunFix(t, analysistest.TestData(), Analyzer, "fixable")
}

// TestFormatVerbs pins the operand pairing of the format scanner that
// decides which verb a sentinel lands on.
func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format  string
		verbs   string
		indexed bool
	}{
		{"plain", "", false},
		{"%w", "w", false},
		{"a %d b %v c %w", "dvw", false},
		{"100%% done: %v", "v", false},
		{"%+v %#x %-8s", "vxs", false},
		{"%*d %w", "*dw", false},
		{"%.*f %w", "*fw", false},
		{"%8.3f %w", "fw", false},
		{"%[1]d %[2]w", "", true},
		{"trailing percent %", "", false},
	}
	for _, c := range cases {
		verbs, indexed := formatVerbs(c.format)
		if string(verbs) != c.verbs || indexed != c.indexed {
			t.Errorf("formatVerbs(%q) = %q, indexed=%v; want %q, indexed=%v",
				c.format, string(verbs), indexed, c.verbs, c.indexed)
		}
	}
}
