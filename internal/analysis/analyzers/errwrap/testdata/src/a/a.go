// Package a is an errwrap-analyzer fixture: sentinel errors must be
// wrapped with %w and matched with errors.Is.
package a

import (
	"errors"
	"fmt"
)

var ErrUnsupported = errors.New("unsupported")
var ErrTimeout = errors.New("timeout")

// errInternal is unexported and not part of any cross-package
// contract; identity comparison is the owner's business.
var errInternal = errors.New("internal")

func badWrap(n int) error {
	if n == 1 {
		return fmt.Errorf("op failed: %v", ErrUnsupported) // want `formats sentinel ErrUnsupported with %v`
	}
	if n == 2 {
		return fmt.Errorf("op failed: %s", ErrUnsupported) // want `formats sentinel ErrUnsupported with %s`
	}
	if n == 3 {
		return fmt.Errorf("%d of %d: %v", n, n, ErrTimeout) // want `formats sentinel ErrTimeout with %v`
	}
	if n == 4 {
		return fmt.Errorf("%*d: %v", 8, n, ErrTimeout) // want `formats sentinel ErrTimeout with %v`
	}
	if n == 5 {
		return fmt.Errorf("%[1]d: %[2]v", n, ErrTimeout) // want `formats sentinel ErrTimeout without %w`
	}
	return nil
}

func goodWrap(n int) error {
	if n == 1 {
		return fmt.Errorf("op failed: %w", ErrUnsupported)
	}
	if n == 2 {
		return fmt.Errorf("%d of %d: %w", n, n, ErrTimeout)
	}
	if n == 3 {
		return fmt.Errorf("%[1]d: %[2]w", n, ErrTimeout)
	}
	if n == 4 {
		// Unexported non-contract errors may be formatted any way.
		return fmt.Errorf("wrapped: %v", errInternal)
	}
	return nil
}

func badCompare(err error) bool {
	if err == ErrUnsupported { // want `error compared to sentinel ErrUnsupported with ==`
		return true
	}
	if err != ErrTimeout { // want `error compared to sentinel ErrTimeout with !=`
		return false
	}
	switch err {
	case ErrUnsupported: // want `compares case to sentinel ErrUnsupported by identity`
		return true
	case nil:
		return false
	}
	return false
}

func goodCompare(err error) bool {
	if errors.Is(err, ErrUnsupported) {
		return true
	}
	if err == nil || err == errInternal {
		return false
	}
	switch {
	case errors.Is(err, ErrTimeout):
		return true
	}
	return false
}

func allowed(err error) error {
	// The escape hatch works here too, e.g. for a hot path that has
	// proven the error is never wrapped.
	//beamvet:allow errwrap err is produced un-wrapped two lines up
	if err == ErrTimeout {
		return fmt.Errorf("giving up: %w", ErrTimeout)
	}
	return nil
}

func directiveMisuse(err error) bool {
	//beamvet:allow errwrap stale annotation // want `unused beamvet:allow errwrap directive`
	ok := err == nil

	//beamvet:allow errwrap // want `beamvet:allow errwrap needs a reason`
	//beamvet:allow nosuchcheck some reason // want `beamvet:allow names unknown check "nosuchcheck"`
	return ok
}
