// Package fixable carries errwrap findings whose repair is mechanical
// — identity comparisons against a sentinel rewrite to errors.Is when
// the file already imports errors; fixable.go.golden pins the output.
package fixable

import "errors"

var ErrStop = errors.New("stop")

type task struct{ err error }

func isStop(err error) bool {
	if err == ErrStop { // want `error compared to sentinel ErrStop with ==`
		return true
	}
	return err != ErrStop // want `error compared to sentinel ErrStop with !=`
}

func (t *task) done() bool {
	return t.err == ErrStop // want `error compared to sentinel ErrStop with ==`
}
