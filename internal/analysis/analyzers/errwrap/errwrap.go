// Package errwrap enforces the repo's sentinel-error contract. The
// harness decides whether a failing cell aborts the matrix or is
// recorded as skipped by testing errors.Is(err, beam.ErrUnsupported);
// every layer between a runner and the report must therefore wrap
// sentinels with %w and never compare errors by identity, or the
// contract silently breaks through one fmt.Errorf("%v"). Three
// patterns are flagged, for any package-level `Err*` sentinel in any
// package:
//
//  1. fmt.Errorf passing a sentinel to a verb other than %w
//  2. err == sentinel / err != sentinel comparisons
//  3. switch err { case sentinel: } clauses
//
// The fixes are mechanical: %w, and errors.Is.
package errwrap

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"beambench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "sentinel errors must be wrapped with %w and compared with errors.Is",
	Run:  run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

var indexedWrapVerb = regexp.MustCompile(`%(\[\d+\])?w`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.BinaryExpr:
				checkComparison(pass, f, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelName returns the name of the package-level Err* sentinel the
// expression refers to, if any.
func sentinelName(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || v.Name() == "Err" {
		return "", false
	}
	next := v.Name()[len("Err"):]
	if next[0] < 'A' || next[0] > 'Z' {
		return "", false // errFoo-style locals already excluded by scope; ErrX requires exported camel
	}
	return v.Name(), types.Implements(v.Type(), errorIface)
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs, indexed := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		name, isSentinel := sentinelName(pass, arg)
		if !isSentinel {
			continue
		}
		if indexed {
			// Explicit argument indexes make verb<->operand pairing
			// ambiguous to a static scan; require a %w (or %[n]w)
			// anywhere.
			if !indexedWrapVerb.MatchString(format) {
				pass.Reportf(arg.Pos(), "fmt.Errorf formats sentinel %s without %%w: errors.Is on the result will not match", name)
			}
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "fmt.Errorf formats sentinel %s with %%%s: use %%w so errors.Is on the result matches", name, verbAt(verbs, i))
		}
	}
}

func verbAt(verbs []rune, i int) string {
	if i < len(verbs) {
		return string(verbs[i])
	}
	return "(missing verb)"
}

// formatVerbs returns one rune per operand the format string consumes,
// in order ('*' for a width/precision operand). indexed reports that
// the format uses explicit argument indexes (%[1]s), which this
// scanner does not pair up.
func formatVerbs(format string) (verbs []rune, indexed bool) {
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(runes) && strings.ContainsRune("+-# 0", runes[i]) {
			i++
		}
		// width
		if i < len(runes) && runes[i] == '*' {
			verbs = append(verbs, '*')
			i++
		} else {
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(runes) && runes[i] == '.' {
			i++
			if i < len(runes) && runes[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(runes) {
			break
		}
		if runes[i] == '[' {
			return nil, true
		}
		if runes[i] == '%' {
			continue // %% consumes no operand
		}
		verbs = append(verbs, runes[i])
	}
	return verbs, false
}

func checkComparison(pass *analysis.Pass, file *ast.File, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		name, ok := sentinelName(pass, pair[0])
		if !ok {
			continue
		}
		other := pass.TypesInfo.TypeOf(pair[1])
		if other == nil || isUntypedNil(other) {
			continue
		}
		d := analysis.Diagnostic{
			Pos:     be.OpPos,
			Message: fmt.Sprintf("error compared to sentinel %s with %s: use errors.Is so wrapped errors match", name, be.Op),
		}
		// The rewrite is mechanical when both operands render cleanly
		// and the file already imports errors (beamvet -fix does not
		// manage imports).
		if importsErrors(file) {
			errSrc, okErr := exprSource(pair[1])
			sentSrc, okSent := exprSource(pair[0])
			if okErr && okSent {
				repl := fmt.Sprintf("errors.Is(%s, %s)", errSrc, sentSrc)
				if be.Op == token.NEQ {
					repl = "!" + repl
				}
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message:   "rewrite the comparison with errors.Is",
					TextEdits: []analysis.TextEdit{{Pos: be.Pos(), End: be.End(), NewText: []byte(repl)}},
				}}
			}
		}
		pass.Report(d)
		return
	}
}

// importsErrors reports whether the file imports the errors package
// under its default name.
func importsErrors(file *ast.File) bool {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"errors"` && imp.Name == nil {
			return true
		}
	}
	return false
}

// exprSource renders simple expressions (identifiers and selector
// chains) back to source; anything richer declines a fix rather than
// risking a mangled rewrite.
func exprSource(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		if x, ok := exprSource(e.X); ok {
			return x + "." + e.Sel.Name, true
		}
	}
	return "", false
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	if tagType == nil || !types.Implements(tagType, errorIface) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if name, ok := sentinelName(pass, expr); ok {
				pass.Reportf(expr.Pos(), "switch on an error compares case to sentinel %s by identity: use switch { case errors.Is(err, %s): }", name, name)
			}
		}
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
