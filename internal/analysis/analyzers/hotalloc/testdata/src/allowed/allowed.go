// Package allowed exercises //beamvet:allow hotalloc suppression: an
// allocation that IS the operation's contract carries its rationale as
// the mandatory reason.
package allowed

type dec struct{}

func (d *dec) Decode(b []byte) string {
	//beamvet:allow hotalloc the decoded string is handed to the caller and must not alias the input buffer
	return string(b)
}
