// Package a is a hotalloc fixture: allocation patterns on per-record
// paths — conversions, fmt.Sprint*, unsized growth in loops, and
// escaping closures — reached from the named entry points and through
// the same-package call graph.
package a

import "fmt"

type op struct {
	keys map[string]int
}

func (o *op) Process(rec []byte, emit func([]byte) error) error {
	k := string(rec) // want `\[\]byte->string conversion allocates and copies on a per-record path`
	o.keys[k]++
	if o.keys[string(rec)] > 3 { // map index is compiler-optimized: no diagnostic
		return emit([]byte(k)) // want `string->\[\]byte conversion allocates and copies on a per-record path`
	}
	return o.tag(k, emit)
}

// tag is hot only because Process reaches it through the call graph.
func (o *op) tag(k string, emit func([]byte) error) error {
	msg := fmt.Sprintf("key=%s count=%d", k, o.keys[k]) // want `fmt.Sprintf formats through reflection on a per-record path`
	return emit([]byte(msg))                            // want `string->\[\]byte conversion allocates`
}

func (o *op) Encode(vals [][]byte) []byte {
	var out []byte
	index := make(map[string]int) // outside any loop: no diagnostic
	for i, v := range vals {
		scratch := make([]byte, 0) // want `make\(slice, 0\) without capacity inside a per-record loop`
		scratch = append(scratch, v...)
		out = append(out, scratch...) // want `append grows out inside a per-record loop`
		index[string(v)] = i          // map index: no diagnostic
	}
	return out
}

type packer struct{ scratch []byte }

// Encode reuses a scratch buffer: the reslice-initialized local is
// capacity-managed, its growth amortizes to zero, and nothing is
// flagged.
func (p *packer) Encode(vals [][]byte) []byte {
	out := p.scratch[:0]
	for _, v := range vals {
		out = append(out, v...)
	}
	p.scratch = out
	return out
}

func (o *op) Decode(b []byte) (string, bool) {
	s := string(b)      // want `\[\]byte->string conversion allocates`
	if s == string(b) { // comparison is compiler-optimized: no diagnostic
		return s, true
	}
	return fmt.Sprintln(s), false // want `fmt.Sprintln formats through reflection`
}

func (o *op) ProcessElement(rec []byte) error {
	limit := len(rec)
	defer func() { limit = 0 }()                           // deferred: no diagnostic
	check := func(b []byte) bool { return len(b) < limit } // want `closure captures limit on a per-record path`
	if check(rec) {
		return nil
	}
	func() { limit++ }() // immediately invoked: no diagnostic
	return nil
}

// setup is not reachable from any per-record entry point: allocation
// there is startup cost, not per-record cost.
func setup(names []string) map[string]int {
	m := make(map[string]int)
	for i, n := range names {
		m[fmt.Sprintf("op-%d", i)] = len(n)
	}
	return m
}
