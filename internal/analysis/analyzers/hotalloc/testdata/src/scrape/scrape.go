// Package scrape is a hotalloc fixture shaped like the obs snapshot
// reader: a gauge registry marked on per-record paths next to a
// pull-based scrape path whose allocations are the product (a fresh
// snapshot per scrape) and carry //beamvet:allow annotations.
package scrape

import "fmt"

type gauge struct {
	name string
	v    int64
}

type registry struct {
	gauges []*gauge
	names  map[string]int
}

// Mark is the per-record entry point: the record hook must stay
// allocation-free.
func (r *registry) Mark(rec []byte, g *gauge) {
	g.v++
	if r.names[string(rec)] > 0 { // map index is compiler-optimized: no diagnostic
		g.v++
	}
	r.label(rec, g)
}

// label is hot because Mark reaches it through the call graph.
func (r *registry) label(rec []byte, g *gauge) {
	key := string(rec) // want `\[\]byte->string conversion allocates and copies on a per-record path`
	if key == g.name {
		g.name = fmt.Sprintf("%s!", key) // want `fmt.Sprintf formats through reflection on a per-record path`
	}
}

type sample struct {
	name string
	v    int64
}

// Process drives a scrape from a per-record context (the fixture's
// worst case); the snapshot copies are deliberate and annotated.
func (r *registry) Process(rec []byte, emit func([]byte) error) error {
	out := r.snapshot()
	if len(out) == 0 {
		return nil
	}
	return emit(rec)
}

// snapshot materializes one consistent view per scrape. Copying is the
// contract — the caller must not alias live gauges — so every
// allocation carries its rationale.
func (r *registry) snapshot() []sample {
	out := make([]sample, 0, len(r.gauges))
	for _, g := range r.gauges {
		//beamvet:allow hotalloc the sample copies the gauge name so the snapshot does not alias live registry state
		out = append(out, sample{name: string([]byte(g.name)), v: g.v})
	}
	return out
}
