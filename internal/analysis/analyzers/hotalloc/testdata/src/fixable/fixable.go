// Package fixable carries hotalloc findings whose repair is purely
// mechanical; fixable.go.golden pins the exact output of beamvet -fix.
package fixable

import "fmt"

func source() string { return "ops" }

// describe runs once per report, not per record: its Sprintf keeps the
// fmt import alive after -fix rewrites the hot path below.
func describe(n int) string { return fmt.Sprintf("%d records", n) }

func Encode(rec []byte, emit func([]byte) error) error {
	tag := fmt.Sprintf("records")  // want `fmt.Sprintf formats through reflection`
	kind := fmt.Sprintf("%s", tag) // want `fmt.Sprintf formats through reflection`
	id := fmt.Sprint(source())     // want `fmt.Sprint formats through reflection`
	return emit(append(rec, (tag + kind + id)...))
}
