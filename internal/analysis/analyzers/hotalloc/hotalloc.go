// Package hotalloc flags allocation patterns on per-record paths. At
// paper scale a cell pushes 10^6+ records through every operator, so
// one avoidable allocation per record is a million allocations per
// run, GC pressure that skews exactly the sustained-rate measurements
// the benchmark exists to take, and the difference between the
// metrics sketch's ~100ns/0-alloc insert and a hot path that spends
// its budget in the allocator. The analyzer walks the same-package
// call graph from the known per-record entry points — engine operator
// Process/emit paths, graphx fused fns, coder round-trips, and the
// metrics record hooks — and flags, on any function it reaches:
//
//  1. []byte<->string conversions (each allocates and copies; the
//     compiler-optimized forms — map indexing and == comparison — are
//     exempt)
//  2. fmt.Sprint/Sprintf/Sprintln (reflection-driven formatting per
//     record; trivial cases carry a suggested fix)
//  3. unsized growth in per-record loops: make(map) without a size
//     hint or make([]T, 0) without capacity inside a loop, and append
//     to a slice declared without capacity outside the loop
//  4. closures that capture enclosing variables and escape (each
//     record allocates a fresh closure object)
//
// Entry points are recognized two ways: by name — methods and
// functions called Process, ProcessElement, Invoke, Encode, Decode,
// Mark, MarkAt, or Insert — and by shape: any function literal taking
// a []byte parameter (the runtimes' ProcessFunc/emit contract). The
// walk stays within the package (cross-package callees are the
// callee package's findings) and is bounded at depth 6.
//
// Findings are an inventory, not always a bug: a defensive copy a
// coder's ownership contract requires is annotated
// //beamvet:allow hotalloc <reason> — the reason records why the
// allocation is the product, and the ROADMAP's zero-alloc arc burns
// down whatever is left.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"beambench/internal/analysis"
)

// Scope covers the code records flow through: the three engine
// runtimes, the beam SDK (coders, graphx, runners), the metrics hot
// hooks, and the obs layer (its gauge setters and snapshot readers sit
// next to per-record marking; scrape-path allocations must be
// deliberate and annotated).
var Scope = []string{
	"internal/flink",
	"internal/spark",
	"internal/apex",
	"internal/beam",
	"internal/metrics",
	"internal/obs",
	"/testdata/",
}

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation patterns (conversions, fmt.Sprint*, unsized growth, escaping closures) on per-record paths",
	Run:  run,
}

// rootNames are the per-record entry points by method/function name.
var rootNames = map[string]bool{
	"Process":        true, // engine operators, GBKState
	"ProcessElement": true, // beam DoFns, graphx FusedFn
	"Invoke":         true, // flink sink functions
	"Encode":         true, // coder round-trip
	"Decode":         true,
	"Mark":           true, // metrics record hooks
	"MarkAt":         true,
	"Insert":         true, // sketch insert
}

// maxDepth bounds the same-package call-graph walk from entry points.
const maxDepth = 6

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Path, Scope) {
		return nil
	}

	decls := declIndex(pass)

	// Seed the hot set: named entry points and per-record-shaped
	// function literals anywhere in the package.
	type hotFn struct {
		body *ast.BlockStmt
		via  string
		dep  int
	}
	var work []hotFn
	seen := make(map[*ast.BlockStmt]bool)
	add := func(body *ast.BlockStmt, via string, dep int) {
		if body != nil && !seen[body] {
			seen[body] = true
			work = append(work, hotFn{body: body, via: via, dep: dep})
		}
	}
	for fn, decl := range decls {
		if rootNames[fn.Name()] {
			add(decl.Body, fn.Name(), 0)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && perRecordShape(pass, lit) {
				add(lit.Body, "per-record func", 0)
			}
			return true
		})
	}

	// Close over same-package callees breadth-first.
	for i := 0; i < len(work); i++ {
		h := work[i]
		if h.dep >= maxDepth {
			continue
		}
		ast.Inspect(h.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calledFunc(pass, call); fn != nil {
				if decl, ok := decls[fn]; ok {
					add(decl.Body, h.via, h.dep+1)
				}
			}
			return true
		})
	}

	// Scan every hot body. Bodies can nest (a root literal inside a
	// hot method): dedup diagnostics by position so a site reports
	// once.
	reported := make(map[token.Pos]bool)
	reportf := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	report := func(d analysis.Diagnostic) {
		if !reported[d.Pos] {
			reported[d.Pos] = true
			pass.Report(d)
		}
	}
	for _, h := range work {
		scanHot(pass, h.body, h.via, reportf, report)
	}
	return nil
}

// declIndex maps the package's function and method objects to their
// declarations.
func declIndex(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}

// perRecordShape reports whether a function literal looks like a
// per-record callback: at least one parameter of type []byte.
func perRecordShape(pass *analysis.Pass, lit *ast.FuncLit) bool {
	sig, ok := pass.TypesInfo.TypeOf(lit).(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isByteSlice(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// scanHot runs the four checks over one hot body, tracking parents
// (for the compiler-optimized conversion exemptions) and loop depth.
func scanHot(pass *analysis.Pass, body *ast.BlockStmt, via string, reportf func(token.Pos, string, ...any), report func(analysis.Diagnostic)) {
	var parents []ast.Node
	loopDepth := 0
	var loops []*loopInfo

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			top := parents[len(parents)-1]
			parents = parents[:len(parents)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth--
				loops = loops[:len(loops)-1]
			}
			return true
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			loops = append(loops, &loopInfo{stmt: n})
		case *ast.CallExpr:
			checkConversion(pass, n, parents, via, reportf)
			checkSprint(pass, n, via, report)
			if loopDepth > 0 {
				checkUnsizedMake(pass, n, via, reportf)
			}
		case *ast.AssignStmt:
			if loopDepth > 0 {
				checkAppendGrowth(pass, body, n, loops[len(loops)-1], via, reportf)
			}
		case *ast.FuncLit:
			checkClosure(pass, n, parents, via, reportf)
		}
		parents = append(parents, n)
		return true
	}
	ast.Inspect(body, visit)
}

type loopInfo struct{ stmt ast.Node }

// checkConversion flags []byte<->string conversions, exempting the
// forms the compiler optimizes to zero-alloc: map indexing
// (m[string(b)]) and string comparison (string(a) == string(b)).
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, parents []ast.Node, via string, reportf func(token.Pos, string, ...any)) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	argT := pass.TypesInfo.TypeOf(call.Args[0])
	if argT == nil {
		return
	}
	if av, ok := pass.TypesInfo.Types[call.Args[0]]; ok && av.Value != nil {
		return // constant conversion, folded at compile time
	}
	target := tv.Type
	var kind string
	switch {
	case isString(target) && isByteSlice(argT):
		kind = "[]byte->string"
	case isByteSlice(target) && isString(argT):
		kind = "string->[]byte"
	default:
		return
	}
	// Walk out of parenthesis parents to the operational parent.
	var parent ast.Node
	for i := len(parents) - 1; i >= 0; i-- {
		if _, ok := parents[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = parents[i]
		break
	}
	switch p := parent.(type) {
	case *ast.IndexExpr:
		if p.Index == call {
			return // m[string(b)] does not allocate
		}
	case *ast.BinaryExpr:
		if p.Op == token.EQL || p.Op == token.NEQ || p.Op == token.LSS ||
			p.Op == token.LEQ || p.Op == token.GTR || p.Op == token.GEQ {
			return // string(a) == s does not allocate
		}
	case *ast.RangeStmt:
		if p.X == call {
			return // range string(b) does not allocate
		}
	}
	reportf(call.Pos(), "%s conversion allocates and copies on a per-record path (via %s): keep one representation across the hop or reuse a scratch buffer", kind, via)
}

// checkSprint flags fmt.Sprint* on hot paths and attaches mechanical
// fixes for the degenerate forms.
func checkSprint(pass *analysis.Pass, call *ast.CallExpr, via string, report func(analysis.Diagnostic)) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	switch fn.Name() {
	case "Sprint", "Sprintf", "Sprintln":
	default:
		return
	}
	d := analysis.Diagnostic{
		Pos: call.Pos(),
		Message: "fmt." + fn.Name() + " formats through reflection on a per-record path (via " + via +
			"): use strconv, manual concatenation, or a pooled buffer",
	}
	if fix, ok := sprintFix(pass, call, fn.Name()); ok {
		d.SuggestedFixes = []analysis.SuggestedFix{fix}
	}
	report(d)
}

// sprintFix builds the mechanical repairs: fmt.Sprintf("literal") ->
// "literal" (no verbs, no operands), and fmt.Sprint(x) /
// fmt.Sprintf("%s", x) for a string-typed x -> x.
func sprintFix(pass *analysis.Pass, call *ast.CallExpr, name string) (analysis.SuggestedFix, bool) {
	replaceWith := func(msg, src string) (analysis.SuggestedFix, bool) {
		return analysis.SuggestedFix{
			Message:   msg,
			TextEdits: []analysis.TextEdit{{Pos: call.Pos(), End: call.End(), NewText: []byte(src)}},
		}, true
	}
	switch name {
	case "Sprint":
		if len(call.Args) == 1 && isString(pass.TypesInfo.TypeOf(call.Args[0])) {
			if src, ok := exprSource(call.Args[0]); ok {
				return replaceWith("the operand is already a string; drop the fmt call", src)
			}
		}
	case "Sprintf":
		if len(call.Args) == 0 {
			return analysis.SuggestedFix{}, false
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return analysis.SuggestedFix{}, false
		}
		if len(call.Args) == 1 && !containsVerb(lit.Value) {
			return replaceWith("the format has no verbs; use the literal", lit.Value)
		}
		if len(call.Args) == 2 && isPlainStringVerb(lit.Value) && isString(pass.TypesInfo.TypeOf(call.Args[1])) {
			if src, ok := exprSource(call.Args[1]); ok {
				return replaceWith("%s of a string is the string; drop the fmt call", src)
			}
		}
	}
	return analysis.SuggestedFix{}, false
}

// exprSource renders simple expressions (identifiers, selector
// chains, calls thereof) back to source. Anything more complex
// declines a fix rather than risking a mangled rewrite.
func exprSource(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		if x, ok := exprSource(e.X); ok {
			return x + "." + e.Sel.Name, true
		}
	case *ast.CallExpr:
		if len(e.Args) == 0 {
			if x, ok := exprSource(e.Fun); ok {
				return x + "()", true
			}
		}
	}
	return "", false
}

// containsVerb reports whether a quoted format literal consumes any
// operand (a % not followed by another %).
func containsVerb(quoted string) bool {
	for i := 0; i < len(quoted); i++ {
		if quoted[i] != '%' {
			continue
		}
		if i+1 < len(quoted) && quoted[i+1] == '%' {
			i++
			continue
		}
		return true
	}
	return false
}

// isPlainStringVerb reports whether the quoted literal is exactly "%s".
func isPlainStringVerb(quoted string) bool {
	return quoted == `"%s"` || quoted == "`%s`"
}

// checkUnsizedMake flags make(map[...]...)  without a size hint and
// make([]T, 0) without capacity inside a per-record loop.
func checkUnsizedMake(pass *analysis.Pass, call *ast.CallExpr, via string, reportf func(token.Pos, string, ...any)) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	t := pass.TypesInfo.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		if len(call.Args) == 1 {
			reportf(call.Pos(), "make(map) without a size hint inside a per-record loop (via %s): every growth rehashes; size it or hoist it out of the loop", via)
		}
	case *types.Slice:
		if len(call.Args) == 2 && isZeroLit(pass, call.Args[1]) {
			reportf(call.Pos(), "make(slice, 0) without capacity inside a per-record loop (via %s): append growth reallocates; provide a capacity", via)
		}
	}
}

func isZeroLit(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// checkAppendGrowth flags x = append(x, ...) inside a loop when x is a
// local of the enclosing hot function declared without capacity — the
// classic quadratic-ish regrowth on a per-record path.
func checkAppendGrowth(pass *analysis.Pass, fnBody *ast.BlockStmt, as *ast.AssignStmt, loop *loopInfo, via string, reportf func(token.Pos, string, ...any)) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			continue
		}
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil || obj.Parent() == pass.Pkg.Scope() {
			continue
		}
		// Only locals declared in this function, before the loop;
		// params and fields have unknown capacity discipline.
		if obj.Pos() < fnBody.Pos() || obj.Pos() > fnBody.End() || obj.Pos() >= loop.stmt.Pos() {
			continue
		}
		if declaredWithCapacity(pass, fnBody, obj) {
			continue
		}
		reportf(call.Pos(), "append grows %s inside a per-record loop (via %s) and %s was declared without capacity: preallocate with make(_, 0, n)", lhs.Name, via, lhs.Name)
	}
}

// declaredWithCapacity reports whether the local's initializer manages
// its own capacity: a three-argument make, or a reslice (buf[:0]) —
// the scratch-buffer-reuse idiom, where growth amortizes to zero
// across records.
func declaredWithCapacity(pass *analysis.Pass, fnBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.TypesInfo.ObjectOf(id) != obj || i >= len(as.Rhs) {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CallExpr:
				mk, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
				if ok && mk.Name == "make" && len(rhs.Args) == 3 {
					found = true
				}
			case *ast.SliceExpr:
				found = true
			}
			return true
		}
		return true
	})
	return found
}

// checkClosure flags function literals that capture enclosing
// variables and escape: each record then allocates a closure object.
// Immediately-invoked literals and go/defer targets are exempt (the
// former typically inline; the latter are flagged by ctxleak where it
// matters).
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, parents []ast.Node, via string, reportf func(token.Pos, string, ...any)) {
	if len(parents) > 0 {
		switch p := parents[len(parents)-1].(type) {
		case *ast.CallExpr:
			if ast.Unparen(p.Fun) == lit {
				return // immediately invoked
			}
		case *ast.GoStmt, *ast.DeferStmt:
			return
		}
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// A capture is a function-scoped variable declared outside the
		// literal.
		if v.Parent() == pass.Pkg.Scope() || v.Pkg() != pass.Pkg {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		captured = v.Name()
		return false
	})
	if captured != "" {
		reportf(lit.Pos(), "closure captures %s on a per-record path (via %s): each record allocates the closure; hoist it or pass the state as a parameter", captured, via)
	}
}
