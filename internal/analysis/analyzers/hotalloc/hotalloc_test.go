package hotalloc

import (
	"testing"

	"beambench/internal/analysis/analysistest"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "a", "allowed", "fixable", "scrape")
}

// TestFixGolden pins the exact bytes beamvet -fix produces for the
// fixable fixture.
func TestFixGolden(t *testing.T) {
	analysistest.RunFix(t, analysistest.TestData(), Analyzer, "fixable")
}
