package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func reportFixture() (*Report, []*Analyzer) {
	analyzers := []*Analyzer{
		{Name: "locksafe", Doc: "lock discipline"},
		{Name: "hotalloc", Doc: "per-record allocation"},
	}
	fset := token.NewFileSet()
	f := fset.AddFile("/root/mod/internal/x/x.go", -1, 100)
	f.SetLinesForContent(make([]byte, 100))
	d := Diagnostic{
		Pos:     f.Pos(10),
		Check:   "locksafe",
		Message: "field x.y unguarded",
		SuggestedFixes: []SuggestedFix{{
			Message:   "lock it",
			TextEdits: []TextEdit{{Pos: f.Pos(10), End: f.Pos(11)}},
		}},
	}
	findings := []Finding{NewFinding(fset, "/root/mod", d)}
	return NewReport(analyzers, findings), analyzers
}

func TestReportJSON(t *testing.T) {
	r, _ := reportFixture()
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Tool != "beamvet" || got.Version != ReportVersion || got.Count != 1 {
		t.Errorf("header = %q v%d count=%d, want beamvet v%d count=1", got.Tool, got.Version, got.Count, ReportVersion)
	}
	f := got.Findings[0]
	if f.File != "internal/x/x.go" {
		t.Errorf("file = %q, want module-relative internal/x/x.go", f.File)
	}
	if !f.Fixable || f.Fix != "lock it" {
		t.Errorf("fixable=%v fix=%q, want the suggested fix surfaced", f.Fixable, f.Fix)
	}
	if len(got.Checks) != 2 {
		t.Errorf("checks = %d entries, want every analyzer recorded", len(got.Checks))
	}
}

func TestReportJSONCleanRunSerializesEmptyArray(t *testing.T) {
	r := NewReport(nil, nil)
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"findings": null`) {
		t.Errorf("clean report serializes findings as null:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("clean report missing empty findings array:\n%s", buf.String())
	}
}

func TestReportSARIF(t *testing.T) {
	r, _ := reportFixture()
	// A pseudo-check finding with no backing Analyzer must synthesize
	// its rule.
	r.Findings = append(r.Findings, Finding{Check: "directive", File: "a.go", Line: 1, Column: 1, Message: "unused"})
	r.Count = len(r.Findings)
	var buf strings.Builder
	if err := r.WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "beamvet" {
		t.Errorf("driver = %q, want beamvet", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"locksafe", "hotalloc", "directive"} {
		if !ruleIDs[want] {
			t.Errorf("rules missing %q (have %v)", want, ruleIDs)
		}
	}
	if len(run.Results) != 2 {
		t.Errorf("results = %d, want one per finding", len(run.Results))
	}
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result rule %q has no rule entry", res.RuleID)
		}
	}
}
