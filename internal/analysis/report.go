package analysis

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// A Finding is one diagnostic in machine-readable form: the schema
// behind `beamvet -json`, stable for CI tooling. File paths are
// relative to the analyzed module root so reports diff cleanly across
// checkouts.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
	// Fixable reports whether `beamvet -fix` can repair this finding
	// mechanically; Fix carries the repair's description when it can.
	Fixable bool   `json:"fixable"`
	Fix     string `json:"fix,omitempty"`
}

// Report is the top-level `beamvet -json` document.
type Report struct {
	// Tool and Version identify the producer ("beamvet", 2).
	Tool    string `json:"tool"`
	Version int    `json:"version"`
	// Checks lists every analyzer that ran, findings or not, so a
	// clean report still records what was checked.
	Checks   []CheckInfo `json:"checks"`
	Count    int         `json:"count"`
	Findings []Finding   `json:"findings"`
}

// CheckInfo describes one analyzer in a Report.
type CheckInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// ReportVersion is the current -json schema version.
const ReportVersion = 2

// NewFinding converts a diagnostic to its report form, with the file
// path relative to root when possible.
func NewFinding(fset *token.FileSet, root string, d Diagnostic) Finding {
	p := fset.Position(d.Pos)
	file := p.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && filepath.IsLocal(rel) {
			file = filepath.ToSlash(rel)
		}
	}
	f := Finding{
		Check:   d.Check,
		File:    file,
		Line:    p.Line,
		Column:  p.Column,
		Message: d.Message,
		Fixable: Fixable(d),
	}
	if f.Fixable {
		f.Fix = d.SuggestedFixes[0].Message
	}
	return f
}

// NewReport assembles the -json document from findings and the
// analyzer set that produced them.
func NewReport(analyzers []*Analyzer, findings []Finding) *Report {
	r := &Report{Tool: "beamvet", Version: ReportVersion, Count: len(findings), Findings: findings}
	if r.Findings == nil {
		r.Findings = []Finding{} // a clean run serializes as [], not null
	}
	for _, a := range analyzers {
		r.Checks = append(r.Checks, CheckInfo{Name: a.Name, Doc: a.Doc})
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteSARIF writes the report as a minimal SARIF 2.1.0 document — the
// format GitHub code scanning ingests, so beamvet findings can surface
// as repository annotations without bespoke glue.
func (r *Report) WriteSARIF(w io.Writer) error {
	type sarifRule struct {
		ID               string            `json:"id"`
		ShortDescription map[string]string `json:"shortDescription"`
	}
	rules := make([]sarifRule, 0, len(r.Checks))
	seen := make(map[string]bool)
	for _, c := range r.Checks {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: map[string]string{"text": c.Doc}})
		seen[c.Name] = true
	}
	// The directive pseudo-check has no Analyzer; synthesize its rule
	// when a finding references it.
	extra := make(map[string]bool)
	for _, f := range r.Findings {
		if !seen[f.Check] && !extra[f.Check] {
			extra[f.Check] = true
		}
	}
	extraNames := make([]string, 0, len(extra))
	for name := range extra {
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	for _, name := range extraNames {
		rules = append(rules, sarifRule{ID: name, ShortDescription: map[string]string{"text": "beamvet " + name + " check"}})
	}

	results := make([]map[string]any, 0, len(r.Findings))
	for _, f := range r.Findings {
		results = append(results, map[string]any{
			"ruleId":  f.Check,
			"level":   "error",
			"message": map[string]any{"text": f.Message},
			"locations": []map[string]any{{
				"physicalLocation": map[string]any{
					"artifactLocation": map[string]any{"uri": f.File},
					"region":           map[string]any{"startLine": f.Line, "startColumn": f.Column},
				},
			}},
		})
	}

	doc := map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{"driver": map[string]any{
				"name":           "beamvet",
				"informationUri": "https://github.com/beambench/beambench/tree/main/internal/analysis",
				"rules":          rules,
			}},
			"results": results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
