package harness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"beambench/internal/queries"
)

// matrixCellCount is the full matrix size with two parallelisms:
// 7 queries x 3 systems x 2 APIs x 2 parallelisms.
const matrixCellCount = 84

func TestMatrixSetupsCanonicalOrder(t *testing.T) {
	r, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	setups := r.MatrixSetups(queries.All())
	if len(setups) != matrixCellCount {
		t.Fatalf("len(setups) = %d, want %d", len(setups), matrixCellCount)
	}
	want := Setup{System: SystemApex, API: APIBeam, Query: queries.Identity, Parallelism: 1}
	if setups[0] != want {
		t.Errorf("setups[0] = %+v, want %+v", setups[0], want)
	}
	// The sequential path iterates parallelism innermost: cell 1 is the
	// same setup at parallelism 2.
	want.Parallelism = 2
	if setups[1] != want {
		t.Errorf("setups[1] = %+v, want %+v", setups[1], want)
	}
}

// TestRunAllParallelMatchesSequentialOrdering is the tentpole contract:
// the parallel scheduler aggregates by canonical cell order, so the
// report's cell sequence is identical to the sequential path's at any
// worker count.
func TestRunAllParallelMatchesSequentialOrdering(t *testing.T) {
	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 1

	seqR, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := seqR.RunAll()
	if err != nil {
		t.Fatal(err)
	}

	parR, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parR.RunAllParallel(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}

	if len(seq.Cells) != matrixCellCount || len(par.Cells) != len(seq.Cells) {
		t.Fatalf("cell counts: sequential %d, parallel %d, want %d",
			len(seq.Cells), len(par.Cells), matrixCellCount)
	}
	for i := range seq.Cells {
		if seq.Cells[i].Setup != par.Cells[i].Setup {
			t.Errorf("cell %d: sequential %s %s vs parallel %s %s",
				i, seq.Cells[i].Setup.Label(), seq.Cells[i].Setup.Query,
				par.Cells[i].Setup.Label(), par.Cells[i].Setup.Query)
		}
		if len(seq.Cells[i].TimesSec) != len(par.Cells[i].TimesSec) {
			t.Errorf("cell %d: run counts differ: %d vs %d",
				i, len(seq.Cells[i].TimesSec), len(par.Cells[i].TimesSec))
		}
	}
}

// TestRunAllUsesConfiguredWorkers checks the Config.Workers wiring: a
// plain RunAll with Workers > 1 produces the complete matrix.
func TestRunAllUsesConfiguredWorkers(t *testing.T) {
	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 1
	cfg.Workers = 4
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != matrixCellCount {
		t.Errorf("cells = %d, want %d", len(rep.Cells), matrixCellCount)
	}
}

// TestRunMatrixDefaultsToConfigWorkers checks that a non-positive
// workers argument falls back to Config.Workers.
func TestRunMatrixDefaultsToConfigWorkers(t *testing.T) {
	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 1
	cfg.Workers = 4
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunMatrix(context.Background(), []queries.Query{queries.Grep}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 12 {
		t.Errorf("cells = %d, want 12", len(rep.Cells))
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative worker count accepted")
	}
}

// TestRunMatrixPreservesPartialResultsOnError forces a mid-matrix
// failure (a parallelism far beyond any simulated cluster's capacity)
// and checks that both the sequential and the parallel paths return the
// completed cells alongside the error instead of discarding them.
func TestRunMatrixPreservesPartialResultsOnError(t *testing.T) {
	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 1
	cfg.Parallelisms = []int{1, 1 << 20}

	for _, workers := range []int{1, 4} {
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.RunMatrix(context.Background(), queries.All(), workers)
		if err == nil {
			t.Fatalf("workers=%d: oversized parallelism succeeded", workers)
		}
		if rep == nil {
			t.Fatalf("workers=%d: partial report discarded on error", workers)
		}
		if len(rep.Cells) == 0 {
			t.Errorf("workers=%d: no completed cells preserved", workers)
		}
		for _, c := range rep.Cells {
			if c.Setup.Parallelism == 1<<20 && len(c.TimesSec) > 0 {
				t.Errorf("workers=%d: impossible cell %s reported results", workers, c.Setup.Label())
			}
		}
	}
}

// TestRunAllPreservesPartialResultsOnError covers the sequential RunAll
// contract directly: partial report plus error, matching RunCell and
// RunQuery behavior.
func TestRunAllPreservesPartialResultsOnError(t *testing.T) {
	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 1
	cfg.Parallelisms = []int{1, 1 << 20}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunAll()
	if err == nil {
		t.Fatal("oversized parallelism succeeded")
	}
	if rep == nil || len(rep.Cells) == 0 {
		t.Fatalf("partial report lost: %+v", rep)
	}
}

// TestRunMatrixCancellation cancels mid-matrix and expects a prompt
// return carrying the completed cells and the context error.
func TestRunMatrixCancellation(t *testing.T) {
	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cells atomic.Int32
	cfg.Progress = func(string) {
		if cells.Add(1) == 3 {
			cancel()
		}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunMatrix(ctx, queries.All(), 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || len(rep.Cells) < 3 {
		t.Fatalf("completed cells lost on cancellation: %+v", rep)
	}
	if len(rep.Cells) == matrixCellCount {
		t.Error("cancellation did not stop the matrix")
	}
}

// TestRunMatrixProgressSerialized runs with several workers and a
// Progress callback mutating unsynchronized state; the runner must
// serialize callbacks (verified under -race) and deliver exactly one
// line per cell.
func TestRunMatrixProgressSerialized(t *testing.T) {
	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 1
	var lines []string
	cfg.Progress = func(msg string) { lines = append(lines, msg) }
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunMatrix(context.Background(), queries.All(), 4); err != nil {
		t.Fatal(err)
	}
	if len(lines) != matrixCellCount {
		t.Errorf("progress lines = %d, want %d", len(lines), matrixCellCount)
	}
}
