package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/queries"
	"beambench/internal/stats"
)

// Cell aggregates all runs of one setup.
type Cell struct {
	Setup Setup
	// TimesSec holds the execution times in seconds, in run order.
	TimesSec []float64
	// Summary holds the derived statistics.
	Summary stats.Summary
	// OutputRecords is the output count of the runs (guarded to agree
	// across runs for every query but Sample; see RunCell).
	OutputRecords int64
	// OutputRecordsPerRun holds every run's output count, in run order.
	OutputRecordsPerRun []int64
	// Latency is the cell's per-record event-time latency distribution
	// across all runs; nil unless Config.CollectMetrics.
	Latency *metrics.LatencySummary
	// Stages holds per-stage throughput in engine execution order; nil
	// unless Config.CollectMetrics.
	Stages []metrics.StageSummary
	// Gauges holds the cell's sampled lag/rate gauge summaries merged
	// across runs (sample-weighted means, per-gauge maxima); nil unless
	// Config.Trace was set.
	Gauges []obs.GaugeSummary
	// Skipped marks a setup its runner cannot execute; SkipReason holds
	// the unsupported-transform error. A skipped cell carries no runs.
	Skipped    bool
	SkipReason string
}

// Report holds the aggregated benchmark results.
type Report struct {
	// Records is the workload size used.
	Records int
	// Runs is the repetitions per cell.
	Runs int
	// Parallelisms lists the benchmarked parallelism factors.
	Parallelisms []int
	// Fusion is the Beam translation mode the matrix ran with
	// (default/on/off), so fused and unfused reports stay
	// distinguishable downstream.
	Fusion string
	// Ingest is the ingestion mode the matrix ran with
	// (preload/stream): preload-mode and sustained-load reports measure
	// different things (drain throughput vs. processing delay at an
	// offered rate) and must stay distinguishable downstream.
	Ingest string
	// RateRecordsPerSec is the streaming sender's configured rate; 0
	// means unthrottled (or preload mode).
	RateRecordsPerSec int
	// Cells holds one aggregate per setup, in insertion order.
	Cells []*Cell

	byKey map[Setup]*Cell
}

// BuildReport aggregates raw run results into a report.
func BuildReport(cfg Config, results []RunResult) (*Report, error) {
	rep := &Report{
		Records:           cfg.Records,
		Runs:              cfg.Runs,
		Parallelisms:      append([]int(nil), cfg.Parallelisms...),
		Fusion:            cfg.Fusion.String(),
		Ingest:            cfg.Ingest.String(),
		RateRecordsPerSec: cfg.RateRecordsPerSec,
		byKey:             make(map[Setup]*Cell),
	}
	for _, res := range results {
		cell, ok := rep.byKey[res.Setup]
		if !ok {
			cell = &Cell{Setup: res.Setup}
			rep.byKey[res.Setup] = cell
			rep.Cells = append(rep.Cells, cell)
			// Anchor the cell's headline count on the first result seen,
			// overwritten below if run 0 shows up later.
			cell.OutputRecords = res.OutputRecords
		}
		if res.Skipped {
			cell.Skipped = true
			cell.SkipReason = res.SkipReason
			continue
		}
		// Cell.OutputRecords is the count the nondeterminism guard in
		// RunCell anchors on — run 0's — not whichever run happened to be
		// aggregated last (for Sample cells the per-run counts legitimately
		// differ, and last-write-wins silently reported an arbitrary one).
		if res.Run == 0 {
			cell.OutputRecords = res.OutputRecords
		}
		cell.TimesSec = append(cell.TimesSec, res.ExecutionTime.Seconds())
		cell.OutputRecordsPerRun = append(cell.OutputRecordsPerRun, res.OutputRecords)
		if len(res.Gauges) > 0 {
			cell.Gauges = obs.MergeGaugeSummaries(cell.Gauges, res.Gauges)
		}
	}
	for _, cell := range rep.Cells {
		if cell.Skipped {
			continue // no runs to summarize
		}
		summary, err := stats.Summarize(cell.TimesSec)
		if err != nil {
			return nil, fmt.Errorf("harness: summarize %s: %w", cell.Setup.Label(), err)
		}
		cell.Summary = summary
	}
	return rep, nil
}

// Cell returns the aggregate for a setup.
func (rep *Report) Cell(setup Setup) (*Cell, bool) {
	c, ok := rep.byKey[setup]
	return c, ok
}

// AttachMetrics fills every cell's Latency and Stages blocks from the
// telemetry registry collected while the matrix ran. A nil registry
// (telemetry off) leaves the report unchanged.
func (rep *Report) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for _, c := range rep.Cells {
		col, ok := reg.Get(cellKey(c.Setup))
		if !ok {
			continue
		}
		lat := col.LatencySummary()
		c.Latency = &lat
		c.Stages = col.StageSummaries()
	}
}

// FormatLatency renders the telemetry report: per-record event-time
// latency quantiles and per-stage throughput for every cell, in the
// report's canonical order. Requires a report built with
// Config.CollectMetrics.
func (rep *Report) FormatLatency() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Event-Time Latency and Per-Stage Throughput (records=%d, runs=%d%s)\n",
		rep.Records, rep.Runs, rep.ingestLabel())
	any := false
	for _, c := range rep.Cells {
		if c.Latency == nil {
			continue
		}
		any = true
		fmt.Fprintf(&sb, "  %-28s p50 %9.3fs  p90 %9.3fs  p99 %9.3fs  max %9.3fs  (n=%d)\n",
			cellKey(c.Setup), c.Latency.P50, c.Latency.P90, c.Latency.P99, c.Latency.Max, c.Latency.Count)
		for _, s := range c.Stages {
			fmt.Fprintf(&sb, "      %-36s %10d rec  %10.0f rec/s mean  %10.0f rec/s peak\n",
				s.Name, s.Records, s.MeanRate, s.PeakRate)
		}
	}
	if !any {
		return "", fmt.Errorf("harness: report carries no latency data (run with CollectMetrics / -latency)")
	}
	return sb.String(), nil
}

// ErrSkippedCell is returned for cells recorded as skipped: the setup's
// runner rejected the pipeline as unsupported, so no timings exist.
var ErrSkippedCell = errors.New("harness: setup skipped (unsupported)")

// Mean returns a cell's mean execution time in seconds.
func (rep *Report) Mean(setup Setup) (float64, error) {
	c, ok := rep.byKey[setup]
	if !ok {
		return 0, fmt.Errorf("%w: %s %s", ErrMissingCell, setup.Label(), setup.Query)
	}
	if c.Skipped {
		return 0, fmt.Errorf("%w: %s %s", ErrSkippedCell, setup.Label(), setup.Query)
	}
	return c.Summary.Mean, nil
}

// SlowdownFactor computes sf(system, query) exactly as in Section
// III-C3: per parallelism, the ratio of the Beam mean to the native
// mean, averaged over parallelisms.
func (rep *Report) SlowdownFactor(sys System, q queries.Query) (float64, error) {
	beamMeans := make([]float64, 0, len(rep.Parallelisms))
	nativeMeans := make([]float64, 0, len(rep.Parallelisms))
	for _, p := range rep.Parallelisms {
		bm, err := rep.Mean(Setup{System: sys, API: APIBeam, Query: q, Parallelism: p})
		if err != nil {
			return 0, err
		}
		nm, err := rep.Mean(Setup{System: sys, API: APINative, Query: q, Parallelism: p})
		if err != nil {
			return 0, err
		}
		beamMeans = append(beamMeans, bm)
		nativeMeans = append(nativeMeans, nm)
	}
	return stats.SlowdownFactor(beamMeans, nativeMeans)
}

// RelStdDev returns the relative standard deviation for a
// system-query-SDK combination with the parallelism runs pooled, the
// quantity of Figure 10 (the paper averages over parallelisms).
func (rep *Report) RelStdDev(sys System, api API, q queries.Query) (float64, error) {
	var devs []float64
	for _, p := range rep.Parallelisms {
		c, ok := rep.byKey[Setup{System: sys, API: api, Query: q, Parallelism: p}]
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrMissingCell, q)
		}
		if c.Skipped {
			return 0, fmt.Errorf("%w: %s", ErrSkippedCell, c.Setup.Label())
		}
		devs = append(devs, c.Summary.RelStdDev)
	}
	return stats.Mean(devs), nil
}

// figureForQuery maps paper figure numbers 6-9 to queries.
var figureForQuery = map[int]queries.Query{
	6: queries.Identity,
	7: queries.Sample,
	8: queries.Projection,
	9: queries.Grep,
}

// FormatFigure renders one of the paper's result figures (6-11) as text.
func (rep *Report) FormatFigure(n int) (string, error) {
	switch {
	case n >= 6 && n <= 9:
		return rep.formatExecutionTimes(n)
	case n == 10:
		return rep.formatRelStdDev()
	case n == 11:
		return rep.formatSlowdown()
	default:
		return "", fmt.Errorf("harness: no figure %d (supported: 6-11)", n)
	}
}

// ingestLabel renders the ingestion-mode suffix for text headers: empty
// in the historical preload mode, so preexisting report consumers see
// unchanged output, and an explicit marker for sustained-load reports.
func (rep *Report) ingestLabel() string {
	if rep.Ingest != IngestStream.String() {
		return ""
	}
	if rep.RateRecordsPerSec > 0 {
		return fmt.Sprintf(", ingest=stream@%d rec/s", rep.RateRecordsPerSec)
	}
	return ", ingest=stream"
}

func (rep *Report) formatExecutionTimes(n int) (string, error) {
	q := figureForQuery[n]
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %d: Average Execution Times - %s Query (records=%d, runs=%d%s)\n",
		n, q, rep.Records, rep.Runs, rep.ingestLabel())
	for _, sys := range Systems() {
		for _, api := range APIs() {
			for _, p := range rep.Parallelisms {
				setup := Setup{System: sys, API: api, Query: q, Parallelism: p}
				mean, err := rep.Mean(setup)
				switch {
				case errors.Is(err, ErrSkippedCell):
					c := rep.byKey[setup]
					fmt.Fprintf(&sb, "  %-16s %10s   (%s)\n", setup.Label(), "skipped", c.SkipReason)
				case err != nil:
					return "", err
				default:
					fmt.Fprintf(&sb, "  %-16s %10.3f s\n", setup.Label(), mean)
				}
			}
		}
	}
	return sb.String(), nil
}

func (rep *Report) formatRelStdDev() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10: Relative Standard Deviation for System-Query-SDK Combinations (runs=%d)\n", rep.Runs)
	for _, sys := range Systems() {
		for _, api := range APIs() {
			for _, q := range figure10QueryOrder() {
				label := Setup{System: sys, API: api, Query: q}.SDKLabel()
				dev, err := rep.RelStdDev(sys, api, q)
				switch {
				case errors.Is(err, ErrSkippedCell):
					fmt.Fprintf(&sb, "  %-24s %8s\n", label, "skipped")
				case err != nil:
					return "", err
				default:
					fmt.Fprintf(&sb, "  %-24s %8.4f\n", label, dev)
				}
			}
		}
	}
	return sb.String(), nil
}

// figure10QueryOrder returns the Figure 10 row order (alphabetical
// query names within each system-SDK block, as in the paper, extended
// with the stateful additions).
func figure10QueryOrder() []queries.Query {
	return []queries.Query{
		queries.Grep, queries.Identity, queries.Join, queries.Projection,
		queries.Sample, queries.SlidingSum, queries.WindowedCount,
	}
}

func (rep *Report) formatSlowdown() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11: Slowdown Factor sf(dsps, query) (records=%d, runs=%d%s)\n",
		rep.Records, rep.Runs, rep.ingestLabel())
	for _, sys := range Systems() {
		for _, q := range queries.All() {
			label := fmt.Sprintf("%s %s", sys, q)
			sf, err := rep.SlowdownFactor(sys, q)
			switch {
			case errors.Is(err, ErrSkippedCell):
				fmt.Fprintf(&sb, "  %-18s %8s\n", label, "skipped")
			case err != nil:
				return "", err
			default:
				fmt.Fprintf(&sb, "  %-18s %8.2f\n", label, sf)
			}
		}
	}
	return sb.String(), nil
}

// FormatTableIII renders the per-run execution times of the identity
// query on native Flink, the paper's Table III.
func (rep *Report) FormatTableIII() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III: Execution Times for the Identity Query on Flink (native)\n")
	fmt.Fprintf(&sb, "  %-14s", "Number of Run")
	cells := make([]*Cell, 0, len(rep.Parallelisms))
	for _, p := range rep.Parallelisms {
		c, ok := rep.byKey[Setup{System: SystemFlink, API: APINative, Query: queries.Identity, Parallelism: p}]
		if !ok {
			return "", fmt.Errorf("%w: Flink native identity P%d", ErrMissingCell, p)
		}
		cells = append(cells, c)
		fmt.Fprintf(&sb, "  Parallelism = %d", p)
	}
	sb.WriteString("\n")
	for run := range rep.Runs {
		fmt.Fprintf(&sb, "  %-14d", run+1)
		for _, c := range cells {
			if run < len(c.TimesSec) {
				fmt.Fprintf(&sb, "  %13.3fs ", c.TimesSec[run])
			}
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// FormatTableI renders the paper's descriptive system comparison.
func FormatTableI() string {
	return strings.Join([]string{
		"Table I: Comparison of Apache Flink, Apache Spark Streaming, and Apache Apex",
		"  Criteria                  Flink             Spark Streaming   Apex",
		"  Mainly written in         Java, Scala       Scala/Java/Py     Java",
		"  App development           Java/Scala/Py     Scala/Java/Py     Java",
		"  Data processing           Tuple-by-tuple    Micro-batch       Tuple-by-tuple",
		"  Processing guarantees     Exactly-once      Exactly-once      Exactly-once",
		"",
	}, "\n")
}

// FormatTableII renders the query definitions with the actual workload
// selectivities.
func FormatTableII(records, grepHits int) string {
	var sb strings.Builder
	sb.WriteString("Table II: Overview of the Benchmark Queries\n")
	for _, q := range queries.All() {
		fmt.Fprintf(&sb, "  %-11s %s\n", q, q.Description())
	}
	fmt.Fprintf(&sb, "  Workload: %d records; grep matches %d records (%.2f%%); sample keeps ~%.0f%%.\n",
		records, grepHits, 100*float64(grepHits)/float64(max(records, 1)), queries.SampleFraction*100)
	return sb.String()
}

// CellJSON is the serialized form of a cell — the stable schema
// cmd/benchdiff and the committed BENCH_* baselines consume. Cells are
// written in canonical matrix order with stage and gauge lists sorted
// by name, so two reports of the same configuration differ only where
// the numbers differ and baselines diff cleanly under git.
type CellJSON struct {
	System              string                  `json:"system"`
	API                 string                  `json:"api"`
	Query               string                  `json:"query"`
	Parallelism         int                     `json:"parallelism"`
	TimesSec            []float64               `json:"timesSec"`
	MeanSec             float64                 `json:"meanSec"`
	RelStdDev           float64                 `json:"relStdDev"`
	OutputRecords       int64                   `json:"outputRecords"`
	OutputRecordsPerRun []int64                 `json:"outputRecordsPerRun,omitempty"`
	Latency             *metrics.LatencySummary `json:"latency,omitempty"`
	Stages              []metrics.StageSummary  `json:"stages,omitempty"`
	Gauges              []obs.GaugeSummary      `json:"gauges,omitempty"`
	Skipped             bool                    `json:"skipped,omitempty"`
	SkipReason          string                  `json:"skipReason,omitempty"`
}

// Key renders the cell's benchmark-matrix identity, matching the
// harness's internal cell key ("Flink Beam P2 WindowedCount").
func (c *CellJSON) Key() string {
	if c.API == APIBeam.String() {
		return fmt.Sprintf("%s Beam P%d %s", c.System, c.Parallelism, c.Query)
	}
	return fmt.Sprintf("%s P%d %s", c.System, c.Parallelism, c.Query)
}

// ReportJSON is the serialized report.
type ReportJSON struct {
	Records           int        `json:"records"`
	Runs              int        `json:"runs"`
	Parallelisms      []int      `json:"parallelisms"`
	Fusion            string     `json:"fusion"`
	Ingest            string     `json:"ingest"`
	RateRecordsPerSec int        `json:"rateRecordsPerSec,omitempty"`
	Cells             []CellJSON `json:"cells"`
}

// Write serializes with the report encoder settings (two-space
// indent); WriteJSON and the round-trip property both go through here,
// so a parsed report re-serializes byte-identically.
func (rj *ReportJSON) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rj)
}

// ParseReportJSON decodes a report previously written by WriteJSON —
// the entry point of cmd/benchdiff. Unknown fields are rejected so a
// schema drift between a baseline and the binary comparing it fails
// loudly instead of silently reading zeros.
func ParseReportJSON(r io.Reader) (*ReportJSON, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rj ReportJSON
	if err := dec.Decode(&rj); err != nil {
		return nil, fmt.Errorf("harness: parse report JSON: %w", err)
	}
	return &rj, nil
}

// JSON builds the serializable form of the report: cells in canonical
// matrix order (query, then system, API, parallelism — the
// MatrixSetups order), stage and gauge lists sorted by name.
func (rep *Report) JSON() *ReportJSON {
	out := &ReportJSON{
		Records:           rep.Records,
		Runs:              rep.Runs,
		Parallelisms:      rep.Parallelisms,
		Fusion:            rep.Fusion,
		Ingest:            rep.Ingest,
		RateRecordsPerSec: rep.RateRecordsPerSec,
	}
	cells := append([]*Cell(nil), rep.Cells...)
	sort.SliceStable(cells, func(i, j int) bool { return canonicalLess(cells[i].Setup, cells[j].Setup) })
	for _, c := range cells {
		stages := append([]metrics.StageSummary(nil), c.Stages...)
		sort.Slice(stages, func(i, j int) bool { return stages[i].Name < stages[j].Name })
		gauges := append([]obs.GaugeSummary(nil), c.Gauges...)
		sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
		out.Cells = append(out.Cells, CellJSON{
			System:              c.Setup.System.String(),
			API:                 c.Setup.API.String(),
			Query:               c.Setup.Query.String(),
			Parallelism:         c.Setup.Parallelism,
			TimesSec:            c.TimesSec,
			MeanSec:             c.Summary.Mean,
			RelStdDev:           c.Summary.RelStdDev,
			OutputRecords:       c.OutputRecords,
			OutputRecordsPerRun: c.OutputRecordsPerRun,
			Latency:             c.Latency,
			Stages:              stages,
			Gauges:              gauges,
			Skipped:             c.Skipped,
			SkipReason:          c.SkipReason,
		})
	}
	return out
}

// WriteJSON serializes the report for downstream tooling (benchdiff,
// the CI artifacts, the committed baselines). The output is
// deterministic for a given set of results: canonical cell order,
// name-sorted stage/gauge lists, fixed key order.
func (rep *Report) WriteJSON(w io.Writer) error {
	return rep.JSON().Write(w)
}

// canonicalLess orders setups in canonical matrix order: query (in
// queries.All() order), system, API, then parallelism — exactly the
// order MatrixSetups enumerates, so serialized reports are identically
// ordered no matter how the scheduler interleaved the cells.
func canonicalLess(a, b Setup) bool {
	if ra, rb := queryRank(a.Query), queryRank(b.Query); ra != rb {
		return ra < rb
	}
	if ra, rb := systemRank(a.System), systemRank(b.System); ra != rb {
		return ra < rb
	}
	if ra, rb := apiRank(a.API), apiRank(b.API); ra != rb {
		return ra < rb
	}
	return a.Parallelism < b.Parallelism
}

func queryRank(q queries.Query) int {
	for i, x := range queries.All() {
		if x == q {
			return i
		}
	}
	return len(queries.All())
}

func systemRank(s System) int {
	for i, x := range Systems() {
		if x == s {
			return i
		}
	}
	return len(Systems())
}

func apiRank(a API) int {
	for i, x := range APIs() {
		if x == a {
			return i
		}
	}
	return len(APIs())
}
