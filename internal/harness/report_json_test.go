package harness

import (
	"bytes"
	"testing"

	"beambench/internal/metrics"
	"beambench/internal/queries"
	"beambench/internal/stats"
)

// scrambledReport builds a report whose cells arrive in anti-canonical
// order with unsorted stage lists, as a concurrent matrix might produce.
func scrambledReport(t *testing.T) *Report {
	t.Helper()
	mk := func(sys System, api API, q queries.Query, par int) *Cell {
		return &Cell{
			Setup:               Setup{System: sys, API: api, Query: q, Parallelism: par},
			TimesSec:            []float64{0.25, 0.5},
			Summary:             stats.Summary{Mean: 0.375, RelStdDev: 0.3},
			OutputRecords:       100,
			OutputRecordsPerRun: []int64{100, 100},
			Stages: []metrics.StageSummary{
				{Name: "sink", Records: 100},
				{Name: "source", Records: 200},
			},
		}
	}
	qs := queries.All()
	if len(qs) < 2 {
		t.Fatal("need at least two queries")
	}
	return &Report{
		Records:      1000,
		Runs:         2,
		Parallelisms: []int{1, 2},
		Fusion:       "default",
		Ingest:       "preload",
		Cells: []*Cell{
			mk(SystemSpark, APINative, qs[1], 2),
			mk(SystemFlink, APIBeam, qs[1], 2),
			mk(SystemFlink, APIBeam, qs[1], 1),
			mk(SystemApex, APIBeam, qs[0], 1),
			mk(SystemFlink, APINative, qs[0], 1),
		},
	}
}

func TestWriteJSONCanonicalOrder(t *testing.T) {
	rep := scrambledReport(t)
	rj := rep.JSON()
	qs := queries.All()
	wantKeys := []string{
		"Apex Beam P1 " + qs[0].String(),
		"Flink P1 " + qs[0].String(),
		"Flink Beam P1 " + qs[1].String(),
		"Flink Beam P2 " + qs[1].String(),
		"Spark P2 " + qs[1].String(),
	}
	if len(rj.Cells) != len(wantKeys) {
		t.Fatalf("serialized %d cells, want %d", len(rj.Cells), len(wantKeys))
	}
	for i, want := range wantKeys {
		if got := rj.Cells[i].Key(); got != want {
			t.Errorf("cell %d = %q, want %q", i, got, want)
		}
	}
	for _, c := range rj.Cells {
		for i := 1; i < len(c.Stages); i++ {
			if c.Stages[i-1].Name > c.Stages[i].Name {
				t.Fatalf("cell %s stages not sorted: %q > %q", c.Key(), c.Stages[i-1].Name, c.Stages[i].Name)
			}
		}
	}
	// The source report's stage slices must not be reordered in place.
	if rep.Cells[0].Stages[0].Name != "sink" {
		t.Fatal("JSON() mutated the report's stage order")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := scrambledReport(t)
	var first bytes.Buffer
	if err := rep.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseReportJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := parsed.Write(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-stable:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
	if parsed.Records != rep.Records || parsed.Runs != rep.Runs || len(parsed.Cells) != len(rep.Cells) {
		t.Fatalf("parsed header = %+v", parsed)
	}
}

func TestParseReportJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ParseReportJSON(bytes.NewReader([]byte(`{"records":1,"bogus":2}`))); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestWriteJSONDeterministicAcrossShuffles(t *testing.T) {
	a := scrambledReport(t)
	b := scrambledReport(t)
	// Reverse b's cell order; serialization must not care.
	for i, j := 0, len(b.Cells)-1; i < j; i, j = i+1, j-1 {
		b.Cells[i], b.Cells[j] = b.Cells[j], b.Cells[i]
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("cell arrival order leaked into serialization:\nA:\n%s\nB:\n%s", bufA.String(), bufB.String())
	}
}
