package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"beambench/internal/queries"
)

// DefaultWorkers is the worker count used for automatic sizing: one
// worker per available CPU. Concurrent cells contend for CPU while the
// modeled latencies busy-wait, which speeds the matrix up but adds
// scheduling noise to the measured times; use one worker when the
// absolute numbers matter more than wall-clock time.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// MatrixSetups enumerates the benchmark cells of the given queries in
// canonical report order — query, then system, API, parallelism — the
// exact order the sequential path visits them in. The parallel scheduler
// aggregates results by this order, not by completion order, so reports
// are identically ordered at any worker count.
func (r *Runner) MatrixSetups(qs []queries.Query) []Setup {
	out := make([]Setup, 0, len(qs)*len(Systems())*len(APIs())*len(r.cfg.Parallelisms))
	for _, q := range qs {
		for _, sys := range Systems() {
			for _, api := range APIs() {
				for _, p := range r.cfg.Parallelisms {
					out = append(out, Setup{System: sys, API: api, Query: q, Parallelism: p})
				}
			}
		}
	}
	return out
}

// RunAllParallel runs every query's matrix across a pool of workers and
// aggregates the report; see RunMatrix for the scheduling contract.
func (r *Runner) RunAllParallel(ctx context.Context, workers int) (*Report, error) {
	return r.RunMatrix(ctx, queries.All(), workers)
}

// RunMatrix executes the benchmark cells of the given queries across a
// pool of workers. Each cell still builds a fresh broker and engine
// cluster per run (the paper's per-run isolation), which makes the
// matrix embarrassingly parallel; workers <= 0 falls back to
// Config.Workers, and to one worker when that is unset too.
//
// The report is aggregated in canonical cell order regardless of
// completion order. On failure or cancellation the first error (in cell
// order, not completion order) is returned together with the report
// built from every run that did complete — partial results are never
// discarded.
func (r *Runner) RunMatrix(ctx context.Context, qs []queries.Query, workers int) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	setups := r.MatrixSetups(qs)
	r.expectCells(setups)
	if workers <= 0 {
		workers = r.cfg.Workers
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(setups) {
		workers = len(setups)
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		idx   int
		setup Setup
	}
	jobs := make(chan job)
	cells := make([][]RunResult, len(setups))
	errs := make([]error, len(setups))

	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cell, err := r.runCell(ctx, j.setup)
				cells[j.idx] = cell
				errs[j.idx] = err
				if err != nil {
					// First-error propagation: stop dispatching new
					// cells; in-flight cells drain at their next
					// between-run cancellation check.
					cancel()
				}
			}
		}()
	}
dispatch:
	for i, s := range setups {
		select {
		case jobs <- job{idx: i, setup: s}:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	// The first real error in cell order wins, making the returned error
	// deterministic under concurrency. Cancellation errors caused by our
	// own first-error cancel are secondary; a canceled parent context is
	// reported when nothing else failed.
	var firstErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr == nil && parent.Err() != nil {
		firstErr = parent.Err()
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}

	var all []RunResult
	for _, cell := range cells {
		all = append(all, cell...)
	}
	rep, err := BuildReport(r.cfg, all)
	if err != nil {
		return nil, err
	}
	rep.AttachMetrics(r.metrics)
	return rep, firstErr
}
