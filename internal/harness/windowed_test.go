package harness

import (
	"fmt"
	"sort"
	"testing"

	"beambench/internal/queries"
	"beambench/internal/simcost"
)

// TestWindowedCountByteIdenticalAcrossMatrix is the acceptance property
// of the stateful scenario: WindowedCount produces byte-identical
// sorted output across all three systems, both APIs, both parallelism
// levels and both ingestion modes — all 24 combinations agree with the
// dataset-derived reference, so the watermark subsystem, the keyed
// routing and the pane firing of every engine implement one semantics.
func TestWindowedCountByteIdenticalAcrossMatrix(t *testing.T) {
	zero := simcost.ZeroCosts()
	r, err := New(Config{Records: 500, Runs: 1, Costs: &zero, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	wantPayloads, err := queries.ExpectedWindowedCounts(r.dataset)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(wantPayloads))
	for i, p := range wantPayloads {
		want[i] = string(p)
	}
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("no expected panes; workload too small")
	}

	for _, sys := range Systems() {
		for _, api := range APIs() {
			for _, par := range []int{1, 2} {
				for _, mode := range []IngestMode{IngestPreload, IngestStream} {
					setup := Setup{System: sys, API: api, Query: queries.WindowedCount, Parallelism: par}
					t.Run(fmt.Sprintf("%s/%s", setup.Label(), mode), func(t *testing.T) {
						got := runModeOutputs(t, r, setup, mode)
						sort.Strings(got)
						if len(got) != len(want) {
							t.Fatalf("output panes = %d, want %d", len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("pane %d = %q, want %q", i, got[i], want[i])
							}
						}
					})
				}
			}
		}
	}
}
