package harness

import (
	"fmt"
	"sort"
	"testing"

	"beambench/internal/queries"
	"beambench/internal/simcost"
)

// runStatefulMatrix is the acceptance property of the stateful
// scenarios: the query produces byte-identical sorted output across all
// three systems, both APIs, both parallelism levels and both ingestion
// modes — all 24 combinations agree with the dataset-derived reference,
// so the watermark subsystem, the keyed routing and the pane firing of
// every engine implement one semantics.
func runStatefulMatrix(t *testing.T, q queries.Query, expected func([][]byte) ([][]byte, error)) {
	t.Helper()
	zero := simcost.ZeroCosts()
	r, err := New(Config{Records: 500, Runs: 1, Costs: &zero, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	wantPayloads, err := expected(r.dataset)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(wantPayloads))
	for i, p := range wantPayloads {
		want[i] = string(p)
	}
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("no expected panes; workload too small")
	}

	for _, sys := range Systems() {
		for _, api := range APIs() {
			for _, par := range []int{1, 2} {
				for _, mode := range []IngestMode{IngestPreload, IngestStream} {
					setup := Setup{System: sys, API: api, Query: q, Parallelism: par}
					t.Run(fmt.Sprintf("%s/%s", setup.Label(), mode), func(t *testing.T) {
						got := runModeOutputs(t, r, setup, mode)
						sort.Strings(got)
						if len(got) != len(want) {
							t.Fatalf("output panes = %d, want %d", len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("pane %d = %q, want %q", i, got[i], want[i])
							}
						}
					})
				}
			}
		}
	}
}

func TestWindowedCountByteIdenticalAcrossMatrix(t *testing.T) {
	runStatefulMatrix(t, queries.WindowedCount, queries.ExpectedWindowedCounts)
}

// TestSlidingSumByteIdenticalAcrossMatrix extends the property to
// overlapping windows: every record lands in two sliding panes, so any
// engine that fires panes off processing time or drops the second
// assignment diverges from the reference immediately.
func TestSlidingSumByteIdenticalAcrossMatrix(t *testing.T) {
	runStatefulMatrix(t, queries.SlidingSum, queries.ExpectedSlidingSums)
}

// TestJoinByteIdenticalAcrossMatrix extends the property to a
// two-input pipeline: both branches carry their own watermark, panes
// fire off the min-over-inputs combination, and the cross product per
// (window, user) must match the reference on every engine — including
// at parallelism 2, where the two sources' partitions must be rekeyed
// into a single join partition per user.
func TestJoinByteIdenticalAcrossMatrix(t *testing.T) {
	runStatefulMatrix(t, queries.Join, queries.ExpectedJoins)
}
