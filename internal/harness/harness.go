// Package harness implements the benchmark architecture and process of
// Hesse et al. (ICDCS 2019), Figure 5 and Section III-A:
//
//  1. Data ingestion — a data sender loads the AOL-style workload into
//     the input topic (one partition, replication factor 1, so record
//     order is preserved).
//  2. Program execution — a fresh engine cluster per run executes the
//     query, reading from and writing to the broker; every query runs
//     for each system, API kind (native vs. Beam) and parallelism.
//  3. Result calculation — the execution time is the difference between
//     the LogAppendTime timestamps of the last and first record in the
//     output topic, computed from broker state only.
//
// Config.Ingest selects how phases 1 and 2 relate. In preload mode
// (the default) the sender completes before the cluster launches, so
// execution time measures pure drain throughput and event-time latency
// is dominated by queueing from time zero. In stream mode the sender
// runs concurrently with the engine — as in the paper's Figure 5 — and
// is paced at Config.RateRecordsPerSec on the simulated clock, so the
// latency sketches measure processing delay under a controlled offered
// load and execution time stretches to at least the sending window.
// The two modes produce identical outputs (byte-identical in order at
// parallelism 1, as an order-insensitive multiset above it): every
// engine source terminates via the target-record-count contract
// (broker.EndOfInput) rather than a startup snapshot of the topic's
// end offsets.
package harness

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"beambench/internal/aol"
	"beambench/internal/beam"
	_ "beambench/internal/beam/runners" // register the bundled runners
	"beambench/internal/broker"
	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/queries"
	"beambench/internal/simcost"
)

// System enumerates the benchmarked DSPSs.
type System int

const (
	// SystemFlink is the Apache-Flink-style engine.
	SystemFlink System = iota + 1
	// SystemSpark is the Apache-Spark-Streaming-style engine.
	SystemSpark
	// SystemApex is the Apache-Apex-style engine.
	SystemApex
)

// Systems lists all systems in the paper's row order (Apex, Flink,
// Spark — alphabetical, as in Figures 6-11).
func Systems() []System {
	return []System{SystemApex, SystemFlink, SystemSpark}
}

// systemNames carries the display name and the beam runner-registry
// name of each system; the harness selects engines through these maps
// rather than switch statements, so adding a system means adding rows
// here and a native executor in engines.go.
var systemNames = map[System]struct {
	display string
	runner  string
}{
	SystemFlink: {display: "Flink", runner: "flink"},
	SystemSpark: {display: "Spark", runner: "spark"},
	SystemApex:  {display: "Apex", runner: "apex"},
}

// String returns the system's display name.
func (s System) String() string {
	if n, ok := systemNames[s]; ok {
		return n.display
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// RunnerName returns the system's name in the beam runner registry.
func (s System) RunnerName() string {
	if n, ok := systemNames[s]; ok {
		return n.runner
	}
	return ""
}

// API selects native engine APIs or the Beam abstraction layer.
type API int

const (
	// APINative uses the engine's own APIs.
	APINative API = iota + 1
	// APIBeam uses the Beam pipeline through the engine's runner.
	APIBeam
)

// APIs lists both API kinds, Beam first (the paper's row order).
func APIs() []API {
	return []API{APIBeam, APINative}
}

// String names the kind as in the paper's row labels.
func (a API) String() string {
	switch a {
	case APINative:
		return "native"
	case APIBeam:
		return "Beam"
	default:
		return fmt.Sprintf("API(%d)", int(a))
	}
}

// IngestMode selects how the data sender relates to query execution.
type IngestMode int

const (
	// IngestPreload loads the whole workload into the input topic before
	// the engine cluster launches — the mode of the original
	// reproduction, where event-time latency mostly measures queueing
	// from time zero. The zero value, for backward compatibility.
	IngestPreload IngestMode = iota
	// IngestStream runs the data sender concurrently with query
	// execution, pacing it at Config.RateRecordsPerSec on the simcost
	// clock — the architecture of the paper's Figure 5, and the mode in
	// which the latency sketches measure processing delay under a
	// controlled offered load.
	IngestStream
)

// String names the mode for flags and report labels.
func (m IngestMode) String() string {
	switch m {
	case IngestPreload:
		return "preload"
	case IngestStream:
		return "stream"
	default:
		return fmt.Sprintf("IngestMode(%d)", int(m))
	}
}

// ParseIngestMode parses an -ingest flag value.
func ParseIngestMode(s string) (IngestMode, error) {
	switch s {
	case "", "preload":
		return IngestPreload, nil
	case "stream":
		return IngestStream, nil
	default:
		return 0, fmt.Errorf("harness: unknown ingest mode %q (want preload or stream)", s)
	}
}

// Setup identifies one benchmark configuration: a cell of the paper's
// twelve-per-query execution matrix.
type Setup struct {
	System      System
	API         API
	Query       queries.Query
	Parallelism int
}

// Label renders the paper's row label, e.g. "Apex Beam P1" or "Flink P2".
func (s Setup) Label() string {
	if s.API == APIBeam {
		return fmt.Sprintf("%s Beam P%d", s.System, s.Parallelism)
	}
	return fmt.Sprintf("%s P%d", s.System, s.Parallelism)
}

// SDKLabel renders the paper's Figure 10 label, e.g. "Apex Beam Grep".
func (s Setup) SDKLabel() string {
	if s.API == APIBeam {
		return fmt.Sprintf("%s Beam %s", s.System, s.Query)
	}
	return fmt.Sprintf("%s %s", s.System, s.Query)
}

// RunResult is the outcome of one benchmark run.
type RunResult struct {
	Setup Setup
	// Run is the zero-based run index within the cell.
	Run int
	// ExecutionTime is the LogAppendTime span of the output topic.
	ExecutionTime time.Duration
	// OutputRecords is the output topic's record count.
	OutputRecords int64
	// WallTime is the end-to-end run duration (all three phases).
	WallTime time.Duration
	// Skipped marks a setup its runner cannot execute (the translation
	// reported beam.ErrUnsupported): the cell is recorded with
	// SkipReason instead of aborting the whole matrix, so a capability
	// gap shows up as a skipped report cell rather than a dead run.
	Skipped bool
	// SkipReason is the unsupported-transform error message.
	SkipReason string
	// Gauges summarizes the run's sampled lag and rate gauges
	// (consumer lag per partition, watermark lag per operator, stage
	// rates); nil unless Config.Trace is set.
	Gauges []obs.GaugeSummary
}

// Config controls the benchmark.
type Config struct {
	// Records is the workload size; the paper uses 1,000,001
	// (aol.PaperRecordCount). Defaults to 50,000 — the slowdown factors
	// are dominated by per-record costs and therefore scale-invariant.
	Records int
	// Runs is the number of repetitions per setup; the paper uses 10.
	// Defaults to 5.
	Runs int
	// Parallelisms lists the parallelism factors; the paper uses {1,2}.
	Parallelisms []int
	// DatasetSeed makes the synthetic workload deterministic.
	DatasetSeed uint64
	// SampleSeed drives the sample query's selection.
	SampleSeed uint64
	// Costs is the latency calibration; nil selects
	// simcost.DefaultCosts.
	Costs *simcost.Costs
	// Noise is the run-to-run noise process; nil selects
	// simcost.DefaultNoise.
	Noise *simcost.NoiseParams
	// DisableNoise turns run noise off for deterministic tests.
	DisableNoise bool
	// SenderAcks is the data sender's producer acknowledgment level
	// (a configuration parameter of the paper's sender).
	SenderAcks broker.Acks
	// SenderBatch is the sender's producer batch size.
	SenderBatch int
	// Ingest selects when the data sender runs relative to query
	// execution: IngestPreload (default) fills the input topic before
	// the cluster launches; IngestStream runs the sender concurrently
	// with the engine, so sources consume records as they arrive.
	Ingest IngestMode
	// RateRecordsPerSec paces the streaming data sender: each record
	// charges 1/rate seconds to a simcost meter before it is sent, so
	// the offered load follows the simulated clock (including the run's
	// noise factor). 0 streams unthrottled. Only meaningful with
	// IngestStream; the preload sender always runs flat out.
	RateRecordsPerSec int
	// Fusion selects the Beam runners' translation mode for every Beam
	// cell: beam.FusionDefault keeps each runner paper-faithful (fused
	// on Apex, per-primitive elsewhere); beam.FusionOn / beam.FusionOff
	// force one mode everywhere so the fused-vs-unfused overhead is
	// measurable per engine.
	Fusion beam.FusionMode
	// CollectMetrics enables the telemetry subsystem: per-record
	// event-time latency (output append time minus input append time,
	// from broker timestamps alone) sketched per cell, and per-stage
	// throughput reported by every engine. Adds the Latency and Stages
	// blocks to the report; see internal/metrics.
	CollectMetrics bool
	// Trace, if set, records run-level spans (sender, cluster launch,
	// execution, result calculation — plus per-stage spans inside the
	// engines) and lag gauges into the tracer's ring; export it with
	// obs.WriteChromeTrace after the matrix. Each run writes under its
	// own "cell/runN" scope. nil disables tracing at zero cost on the
	// hot path (see internal/obs).
	Trace *obs.Tracer
	// GaugeInterval is the lag-sampling cadence of the per-run monitor
	// (consumer lag per partition, watermark lag per operator, stage
	// rates). Defaults to 50ms. Only meaningful with Trace set.
	GaugeInterval time.Duration
	// Plane, if set, is the live telemetry plane: the harness registers
	// every matrix cell on it (pending -> running -> done/skipped/failed)
	// and attaches each run's live sources — the cell's metrics
	// collector, the run's watermark gauges, and per-partition consumer
	// lag read straight from the run's broker — so an exposition server
	// (obs.Plane.Serve, beambench -serve) can snapshot the matrix while
	// it executes. All plane reads are pull-based at scrape cadence;
	// nothing is added to the per-record path. nil disables registration
	// at zero cost (see internal/obs).
	Plane *obs.Plane
	// CPUProfileDir, if set, writes one pprof CPU profile per matrix
	// cell (cpu_<cell>.pprof) into the directory. CPU profiling is
	// process-global, so it requires Workers <= 1.
	CPUProfileDir string
	// MemProfileDir, if set, writes one pprof heap profile per matrix
	// cell (mem_<cell>.pprof, after a GC) into the directory.
	MemProfileDir string
	// Workers is the number of matrix cells RunAll (and RunMatrix, when
	// its workers argument is <= 0) executes concurrently. Every run
	// still gets its own broker and engine cluster, so cells are
	// independent; the report ordering is identical at any worker count.
	// 0 or 1 selects the sequential path.
	Workers int
	// Progress, if set, receives human-readable progress lines. The
	// runner serializes calls, so the callback needs no locking of its
	// own even when Workers > 1.
	Progress func(msg string)
}

func (c *Config) validate() error {
	if c.Records == 0 {
		c.Records = 50_000
	}
	if c.Records < 0 {
		return fmt.Errorf("harness: negative record count %d", c.Records)
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Runs < 0 {
		return fmt.Errorf("harness: negative run count %d", c.Runs)
	}
	if len(c.Parallelisms) == 0 {
		c.Parallelisms = []int{1, 2}
	}
	for _, p := range c.Parallelisms {
		if p <= 0 {
			return fmt.Errorf("harness: invalid parallelism %d", p)
		}
	}
	if c.DatasetSeed == 0 {
		c.DatasetSeed = 42
	}
	if c.SampleSeed == 0 {
		c.SampleSeed = 7
	}
	if c.SenderAcks == 0 {
		c.SenderAcks = broker.AcksLeader
	}
	if c.SenderBatch == 0 {
		c.SenderBatch = 500
	}
	if c.SenderBatch < 0 {
		return fmt.Errorf("harness: negative sender batch %d", c.SenderBatch)
	}
	if c.Ingest != IngestPreload && c.Ingest != IngestStream {
		return fmt.Errorf("harness: invalid ingest mode %d", c.Ingest)
	}
	if c.RateRecordsPerSec < 0 {
		return fmt.Errorf("harness: negative sender rate %d", c.RateRecordsPerSec)
	}
	if c.RateRecordsPerSec > 0 && c.Ingest != IngestStream {
		// Rejecting instead of ignoring: the rate is serialized into the
		// report, and a preload report claiming an offered load that was
		// never applied would be a lie.
		return fmt.Errorf("harness: RateRecordsPerSec %d requires IngestStream", c.RateRecordsPerSec)
	}
	if c.Workers < 0 {
		return fmt.Errorf("harness: negative worker count %d", c.Workers)
	}
	if c.GaugeInterval < 0 {
		return fmt.Errorf("harness: negative gauge interval %v", c.GaugeInterval)
	}
	if c.GaugeInterval == 0 {
		c.GaugeInterval = 50 * time.Millisecond
	}
	if c.CPUProfileDir != "" && c.Workers > 1 {
		// runtime/pprof supports one CPU profile per process; concurrent
		// cells would fight over StartCPUProfile.
		return fmt.Errorf("harness: CPUProfileDir requires Workers <= 1, got %d", c.Workers)
	}
	return nil
}

// Runner executes benchmark runs over a pre-generated workload. Its
// run methods are safe for concurrent use: every run builds a fresh
// broker and cluster, and the shared state (config, costs, dataset) is
// read-only after New.
type Runner struct {
	cfg     Config
	costs   simcost.Costs
	noise   simcost.NoiseParams
	dataset [][]byte
	// grepHits is the grep query's match count, computed once in New:
	// callers consult it per run (streaming mode's pacing loop and the
	// CLIs), and the dataset is immutable, so rescanning on every call
	// was pure waste.
	grepHits int

	// metrics is the telemetry registry, nil unless Config.CollectMetrics.
	metrics *metrics.Registry
	// survivorIndexByQ caches, per query, the payload-to-input pairing
	// index the latency calculation walks.
	survivorsMu      sync.Mutex
	survivorIndexByQ map[queries.Query]*queries.SurvivorIndex

	progressMu sync.Mutex
}

// New validates the configuration and materializes the workload.
func New(cfg Config) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	costs := simcost.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	noise := simcost.DefaultNoise()
	if cfg.Noise != nil {
		noise = *cfg.Noise
	}
	gen, err := aol.NewGenerator(aol.Config{
		Records:  cfg.Records,
		Seed:     cfg.DatasetSeed,
		GrepHits: -1,
	})
	if err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg, costs: costs, noise: noise, dataset: gen.All(),
		survivorIndexByQ: make(map[queries.Query]*queries.SurvivorIndex)}
	for _, rec := range r.dataset {
		if queries.GrepMatch(rec) {
			r.grepHits++
		}
	}
	if cfg.CollectMetrics {
		r.metrics = metrics.NewRegistry()
	}
	return r, nil
}

// Metrics returns the telemetry registry, or nil when
// Config.CollectMetrics is off.
func (r *Runner) Metrics() *metrics.Registry { return r.metrics }

// Config returns the validated configuration.
func (r *Runner) Config() Config { return r.cfg }

// DatasetSize reports the number of workload records.
func (r *Runner) DatasetSize() int { return len(r.dataset) }

// GrepHits reports how many workload records match the grep query
// (precomputed once in New).
func (r *Runner) GrepHits() int { return r.grepHits }

const (
	inputTopic  = "input"
	outputTopic = "output"
)

// RunSingle executes one benchmark run: ingestion, execution on a fresh
// cluster, and result calculation.
func (r *Runner) RunSingle(setup Setup, runIdx int) (RunResult, error) {
	return r.runSingle(context.Background(), setup, runIdx)
}

// runSingle is RunSingle with the scheduler's cancellation context,
// which the Beam execution path hands to the runner. Runner
// cancellation is coarse (checked before launch, not mid-run), so a
// cancelled matrix still drains at run granularity, as before.
func (r *Runner) runSingle(ctx context.Context, setup Setup, runIdx int) (RunResult, error) {
	if !setup.Query.Valid() {
		return RunResult{}, fmt.Errorf("harness: invalid query %d", setup.Query)
	}
	if setup.Parallelism <= 0 {
		return RunResult{}, fmt.Errorf("harness: invalid parallelism %d", setup.Parallelism)
	}
	wallStart := time.Now()

	// Each run traces under its own scope, so the per-run tracks and
	// gauges of concurrent cells never collide in the shared ring.
	traced := r.cfg.Trace.Scoped(cellKey(setup) + "/run" + strconv.Itoa(runIdx))
	tr := traced
	if tr == nil && r.cfg.Plane != nil {
		// Plane without -trace: the engines still need a gauge registry
		// for live watermark lag, so the run gets a private single-slot
		// tracer — gauges are real, span events overwrite one ring slot
		// and are never exported.
		tr = obs.NewTracer(1)
	}
	runSpan := tr.Span("harness", "run")
	defer runSpan.End()

	factor := 1.0
	if !r.cfg.DisableNoise {
		seed := simcost.RunSeed(
			setup.System.String(), setup.API.String(), setup.Query.String(),
			fmt.Sprint(setup.Parallelism), fmt.Sprint(runIdx))
		factor = r.noise.Factor(seed)
	}
	sim := simcost.New(factor)
	b := broker.New(broker.WithCosts(r.costs, sim))

	// Both benchmark topics: one partition, replication factor 1,
	// LogAppendTime — the paper's configuration (Section III-A).
	topicCfg := broker.TopicConfig{Partitions: 1, ReplicationFactor: 1, Timestamps: broker.LogAppendTime}
	if err := b.CreateTopic(inputTopic, topicCfg); err != nil {
		return RunResult{}, err
	}
	if err := b.CreateTopic(outputTopic, topicCfg); err != nil {
		return RunResult{}, err
	}

	// Phases 1 and 2: data ingestion and program execution. The cell's
	// collector (nil when telemetry is off) rides along so engine
	// operators report per-stage throughput while they run. Every source
	// terminates via the target-count contract (InputRecords /
	// TargetRecords), so the two phases may overlap: in preload mode the
	// sender completes before the cluster launches, in stream mode the
	// sender runs concurrently with the engine and the harness joins on
	// both.
	col := r.metrics.Collector(cellKey(setup))

	// The live plane (if any) sees the run's sources for pull-based
	// scraping; EndRun detaches the broker-backed ones when the run
	// finishes, keeping the final topic offsets.
	lc := r.cfg.Plane.Cell(cellKey(setup))
	lc.StartRun(obs.CellSources{
		Collector:   col,
		Tracer:      tr,
		ConsumerLag: consumerLagSamples(b),
		TopicEnds:   topicEnds(b),
	})
	defer lc.EndRun()

	// The lag monitor samples broker and telemetry state on a ticker
	// for the whole run: per-partition consumer lag, per-stage rates,
	// and (via the tracer's gauge registry) per-operator watermark lag.
	// It is tied to the real tracer — a plane-only run is scraped on
	// demand instead of sampled, so no ticker goroutine spins for it.
	mon := obs.NewMonitor(traced, r.cfg.GaugeInterval)
	mon.SampleEach(consumerLagSampler(b))
	if col != nil {
		mon.SampleEach(stageRateSampler(col))
	}
	mon.Start()
	gauges := []obs.GaugeSummary(nil)
	monitorStopped := false
	stopMonitor := func() {
		if !monitorStopped {
			monitorStopped = true
			gauges = mon.Stop()
		}
	}
	defer stopMonitor()

	w := queries.Workload{
		Broker:       b,
		InputTopic:   inputTopic,
		OutputTopic:  outputTopic,
		Seed:         r.cfg.SampleSeed,
		Producer:     broker.ProducerConfig{},
		InputRecords: int64(len(r.dataset)),
	}
	if r.cfg.Ingest == IngestStream {
		// The sender gets its own cancellation handle: when execution
		// fails (or the matrix is cancelled) there is no point pacing
		// the rest of the workload in real time for a doomed run.
		senderCtx, cancelSender := context.WithCancel(ctx)
		defer cancelSender()
		senderDone := make(chan error, 1)
		go func() {
			// The sender gets its own track so the trace shows the
			// ingest window overlapping execution, as in Figure 5.
			sp := tr.Span("sender", "ingest")
			err := r.ingest(senderCtx, b, sim)
			sp.End()
			if err != nil {
				// The engine sources are blocked until the topic reaches
				// its target count; a sender that stopped early can never
				// get it there, so tear the input topic down to unblock
				// them.
				_ = b.DeleteTopic(inputTopic)
			}
			senderDone <- err
		}()
		execSpan := tr.Span("harness", "execute")
		execErr := r.execute(ctx, setup, w, sim, col, tr)
		execSpan.End()
		if execErr != nil {
			cancelSender()
		}
		sendErr := <-senderDone
		if err := ctx.Err(); err != nil {
			// Matrix cancelled mid-run: the sender abort and the topic
			// teardown are fallout, not the cause.
			return RunResult{}, err
		}
		if sendErr != nil && !errors.Is(sendErr, context.Canceled) {
			return RunResult{}, fmt.Errorf("harness: ingest: %w", sendErr)
		}
		if execErr != nil {
			return RunResult{}, fmt.Errorf("harness: execute %s run %d: %w", setup.Label(), runIdx, execErr)
		}
	} else {
		sp := tr.Span("sender", "ingest")
		err := r.ingest(ctx, b, sim)
		sp.End()
		if err != nil {
			return RunResult{}, fmt.Errorf("harness: ingest: %w", err)
		}
		execSpan := tr.Span("harness", "execute")
		err = r.execute(ctx, setup, w, sim, col, tr)
		execSpan.End()
		if err != nil {
			return RunResult{}, fmt.Errorf("harness: execute %s run %d: %w", setup.Label(), runIdx, err)
		}
	}

	// Execution is over: stop sampling before the result calculation
	// reads the broker, so post-run reads never pollute the lag series.
	stopMonitor()

	// Phase 3: result calculation from broker timestamps alone — the
	// LogAppendTime span (the paper's metric) and, with telemetry on,
	// the per-record event-time latency distribution.
	calcSpan := tr.Span("harness", "result-calc")
	defer calcSpan.End()
	first, last, n, err := b.TimeSpan(outputTopic)
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: result calculation: %w", err)
	}
	var execTime time.Duration
	if n > 0 {
		execTime = last.Sub(first)
	}
	if r.metrics != nil {
		if err := r.observeLatencies(b, setup, col); err != nil {
			return RunResult{}, fmt.Errorf("harness: result calculation: %w", err)
		}
	}
	return RunResult{
		Setup:         setup,
		Run:           runIdx,
		ExecutionTime: execTime,
		OutputRecords: n,
		WallTime:      time.Since(wallStart),
		Gauges:        gauges,
	}, nil
}

// consumerLagSampler samples per-partition consumer lag for both
// benchmark topics: end offset minus the consumers' high-watermark
// fetch position, per partition. A topic torn down mid-run (the stream
// sender's abort path) simply stops yielding samples.
func consumerLagSampler(b *broker.Broker) obs.MultiSampler {
	return func(yield func(name string, value float64)) {
		for _, topic := range []string{inputTopic, outputTopic} {
			ends, err := b.EndOffsets(topic)
			if err != nil {
				continue
			}
			consumed, err := b.ConsumedOffsets(topic)
			if err != nil {
				continue
			}
			for p := range ends {
				lag := float64(ends[p] - consumed[p])
				if lag < 0 {
					lag = 0
				}
				yield("consumer-lag/"+topic+"/p"+strconv.Itoa(p), lag)
			}
		}
	}
}

// consumerLagSamples is the plane's structured variant of
// consumerLagSampler: per-partition lag for both benchmark topics,
// scraped on demand by the exposition server. A topic torn down
// mid-run yields no samples.
func consumerLagSamples(b *broker.Broker) func() []obs.LagSample {
	return func() []obs.LagSample {
		var out []obs.LagSample
		for _, topic := range []string{inputTopic, outputTopic} {
			ends, err := b.EndOffsets(topic)
			if err != nil {
				continue
			}
			consumed, err := b.ConsumedOffsets(topic)
			if err != nil {
				continue
			}
			for p := range ends {
				lag := ends[p] - consumed[p]
				if lag < 0 {
					lag = 0
				}
				out = append(out, obs.LagSample{Topic: topic, Partition: p, Lag: lag})
			}
		}
		return out
	}
}

// topicEnds reports the benchmark topics' record counts for the
// plane's ingest-vs-drain view; ok=false once a topic is gone.
func topicEnds(b *broker.Broker) func() (int64, int64, bool) {
	return func() (int64, int64, bool) {
		in, err := b.RecordCount(inputTopic)
		if err != nil {
			return 0, 0, false
		}
		out, err := b.RecordCount(outputTopic)
		if err != nil {
			return 0, 0, false
		}
		return in, out, true
	}
}

// stageRateSampler samples every registered stage's current-second
// throughput from the cell's collector.
func stageRateSampler(col *metrics.Collector) obs.MultiSampler {
	return func(yield func(name string, value float64)) {
		col.EachStage(func(s *metrics.Stage) {
			yield("rate/"+s.Name(), float64(s.Current()))
		})
	}
}

// ingest is the data sender: a configurable producer streaming the
// workload into the input topic. In stream mode with a configured rate
// it is paced by the simcost clock: every record charges 1/rate seconds
// to a meter, whose realization (scaled by the run's noise factor like
// every other charge) spaces the sends. The pacing elapses real wall
// time, so the loop honors ctx — a cancelled run stops sending instead
// of finishing its paced window.
func (r *Runner) ingest(ctx context.Context, b *broker.Broker, sim *simcost.Simulator) error {
	sender, err := b.NewProducer(broker.ProducerConfig{
		Acks:      r.cfg.SenderAcks,
		BatchSize: r.cfg.SenderBatch,
	})
	if err != nil {
		return err
	}
	var pace *simcost.Meter
	var perRecord time.Duration
	if r.cfg.Ingest == IngestStream && r.cfg.RateRecordsPerSec > 0 {
		pace = sim.NewMeter()
		perRecord = time.Second / time.Duration(r.cfg.RateRecordsPerSec)
	}
	for _, rec := range r.dataset {
		if err := ctx.Err(); err != nil {
			return err
		}
		if pace != nil {
			pace.Charge(perRecord)
		}
		if err := sender.Send(inputTopic, nil, rec); err != nil {
			return err
		}
	}
	if pace != nil {
		pace.Flush()
	}
	return sender.Close()
}

func (r *Runner) execute(ctx context.Context, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
	if setup.API == APINative {
		exec, ok := nativeExecutors[setup.System]
		if !ok {
			return fmt.Errorf("harness: unknown system %d", setup.System)
		}
		return exec(r, setup, w, sim, col, tr)
	}
	return r.executeBeam(ctx, setup, w, sim, col, tr)
}

// executeBeam runs the Beam variant of a setup through the runner
// registry: one code path for every engine, selected by name.
func (r *Runner) executeBeam(ctx context.Context, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
	name := setup.System.RunnerName()
	if name == "" {
		return fmt.Errorf("harness: unknown system %d", setup.System)
	}
	p, err := queries.BeamPipeline(w, setup.Query)
	if err != nil {
		return err
	}
	runner, err := beam.GetRunner(name)
	if err != nil {
		return err
	}
	_, err = runner.Run(ctx, p, beam.Options{
		Parallelism:   setup.Parallelism,
		Fusion:        r.cfg.Fusion,
		Costs:         &r.costs,
		Sim:           sim,
		Metrics:       col,
		Trace:         tr,
		TargetRecords: int64(len(r.dataset)),
	})
	return err
}

// RunCell runs all repetitions of one setup.
func (r *Runner) RunCell(setup Setup) ([]RunResult, error) {
	return r.runCell(context.Background(), setup)
}

// runCell runs one setup's repetitions, checking for cancellation
// between runs so a worker drains quickly without discarding the runs it
// already completed. Identity, Projection and Grep contractually map
// each input to an exact output set, so repeated runs must produce
// identical output counts; a disagreement means an engine dropped or
// duplicated records and is reported as an error rather than silently
// averaged away. Sample is exempt because its Table II contract is only
// "about 40% of the tuples": the shared seeded hash that makes our four
// implementations agree is an implementation detail, and an engine
// sampling another way would still be correct while varying per run.
// (With telemetry on, such an engine is still caught — the latency
// pairing in observeLatencies requires the deterministic subset.)
//
// With a profile directory configured, each cell is captured as one
// pprof profile spanning all of its runs: cpu_<cell>.pprof while the
// runs execute, mem_<cell>.pprof (post-GC heap) after they finish.
func (r *Runner) runCell(ctx context.Context, setup Setup) ([]RunResult, error) {
	if r.cfg.CPUProfileDir == "" && r.cfg.MemProfileDir == "" {
		return r.runCellRuns(ctx, setup)
	}
	var stopCPU func() error
	if r.cfg.CPUProfileDir != "" {
		var err error
		stopCPU, err = obs.CaptureCPU(r.cfg.CPUProfileDir, cellKey(setup))
		if err != nil {
			return nil, fmt.Errorf("harness: cpu profile: %w", err)
		}
	}
	out, runErr := r.runCellRuns(ctx, setup)
	if stopCPU != nil {
		if err := stopCPU(); err != nil && runErr == nil {
			runErr = fmt.Errorf("harness: cpu profile: %w", err)
		}
	}
	if r.cfg.MemProfileDir != "" {
		if err := obs.CaptureHeap(r.cfg.MemProfileDir, cellKey(setup)); err != nil && runErr == nil {
			runErr = fmt.Errorf("harness: heap profile: %w", err)
		}
	}
	return out, runErr
}

func (r *Runner) runCellRuns(ctx context.Context, setup Setup) ([]RunResult, error) {
	lc := r.cfg.Plane.Cell(cellKey(setup))
	out := make([]RunResult, 0, r.cfg.Runs)
	for run := range r.cfg.Runs {
		if err := ctx.Err(); err != nil {
			lc.Finish(obs.CellFailed, err.Error())
			return out, err
		}
		res, err := r.runSingle(ctx, setup, run)
		if err != nil {
			// A capability gap — the runner rejected the pipeline with
			// the shared beam.ErrUnsupported sentinel — is a property of
			// the setup, not a failure of the benchmark: record the cell
			// as skipped-with-reason and keep the matrix running.
			// Translation is deterministic, so only run 0 can see it.
			if run == 0 && errors.Is(err, beam.ErrUnsupported) {
				r.progress(fmt.Sprintf("%-22s skipped (unsupported)", setup.Label()+" "+setup.Query.String()))
				lc.Finish(obs.CellSkipped, err.Error())
				return []RunResult{{Setup: setup, Skipped: true, SkipReason: err.Error()}}, nil
			}
			lc.Finish(obs.CellFailed, err.Error())
			return out, err
		}
		if len(out) > 0 && res.OutputRecords != out[0].OutputRecords && setup.Query != queries.Sample {
			out = append(out, res)
			err := fmt.Errorf(
				"harness: nondeterministic output for %s %s: run %d produced %d records, run 0 produced %d",
				setup.Label(), setup.Query, run, res.OutputRecords, out[0].OutputRecords)
			lc.Finish(obs.CellFailed, err.Error())
			return out, err
		}
		out = append(out, res)
	}
	r.progress(fmt.Sprintf("%-22s %d runs done", setup.Label()+" "+setup.Query.String(), r.cfg.Runs))
	lc.Finish(obs.CellDone, "")
	return out, nil
}

// progress delivers one progress line, serializing concurrent callers so
// the Progress callback never races with itself.
func (r *Runner) progress(msg string) {
	if r.cfg.Progress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	r.cfg.Progress(msg)
}

// RunQuery runs the full twelve-setup matrix of one query (three
// systems x two APIs x the configured parallelisms).
func (r *Runner) RunQuery(q queries.Query) ([]RunResult, error) {
	var out []RunResult
	for _, sys := range Systems() {
		for _, api := range APIs() {
			for _, p := range r.cfg.Parallelisms {
				cell, err := r.RunCell(Setup{System: sys, API: api, Query: q, Parallelism: p})
				out = append(out, cell...)
				if err != nil {
					return out, err
				}
			}
		}
	}
	return out, nil
}

// expectCells pre-registers the given setups on the live plane in
// order, so the dashboard shows the whole matrix as pending before the
// first cell starts. A nil plane makes this a no-op.
func (r *Runner) expectCells(setups []Setup) {
	if r.cfg.Plane == nil {
		return
	}
	keys := make([]string, len(setups))
	for i, s := range setups {
		keys[i] = cellKey(s)
	}
	r.cfg.Plane.Expect(keys)
}

// RunAll runs every query's matrix and aggregates the report, fanning
// cells out over Config.Workers goroutines when more than one is
// configured. On error it returns the report built from every completed
// run alongside the error, so partial results are never lost.
func (r *Runner) RunAll() (*Report, error) {
	if r.cfg.Workers > 1 {
		return r.RunAllParallel(context.Background(), r.cfg.Workers)
	}
	r.expectCells(r.MatrixSetups(queries.All()))
	var all []RunResult
	var runErr error
	for _, q := range queries.All() {
		res, err := r.RunQuery(q)
		all = append(all, res...)
		if err != nil {
			runErr = err
			break
		}
	}
	rep, err := BuildReport(r.cfg, all)
	if err != nil {
		return nil, err
	}
	rep.AttachMetrics(r.metrics)
	return rep, runErr
}

// ErrMissingCell is returned when a report lacks data for a setup.
var ErrMissingCell = errors.New("harness: no results for setup")
