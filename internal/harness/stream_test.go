package harness

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"beambench/internal/beam"
	"beambench/internal/broker"
	"beambench/internal/queries"
	"beambench/internal/simcost"
)

// runModeOutputs executes one setup's phases 1+2 on a fresh cost-free
// broker — preloading the input topic or streaming into it concurrently
// with the engine, exactly as runSingle does — and returns the output
// topic's payloads in append order.
func runModeOutputs(t *testing.T, r *Runner, setup Setup, mode IngestMode) []string {
	t.Helper()
	b := broker.New()
	topicCfg := broker.TopicConfig{Partitions: 1, ReplicationFactor: 1, Timestamps: broker.LogAppendTime}
	for _, topic := range []string{inputTopic, outputTopic} {
		if err := b.CreateTopic(topic, topicCfg); err != nil {
			t.Fatal(err)
		}
	}
	sim := simcost.Disabled()
	w := queries.Workload{
		Broker:       b,
		InputTopic:   inputTopic,
		OutputTopic:  outputTopic,
		Seed:         r.cfg.SampleSeed,
		InputRecords: int64(len(r.dataset)),
	}
	senderDone := make(chan error, 1)
	if mode == IngestStream {
		go func() { senderDone <- r.ingest(context.Background(), b, sim) }()
	} else {
		senderDone <- r.ingest(context.Background(), b, sim)
	}
	if err := r.execute(context.Background(), setup, w, sim, nil, nil); err != nil {
		t.Fatalf("%s %s (%s): %v", setup.Label(), setup.Query, mode, err)
	}
	if err := <-senderDone; err != nil {
		t.Fatalf("%s %s (%s): sender: %v", setup.Label(), setup.Query, mode, err)
	}
	return outputPayloads(t, b)
}

func outputPayloads(t *testing.T, b *broker.Broker) []string {
	t.Helper()
	recs, err := b.Records(outputTopic, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, rec := range recs {
		out[i] = string(rec.Value)
	}
	return out
}

// equalOutputs compares two output topics byte for byte. At parallelism
// 1 every engine appends deterministically, so order must match exactly;
// above 1 parallel sink tasks interleave their appends into the single
// output partition nondeterministically (within one mode as much as
// across modes), so the comparison is as multisets.
func equalOutputs(a, b []string, parallelism int) bool {
	if len(a) != len(b) {
		return false
	}
	if parallelism > 1 {
		a, b = append([]string(nil), a...), append([]string(nil), b...)
		sort.Strings(a)
		sort.Strings(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamModeMatchesPreloadOutputs is the acceptance property of
// streaming ingestion: for every runner (the three engines through both
// APIs, plus the direct runner below), every query and every
// parallelism, running the data sender concurrently with the engine
// produces output byte-identical to preloading the topic first.
func TestStreamModeMatchesPreloadOutputs(t *testing.T) {
	zero := simcost.ZeroCosts()
	r, err := New(Config{Records: 500, Runs: 1, Costs: &zero, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range Systems() {
		for _, api := range APIs() {
			for _, q := range queries.All() {
				for _, par := range []int{1, 2} {
					setup := Setup{System: sys, API: api, Query: q, Parallelism: par}
					t.Run(fmt.Sprintf("%s/%s", setup.Label(), q), func(t *testing.T) {
						preload := runModeOutputs(t, r, setup, IngestPreload)
						stream := runModeOutputs(t, r, setup, IngestStream)
						if len(preload) == 0 && q != queries.Grep {
							t.Fatal("preload run produced no output; workload too small")
						}
						if !equalOutputs(preload, stream, par) {
							t.Errorf("stream outputs (%d records) differ from preload (%d records)",
								len(stream), len(preload))
						}
					})
				}
			}
		}
	}
}

// TestDirectRunnerStreamMatchesPreload covers the fourth Beam source
// path: the direct runner's KafkaRead consuming a topic that is still
// filling, bounded by beam.Options.TargetRecords.
func TestDirectRunnerStreamMatchesPreload(t *testing.T) {
	zero := simcost.ZeroCosts()
	r, err := New(Config{Records: 500, Runs: 1, Costs: &zero, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	runDirect := func(t *testing.T, q queries.Query, mode IngestMode) []string {
		t.Helper()
		b := broker.New()
		topicCfg := broker.TopicConfig{Partitions: 1, ReplicationFactor: 1, Timestamps: broker.LogAppendTime}
		for _, topic := range []string{inputTopic, outputTopic} {
			if err := b.CreateTopic(topic, topicCfg); err != nil {
				t.Fatal(err)
			}
		}
		w := queries.Workload{
			Broker: b, InputTopic: inputTopic, OutputTopic: outputTopic,
			Seed: r.cfg.SampleSeed, InputRecords: int64(len(r.dataset)),
		}
		p, err := queries.BeamPipeline(w, q)
		if err != nil {
			t.Fatal(err)
		}
		runner, err := beam.GetRunner("direct")
		if err != nil {
			t.Fatal(err)
		}
		senderDone := make(chan error, 1)
		if mode == IngestStream {
			go func() { senderDone <- r.ingest(context.Background(), b, simcost.Disabled()) }()
		} else {
			senderDone <- r.ingest(context.Background(), b, simcost.Disabled())
		}
		if _, err := runner.Run(context.Background(), p, beam.Options{TargetRecords: int64(len(r.dataset))}); err != nil {
			t.Fatal(err)
		}
		if err := <-senderDone; err != nil {
			t.Fatal(err)
		}
		return outputPayloads(t, b)
	}
	for _, q := range queries.All() {
		t.Run(q.String(), func(t *testing.T) {
			preload := runDirect(t, q, IngestPreload)
			stream := runDirect(t, q, IngestStream)
			if !equalOutputs(preload, stream, 1) {
				t.Errorf("direct runner: stream outputs (%d) differ from preload (%d)",
					len(stream), len(preload))
			}
		})
	}
}

// TestStreamSenderSlowerThanEngine paces the sender well below what the
// engine can drain: the run must still terminate with the full output,
// and the output topic's LogAppendTime span must stretch to roughly the
// sending window — the sustained-load shape where execution time is
// rate-bound, not throughput-bound.
func TestStreamSenderSlowerThanEngine(t *testing.T) {
	zero := simcost.ZeroCosts()
	r, err := New(Config{
		Records:           300,
		Runs:              1,
		Costs:             &zero,
		DisableNoise:      true,
		Ingest:            IngestStream,
		RateRecordsPerSec: 3000, // 300 records -> a ~100ms sending window
	})
	if err != nil {
		t.Fatal(err)
	}
	setup := Setup{System: SystemFlink, API: APINative, Query: queries.Identity, Parallelism: 1}
	res, err := r.RunSingle(setup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRecords != 300 {
		t.Errorf("OutputRecords = %d, want 300", res.OutputRecords)
	}
	// The engine is cost-free, so in preload mode the span would be a
	// few producer lingers at most; rate-bound it must cover most of the
	// 100ms window.
	if res.ExecutionTime < 50*time.Millisecond {
		t.Errorf("ExecutionTime = %v, want >= 50ms (rate-bound span)", res.ExecutionTime)
	}
	if res.WallTime < 80*time.Millisecond {
		t.Errorf("WallTime = %v, want >= 80ms (the sender alone needs ~100ms)", res.WallTime)
	}
}

// TestStreamSenderFasterThanEngine bursts the sender unthrottled while
// the engine pays real per-record costs: sources must drain the backlog
// that builds up and still terminate with the full output.
func TestStreamSenderFasterThanEngine(t *testing.T) {
	r, err := New(Config{
		Records:      2_000,
		Runs:         1,
		DisableNoise: true,
		Ingest:       IngestStream,
		// RateRecordsPerSec 0: unthrottled, the sender finishes far
		// ahead of the cost-charged engine.
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, setup := range []Setup{
		{System: SystemSpark, API: APINative, Query: queries.Identity, Parallelism: 1},
		{System: SystemApex, API: APIBeam, Query: queries.Grep, Parallelism: 1},
	} {
		res, err := r.RunSingle(setup, 0)
		if err != nil {
			t.Fatalf("%s %s: %v", setup.Label(), setup.Query, err)
		}
		want := int64(2_000)
		if setup.Query == queries.Grep {
			want = int64(r.GrepHits())
		}
		if res.OutputRecords != want {
			t.Errorf("%s %s: OutputRecords = %d, want %d", setup.Label(), setup.Query, res.OutputRecords, want)
		}
	}
}

// TestStreamModeNondeterminismGuardStillHolds runs a full cell in
// stream mode: repeated runs must keep producing identical counts, so
// the RunCell guard applies unchanged to sustained-load scenarios.
func TestStreamModeNondeterminismGuardStillHolds(t *testing.T) {
	zero := simcost.ZeroCosts()
	r, err := New(Config{
		Records: 400, Runs: 2, Costs: &zero, DisableNoise: true,
		Ingest: IngestStream, RateRecordsPerSec: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunCell(Setup{System: SystemFlink, API: APIBeam, Query: queries.Projection, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, res := range results {
		if res.OutputRecords != 400 {
			t.Errorf("run %d: OutputRecords = %d, want 400", res.Run, res.OutputRecords)
		}
	}
}

func TestIngestModeParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want IngestMode
	}{
		{"", IngestPreload},
		{"preload", IngestPreload},
		{"stream", IngestStream},
	} {
		got, err := ParseIngestMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseIngestMode(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseIngestMode("bogus"); err == nil {
		t.Error("ParseIngestMode accepted a bogus mode")
	}
	if IngestPreload.String() != "preload" || IngestStream.String() != "stream" {
		t.Errorf("IngestMode strings = %q, %q", IngestPreload, IngestStream)
	}
}

// TestStreamModeCancellationStopsPacedSender pins the cancellation
// path: a cancelled context must stop the rate-paced sender promptly
// and unblock the target-bound engine sources, instead of pacing out
// the rest of the workload in real time (nearly a minute here).
func TestStreamModeCancellationStopsPacedSender(t *testing.T) {
	zero := simcost.ZeroCosts()
	r, err := New(Config{
		Records: 50_000, Runs: 1, Costs: &zero, DisableNoise: true,
		Ingest: IngestStream, RateRecordsPerSec: 1_000, // ~50s if run to completion
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = r.runSingle(ctx, Setup{System: SystemFlink, API: APINative, Query: queries.Identity, Parallelism: 1}, 0)
	if err == nil {
		t.Fatal("cancelled stream-mode run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v, want a prompt return", elapsed)
	}
}

// TestBuildReportOutputRecordsAnchorsRunZero is the regression test for
// the last-write-wins bug: when per-run counts legitimately vary (a
// Sample cell), Cell.OutputRecords must be run 0's count — the value the
// RunCell nondeterminism guard anchors on — regardless of aggregation
// order.
func TestBuildReportOutputRecordsAnchorsRunZero(t *testing.T) {
	setup := Setup{System: SystemFlink, API: APINative, Query: queries.Sample, Parallelism: 1}
	mk := func(run int, outputs int64) RunResult {
		return RunResult{Setup: setup, Run: run, ExecutionTime: time.Second, OutputRecords: outputs}
	}
	for name, results := range map[string][]RunResult{
		"in order":     {mk(0, 160), mk(1, 158), mk(2, 163)},
		"out of order": {mk(2, 163), mk(1, 158), mk(0, 160)},
	} {
		rep, err := BuildReport(Config{Records: 400, Runs: 3}, results)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cell, ok := rep.Cell(setup)
		if !ok {
			t.Fatalf("%s: cell missing", name)
		}
		if cell.OutputRecords != 160 {
			t.Errorf("%s: Cell.OutputRecords = %d, want run 0's 160", name, cell.OutputRecords)
		}
		if len(cell.OutputRecordsPerRun) != 3 {
			t.Errorf("%s: OutputRecordsPerRun = %v, want 3 entries", name, cell.OutputRecordsPerRun)
		}
	}
}

func TestConfigRejectsBadStreamSettings(t *testing.T) {
	if _, err := New(Config{Records: 10, Ingest: IngestStream, RateRecordsPerSec: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := New(Config{Records: 10, Ingest: IngestMode(7)}); err == nil {
		t.Error("invalid ingest mode accepted")
	}
	if _, err := New(Config{Records: 10, Ingest: IngestPreload, RateRecordsPerSec: 100}); err == nil {
		t.Error("rate without stream mode accepted (the report would claim an unapplied offered load)")
	}
}
