package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"beambench/internal/beam"
	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/queries"
	"beambench/internal/simcost"
)

// scrapeClient returns a client whose idle connections are torn down at
// test end, keeping the package's goleak gate clean.
func scrapeClient(t *testing.T) *http.Client {
	t.Helper()
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr, Timeout: 10 * time.Second}
}

func scrape(c *http.Client, url string) (string, error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// counterKey identifies one counter sample across scrapes by family and
// full label set.
func counterKey(p obs.MetricPoint) string {
	var sb strings.Builder
	sb.WriteString(p.Name)
	for _, k := range []string{"cell", "stage", "topic", "partition", "operator", "state", "quantile"} {
		if v, ok := p.Labels[k]; ok {
			sb.WriteString("|" + k + "=" + v)
		}
	}
	return sb.String()
}

// TestServeMidRunConformance runs a windowed stream-mode cell with the
// telemetry plane attached and scrapes /metrics and /snapshot
// throughout: every scrape must parse as OpenMetrics with TYPE and HELP
// on every family, counters must be monotonic across scrapes, and the
// final snapshot must show the cell done. Several scrapers hammer the
// server concurrently with the run, so the whole path is exercised
// under -race.
func TestServeMidRunConformance(t *testing.T) {
	const records = 2_000
	plane := obs.NewPlane(records, 1)
	r, err := New(Config{
		Records:           records,
		Runs:              1,
		DisableNoise:      true,
		CollectMetrics:    true,
		Ingest:            IngestStream,
		RateRecordsPerSec: 4_000, // ~0.5s sending window: scrapes land mid-run
		Plane:             plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := plane.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()

	setup := Setup{System: SystemFlink, API: APIBeam, Query: queries.WindowedCount, Parallelism: 2}
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = r.RunCell(setup)
	}()

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	scrapes := make([]int, 4)
	for i := range scrapes {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			tr := &http.Transport{}
			defer tr.CloseIdleConnections()
			c := &http.Client{Transport: tr, Timeout: 10 * time.Second}
			// Each scraper checks monotonicity over its own ordered
			// sequence of scrapes.
			last := map[string]float64{}
			for {
				select {
				case <-done:
					return
				default:
				}
				body, err := scrape(c, srv.URL()+"/metrics")
				if err != nil {
					errc <- err
					return
				}
				fams, err := obs.ParseOpenMetrics(strings.NewReader(body))
				if err != nil {
					errc <- fmt.Errorf("scrape %d does not parse: %w", scrapes[idx], err)
					return
				}
				for _, f := range fams {
					if f.Type == "" || f.Help == "" {
						errc <- fmt.Errorf("family %q missing TYPE/HELP", f.Name)
						return
					}
					if f.Type != "counter" {
						continue
					}
					for _, p := range f.Points {
						k := counterKey(p)
						if prev, ok := last[k]; ok && p.Value < prev {
							errc <- fmt.Errorf("counter %s went backwards: %v -> %v", k, prev, p.Value)
							return
						}
						last[k] = p.Value
					}
				}
				if body, err = scrape(c, srv.URL()+"/snapshot"); err != nil {
					errc <- err
					return
				}
				var snap obs.Snapshot
				if err := json.Unmarshal([]byte(body), &snap); err != nil {
					errc <- fmt.Errorf("/snapshot does not decode: %w", err)
					return
				}
				if snap.Schema != obs.SnapshotSchemaVersion {
					errc <- fmt.Errorf("/snapshot schema = %d", snap.Schema)
					return
				}
				scrapes[idx]++
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	<-done
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if runErr != nil {
		t.Fatalf("run failed under scraping: %v", runErr)
	}
	total := 0
	for _, n := range scrapes {
		total += n
	}
	if total == 0 {
		t.Fatal("no scrape completed while the cell ran")
	}

	// Final state: the cell is done, one run completed, and the plane
	// still serves a conformant exposition.
	c := scrapeClient(t)
	body, err := scrape(c, srv.URL()+"/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Progress.Done != 1 || snap.Progress.Running != 0 {
		t.Fatalf("final progress = %+v", snap.Progress)
	}
	if len(snap.Cells) != 1 {
		t.Fatalf("final snapshot cells = %+v", snap.Cells)
	}
	cell := snap.Cells[0]
	if cell.State != obs.CellDone || cell.RunsDone != 1 {
		t.Fatalf("final cell = %+v", cell)
	}
	if cell.OutputRecords <= 0 || cell.InputRecords != records {
		t.Fatalf("final cell offsets: in=%d out=%d", cell.InputRecords, cell.OutputRecords)
	}
	if len(cell.Stages) == 0 {
		t.Fatal("final cell has no stage snapshots")
	}
	if cell.Latency == nil || cell.Latency.Count <= 0 {
		t.Fatalf("final cell latency = %+v", cell.Latency)
	}

	body, err = scrape(c, srv.URL()+"/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseOpenMetrics(strings.NewReader(body))
	if err != nil {
		t.Fatalf("final exposition does not parse: %v", err)
	}
	names := obs.FamilyNames(fams)
	for _, want := range []string{
		"beambench_uptime_seconds",
		"beambench_workload_records",
		"beambench_cells",
		"beambench_cell_runs_completed",
		"beambench_stage_records",
		"beambench_latency_seconds",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("final exposition missing family %s (have %v)", want, names)
		}
	}
}

// TestSkippedCellReachesPlane checks the skip path: an unsupported
// setup must land on the plane as skipped with the reason attached.
func TestSkippedCellReachesPlane(t *testing.T) {
	orig := nativeExecutors[SystemApex]
	defer func() { nativeExecutors[SystemApex] = orig }()
	nativeExecutors[SystemApex] = func(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
		return fmt.Errorf("stub: %w: pretend the engine cannot run %s", beam.ErrUnsupported, setup.Query)
	}
	plane := obs.NewPlane(50, 1)
	r, err := New(Config{Records: 50, Runs: 1, DisableNoise: true, Plane: plane})
	if err != nil {
		t.Fatal(err)
	}
	setup := Setup{System: SystemApex, API: APINative, Query: queries.Grep, Parallelism: 1}
	res, err := r.RunCell(setup)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Skipped {
		t.Fatalf("results = %+v, want one skipped", res)
	}
	snap := plane.Snapshot()
	if len(snap.Cells) != 1 {
		t.Fatalf("snapshot cells = %+v", snap.Cells)
	}
	if snap.Cells[0].State != obs.CellSkipped || snap.Cells[0].SkipReason == "" {
		t.Fatalf("cell = %+v", snap.Cells[0])
	}
	if snap.Progress.Skipped != 1 {
		t.Fatalf("progress = %+v", snap.Progress)
	}
}
