package harness

import (
	"strings"
	"testing"

	"beambench/internal/broker"
	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/queries"
	"beambench/internal/simcost"
)

// newMetricsRunner builds a small runner with telemetry on.
func newMetricsRunner(t *testing.T, records, runs int) *Runner {
	t.Helper()
	r, err := New(Config{
		Records:        records,
		Runs:           runs,
		DisableNoise:   true,
		CollectMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestLatencyCollectedForEveryCell runs the full 12-setup matrix of the
// grep query with telemetry on and checks that every cell — all three
// systems, native and Beam — reports a latency distribution covering
// every output record, plus non-empty per-stage throughput.
func TestLatencyCollectedForEveryCell(t *testing.T) {
	r := newMetricsRunner(t, 500, 2)
	rep, err := r.RunQuery(queries.Grep)
	if err != nil {
		t.Fatal(err)
	}
	report, buildErr := BuildReport(r.Config(), rep)
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	report.AttachMetrics(r.Metrics())

	if len(report.Cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(report.Cells))
	}
	for _, c := range report.Cells {
		if c.Latency == nil {
			t.Fatalf("%s %s: no latency block", c.Setup.Label(), c.Setup.Query)
		}
		wantN := c.OutputRecords * int64(r.Config().Runs)
		if c.Latency.Count != wantN {
			t.Errorf("%s: latency count %d, want %d (outputs x runs)", c.Setup.Label(), c.Latency.Count, wantN)
		}
		if c.Latency.P50 <= 0 || c.Latency.P99 < c.Latency.P50 || c.Latency.Max < c.Latency.P99 {
			t.Errorf("%s: implausible latency quantiles %+v", c.Setup.Label(), *c.Latency)
		}
		if len(c.Stages) == 0 {
			t.Errorf("%s: no stage throughput", c.Setup.Label())
		}
		var sawOutput bool
		for _, s := range c.Stages {
			if s.Records == wantN {
				sawOutput = true
			}
		}
		if !sawOutput {
			t.Errorf("%s: no stage carries the output record count %d: %+v", c.Setup.Label(), wantN, c.Stages)
		}
	}

	text, err := report.FormatLatency()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p50", "p90", "p99", "rec/s"} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatLatency output lacks %q:\n%s", want, text)
		}
	}
}

// TestLatencySampleQueryPairs checks the survivor mapping on the one
// query whose output is a proper subset chosen by a seeded hash: the
// pairing must line up exactly, or observeLatencies errors out.
func TestLatencySampleQueryPairs(t *testing.T) {
	r := newMetricsRunner(t, 400, 1)
	setup := Setup{System: SystemApex, API: APIBeam, Query: queries.Sample, Parallelism: 1}
	if _, err := r.RunSingle(setup, 0); err != nil {
		t.Fatal(err)
	}
	col, ok := r.Metrics().Get(cellKey(setup))
	if !ok {
		t.Fatal("no collector for sample cell")
	}
	ix, err := r.survivorIndex(queries.Sample)
	if err != nil {
		t.Fatal(err)
	}
	if got := col.LatencySummary().Count; got != int64(ix.Expected()) {
		t.Errorf("latency count %d, want %d survivors", got, ix.Expected())
	}
}

// TestMetricsDisabledByDefault keeps the telemetry opt-in: without
// CollectMetrics the report has no latency blocks and FormatLatency
// refuses.
func TestMetricsDisabledByDefault(t *testing.T) {
	r, err := New(Config{Records: 200, Runs: 1, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics() != nil {
		t.Fatal("Metrics registry exists without CollectMetrics")
	}
	res, err := r.RunCell(Setup{System: SystemFlink, API: APINative, Query: queries.Identity, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(r.Config(), res)
	if err != nil {
		t.Fatal(err)
	}
	rep.AttachMetrics(r.Metrics())
	if rep.Cells[0].Latency != nil || rep.Cells[0].Stages != nil {
		t.Error("latency/stages present without CollectMetrics")
	}
	if _, err := rep.FormatLatency(); err == nil {
		t.Error("FormatLatency succeeded without collected metrics")
	}
}

// TestOutputRecordsPerRun pins the satellite fix: the report keeps every
// run's output count, not only the last one.
func TestOutputRecordsPerRun(t *testing.T) {
	r, err := New(Config{Records: 300, Runs: 3, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunCell(Setup{System: SystemSpark, API: APINative, Query: queries.Grep, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(r.Config(), res)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if len(c.OutputRecordsPerRun) != 3 {
		t.Fatalf("OutputRecordsPerRun = %v, want 3 entries", c.OutputRecordsPerRun)
	}
	for i, n := range c.OutputRecordsPerRun {
		if n != c.OutputRecords {
			t.Errorf("run %d output %d != cell output %d", i, n, c.OutputRecords)
		}
	}
}

// TestNondeterminismGuard stubs the native Flink executor to emit a
// different number of records on every run; RunCell must fail, and must
// keep the completed runs.
func TestNondeterminismGuard(t *testing.T) {
	orig := nativeExecutors[SystemFlink]
	defer func() { nativeExecutors[SystemFlink] = orig }()

	calls := 0
	nativeExecutors[SystemFlink] = func(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
		calls++
		p, err := w.Broker.NewProducer(w.Producer)
		if err != nil {
			return err
		}
		for range calls { // 1 record on run 0, 2 on run 1, ...
			if err := p.Send(w.OutputTopic, nil, []byte("x")); err != nil {
				return err
			}
		}
		return p.Close()
	}

	r, err := New(Config{Records: 50, Runs: 3, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	setup := Setup{System: SystemFlink, API: APINative, Query: queries.Identity, Parallelism: 1}
	res, err := r.RunCell(setup)
	if err == nil {
		t.Fatal("RunCell accepted nondeterministic output counts")
	}
	if !strings.Contains(err.Error(), "nondeterministic") {
		t.Errorf("error %v does not name nondeterminism", err)
	}
	if len(res) != 2 {
		t.Errorf("kept %d runs, want 2 (the completed ones)", len(res))
	}
}

// TestNondeterminismGuardExemptsSample: the sample query's contract is a
// random subset, so varying counts must not fail the cell.
func TestNondeterminismGuardExemptsSample(t *testing.T) {
	orig := nativeExecutors[SystemFlink]
	defer func() { nativeExecutors[SystemFlink] = orig }()

	calls := 0
	nativeExecutors[SystemFlink] = func(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
		calls++
		p, err := w.Broker.NewProducer(w.Producer)
		if err != nil {
			return err
		}
		for range calls {
			if err := p.Send(w.OutputTopic, nil, []byte("x")); err != nil {
				return err
			}
		}
		return p.Close()
	}

	r, err := New(Config{Records: 50, Runs: 3, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	setup := Setup{System: SystemFlink, API: APINative, Query: queries.Sample, Parallelism: 1}
	res, err := r.RunCell(setup)
	if err != nil {
		t.Fatalf("RunCell failed on sample: %v", err)
	}
	if len(res) != 3 {
		t.Errorf("got %d runs, want 3", len(res))
	}
}

// TestLatencyPairingSurvivesReordering stubs an executor that writes
// the identity outputs in reverse order — the worst case of parallel
// partitions interleaving the output topic. The identity-aware FIFO
// pairing must still pair every output with a genuine source input (an
// index-based k-th-output = k-th-input mapping would silently fabricate
// latencies here).
func TestLatencyPairingSurvivesReordering(t *testing.T) {
	orig := nativeExecutors[SystemFlink]
	defer func() { nativeExecutors[SystemFlink] = orig }()

	nativeExecutors[SystemFlink] = func(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
		c, err := w.Broker.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100_000})
		if err != nil {
			return err
		}
		if err := c.Assign(w.InputTopic, 0, 0); err != nil {
			return err
		}
		recs, err := c.Poll()
		if err != nil {
			return err
		}
		p, err := w.Broker.NewProducer(w.Producer)
		if err != nil {
			return err
		}
		for i := len(recs) - 1; i >= 0; i-- {
			if err := p.Send(w.OutputTopic, nil, recs[i].Value); err != nil {
				return err
			}
		}
		return p.Close()
	}

	r := newMetricsRunner(t, 200, 1)
	setup := Setup{System: SystemFlink, API: APINative, Query: queries.Identity, Parallelism: 2}
	if _, err := r.RunSingle(setup, 0); err != nil {
		t.Fatalf("reordered output failed pairing: %v", err)
	}
	col, ok := r.Metrics().Get(cellKey(setup))
	if !ok {
		t.Fatal("no collector for reordered cell")
	}
	lat := col.LatencySummary()
	if lat.Count != 200 {
		t.Errorf("latency count = %d, want 200", lat.Count)
	}
	if lat.P50 <= 0 {
		t.Errorf("p50 = %v, want > 0", lat.P50)
	}
}

// TestLatencyMismatchSurfaces: when the output count cannot be paired
// with the expected survivors, telemetry must fail loudly rather than
// report bogus latencies.
func TestLatencyMismatchSurfaces(t *testing.T) {
	orig := nativeExecutors[SystemFlink]
	defer func() { nativeExecutors[SystemFlink] = orig }()

	nativeExecutors[SystemFlink] = func(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
		p, err := w.Broker.NewProducer(w.Producer)
		if err != nil {
			return err
		}
		if err := p.Send(w.OutputTopic, nil, []byte("only-one")); err != nil {
			return err
		}
		return p.Close()
	}

	r := newMetricsRunner(t, 50, 1)
	setup := Setup{System: SystemFlink, API: APINative, Query: queries.Identity, Parallelism: 1}
	_, err := r.RunSingle(setup, 0)
	if err == nil {
		t.Fatal("RunSingle accepted unpairable output")
	}
	if !strings.Contains(err.Error(), "survivors") {
		t.Errorf("error %v does not explain the pairing failure", err)
	}
}

// TestParallelMatrixCarriesMetrics: the concurrent scheduler must attach
// telemetry exactly like the sequential path.
func TestParallelMatrixCarriesMetrics(t *testing.T) {
	r := newMetricsRunner(t, 300, 1)
	rep, err := r.RunMatrix(t.Context(), []queries.Query{queries.Identity}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Latency == nil || c.Latency.Count == 0 {
			t.Errorf("%s: missing latency under parallel scheduling", c.Setup.Label())
		}
	}
}
