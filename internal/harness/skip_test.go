package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"beambench/internal/beam"
	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/queries"
	"beambench/internal/simcost"
)

// TestUnsupportedCellRecordedAsSkipped stubs one native executor to
// reject its query with the shared beam.ErrUnsupported sentinel and
// checks the satellite contract: the matrix keeps running, the cell is
// recorded as skipped-with-reason, figures render it as "skipped", and
// the JSON report carries the reason.
func TestUnsupportedCellRecordedAsSkipped(t *testing.T) {
	orig := nativeExecutors[SystemApex]
	defer func() { nativeExecutors[SystemApex] = orig }()
	nativeExecutors[SystemApex] = func(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
		return fmt.Errorf("stub: %w: pretend the engine cannot run %s", beam.ErrUnsupported, setup.Query)
	}

	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 2
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunQuery(queries.Grep)
	if err != nil {
		t.Fatalf("unsupported cell aborted the matrix: %v", err)
	}

	rep, err := BuildReport(r.Config(), results)
	if err != nil {
		t.Fatal(err)
	}
	// 12 cells: the 4 Apex-native ones skipped (2 parallelisms), the
	// rest (Apex Beam + both Flink/Spark APIs) ran normally.
	skipped, ran := 0, 0
	for _, c := range rep.Cells {
		if c.Skipped {
			skipped++
			if c.Setup.System != SystemApex || c.Setup.API != APINative {
				t.Errorf("unexpected skipped cell %s", c.Setup.Label())
			}
			if !strings.Contains(c.SkipReason, "unsupported transform") {
				t.Errorf("skip reason %q lacks the sentinel text", c.SkipReason)
			}
			if len(c.TimesSec) != 0 {
				t.Errorf("skipped cell %s carries %d timings", c.Setup.Label(), len(c.TimesSec))
			}
		} else {
			ran++
			if len(c.TimesSec) != cfg.Runs {
				t.Errorf("cell %s has %d runs, want %d", c.Setup.Label(), len(c.TimesSec), cfg.Runs)
			}
		}
	}
	if skipped != 2 || ran != 10 {
		t.Fatalf("skipped=%d ran=%d, want 2/10", skipped, ran)
	}

	// Mean and the derived metrics surface the skip as ErrSkippedCell.
	if _, err := rep.Mean(Setup{System: SystemApex, API: APINative, Query: queries.Grep, Parallelism: 1}); err == nil {
		t.Error("Mean of a skipped cell succeeded")
	}
	if _, err := rep.SlowdownFactor(SystemApex, queries.Grep); err == nil {
		t.Error("SlowdownFactor over a skipped cell succeeded")
	}

	// Figure rendering degrades to a "skipped" row instead of erroring.
	fig, err := rep.FormatFigure(9)
	if err != nil {
		t.Fatalf("FormatFigure with skipped cells: %v", err)
	}
	if !strings.Contains(fig, "skipped") {
		t.Errorf("figure does not render the skipped cell:\n%s", fig)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"skipped": true`, `"skipReason"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON report lacks %q", want)
		}
	}
}

// TestNonUnsupportedErrorStillAborts keeps the skip narrow: any failure
// other than beam.ErrUnsupported must abort the cell as before.
func TestNonUnsupportedErrorStillAborts(t *testing.T) {
	orig := nativeExecutors[SystemApex]
	defer func() { nativeExecutors[SystemApex] = orig }()
	nativeExecutors[SystemApex] = func(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
		return fmt.Errorf("stub: engine exploded")
	}
	cfg := fastConfig()
	cfg.Records = 200
	cfg.Runs = 1
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunCell(Setup{System: SystemApex, API: APINative, Query: queries.Grep, Parallelism: 1}); err == nil {
		t.Error("real failure was swallowed as a skip")
	}
}
