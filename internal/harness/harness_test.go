package harness

import (
	"bytes"
	"strings"
	"testing"

	"beambench/internal/aol"
	"beambench/internal/beam"
	"beambench/internal/queries"
	"beambench/internal/simcost"
)

// fastConfig runs tiny, cost-free, noise-free benchmarks for testing.
func fastConfig() Config {
	zero := simcost.ZeroCosts()
	return Config{
		Records:      400,
		Runs:         2,
		Parallelisms: []int{1, 2},
		Costs:        &zero,
		DisableNoise: true,
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "negative records", cfg: Config{Records: -1}},
		{name: "negative runs", cfg: Config{Runs: -1}},
		{name: "zero parallelism", cfg: Config{Parallelisms: []int{0}}},
		{name: "negative sender batch", cfg: Config{SenderBatch: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Error("bad config accepted")
			}
		})
	}
	r, err := New(Config{Records: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Config().Runs != 5 || len(r.Config().Parallelisms) != 2 {
		t.Errorf("defaults not applied: %+v", r.Config())
	}
}

func TestDatasetProperties(t *testing.T) {
	r, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.DatasetSize() != 400 {
		t.Errorf("DatasetSize = %d, want 400", r.DatasetSize())
	}
	if want := aol.ScaledGrepHits(400); r.GrepHits() != want {
		t.Errorf("GrepHits = %d, want %d", r.GrepHits(), want)
	}
}

func TestRunSingleValidation(t *testing.T) {
	r, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunSingle(Setup{System: SystemFlink, API: APINative, Query: queries.Query(99), Parallelism: 1}, 0); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := r.RunSingle(Setup{System: SystemFlink, API: APINative, Query: queries.Grep}, 0); err == nil {
		t.Error("zero parallelism accepted")
	}
	if _, err := r.RunSingle(Setup{System: System(9), API: APINative, Query: queries.Grep, Parallelism: 1}, 0); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestRunSingleAllSetupsProduceCorrectOutputCounts(t *testing.T) {
	r, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	grepHits := int64(r.GrepHits())
	windowedPanes, err := queries.ExpectedWindowedCounts(r.dataset)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range Systems() {
		for _, api := range APIs() {
			for _, q := range queries.All() {
				setup := Setup{System: sys, API: api, Query: q, Parallelism: 1}
				t.Run(setup.Label()+"/"+q.String(), func(t *testing.T) {
					res, err := r.RunSingle(setup, 0)
					if err != nil {
						t.Fatal(err)
					}
					switch q {
					case queries.Identity, queries.Projection:
						if res.OutputRecords != 400 {
							t.Errorf("outputs = %d, want 400", res.OutputRecords)
						}
					case queries.Grep:
						if res.OutputRecords != grepHits {
							t.Errorf("outputs = %d, want %d", res.OutputRecords, grepHits)
						}
					case queries.Sample:
						ratio := float64(res.OutputRecords) / 400
						if ratio < 0.25 || ratio > 0.55 {
							t.Errorf("sample ratio = %v, want ~0.4", ratio)
						}
					case queries.WindowedCount:
						if res.OutputRecords != int64(len(windowedPanes)) {
							t.Errorf("outputs = %d, want %d panes", res.OutputRecords, len(windowedPanes))
						}
					}
					if res.ExecutionTime < 0 {
						t.Errorf("negative execution time %v", res.ExecutionTime)
					}
				})
			}
		}
	}
}

// TestFusionConfigPlumbsThroughBeamCells runs one Beam cell per system
// in both forced fusion modes and checks the output volume is
// identical: the translation mode must never change what a query
// produces, only what it costs.
func TestFusionConfigPlumbsThroughBeamCells(t *testing.T) {
	counts := make(map[beam.FusionMode]map[System]int64)
	for _, mode := range []beam.FusionMode{beam.FusionOn, beam.FusionOff} {
		cfg := fastConfig()
		cfg.Fusion = mode
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts[mode] = make(map[System]int64)
		for _, sys := range Systems() {
			setup := Setup{System: sys, API: APIBeam, Query: queries.Identity, Parallelism: 1}
			res, err := r.RunSingle(setup, 0)
			if err != nil {
				t.Fatalf("%s fusion=%s: %v", setup.Label(), mode, err)
			}
			counts[mode][sys] = res.OutputRecords
		}
	}
	for _, sys := range Systems() {
		if on, off := counts[beam.FusionOn][sys], counts[beam.FusionOff][sys]; on != off || on == 0 {
			t.Errorf("%s: fused run produced %d records, unfused %d", sys, on, off)
		}
	}
}

func TestRunCellAndReport(t *testing.T) {
	// Uses the real cost model and a workload large enough that output
	// records span several producer batches, so LogAppendTime spans are
	// non-zero and the slowdown formula is well defined.
	r, err := New(Config{Records: 2_000, Runs: 2, Parallelisms: []int{1, 2}, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	var all []RunResult
	for _, api := range APIs() {
		for _, p := range []int{1, 2} {
			setup := Setup{System: SystemFlink, API: api, Query: queries.Identity, Parallelism: p}
			cell, err := r.RunCell(setup)
			if err != nil {
				t.Fatal(err)
			}
			if len(cell) != 2 {
				t.Fatalf("cell has %d runs, want 2", len(cell))
			}
			all = append(all, cell...)
		}
	}
	rep, err := BuildReport(r.Config(), all)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := rep.SlowdownFactor(SystemFlink, queries.Identity)
	if err != nil {
		t.Fatal(err)
	}
	if sf <= 0 {
		t.Errorf("slowdown factor = %v, want positive", sf)
	}
	if _, err := rep.SlowdownFactor(SystemApex, queries.Identity); err == nil {
		t.Error("slowdown factor for missing cells succeeded")
	}
	dev, err := rep.RelStdDev(SystemFlink, APIBeam, queries.Identity)
	if err != nil {
		t.Fatal(err)
	}
	if dev < 0 {
		t.Errorf("negative relative stddev %v", dev)
	}
}

func TestLabels(t *testing.T) {
	s := Setup{System: SystemApex, API: APIBeam, Query: queries.Identity, Parallelism: 1}
	if s.Label() != "Apex Beam P1" {
		t.Errorf("Label = %q", s.Label())
	}
	if s.SDKLabel() != "Apex Beam Identity" {
		t.Errorf("SDKLabel = %q", s.SDKLabel())
	}
	n := Setup{System: SystemSpark, API: APINative, Query: queries.Grep, Parallelism: 2}
	if n.Label() != "Spark P2" {
		t.Errorf("Label = %q", n.Label())
	}
	if n.SDKLabel() != "Spark Grep" {
		t.Errorf("SDKLabel = %q", n.SDKLabel())
	}
}

func TestSystemAndAPIStrings(t *testing.T) {
	if SystemFlink.String() != "Flink" || SystemSpark.String() != "Spark" || SystemApex.String() != "Apex" {
		t.Error("system names wrong")
	}
	if APINative.String() != "native" || APIBeam.String() != "Beam" {
		t.Error("api names wrong")
	}
	if System(9).String() == "" || API(9).String() == "" {
		t.Error("unknown enums must still render")
	}
}

func TestStaticTables(t *testing.T) {
	t1 := FormatTableI()
	for _, want := range []string{"Tuple-by-tuple", "Micro-batch", "Exactly-once"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := FormatTableII(1_000_001, 3_003)
	for _, want := range []string{"Identity", "Sample", "Projection", "Grep", "3003 records", "0.30%"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q:\n%s", want, t2)
		}
	}
}

func TestReportFormattingSmallMatrix(t *testing.T) {
	cfg := fastConfig()
	cfg.Runs = 1
	cfg.Records = 200
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunQuery(queries.Grep)
	if err != nil {
		t.Fatal(err)
	}
	// 3 systems x 2 APIs x 2 parallelisms x 1 run = 12 results.
	if len(results) != 12 {
		t.Fatalf("results = %d, want 12", len(results))
	}
	rep, err := BuildReport(r.Config(), results)
	if err != nil {
		t.Fatal(err)
	}

	fig9, err := rep.FormatFigure(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Grep Query", "Apex Beam P1", "Flink P2", "Spark Beam P2"} {
		if !strings.Contains(fig9, want) {
			t.Errorf("figure 9 missing %q:\n%s", want, fig9)
		}
	}
	if _, err := rep.FormatFigure(6); err == nil {
		t.Error("figure 6 formatted without identity data")
	}
	if _, err := rep.FormatFigure(12); err == nil {
		t.Error("figure 12 accepted")
	}

	fig11, err := rep.FormatFigure(11)
	if err == nil {
		// Only grep cells exist, so figure 11 must fail on identity.
		t.Errorf("figure 11 should need all queries:\n%s", fig11)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"system": "Apex"`, `"query": "Grep"`, `"timesSec"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestTableIIIRequiresFlinkIdentity(t *testing.T) {
	cfg := fastConfig()
	cfg.Runs = 2
	cfg.Records = 200
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var results []RunResult
	for _, p := range []int{1, 2} {
		cell, err := r.RunCell(Setup{System: SystemFlink, API: APINative, Query: queries.Identity, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, cell...)
	}
	rep, err := BuildReport(r.Config(), results)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := rep.FormatTableIII()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table III", "Parallelism = 1", "Parallelism = 2"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table III missing %q:\n%s", want, tbl)
		}
	}
	if strings.Count(tbl, "\n") < 4 {
		t.Errorf("Table III too short:\n%s", tbl)
	}

	empty, err := BuildReport(r.Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.FormatTableIII(); err == nil {
		t.Error("Table III from empty report succeeded")
	}
}

func TestNoiseDeterminism(t *testing.T) {
	cfg := fastConfig()
	cfg.DisableNoise = false
	cfg.Records = 100
	r1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setup := Setup{System: SystemSpark, API: APINative, Query: queries.Grep, Parallelism: 1}
	a, err := r1.RunSingle(setup, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.RunSingle(setup, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With zero costs the noise multiplier has nothing to scale, so the
	// output counts must agree; this asserts the pipeline is stable.
	if a.OutputRecords != b.OutputRecords {
		t.Errorf("runs differ: %d vs %d records", a.OutputRecords, b.OutputRecords)
	}
}
