package harness

import (
	"testing"

	"beambench/internal/queries"
)

// TestSlowdownFactorScaleInvariance guards the documented claim that
// the slowdown factors are per-record-dominated and therefore stable
// across workload sizes — once past the small-workload regime where
// fixed per-job costs (deployment, container starts, batch quantization)
// still dominate: the Flink identity factor at 10k and at 30k records
// must agree within a factor of two.
func TestSlowdownFactorScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-size benchmark in -short mode")
	}
	sfAt := func(records int) float64 {
		r, err := New(Config{
			Records:      records,
			Runs:         2,
			Parallelisms: []int{1},
			DisableNoise: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var results []RunResult
		for _, api := range APIs() {
			cell, err := r.RunCell(Setup{System: SystemFlink, API: api, Query: queries.Identity, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, cell...)
		}
		rep, err := BuildReport(r.Config(), results)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := rep.SlowdownFactor(SystemFlink, queries.Identity)
		if err != nil {
			t.Fatal(err)
		}
		return sf
	}

	small := sfAt(10_000)
	large := sfAt(30_000)
	if small <= 0 || large <= 0 {
		t.Fatalf("non-positive slowdown factors: %v, %v", small, large)
	}
	ratio := large / small
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("slowdown factor not scale-stable: sf(10k)=%.2f sf(30k)=%.2f (ratio %.2f)",
			small, large, ratio)
	}
}
