package harness

import (
	"beambench/internal/apex"
	"beambench/internal/flink"
	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/queries"
	"beambench/internal/simcost"
	"beambench/internal/spark"
	"beambench/internal/yarn"
)

// nativeExecutor builds and runs one system's native-API variant of a
// query on a fresh engine cluster. The Beam variants never come through
// here — they run through the beam runner registry (executeBeam) — so
// this table is the only place the harness touches engine APIs. The
// collector (nil when telemetry is off) is threaded into the engine's
// cluster configuration so native cells report per-stage throughput
// exactly like Beam cells do; the tracer (nil when tracing is off) is
// threaded the same way so native cells trace per-stage spans and
// watermark gauges exactly like Beam cells do.
type nativeExecutor func(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error

var nativeExecutors = map[System]nativeExecutor{
	SystemFlink: nativeFlink,
	SystemSpark: nativeSpark,
	SystemApex:  nativeApex,
}

func nativeFlink(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
	launch := tr.Span("harness", "cluster-launch")
	cluster, err := flink.NewCluster(flink.ClusterConfig{Costs: r.costs, Sim: sim, Metrics: col, Trace: tr})
	if err != nil {
		launch.End()
		return err
	}
	cluster.Start()
	launch.End()
	defer cluster.Stop()
	env := flink.NewEnvironment(cluster).SetParallelism(setup.Parallelism)
	if err := queries.NativeFlink(env, w, setup.Query); err != nil {
		return err
	}
	_, err = env.Execute(setup.Query.String())
	return err
}

func nativeSpark(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
	launch := tr.Span("harness", "cluster-launch")
	cluster, err := spark.NewCluster(spark.ClusterConfig{Costs: r.costs, Sim: sim, Metrics: col, Trace: tr})
	if err != nil {
		launch.End()
		return err
	}
	cluster.Start()
	launch.End()
	defer cluster.Stop()
	ssc, err := spark.NewStreamingContext(cluster, spark.Config{DefaultParallelism: setup.Parallelism})
	if err != nil {
		return err
	}
	if err := queries.NativeSpark(ssc, w, setup.Query); err != nil {
		return err
	}
	_, err = ssc.RunBounded()
	return err
}

func nativeApex(r *Runner, setup Setup, w queries.Workload, sim *simcost.Simulator, col *metrics.Collector, tr *obs.Tracer) error {
	launch := tr.Span("harness", "cluster-launch")
	cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
	if err != nil {
		launch.End()
		return err
	}
	cluster.Start()
	launch.End()
	defer cluster.Stop()
	app, err := queries.NativeApex(w, setup.Query)
	if err != nil {
		return err
	}
	stram, err := apex.Launch(cluster, app, apex.LaunchConfig{
		Parallelism: setup.Parallelism,
		Costs:       r.costs,
		Sim:         sim,
		Metrics:     col,
		Trace:       tr,
	})
	if err != nil {
		return err
	}
	_, err = stram.Await()
	return err
}
