package harness

import (
	"fmt"

	"beambench/internal/broker"
	"beambench/internal/metrics"
	"beambench/internal/queries"
)

// cellKey names a setup's collector in the telemetry registry.
func cellKey(setup Setup) string {
	return setup.Label() + " " + setup.Query.String()
}

// survivorIndex returns the cached payload-to-input pairing index for
// q, built once from the immutable dataset and shared (read-only) by
// all concurrently running cells of the query. Every query is
// deterministic (Sample hashes with the configured seed), so the
// surviving set — and its size — is known from the dataset alone.
func (r *Runner) survivorIndex(q queries.Query) (*queries.SurvivorIndex, error) {
	r.survivorsMu.Lock()
	defer r.survivorsMu.Unlock()
	if ix, ok := r.survivorIndexByQ[q]; ok {
		return ix, nil
	}
	ix, err := queries.NewSurvivorIndex(q, r.cfg.SampleSeed)
	if err != nil {
		return nil, err
	}
	for _, rec := range r.dataset {
		ix.AddInput(rec)
	}
	// Seal before sharing: the first Expected() call freezes a keyed
	// (WindowedCount) index's aggregates into payload entries; doing it
	// here, still under survivorsMu, keeps the cached index immutable
	// for the concurrent cells that read it.
	ix.Expected()
	r.survivorIndexByQ[q] = ix
	return ix, nil
}

// observeLatencies is the telemetry half of result calculation: it
// pairs every output record with the input record that produced it
// (queries.SurvivorIndex: FIFO by payload, robust to parallel
// partitions interleaving the output topic) and feeds the append-time
// differences — per-record event-time latency in the sense of Karimov
// et al. (ICDE 2018), including broker queueing time — into the cell's
// sketch. Both timestamps come from the broker alone, so native and
// Beam cells are measured identically.
func (r *Runner) observeLatencies(b *broker.Broker, setup Setup, col *metrics.Collector) error {
	ix, err := r.survivorIndex(setup.Query)
	if err != nil {
		return err
	}
	// The pairing walks one partition; the benchmark topics are created
	// single-partition (the paper's configuration), and a loud error
	// here beats silently sketching a subset if that ever changes.
	if parts, err := b.Partitions(outputTopic); err != nil {
		return err
	} else if parts != 1 {
		return fmt.Errorf("harness: latency pairing needs a single-partition output topic, got %d partitions", parts)
	}
	inTS, err := b.Timestamps(inputTopic, 0)
	if err != nil {
		return fmt.Errorf("harness: input timestamps: %w", err)
	}
	if len(inTS) != len(r.dataset) {
		return fmt.Errorf("harness: input topic holds %d records, dataset has %d", len(inTS), len(r.dataset))
	}
	outCount, err := b.RecordCount(outputTopic)
	if err != nil {
		return fmt.Errorf("harness: output records: %w", err)
	}
	if outCount != int64(ix.Expected()) {
		return fmt.Errorf("harness: %s %s: %d output records but %d expected survivors; cannot pair latencies",
			setup.Label(), setup.Query, outCount, ix.Expected())
	}
	pairing := ix.NewPairing()
	latencies := make([]float64, 0, outCount)
	err = b.VisitRecords(outputTopic, 0, func(rec broker.Record) error {
		in, err := pairing.Pair(rec.Value)
		if err != nil {
			return err
		}
		latencies = append(latencies, rec.Timestamp.Sub(inTS[in]).Seconds())
		return nil
	})
	if err != nil {
		return fmt.Errorf("harness: %s %s: %w", setup.Label(), setup.Query, err)
	}
	col.ObserveLatencySeconds(latencies)
	return nil
}
