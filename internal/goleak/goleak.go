// Package goleak fails a test run that leaves goroutines behind. It is
// a dependency-free reimplementation of the core of go.uber.org/goleak
// (VerifyTestMain / VerifyNone / Find with the same semantics), built
// on runtime.Stack because this module deliberately has no external
// dependencies and the build environment is offline. If the module
// ever grows a dependency budget, swapping the import path back to
// go.uber.org/goleak is mechanical.
//
// Wire it into a package once:
//
//	func TestMain(m *testing.M) { goleak.VerifyTestMain(m) }
//
// After the package's tests pass, Find snapshots all goroutines,
// retries with backoff while anything non-ignorable is still running
// (goroutines legitimately finishing are given time to exit), and
// fails the binary if stragglers remain. A leaked goroutine here means
// an engine runtime, broker consumer, or harness worker survived its
// run — the same defect ctxleak hunts statically.
package goleak

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// options configures Find.
type options struct {
	ignoreTop []string
	ignoreAny []string
	maxWait   time.Duration
}

// An Option adjusts leak detection.
type Option func(*options)

// IgnoreTopFunction ignores goroutines whose top stack frame is the
// named function (fully qualified, e.g. "internal/poll.runtime_pollWait").
func IgnoreTopFunction(name string) Option {
	return func(o *options) { o.ignoreTop = append(o.ignoreTop, name) }
}

// IgnoreAnyFunction ignores goroutines with the named function
// anywhere in their stack.
func IgnoreAnyFunction(name string) Option {
	return func(o *options) { o.ignoreAny = append(o.ignoreAny, name) }
}

// MaxWait bounds how long Find waits for in-flight goroutines to
// finish before declaring them leaked (default 1s).
func MaxWait(d time.Duration) Option {
	return func(o *options) { o.maxWait = d }
}

// defaultIgnoreTop matches the test harness's own machinery and
// runtime helpers that legitimately outlive a test run.
var defaultIgnoreTop = []string{
	"testing.Main",
	"testing.tRunner",
	"testing.runTests",
	"testing.(*T).Run",
	"testing.(*M).Run",
	"testing.runFuzzing",
	"testing.(*F).Fuzz",
	"runtime.goexit",
	"os/signal.signal_recv",
	"os/signal.loop",
}

// VerifyTestMain runs the package's tests and, if they passed, fails
// the binary when goroutines leak. Call it from TestMain.
func VerifyTestMain(m *testing.M, opts ...Option) {
	exit := m.Run()
	if exit == 0 {
		if err := Find(opts...); err != nil {
			fmt.Fprintf(os.Stderr, "goleak: leaked goroutines after all tests passed:\n%v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// VerifyNone fails t immediately if goroutines are leaked at the call
// point. Useful inside a single test that owns its lifecycle.
func VerifyNone(t *testing.T, opts ...Option) {
	t.Helper()
	if err := Find(opts...); err != nil {
		t.Errorf("goleak: leaked goroutines:\n%v", err)
	}
}

// Find returns an error describing all currently running goroutines
// that are not ignorable, after giving finishing goroutines up to
// maxWait to exit.
func Find(opts ...Option) error {
	o := &options{maxWait: time.Second}
	for _, opt := range opts {
		opt(o)
	}
	var leaked []goroutine
	deadline := time.Now().Add(o.maxWait)
	sleep := time.Millisecond
	for {
		leaked = filter(snapshot(), o)
		if len(leaked) == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(sleep)
		if sleep < 100*time.Millisecond {
			sleep *= 2
		}
	}
	if len(leaked) == 0 {
		return nil
	}
	var b strings.Builder
	for i, g := range leaked {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%s\n%s\n", g.header, g.trace)
	}
	return fmt.Errorf("%d leaked goroutine(s):\n%s", len(leaked), b.String())
}

type goroutine struct {
	header string // "goroutine 12 [chan receive]:"
	top    string // first function on the stack
	trace  string // full frame listing
}

// snapshot parses runtime.Stack(all=true). System goroutines (GC
// workers and friends) are already excluded by the runtime.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, block := range strings.Split(strings.TrimSpace(string(buf)), "\n\n") {
		lines := strings.Split(block, "\n")
		if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
			continue
		}
		g := goroutine{header: lines[0], trace: strings.Join(lines[1:], "\n")}
		// The first non-indented line below the header is the top
		// frame: "pkg.Func(args...)".
		if fn := lines[1]; !strings.HasPrefix(fn, "\t") {
			g.top = trimCallArgs(fn)
		}
		out = append(out, g)
	}
	return out
}

// trimCallArgs turns "pkg.(*T).method(0xc000..., 0x1)" into
// "pkg.(*T).method".
func trimCallArgs(fn string) string {
	if i := strings.LastIndex(fn, "("); i > 0 && strings.HasSuffix(fn, ")") {
		return fn[:i]
	}
	return fn
}

func filter(gs []goroutine, o *options) []goroutine {
	var leaked []goroutine
next:
	for _, g := range gs {
		// The goroutine running Find (and VerifyTestMain above it).
		if strings.Contains(g.trace, "internal/goleak.Find") {
			continue
		}
		for _, top := range defaultIgnoreTop {
			if g.top == top {
				continue next
			}
		}
		for _, top := range o.ignoreTop {
			if g.top == top {
				continue next
			}
		}
		for _, any := range o.ignoreAny {
			if strings.Contains(g.trace, any+"(") {
				continue next
			}
		}
		leaked = append(leaked, g)
	}
	return leaked
}
