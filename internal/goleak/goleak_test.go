package goleak

import (
	"strings"
	"testing"
	"time"
)

func TestFindCleanByDefault(t *testing.T) {
	if err := Find(MaxWait(100 * time.Millisecond)); err != nil {
		t.Fatalf("expected no leaks in a quiet test binary, got:\n%v", err)
	}
}

func TestFindReportsLeak(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started

	err := Find(MaxWait(50 * time.Millisecond))
	if err == nil {
		t.Fatal("expected the blocked goroutine to be reported")
	}
	if !strings.Contains(err.Error(), "TestFindReportsLeak") {
		t.Errorf("leak report should name the spawning frame:\n%v", err)
	}
}

func TestFindWaitsForFinishingGoroutine(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(30 * time.Millisecond)
	}()
	if err := Find(MaxWait(2 * time.Second)); err != nil {
		t.Fatalf("a goroutine that exits within maxWait must not be a leak:\n%v", err)
	}
	<-done
}

func TestIgnoreOptions(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go leakyHelper(started, stop)
	<-started

	if err := Find(MaxWait(50 * time.Millisecond)); err == nil {
		t.Fatal("helper should leak without options")
	}
	if err := Find(MaxWait(50*time.Millisecond),
		IgnoreAnyFunction("beambench/internal/goleak.leakyHelper")); err != nil {
		t.Errorf("IgnoreAnyFunction should excuse the helper:\n%v", err)
	}
	if err := Find(MaxWait(50*time.Millisecond),
		IgnoreTopFunction("beambench/internal/goleak.leakyHelper")); err != nil {
		t.Errorf("IgnoreTopFunction should excuse the helper:\n%v", err)
	}
}

func leakyHelper(started, stop chan struct{}) {
	close(started)
	<-stop
}

func TestTrimCallArgs(t *testing.T) {
	cases := map[string]string{
		"pkg.(*T).method(0xc000120000, 0x1)": "pkg.(*T).method",
		"runtime.goexit()":                   "runtime.goexit",
		"no parens":                          "no parens",
	}
	for in, want := range cases {
		if got := trimCallArgs(in); got != want {
			t.Errorf("trimCallArgs(%q) = %q, want %q", in, got, want)
		}
	}
}
