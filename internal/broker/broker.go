// Package broker implements the message broker of the benchmark
// architecture (Figure 5 in Hesse et al., ICDCS 2019): an Apache-Kafka-
// style partitioned, append-only log with LogAppendTime timestamps.
//
// The paper's methodology depends on exactly three broker properties,
// all reproduced here:
//
//  1. records within one partition keep their append order (the input
//     and output topics use a single partition for this reason),
//  2. the broker can stamp every record with the time it was appended
//     to the log (log.message.timestamp.type=LogAppendTime), and
//  3. execution time can be computed from those timestamps alone,
//     independent of any engine-reported metrics.
//
// Producers batch by size with configurable acknowledgment levels;
// consumers poll by explicit partition assignment or via a minimal
// consumer-group coordinator. Per-call charges follow the simcost model.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"beambench/internal/simcost"
)

// Errors reported by the broker. They support errors.Is matching.
var (
	ErrTopicExists      = errors.New("broker: topic already exists")
	ErrUnknownTopic     = errors.New("broker: unknown topic")
	ErrUnknownPartition = errors.New("broker: unknown partition")
	ErrPartitionOffline = errors.New("broker: partition offline")
	ErrClosed           = errors.New("broker: closed")
)

// TimestampType selects which timestamp is stored with each record.
type TimestampType int

const (
	// CreateTime stores the producer-supplied timestamp.
	CreateTime TimestampType = iota + 1
	// LogAppendTime stores the broker's clock at append time — the mode
	// the paper's measurement methodology requires (Section III-A3).
	LogAppendTime
)

// String returns the Kafka-style name of the timestamp type.
func (t TimestampType) String() string {
	switch t {
	case CreateTime:
		return "CreateTime"
	case LogAppendTime:
		return "LogAppendTime"
	default:
		return fmt.Sprintf("TimestampType(%d)", int(t))
	}
}

// TopicConfig describes a topic at creation time.
type TopicConfig struct {
	// Partitions is the number of partitions; at least 1.
	Partitions int
	// ReplicationFactor is recorded for fidelity with the paper's setup
	// (both benchmark topics use replication factor 1). The in-process
	// broker has a single node, so the factor is bounded by 1 node but
	// validated like Kafka validates it.
	ReplicationFactor int
	// Timestamps selects CreateTime or LogAppendTime; defaults to
	// LogAppendTime, the paper's configuration.
	Timestamps TimestampType
}

func (c *TopicConfig) validate() error {
	if c.Partitions <= 0 {
		return fmt.Errorf("broker: partitions must be positive, got %d", c.Partitions)
	}
	if c.ReplicationFactor < 0 {
		return fmt.Errorf("broker: negative replication factor %d", c.ReplicationFactor)
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = 1
	}
	if c.Timestamps == 0 {
		c.Timestamps = LogAppendTime
	}
	if c.Timestamps != CreateTime && c.Timestamps != LogAppendTime {
		return fmt.Errorf("broker: invalid timestamp type %d", c.Timestamps)
	}
	return nil
}

// Record is a consumed record together with its log coordinates.
type Record struct {
	Topic     string
	Partition int
	Offset    int64
	Key       []byte
	Value     []byte
	// Timestamp is the record's stored timestamp; for LogAppendTime
	// topics this is the broker append time.
	Timestamp time.Time
}

// Broker is an in-process single-node message broker.
type Broker struct {
	costs simcost.Costs
	sim   *simcost.Simulator

	mu     sync.RWMutex
	topics map[string]*topic
	groups map[string]*group
	closed bool
	now    func() time.Time
}

// Option configures a Broker.
type Option interface {
	apply(*Broker)
}

type costsOption struct {
	costs simcost.Costs
	sim   *simcost.Simulator
}

func (o costsOption) apply(b *Broker) {
	b.costs = o.costs
	b.sim = o.sim
}

// WithCosts installs a cost model; by default the broker charges nothing.
func WithCosts(costs simcost.Costs, sim *simcost.Simulator) Option {
	return costsOption{costs: costs, sim: sim}
}

type clockOption struct{ now func() time.Time }

func (o clockOption) apply(b *Broker) { b.now = o.now }

// WithClock overrides the broker clock, for deterministic tests.
func WithClock(now func() time.Time) Option {
	return clockOption{now: now}
}

// New returns an empty broker.
func New(opts ...Option) *Broker {
	b := &Broker{
		topics: make(map[string]*topic),
		groups: make(map[string]*group),
		now:    time.Now,
	}
	for _, o := range opts {
		o.apply(b)
	}
	return b
}

// Close marks the broker closed; subsequent operations fail with ErrClosed
// and blocked PollWait callers return with an error.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	for _, t := range b.topics {
		for _, p := range t.parts {
			p.markGone()
		}
	}
}

// CreateTopic creates a topic with the given configuration.
func (b *Broker) CreateTopic(name string, cfg TopicConfig) error {
	if name == "" {
		return errors.New("broker: empty topic name")
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	t := &topic{name: name, cfg: cfg, parts: make([]*partition, cfg.Partitions)}
	for i := range t.parts {
		t.parts[i] = newPartition()
	}
	b.topics[name] = t
	return nil
}

// DeleteTopic removes a topic and its data. Blocked PollWait callers
// assigned to the topic return with an error.
func (b *Broker) DeleteTopic(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	for _, p := range t.parts {
		p.markGone()
	}
	delete(b.topics, name)
	return nil
}

// Topics lists topic names in lexicographic order.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TopicConfig returns the configuration of a topic.
func (b *Broker) TopicConfig(name string) (TopicConfig, error) {
	t, err := b.topic(name)
	if err != nil {
		return TopicConfig{}, err
	}
	return t.cfg, nil
}

// Partitions reports the partition count of a topic.
func (b *Broker) Partitions(name string) (int, error) {
	t, err := b.topic(name)
	if err != nil {
		return 0, err
	}
	return len(t.parts), nil
}

// EndOffsets returns, per partition, the offset one past the last record.
func (b *Broker) EndOffsets(name string) ([]int64, error) {
	t, err := b.topic(name)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(t.parts))
	for i, p := range t.parts {
		out[i] = p.endOffset()
	}
	return out, nil
}

// ConsumedOffsets returns, per partition, the highest offset any
// consumer has fetched through (one past the last fetched record).
// Together with EndOffsets this yields per-partition consumer lag
// without touching the consumers themselves — a Consumer is not safe
// for concurrent use, so a lag monitor must read broker-side state.
func (b *Broker) ConsumedOffsets(name string) ([]int64, error) {
	t, err := b.topic(name)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(t.parts))
	for i, p := range t.parts {
		out[i] = p.consumedOffset()
	}
	return out, nil
}

// RecordCount returns the total number of records stored across the
// partitions of a topic.
func (b *Broker) RecordCount(name string) (int64, error) {
	ends, err := b.EndOffsets(name)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ends {
		total += e
	}
	return total, nil
}

// TimeSpan returns the earliest and latest stored record timestamps of a
// topic and the number of records. This is the result calculator's input:
// the paper computes execution time as last minus first LogAppendTime in
// the output topic.
func (b *Broker) TimeSpan(name string) (first, last time.Time, n int64, err error) {
	t, err := b.topic(name)
	if err != nil {
		return time.Time{}, time.Time{}, 0, err
	}
	for _, p := range t.parts {
		pf, pl, pn := p.timeSpan()
		if pn == 0 {
			continue
		}
		if n == 0 || pf.Before(first) {
			first = pf
		}
		if n == 0 || pl.After(last) {
			last = pl
		}
		n += pn
	}
	return first, last, n, nil
}

// Timestamps returns the stored timestamps of one partition in offset
// order, without copying record payloads. This is the result
// calculator's per-record input: for single-partition LogAppendTime
// topics (the benchmark configuration), the k-th element is the append
// time of the k-th record, so event-time latency can be computed from
// broker state alone — input append time to output append time —
// independent of any engine-reported metrics.
func (b *Broker) Timestamps(name string, part int) ([]time.Time, error) {
	p, err := b.partition(name, part)
	if err != nil {
		return nil, err
	}
	return p.timestamps()
}

// Records returns a copy of one partition's records in offset order —
// the bulk read the result calculator uses to pair output payloads with
// their source inputs without driving a consumer.
func (b *Broker) Records(name string, part int) ([]Record, error) {
	p, err := b.partition(name, part)
	if err != nil {
		return nil, err
	}
	return p.fetch(name, part, 0, int(p.endOffset()))
}

// VisitRecords calls fn for every record of one partition in offset
// order without copying payloads: the Record borrows the stored key and
// value slices, which must not be retained or modified after fn
// returns. The partition is locked for the duration, so fn must not
// call back into the broker. This is the allocation-free bulk read the
// harness's per-run latency pairing runs on its hot path; use Records
// for an owned copy.
func (b *Broker) VisitRecords(name string, part int, fn func(Record) error) error {
	p, err := b.partition(name, part)
	if err != nil {
		return err
	}
	return p.visit(name, part, fn)
}

// SetPartitionOffline injects or clears a partition failure. While a
// partition is offline, produces and fetches to it fail with
// ErrPartitionOffline. Blocked PollWait callers are woken.
func (b *Broker) SetPartitionOffline(name string, part int, offline bool) error {
	p, err := b.partition(name, part)
	if err != nil {
		return err
	}
	p.setOffline(offline)
	return nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

func (b *Broker) partition(name string, part int) (*partition, error) {
	t, err := b.topic(name)
	if err != nil {
		return nil, err
	}
	if part < 0 || part >= len(t.parts) {
		return nil, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, name, part)
	}
	return t.parts[part], nil
}

// topic groups the partitions of one topic.
type topic struct {
	name  string
	cfg   TopicConfig
	parts []*partition
}

// storedRecord is the on-log representation of a record.
type storedRecord struct {
	key   []byte
	value []byte
	ts    time.Time
}

// partition is one append-only log with its own lock and waiters.
// Waiters block on waitCh, which is closed and replaced on every state
// change (append, offline toggle, close/delete), so a waiter that
// snapshots state and channel under one lock acquisition can never miss
// a wake-up.
type partition struct {
	mu      sync.Mutex
	records []storedRecord
	// consumed is the highest offset any consumer has fetched through,
	// the broker-side signal the lag monitor reads.
	consumed int64
	offline  bool
	// gone marks the partition permanently unreachable: its broker was
	// closed or its topic deleted. Waiters must stop waiting and report
	// an error instead of re-blocking.
	gone   bool
	waitCh chan struct{}
}

func newPartition() *partition {
	return &partition{waitCh: make(chan struct{})}
}

// partitionState is the snapshot a waiter decides on.
type partitionState struct {
	end     int64
	offline bool
	gone    bool
}

// watch returns the current state together with the channel that will be
// closed on the next state change.
func (p *partition) watch() (partitionState, <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return partitionState{end: int64(len(p.records)), offline: p.offline, gone: p.gone}, p.waitCh
}

// notifyLocked wakes all current waiters. Caller must hold p.mu.
func (p *partition) notifyLocked() {
	close(p.waitCh)
	p.waitCh = make(chan struct{})
}

// append stores records and returns the base offset assigned. Timestamps
// are forced to be non-decreasing within the partition so the result
// calculator's first/last arithmetic is well defined even when the OS
// clock has coarse granularity.
func (p *partition) append(recs []storedRecord) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.offline {
		return 0, ErrPartitionOffline
	}
	base := int64(len(p.records))
	var lastTS time.Time
	if len(p.records) > 0 {
		lastTS = p.records[len(p.records)-1].ts
	}
	for _, r := range recs {
		if r.ts.Before(lastTS) {
			r.ts = lastTS
		}
		lastTS = r.ts
		p.records = append(p.records, r)
	}
	p.notifyLocked()
	return base, nil
}

// fetch copies up to max records starting at offset into Record values.
func (p *partition) fetch(topicName string, part int, offset int64, max int) ([]Record, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.offline {
		return nil, ErrPartitionOffline
	}
	if offset < 0 {
		offset = 0
	}
	if offset >= int64(len(p.records)) || max <= 0 {
		return nil, nil
	}
	end := offset + int64(max)
	if end > int64(len(p.records)) {
		end = int64(len(p.records))
	}
	out := make([]Record, 0, end-offset)
	for i := offset; i < end; i++ {
		sr := p.records[i]
		out = append(out, Record{
			Topic:     topicName,
			Partition: part,
			Offset:    i,
			Key:       cloneBytes(sr.key),
			Value:     cloneBytes(sr.value),
			Timestamp: sr.ts,
		})
	}
	return out, nil
}

func (p *partition) endOffset() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.records))
}

func (p *partition) consumedOffset() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consumed
}

// noteConsumed advances the consumed high-watermark; consumers report
// their position after each successful fetch.
func (p *partition) noteConsumed(through int64) {
	p.mu.Lock()
	if through > p.consumed {
		p.consumed = through
	}
	p.mu.Unlock()
}

func (p *partition) visit(topicName string, part int, fn func(Record) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.offline {
		return ErrPartitionOffline
	}
	for i, sr := range p.records {
		rec := Record{
			Topic:     topicName,
			Partition: part,
			Offset:    int64(i),
			Key:       sr.key,
			Value:     sr.value,
			Timestamp: sr.ts,
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

func (p *partition) timestamps() ([]time.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.offline {
		return nil, ErrPartitionOffline
	}
	out := make([]time.Time, len(p.records))
	for i, r := range p.records {
		out[i] = r.ts
	}
	return out, nil
}

func (p *partition) timeSpan() (first, last time.Time, n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.records) == 0 {
		return time.Time{}, time.Time{}, 0
	}
	return p.records[0].ts, p.records[len(p.records)-1].ts, int64(len(p.records))
}

func (p *partition) setOffline(offline bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.offline = offline
	p.notifyLocked()
}

// markGone flags the partition as permanently unreachable (broker closed
// or topic deleted) and wakes all waiters.
func (p *partition) markGone() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gone = true
	p.notifyLocked()
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
