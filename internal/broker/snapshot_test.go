package broker

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := New()
	mustCreate(t, src, "in", TopicConfig{Partitions: 2, Timestamps: CreateTime})
	mustCreate(t, src, "out", TopicConfig{Partitions: 1})
	p := newProducer(t, src, ProducerConfig{BatchSize: 1, Partitioner: func(key []byte, n int) int {
		if len(key) == 0 {
			return 0
		}
		return int(key[0]) % n
	}})
	base := time.Date(2026, 6, 11, 10, 0, 0, 0, time.UTC)
	for i := range 10 {
		key := []byte{byte(i)}
		if err := p.SendAt("in", key, []byte(fmt.Sprintf("v%d", i)), base.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Topology restored.
	if got := dst.Topics(); len(got) != 2 || got[0] != "in" || got[1] != "out" {
		t.Fatalf("restored topics = %v", got)
	}
	cfg, err := dst.TopicConfig("in")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Partitions != 2 || cfg.Timestamps != CreateTime {
		t.Errorf("restored config = %+v", cfg)
	}

	// Data restored with coordinates and timestamps.
	for part := range 2 {
		cSrc := newConsumer(t, src, ConsumerConfig{})
		cDst := newConsumer(t, dst, ConsumerConfig{})
		if err := cSrc.Assign("in", part, 0); err != nil {
			t.Fatal(err)
		}
		if err := cDst.Assign("in", part, 0); err != nil {
			t.Fatal(err)
		}
		srcRecs, err := cSrc.Poll()
		if err != nil {
			t.Fatal(err)
		}
		dstRecs, err := cDst.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(srcRecs) != len(dstRecs) {
			t.Fatalf("partition %d: %d vs %d records", part, len(srcRecs), len(dstRecs))
		}
		for i := range srcRecs {
			if !bytes.Equal(srcRecs[i].Value, dstRecs[i].Value) ||
				!bytes.Equal(srcRecs[i].Key, dstRecs[i].Key) ||
				!srcRecs[i].Timestamp.Equal(dstRecs[i].Timestamp) ||
				srcRecs[i].Offset != dstRecs[i].Offset {
				t.Errorf("partition %d record %d differs: %+v vs %+v", part, i, srcRecs[i], dstRecs[i])
			}
		}
	}
}

func TestLoadSnapshotRejectsExistingTopic(t *testing.T) {
	src := New()
	mustCreate(t, src, "t", TopicConfig{Partitions: 1})
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	mustCreate(t, dst, "t", TopicConfig{Partitions: 1})
	if err := dst.LoadSnapshot(&buf); err == nil {
		t.Error("loading snapshot over existing topic should error")
	}
}

func TestLoadSnapshotGarbage(t *testing.T) {
	b := New()
	if err := b.LoadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestSnapshotClosedBroker(t *testing.T) {
	b := New()
	b.Close()
	var buf bytes.Buffer
	if err := b.SaveSnapshot(&buf); err == nil {
		t.Error("snapshot of closed broker should error")
	}
}

// Property: for any sequence of produced values, offsets are dense and
// increasing, and values are returned in production order.
func TestLogOrderProperty(t *testing.T) {
	f := func(values [][]byte) bool {
		b := New()
		if err := b.CreateTopic("t", TopicConfig{Partitions: 1}); err != nil {
			return false
		}
		p, err := b.NewProducer(ProducerConfig{BatchSize: 7})
		if err != nil {
			return false
		}
		for _, v := range values {
			if err := p.Send("t", nil, v); err != nil {
				return false
			}
		}
		if err := p.Close(); err != nil {
			return false
		}
		c, err := b.NewConsumer(ConsumerConfig{MaxPollRecords: 1000000})
		if err != nil {
			return false
		}
		if err := c.Assign("t", 0, 0); err != nil {
			return false
		}
		var got []Record
		for {
			recs, err := c.Poll()
			if err != nil {
				return false
			}
			if len(recs) == 0 {
				break
			}
			got = append(got, recs...)
		}
		if len(got) != len(values) {
			return false
		}
		for i, r := range got {
			if r.Offset != int64(i) {
				return false
			}
			if !bytes.Equal(r.Value, values[i]) {
				return false
			}
			if i > 0 && got[i].Timestamp.Before(got[i-1].Timestamp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: snapshots round-trip arbitrary binary payloads.
func TestSnapshotProperty(t *testing.T) {
	f := func(values [][]byte) bool {
		src := New()
		if err := src.CreateTopic("t", TopicConfig{Partitions: 1}); err != nil {
			return false
		}
		p, err := src.NewProducer(ProducerConfig{BatchSize: 3})
		if err != nil {
			return false
		}
		for _, v := range values {
			if err := p.Send("t", nil, v); err != nil {
				return false
			}
		}
		if err := p.Close(); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := src.SaveSnapshot(&buf); err != nil {
			return false
		}
		dst := New()
		if err := dst.LoadSnapshot(&buf); err != nil {
			return false
		}
		srcN, err1 := src.RecordCount("t")
		dstN, err2 := dst.RecordCount("t")
		return err1 == nil && err2 == nil && srcN == dstN && srcN == int64(len(values))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
