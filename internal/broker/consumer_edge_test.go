package broker

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"beambench/internal/simcost"
)

// TestPollChargesPartialFetchOnError covers the regression where a
// mid-rotation fetch error returned the records already fetched from
// healthy partitions without charging for them, so the simulated clock
// under-charged exactly when partitions failed.
func TestPollChargesPartialFetchOnError(t *testing.T) {
	costs := simcost.ZeroCosts()
	costs.BrokerFetchBatch = time.Microsecond
	costs.BrokerFetchPerRecord = time.Microsecond
	b := New(WithCosts(costs, simcost.New(1.0)))
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})

	p := newProducer(t, b, ProducerConfig{
		BatchSize:   1,
		Partitioner: func([]byte, int) int { return 0 },
	})
	for i := range 3 {
		if err := p.Send("t", nil, fmt.Appendf(nil, "rec-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPartitionOffline("t", 1, true); err != nil {
		t.Fatal(err)
	}

	recs, err := c.Poll()
	if !errors.Is(err, ErrPartitionOffline) {
		t.Fatalf("Poll over a half-offline assignment = %v, want ErrPartitionOffline", err)
	}
	if len(recs) != 3 {
		t.Fatalf("Poll returned %d records alongside the error, want 3", len(recs))
	}
	// One fetch request plus three records: the partial result must be
	// paid for in full even though the rotation ended in an error.
	if want := 4 * time.Microsecond; c.Charged() < want {
		t.Errorf("consumer charged %v for the partial fetch, want at least %v", c.Charged(), want)
	}
}

// TestPollWaitNegativeTimeoutIsNonBlocking pins the documented edge: a
// negative timeout degrades to one non-blocking poll instead of silently
// waiting forever (the pre-fix behaviour).
func TestPollWaitNegativeTimeoutIsNonBlocking(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	recs, err := c.PollWait(-time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from an empty topic", len(recs))
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("PollWait(-1s) blocked for %v, want an immediate return", elapsed)
	}

	// The negative edge still returns data when data is available.
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	if err := p.Send("t", nil, []byte("ready")); err != nil {
		t.Fatal(err)
	}
	recs, err = c.PollWait(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Value) != "ready" {
		t.Errorf("PollWait(-1) = %v, want the buffered record", recs)
	}
}

// TestPollWaitZeroTimeoutWaitsForever pins the other documented edge:
// timeout 0 blocks until data arrives.
func TestPollWaitZeroTimeoutWaitsForever(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	done := pollWaitAsync(c, 0)
	select {
	case res := <-done:
		t.Fatalf("PollWait(0) returned (%v, %v) with no data", res.recs, res.err)
	case <-time.After(50 * time.Millisecond):
	}
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	if err := p.Send("t", nil, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if len(res.recs) != 1 || string(res.recs[0].Value) != "wake" {
			t.Errorf("PollWait(0) = %v, want the appended record", res.recs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PollWait(0) still blocked after an append")
	}
}

// TestPollWaitConcurrentAppendRace hammers a blocking consumer loop with
// concurrent producers across several partitions — the streaming-
// ingestion hot path — so the race detector can see the waitAny
// mechanism, the partition wake channels, and the fetch path interleave.
func TestPollWaitConcurrentAppendRace(t *testing.T) {
	const (
		producers          = 4
		recordsPerProducer = 200
	)
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 3})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := range producers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := b.NewProducer(ProducerConfig{
				BatchSize:   7,
				Partitioner: func(_ []byte, parts int) int { return i % parts },
			})
			if err != nil {
				t.Error(err)
				return
			}
			for j := range recordsPerProducer {
				if err := p.Send("t", nil, fmt.Appendf(nil, "p%d-%d", i, j)); err != nil {
					t.Error(err)
					return
				}
				if j%50 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
			if err := p.Close(); err != nil {
				t.Error(err)
			}
		}(i)
	}

	total := 0
	deadline := time.Now().Add(10 * time.Second)
	for total < producers*recordsPerProducer {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d of %d records before the deadline", total, producers*recordsPerProducer)
		}
		recs, err := c.PollWait(5 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
	}
	wg.Wait()
	if total != producers*recordsPerProducer {
		t.Errorf("consumed %d records, want %d", total, producers*recordsPerProducer)
	}
}

// TestWaitAnyNoGoroutineChurn pins the waitAny rework: a blocked
// multi-partition PollWait must hold a bounded number of goroutines (the
// waiter itself), not one per assigned partition per wake-up, because
// streaming ingestion iterates this wait for the lifetime of a run.
func TestWaitAnyNoGoroutineChurn(t *testing.T) {
	const partitions = 8
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: partitions})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})

	// Drive many blocked-wake cycles; each old-style cycle spawned and
	// tore down `partitions` goroutines. The single-wait mechanism adds
	// only the waiter itself while blocked.
	base := runtime.NumGoroutine()
	for i := range 50 {
		done := pollWaitAsync(c, 0)
		time.Sleep(time.Millisecond)
		if i == 0 {
			if blocked := runtime.NumGoroutine(); blocked > base+4 {
				t.Errorf("blocked PollWait holds %d goroutines over the %d baseline, want the waiter only",
					blocked-base, base)
			}
		}
		if err := p.Send("t", nil, fmt.Appendf(nil, "r%d", i)); err != nil {
			t.Fatal(err)
		}
		select {
		case res := <-done:
			if res.err != nil {
				t.Fatal(res.err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("PollWait did not wake")
		}
	}
}
