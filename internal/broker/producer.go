package broker

import (
	"fmt"
	"hash/fnv"
	"time"

	"beambench/internal/simcost"
)

// Acks is the producer acknowledgment level. It mirrors the Kafka
// producer's acks setting, which the paper's data sender exposes as a
// configuration parameter (Section III-A).
type Acks int

const (
	// AcksNone fires and forgets (acks=0).
	AcksNone Acks = iota + 1
	// AcksLeader waits for the leader append (acks=1).
	AcksLeader
	// AcksAll waits for full replication (acks=all); on this single-node
	// broker the latency model charges an extra round trip.
	AcksAll
)

// String returns the Kafka-style spelling of the level.
func (a Acks) String() string {
	switch a {
	case AcksNone:
		return "0"
	case AcksLeader:
		return "1"
	case AcksAll:
		return "all"
	default:
		return fmt.Sprintf("Acks(%d)", int(a))
	}
}

// Partitioner chooses a partition for a record.
type Partitioner func(key []byte, partitions int) int

// HashPartitioner assigns records with equal keys to equal partitions;
// records without a key round-robin is not possible statelessly, so
// keyless records go to partition 0.
func HashPartitioner(key []byte, partitions int) int {
	if partitions <= 1 || len(key) == 0 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int(h.Sum32() % uint32(partitions))
}

// ProducerConfig controls batching and acknowledgment behaviour.
type ProducerConfig struct {
	// Acks is the acknowledgment level; defaults to AcksLeader.
	Acks Acks
	// BatchSize is the number of buffered records per topic-partition
	// that triggers a produce request; defaults to 500. A BatchSize of
	// 1 models a fully synchronous unbatched producer — the
	// configuration the Beam-on-Apex sink effectively runs with.
	BatchSize int
	// Linger bounds how long a partially filled batch may sit in the
	// buffer: a Send that finds records older than Linger flushes the
	// partition (like the Kafka producer's linger.ms combined with its
	// natural batching). Defaults to 5ms; negative disables
	// time-triggered flushing.
	Linger time.Duration
	// Partitioner defaults to HashPartitioner.
	Partitioner Partitioner
}

func (c *ProducerConfig) validate() error {
	if c.Acks == 0 {
		c.Acks = AcksLeader
	}
	if c.Acks < AcksNone || c.Acks > AcksAll {
		return fmt.Errorf("broker: invalid acks %d", c.Acks)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 500
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("broker: negative batch size %d", c.BatchSize)
	}
	if c.Linger == 0 {
		c.Linger = 5 * time.Millisecond
	}
	if c.Partitioner == nil {
		c.Partitioner = HashPartitioner
	}
	return nil
}

// Producer buffers records per topic-partition and appends them to the
// broker in batches. A Producer is not safe for concurrent use; each
// producing goroutine owns its own (matching the meter discipline).
type Producer struct {
	b        *Broker
	cfg      ProducerConfig
	meter    *simcost.Meter
	bufs     map[topicPartition][]storedRecord
	oldestAt map[topicPartition]time.Time
	closed   bool
}

type topicPartition struct {
	topic string
	part  int
}

// NewProducer returns a producer bound to the broker.
func (b *Broker) NewProducer(cfg ProducerConfig) (*Producer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Producer{
		b:        b,
		cfg:      cfg,
		meter:    b.sim.NewMeter(),
		bufs:     make(map[topicPartition][]storedRecord),
		oldestAt: make(map[topicPartition]time.Time),
	}, nil
}

// Send buffers one record with the broker clock as its CreateTime and
// flushes the affected partition batch when full.
func (p *Producer) Send(topicName string, key, value []byte) error {
	return p.SendAt(topicName, key, value, p.b.now())
}

// SendAt buffers one record with an explicit CreateTime timestamp.
// For LogAppendTime topics the broker overwrites it at append.
func (p *Producer) SendAt(topicName string, key, value []byte, ts time.Time) error {
	if p.closed {
		return ErrClosed
	}
	t, err := p.b.topic(topicName)
	if err != nil {
		return err
	}
	part := p.cfg.Partitioner(key, len(t.parts))
	if part < 0 || part >= len(t.parts) {
		return fmt.Errorf("%w: partitioner chose %d of %d", ErrUnknownPartition, part, len(t.parts))
	}
	tp := topicPartition{topic: topicName, part: part}
	if len(p.bufs[tp]) == 0 {
		p.oldestAt[tp] = p.b.now()
	}
	p.bufs[tp] = append(p.bufs[tp], storedRecord{
		key:   cloneBytes(key),
		value: cloneBytes(value),
		ts:    ts,
	})
	if len(p.bufs[tp]) >= p.cfg.BatchSize || p.lingerExpired(tp) {
		return p.flushPartition(tp)
	}
	return nil
}

// lingerExpired reports whether the oldest buffered record of the
// partition has waited longer than the configured linger.
func (p *Producer) lingerExpired(tp topicPartition) bool {
	if p.cfg.Linger < 0 {
		return false
	}
	oldest, ok := p.oldestAt[tp]
	return ok && p.b.now().Sub(oldest) >= p.cfg.Linger
}

// Flush sends all buffered batches.
func (p *Producer) Flush() error {
	var firstErr error
	for tp := range p.bufs {
		if err := p.flushPartition(tp); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.meter.Flush()
	return firstErr
}

// Close flushes and marks the producer closed.
func (p *Producer) Close() error {
	if p.closed {
		return nil
	}
	err := p.Flush()
	p.closed = true
	return err
}

func (p *Producer) flushPartition(tp topicPartition) error {
	recs := p.bufs[tp]
	if len(recs) == 0 {
		return nil
	}
	delete(p.bufs, tp)
	delete(p.oldestAt, tp)

	t, err := p.b.topic(tp.topic)
	if err != nil {
		return err
	}
	if t.cfg.Timestamps == LogAppendTime {
		now := p.b.now()
		for i := range recs {
			recs[i].ts = now
		}
	}
	// Charge the request before the append so the LogAppendTime
	// timestamps reflect the modeled network+broker latency.
	p.chargeProduce(len(recs))
	if _, err := t.parts[tp.part].append(recs); err != nil {
		return fmt.Errorf("broker: produce %s/%d: %w", tp.topic, tp.part, err)
	}
	return nil
}

// chargeProduce applies the cost model for one produce request of n
// records: one request round trip (doubled under acks=all, free under
// acks=0 for the waiting producer) plus the per-record marginal cost.
func (p *Producer) chargeProduce(n int) {
	c := p.b.costs
	switch p.cfg.Acks {
	case AcksNone:
		// Fire and forget: the sender does not wait for the round trip.
	case AcksAll:
		p.meter.Charge(2 * c.BrokerProduceBatch)
	default:
		p.meter.Charge(c.BrokerProduceBatch)
	}
	p.meter.Charge(time.Duration(n) * c.BrokerProducePerRecord)
	p.meter.Flush()
}

// Buffered reports the number of unflushed records, for tests.
func (p *Producer) Buffered() int {
	var n int
	for _, recs := range p.bufs {
		n += len(recs)
	}
	return n
}
