package broker

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"beambench/internal/simcost"
)

// ConsumerConfig controls fetch behaviour.
type ConsumerConfig struct {
	// MaxPollRecords bounds the records returned by one Poll; defaults
	// to 500.
	MaxPollRecords int
}

func (c *ConsumerConfig) validate() error {
	if c.MaxPollRecords == 0 {
		c.MaxPollRecords = 500
	}
	if c.MaxPollRecords < 0 {
		return fmt.Errorf("broker: negative max poll records %d", c.MaxPollRecords)
	}
	return nil
}

// Consumer reads records from explicitly assigned topic partitions.
// A Consumer is not safe for concurrent use; every consuming goroutine
// owns its own.
type Consumer struct {
	b         *Broker
	cfg       ConsumerConfig
	meter     *simcost.Meter
	positions map[topicPartition]int64
	rr        []topicPartition // round-robin order over assignments
	next      int
}

// NewConsumer returns a consumer with no assignments.
func (b *Broker) NewConsumer(cfg ConsumerConfig) (*Consumer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Consumer{
		b:         b,
		cfg:       cfg,
		meter:     b.sim.NewMeter(),
		positions: make(map[topicPartition]int64),
	}, nil
}

// Assign adds a topic partition at the given starting offset. Assigning
// an already-assigned partition repositions it.
func (c *Consumer) Assign(topicName string, part int, offset int64) error {
	if _, err := c.b.partition(topicName, part); err != nil {
		return err
	}
	if offset < 0 {
		return fmt.Errorf("broker: negative offset %d", offset)
	}
	tp := topicPartition{topic: topicName, part: part}
	if _, ok := c.positions[tp]; !ok {
		c.rr = append(c.rr, tp)
	}
	c.positions[tp] = offset
	return nil
}

// AssignAll assigns every partition of a topic from offset 0.
func (c *Consumer) AssignAll(topicName string) error {
	n, err := c.b.Partitions(topicName)
	if err != nil {
		return err
	}
	for p := range n {
		if err := c.Assign(topicName, p, 0); err != nil {
			return err
		}
	}
	return nil
}

// Position reports the next offset the consumer will fetch for tp.
func (c *Consumer) Position(topicName string, part int) (int64, bool) {
	off, ok := c.positions[topicPartition{topic: topicName, part: part}]
	return off, ok
}

// Poll fetches up to MaxPollRecords records across assignments, rotating
// through partitions round-robin. It never blocks: an empty result means
// no data is currently available.
func (c *Consumer) Poll() ([]Record, error) {
	if len(c.rr) == 0 {
		return nil, nil
	}
	budget := c.cfg.MaxPollRecords
	var out []Record
	for range c.rr {
		tp := c.rr[c.next%len(c.rr)]
		c.next++
		recs, err := c.fetchFrom(tp, budget)
		if err != nil {
			// The records fetched before the failing partition are still
			// returned, so the fetch request they rode on must still be
			// paid for — otherwise the simulated clock under-charges
			// exactly when partitions fail.
			c.chargeFetch(len(out))
			return out, err
		}
		out = append(out, recs...)
		budget -= len(recs)
		if budget <= 0 {
			break
		}
	}
	c.chargeFetch(len(out))
	return out, nil
}

// PollWait polls, blocking until at least one record is available on any
// assignment, the timeout elapses, or an assigned partition goes
// offline. A timeout of 0 means wait forever; a negative timeout
// degrades to a single non-blocking Poll. It returns an error when the
// broker is closed or an assigned topic is deleted, including while
// blocked.
func (c *Consumer) PollWait(timeout time.Duration) ([]Record, error) {
	recs, err := c.Poll()
	if err != nil || len(recs) > 0 || timeout < 0 {
		return recs, err
	}
	if len(c.rr) == 0 {
		return nil, nil
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		// Snapshot every assignment's state together with its wake
		// channel. Any append, offline toggle, or close/delete after the
		// snapshot closes the corresponding channel, so no wake-up
		// between the check and the wait can be lost.
		chans := make([]<-chan struct{}, 0, len(c.rr))
		ready := false
		for _, tp := range c.rr {
			p, err := c.b.partition(tp.topic, tp.part)
			if err != nil {
				return nil, err // broker closed or topic deleted
			}
			st, ch := p.watch()
			if st.gone {
				// Closed or deleted between the lookup and the snapshot;
				// re-resolving yields the precise error once the
				// concurrent Close/DeleteTopic releases the broker lock.
				if _, err := c.b.partition(tp.topic, tp.part); err != nil {
					return nil, err
				}
				return nil, ErrClosed
			}
			if st.offline || st.end > c.positions[tp] {
				ready = true
				break
			}
			chans = append(chans, ch)
		}
		if !ready && !waitAny(chans, deadline) {
			return c.Poll() // deadline elapsed: one final non-blocking poll
		}
		recs, err := c.Poll()
		if err != nil || len(recs) > 0 {
			return recs, err
		}
	}
}

// waitAny blocks until any of the channels is closed or the deadline
// passes (a zero deadline means no timeout). It reports false exactly on
// deadline expiry.
//
// This sits on the blocking-poll hot path: with streaming ingestion a
// source iterates PollWait for the lifetime of the run, so the wait must
// not spawn (and tear down) a goroutine per assigned partition per
// iteration. One and two channels — the common assignment shapes — use
// plain selects; larger fan-ins use a single reflect.Select, which waits
// on every channel from the calling goroutine.
func waitAny(chans []<-chan struct{}, deadline time.Time) bool {
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return false
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	switch len(chans) {
	case 1:
		select {
		case <-chans[0]:
			return true
		case <-timeout:
			return false
		}
	case 2:
		select {
		case <-chans[0]:
			return true
		case <-chans[1]:
			return true
		case <-timeout:
			return false
		}
	}
	// A nil timeout channel blocks its case forever, matching the
	// no-deadline contract.
	cases := make([]reflect.SelectCase, len(chans)+1)
	for i, ch := range chans {
		cases[i] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ch)}
	}
	cases[len(chans)] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(timeout)}
	chosen, _, _ := reflect.Select(cases)
	return chosen < len(chans)
}

func (c *Consumer) fetchFrom(tp topicPartition, max int) ([]Record, error) {
	p, err := c.b.partition(tp.topic, tp.part)
	if err != nil {
		return nil, err
	}
	recs, err := p.fetch(tp.topic, tp.part, c.positions[tp], max)
	if err != nil {
		return nil, fmt.Errorf("broker: fetch %s/%d: %w", tp.topic, tp.part, err)
	}
	if len(recs) > 0 {
		c.positions[tp] = recs[len(recs)-1].Offset + 1
		p.noteConsumed(c.positions[tp])
	}
	return recs, nil
}

// chargeFetch applies the cost model for one fetch request.
func (c *Consumer) chargeFetch(n int) {
	costs := c.b.costs
	c.meter.Charge(costs.BrokerFetchBatch)
	c.meter.Charge(time.Duration(n) * costs.BrokerFetchPerRecord)
	c.meter.Flush()
}

// Charged reports the total simulated time this consumer's meter has
// realized, for cost-accounting tests.
func (c *Consumer) Charged() time.Duration {
	return c.meter.Charged()
}

// Assignments lists the consumer's assigned partitions sorted by topic
// then partition.
func (c *Consumer) Assignments() []string {
	out := make([]string, 0, len(c.rr))
	for _, tp := range c.rr {
		out = append(out, fmt.Sprintf("%s/%d", tp.topic, tp.part))
	}
	sort.Strings(out)
	return out
}
