package broker

// EndOfInput implements the benchmark sources' shared end-of-input
// contract. A source constructs one with the total record count the
// topic will eventually hold (the harness-provided target), admits
// every record it consumes, and asks Complete whether it may terminate:
// once all target records have been appended to the topic and the
// source's assigned partitions are drained, the input is over — whether
// the topic was preloaded or was still filling while the job ran.
//
// A target <= 0 degrades to a bounded snapshot of the topic's contents
// at construction time, for direct engine-API use outside the harness:
// Admit rejects records appended after the snapshot, and Complete
// reports true once the assignments are drained to the snapshot bounds.
//
// EndOfInput is not safe for concurrent use; like a Consumer, each
// consuming goroutine owns its own.
type EndOfInput struct {
	b        *Broker
	topic    string
	target   int64
	assigned []int
	// ownsAll marks a source assigned every partition of the topic (the
	// benchmark shape: one partition, one consuming subtask): its own
	// admitted count then equals the topic total, so Complete needs no
	// broker round trips at all.
	ownsAll  bool
	bounds   []int64 // snapshot mode: per-partition end-offset caps
	consumed int64
}

// NewEndOfInput builds the tracker for a source consuming the assigned
// partitions of the topic. With target <= 0 it snapshots the topic's
// current end offsets as the input bound.
func NewEndOfInput(b *Broker, topic string, target int64, assigned []int) (*EndOfInput, error) {
	parts, err := b.Partitions(topic)
	if err != nil {
		return nil, err
	}
	e := &EndOfInput{
		b:        b,
		topic:    topic,
		target:   target,
		assigned: assigned,
		ownsAll:  len(assigned) == parts,
	}
	if target <= 0 {
		ends, err := b.EndOffsets(topic)
		if err != nil {
			return nil, err
		}
		e.bounds = ends
		e.target = 0
		for _, end := range ends {
			e.target += end
		}
	}
	return e, nil
}

// Admit records one consumed record and reports whether the source may
// emit it: false exactly for records appended after a snapshot bound.
func (e *EndOfInput) Admit(r Record) bool {
	if e.bounds != nil && r.Offset >= e.bounds[r.Partition] {
		return false
	}
	e.consumed++
	return true
}

// Drained reports whether the admitted count has reached the target.
// This alone is the termination condition only for a source that owns
// every partition (Complete uses it then); sources sharing a topic must
// ask Complete.
func (e *EndOfInput) Drained() bool { return e.consumed >= e.target }

// Bound reports the snapshot bound of a partition; ok is false in
// target mode, where the producer contract bounds the topic instead.
// Sources driving one consumer per partition use it to skip fetches on
// partitions already read to their bound.
func (e *EndOfInput) Bound(p int) (int64, bool) {
	if e.bounds == nil {
		return 0, false
	}
	return e.bounds[p], true
}

// Complete reports whether the end-of-input contract is met. In target
// mode: all target records have reached the topic (across every
// partition, including those owned by other sources) and this source
// has drained its assignments to the final end offsets — a source
// owning every partition decides from its own admitted count alone,
// and one sharing the topic asks the broker only when idle (its last
// poll returned nothing) so the drain hot path stays free of per-batch
// EndOffsets round trips. In snapshot mode: the assignments are
// drained to the snapshot bounds.
func (e *EndOfInput) Complete(c *Consumer, idle bool) (bool, error) {
	ends := e.bounds
	if ends == nil { // target mode
		if e.ownsAll {
			return e.Drained(), nil
		}
		if !idle {
			return false, nil // data is still flowing; check when drained
		}
		current, err := e.b.EndOffsets(e.topic)
		if err != nil {
			return false, err
		}
		var total int64
		for _, end := range current {
			total += end
		}
		if total < e.target {
			return false, nil
		}
		ends = current
	}
	for _, p := range e.assigned {
		if pos, ok := c.Position(e.topic, p); !ok || pos < ends[p] {
			return false, nil
		}
	}
	return true, nil
}
