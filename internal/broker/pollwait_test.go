package broker

import (
	"errors"
	"testing"
	"time"
)

// pollWaitAsync starts PollWait in a goroutine and returns a channel
// carrying its outcome.
func pollWaitAsync(c *Consumer, timeout time.Duration) <-chan struct {
	recs []Record
	err  error
} {
	done := make(chan struct {
		recs []Record
		err  error
	}, 1)
	go func() {
		recs, err := c.PollWait(timeout)
		done <- struct {
			recs []Record
			err  error
		}{recs, err}
	}()
	return done
}

func TestPollWaitReturnsAfterBrokerClose(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	done := pollWaitAsync(c, 0)
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case res := <-done:
		if !errors.Is(res.err, ErrClosed) {
			t.Errorf("PollWait after Close = (%v, %v), want ErrClosed", res.recs, res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PollWait(0) still blocked after Broker.Close")
	}
}

func TestPollWaitReturnsAfterDeleteTopic(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	done := pollWaitAsync(c, 0)
	time.Sleep(10 * time.Millisecond)
	if err := b.DeleteTopic("t"); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if !errors.Is(res.err, ErrUnknownTopic) {
			t.Errorf("PollWait after DeleteTopic = (%v, %v), want ErrUnknownTopic", res.recs, res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PollWait(0) still blocked after DeleteTopic")
	}
}

// TestPollWaitMultiPartitionWake covers the regression where a consumer
// assigned several partitions waited only on its first assignment and
// slept through data arriving on any other.
func TestPollWaitMultiPartitionWake(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 3})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}
	done := pollWaitAsync(c, 0)
	time.Sleep(10 * time.Millisecond)
	// Produce to the last partition only; the first assignment stays empty.
	p := newProducer(t, b, ProducerConfig{
		BatchSize:   1,
		Partitioner: func([]byte, int) int { return 2 },
	})
	if err := p.Send("t", nil, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if len(res.recs) != 1 || res.recs[0].Partition != 2 || string(res.recs[0].Value) != "wake" {
			t.Errorf("PollWait = %v, want one record from partition 2", res.recs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PollWait did not wake on a non-first assignment")
	}
}

// TestPollWaitMultiPartitionOfflineWake checks that a non-first
// assignment going offline unblocks the waiter with the offline error.
func TestPollWaitMultiPartitionOfflineWake(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}
	done := pollWaitAsync(c, 0)
	time.Sleep(10 * time.Millisecond)
	if err := b.SetPartitionOffline("t", 1, true); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if !errors.Is(res.err, ErrPartitionOffline) {
			t.Errorf("PollWait = (%v, %v), want ErrPartitionOffline", res.recs, res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PollWait did not wake when a non-first assignment went offline")
	}
}

func TestPollWaitMultiPartitionTimeout(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 3})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	recs, err := c.PollWait(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty topic", len(recs))
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("PollWait returned before timeout")
	}
}
