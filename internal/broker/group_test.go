package broker

import (
	"testing"
)

func TestJoinGroupValidation(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 4})
	if _, err := b.JoinGroup("", "m1", "t"); err == nil {
		t.Error("empty group ID accepted")
	}
	if _, err := b.JoinGroup("g", "", "t"); err == nil {
		t.Error("empty member ID accepted")
	}
	if _, err := b.JoinGroup("g", "m1"); err == nil {
		t.Error("empty topic list accepted")
	}
	if _, err := b.JoinGroup("g", "m1", "missing"); err == nil {
		t.Error("unknown topic accepted")
	}
}

func TestSingleMemberGetsAllPartitions(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 4})
	m, err := b.JoinGroup("g", "m1", "t")
	if err != nil {
		t.Fatal(err)
	}
	asg, err := m.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if len(asg["t"]) != 4 {
		t.Errorf("single member assignment = %v, want all 4 partitions", asg)
	}
}

func TestRangeAssignmentPartitionsDisjointAndComplete(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 5})
	m1, err := b.JoinGroup("g", "m1", "t")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.JoinGroup("g", "m2", "t")
	if err != nil {
		t.Fatal(err)
	}
	m3, err := b.JoinGroup("g", "m3", "t")
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[int]string)
	for _, m := range []*GroupMember{m1, m2, m3} {
		asg, err := m.Assignment()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range asg["t"] {
			if owner, dup := seen[p]; dup {
				t.Errorf("partition %d assigned to both %s and %s", p, owner, m.memberID)
			}
			seen[p] = m.memberID
		}
	}
	if len(seen) != 5 {
		t.Errorf("assigned %d of 5 partitions: %v", len(seen), seen)
	}
}

func TestRebalanceOnLeave(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 4})
	m1, err := b.JoinGroup("g", "m1", "t")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.JoinGroup("g", "m2", "t")
	if err != nil {
		t.Fatal(err)
	}
	gen1, err := m1.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Leave(); err != nil {
		t.Fatal(err)
	}
	gen2, err := m1.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen1 {
		t.Errorf("generation did not advance on leave: %d -> %d", gen1, gen2)
	}
	asg, err := m1.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if len(asg["t"]) != 4 {
		t.Errorf("survivor assignment = %v, want all 4 partitions", asg)
	}
	if _, err := m2.Assignment(); err == nil {
		t.Error("left member still has an assignment")
	}
}

func TestMismatchedSubscriptionRejected(t *testing.T) {
	b := New()
	mustCreate(t, b, "a", TopicConfig{Partitions: 1})
	mustCreate(t, b, "b", TopicConfig{Partitions: 1})
	if _, err := b.JoinGroup("g", "m1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.JoinGroup("g", "m2", "b"); err == nil {
		t.Error("mismatched subscription accepted")
	}
}

func TestCommitAndFetchOffsets(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	m, err := b.JoinGroup("g", "m1", "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.Committed("t", 0); err != nil || ok {
		t.Errorf("Committed before commit = ok=%v err=%v, want false, nil", ok, err)
	}
	if err := m.Commit("t", 0, 42); err != nil {
		t.Fatal(err)
	}
	off, ok, err := m.Committed("t", 0)
	if err != nil || !ok || off != 42 {
		t.Errorf("Committed = %d, %v, %v; want 42, true, nil", off, ok, err)
	}
	if err := m.Commit("t", 9, 1); err == nil {
		t.Error("commit to unknown partition accepted")
	}
}

func TestRangeAssign(t *testing.T) {
	tests := []struct {
		name            string
		n, m, rank      int
		wantFirst, want int // first partition and count
	}{
		{name: "even split rank0", n: 4, m: 2, rank: 0, wantFirst: 0, want: 2},
		{name: "even split rank1", n: 4, m: 2, rank: 1, wantFirst: 2, want: 2},
		{name: "uneven extra to first", n: 5, m: 2, rank: 0, wantFirst: 0, want: 3},
		{name: "uneven rank1", n: 5, m: 2, rank: 1, wantFirst: 3, want: 2},
		{name: "more members than partitions", n: 1, m: 3, rank: 2, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := rangeAssign(tt.n, tt.m, tt.rank)
			if len(got) != tt.want {
				t.Fatalf("rangeAssign(%d,%d,%d) = %v, want %d parts", tt.n, tt.m, tt.rank, got, tt.want)
			}
			if tt.want > 0 && got[0] != tt.wantFirst {
				t.Errorf("first partition = %d, want %d", got[0], tt.wantFirst)
			}
		})
	}
	if got := rangeAssign(4, 0, 0); got != nil {
		t.Errorf("rangeAssign with zero members = %v, want nil", got)
	}
	if got := rangeAssign(4, 2, 5); got != nil {
		t.Errorf("rangeAssign with bad rank = %v, want nil", got)
	}
}
