package broker

import (
	"fmt"
	"testing"
)

func eoiProduce(t *testing.T, b *Broker, topic string, part, n int) {
	t.Helper()
	p := newProducer(t, b, ProducerConfig{
		BatchSize:   1,
		Partitioner: func([]byte, int) int { return part },
	})
	for i := range n {
		if err := p.Send(topic, nil, fmt.Appendf(nil, "%s-%d-%d", topic, part, i)); err != nil {
			t.Fatal(err)
		}
	}
}

// drain admits everything currently pollable and returns the idle flag
// of the last poll.
func eoiDrain(t *testing.T, c *Consumer, e *EndOfInput) bool {
	t.Helper()
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			e.Admit(r)
		}
		if len(recs) == 0 {
			return true
		}
	}
}

// TestEndOfInputTargetMode walks the contract on a topic that fills in
// two installments: not complete while short of the target, complete
// once the target is appended and drained.
func TestEndOfInputTargetMode(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}
	e, err := NewEndOfInput(b, "t", 10, []int{0})
	if err != nil {
		t.Fatal(err)
	}

	eoiProduce(t, b, "t", 0, 6)
	idle := eoiDrain(t, c, e)
	if done, err := e.Complete(c, idle); err != nil || done {
		t.Fatalf("Complete with 6 of 10 records = (%v, %v), want not complete", done, err)
	}

	eoiProduce(t, b, "t", 0, 4)
	if done, _ := e.Complete(c, true); done {
		t.Fatal("Complete before draining the second installment, want not complete")
	}
	idle = eoiDrain(t, c, e)
	if !e.Drained() {
		t.Fatalf("Drained() false after admitting all 10 records")
	}
	if done, err := e.Complete(c, idle); err != nil || !done {
		t.Fatalf("Complete after target drained = (%v, %v), want complete", done, err)
	}
}

// TestEndOfInputSharedTopic covers a source owning one of two
// partitions: completion needs the topic-wide total to reach the target
// AND the local assignment to be drained, and the broker is only
// consulted on idle polls.
func TestEndOfInputSharedTopic(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	e, err := NewEndOfInput(b, "t", 5, []int{0})
	if err != nil {
		t.Fatal(err)
	}

	eoiProduce(t, b, "t", 0, 3)
	eoiDrain(t, c, e)
	// Local assignment drained, but only 3 of 5 topic-wide.
	if done, _ := e.Complete(c, true); done {
		t.Fatal("Complete with the topic short of its target, want not complete")
	}
	// Non-idle calls must not consult the broker and must report false.
	if done, _ := e.Complete(c, false); done {
		t.Fatal("non-idle Complete reported done")
	}

	eoiProduce(t, b, "t", 1, 2) // the other source's partition fills
	if done, err := e.Complete(c, true); err != nil || !done {
		t.Fatalf("Complete with target reached and assignment drained = (%v, %v), want complete", done, err)
	}
}

// TestEndOfInputSnapshotMode: with target <= 0 the tracker bounds the
// input at construction-time end offsets, Admit rejects later appends,
// and Bound exposes the per-partition caps.
func TestEndOfInputSnapshotMode(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	eoiProduce(t, b, "t", 0, 4)

	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}
	e, err := NewEndOfInput(b, "t", 0, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if bound, ok := e.Bound(0); !ok || bound != 4 {
		t.Fatalf("Bound(0) = (%d, %v), want (4, true)", bound, ok)
	}

	eoiProduce(t, b, "t", 0, 3) // late records, outside the snapshot
	admitted := 0
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			if e.Admit(r) {
				admitted++
			}
		}
	}
	if admitted != 4 {
		t.Errorf("admitted %d records, want the 4 snapshot records only", admitted)
	}
	if done, err := e.Complete(c, true); err != nil || !done {
		t.Fatalf("Complete after draining past the snapshot = (%v, %v), want complete", done, err)
	}

	// Target mode exposes no bounds.
	te, err := NewEndOfInput(b, "t", 7, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := te.Bound(0); ok {
		t.Error("target mode reported a snapshot bound")
	}
}
