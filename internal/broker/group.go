package broker

import (
	"fmt"
	"sort"
	"sync"
)

// group is a minimal consumer-group coordinator: range assignment over
// the subscribed topics, regenerated on every membership change, plus
// committed offsets.
type group struct {
	mu        sync.Mutex
	topics    []string
	members   map[string]struct{}
	committed map[topicPartition]int64
	epoch     int
}

// GroupMember is one consumer's view of a consumer group. Membership is
// explicit: Join to receive an assignment, Leave to trigger a rebalance
// for the remaining members.
type GroupMember struct {
	b        *Broker
	groupID  string
	memberID string
	epoch    int
}

// JoinGroup adds memberID to the group subscribed to the given topics and
// triggers a rebalance. All members of one group must subscribe to the
// same topic list (matching Kafka's range-assignor expectations here).
func (b *Broker) JoinGroup(groupID, memberID string, topics ...string) (*GroupMember, error) {
	if groupID == "" || memberID == "" {
		return nil, fmt.Errorf("broker: group and member IDs must be non-empty")
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("broker: group %q: no topics subscribed", groupID)
	}
	for _, t := range topics {
		if _, err := b.topic(t); err != nil {
			return nil, err
		}
	}
	sorted := append([]string(nil), topics...)
	sort.Strings(sorted)

	b.mu.Lock()
	g, ok := b.groups[groupID]
	if !ok {
		g = &group{
			members:   make(map[string]struct{}),
			committed: make(map[topicPartition]int64),
			topics:    sorted,
		}
		b.groups[groupID] = g
	}
	b.mu.Unlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.members) > 0 && !equalStrings(g.topics, sorted) {
		return nil, fmt.Errorf("broker: group %q: mismatched subscription", groupID)
	}
	g.topics = sorted
	g.members[memberID] = struct{}{}
	g.epoch++
	return &GroupMember{b: b, groupID: groupID, memberID: memberID, epoch: g.epoch}, nil
}

// Leave removes the member and triggers a rebalance.
func (m *GroupMember) Leave() error {
	g, err := m.group()
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.members, m.memberID)
	g.epoch++
	return nil
}

// Generation reports the group's current rebalance epoch. A member whose
// assignment was fetched at an older epoch must re-fetch it.
func (m *GroupMember) Generation() (int, error) {
	g, err := m.group()
	if err != nil {
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch, nil
}

// Assignment computes this member's partitions under range assignment:
// members are ordered lexicographically and partitions of each topic are
// split into contiguous ranges.
func (m *GroupMember) Assignment() (map[string][]int, error) {
	g, err := m.group()
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[m.memberID]; !ok {
		return nil, fmt.Errorf("broker: member %q not in group %q", m.memberID, m.groupID)
	}
	members := make([]string, 0, len(g.members))
	for id := range g.members {
		members = append(members, id)
	}
	sort.Strings(members)
	rank := sort.SearchStrings(members, m.memberID)

	out := make(map[string][]int, len(g.topics))
	for _, t := range g.topics {
		n, err := m.b.Partitions(t)
		if err != nil {
			return nil, err
		}
		parts := rangeAssign(n, len(members), rank)
		if len(parts) > 0 {
			out[t] = parts
		}
	}
	return out, nil
}

// Commit records the next-to-consume offset for a partition on behalf of
// the group.
func (m *GroupMember) Commit(topicName string, part int, offset int64) error {
	if _, err := m.b.partition(topicName, part); err != nil {
		return err
	}
	g, err := m.group()
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.committed[topicPartition{topic: topicName, part: part}] = offset
	return nil
}

// Committed returns the committed offset for a partition, or ok=false if
// nothing was committed.
func (m *GroupMember) Committed(topicName string, part int) (int64, bool, error) {
	g, err := m.group()
	if err != nil {
		return 0, false, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	off, ok := g.committed[topicPartition{topic: topicName, part: part}]
	return off, ok, nil
}

func (m *GroupMember) group() (*group, error) {
	m.b.mu.RLock()
	defer m.b.mu.RUnlock()
	if m.b.closed {
		return nil, ErrClosed
	}
	g, ok := m.b.groups[m.groupID]
	if !ok {
		return nil, fmt.Errorf("broker: unknown group %q", m.groupID)
	}
	return g, nil
}

// rangeAssign splits n partitions among m members and returns the
// partitions of the member with the given rank: the first n%m members
// receive one extra partition.
func rangeAssign(n, m, rank int) []int {
	if m <= 0 || rank < 0 || rank >= m || n <= 0 {
		return nil
	}
	base := n / m
	extra := n % m
	start := rank*base + min(rank, extra)
	count := base
	if rank < extra {
		count++
	}
	out := make([]int, 0, count)
	for i := start; i < start+count; i++ {
		out = append(out, i)
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
