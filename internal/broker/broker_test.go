package broker

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func mustCreate(t *testing.T, b *Broker, name string, cfg TopicConfig) {
	t.Helper()
	if err := b.CreateTopic(name, cfg); err != nil {
		t.Fatalf("CreateTopic(%q): %v", name, err)
	}
}

func newProducer(t *testing.T, b *Broker, cfg ProducerConfig) *Producer {
	t.Helper()
	p, err := b.NewProducer(cfg)
	if err != nil {
		t.Fatalf("NewProducer: %v", err)
	}
	return p
}

func newConsumer(t *testing.T, b *Broker, cfg ConsumerConfig) *Consumer {
	t.Helper()
	c, err := b.NewConsumer(cfg)
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	return c
}

func TestCreateTopicValidation(t *testing.T) {
	b := New()
	tests := []struct {
		name    string
		topic   string
		cfg     TopicConfig
		wantErr bool
	}{
		{name: "valid", topic: "a", cfg: TopicConfig{Partitions: 1}},
		{name: "multi partition", topic: "b", cfg: TopicConfig{Partitions: 8}},
		{name: "empty name", topic: "", cfg: TopicConfig{Partitions: 1}, wantErr: true},
		{name: "zero partitions", topic: "c", cfg: TopicConfig{}, wantErr: true},
		{name: "negative partitions", topic: "d", cfg: TopicConfig{Partitions: -1}, wantErr: true},
		{name: "negative rf", topic: "e", cfg: TopicConfig{Partitions: 1, ReplicationFactor: -1}, wantErr: true},
		{name: "bad timestamp type", topic: "f", cfg: TopicConfig{Partitions: 1, Timestamps: 99}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := b.CreateTopic(tt.topic, tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("CreateTopic error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCreateTopicDuplicate(t *testing.T) {
	b := New()
	mustCreate(t, b, "dup", TopicConfig{Partitions: 1})
	err := b.CreateTopic("dup", TopicConfig{Partitions: 1})
	if !errors.Is(err, ErrTopicExists) {
		t.Errorf("duplicate create error = %v, want ErrTopicExists", err)
	}
}

func TestTopicDefaults(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	cfg, err := b.TopicConfig("t")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Timestamps != LogAppendTime {
		t.Errorf("default timestamp type = %v, want LogAppendTime", cfg.Timestamps)
	}
	if cfg.ReplicationFactor != 1 {
		t.Errorf("default replication factor = %d, want 1", cfg.ReplicationFactor)
	}
}

func TestDeleteTopic(t *testing.T) {
	b := New()
	mustCreate(t, b, "gone", TopicConfig{Partitions: 1})
	if err := b.DeleteTopic("gone"); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteTopic("gone"); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("second delete error = %v, want ErrUnknownTopic", err)
	}
	if _, err := b.Partitions("gone"); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("Partitions after delete = %v, want ErrUnknownTopic", err)
	}
}

func TestTopicsSorted(t *testing.T) {
	b := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		mustCreate(t, b, name, TopicConfig{Partitions: 1})
	}
	got := b.Topics()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Topics() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Topics() = %v, want %v", got, want)
		}
	}
}

func TestProduceConsumeRoundTrip(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 3})
	for i := range 10 {
		if err := p.Send("t", nil, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	c := newConsumer(t, b, ConsumerConfig{MaxPollRecords: 4})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	var got []Record
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
	}
	if len(got) != 10 {
		t.Fatalf("consumed %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.Offset != int64(i) {
			t.Errorf("record %d offset = %d", i, r.Offset)
		}
		if want := fmt.Sprintf("v%d", i); string(r.Value) != want {
			t.Errorf("record %d value = %q, want %q", i, r.Value, want)
		}
		if r.Topic != "t" || r.Partition != 0 {
			t.Errorf("record %d coordinates = %s/%d", i, r.Topic, r.Partition)
		}
	}
}

func TestLogAppendTimeOverridesSendTime(t *testing.T) {
	fixed := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := New(WithClock(func() time.Time { return fixed }))
	mustCreate(t, b, "t", TopicConfig{Partitions: 1, Timestamps: LogAppendTime})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	past := fixed.Add(-time.Hour)
	if err := p.SendAt("t", nil, []byte("x"), past); err != nil {
		t.Fatal(err)
	}
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("Poll = %v, %v; want 1 record", recs, err)
	}
	if !recs[0].Timestamp.Equal(fixed) {
		t.Errorf("timestamp = %v, want broker clock %v", recs[0].Timestamp, fixed)
	}
}

func TestCreateTimeKeepsSendTime(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1, Timestamps: CreateTime})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	ts := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	if err := p.SendAt("t", nil, []byte("x"), ts); err != nil {
		t.Fatal(err)
	}
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("Poll = %v, %v; want 1 record", recs, err)
	}
	if !recs[0].Timestamp.Equal(ts) {
		t.Errorf("timestamp = %v, want CreateTime %v", recs[0].Timestamp, ts)
	}
}

func TestTimeSpan(t *testing.T) {
	now := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	clock := now
	b := New(WithClock(func() time.Time { return clock }))
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})

	if err := p.Send("t", nil, []byte("first")); err != nil {
		t.Fatal(err)
	}
	clock = now.Add(3 * time.Second)
	if err := p.Send("t", nil, []byte("last")); err != nil {
		t.Fatal(err)
	}

	first, last, n, err := b.TimeSpan("t")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("n = %d, want 2", n)
	}
	if got := last.Sub(first); got != 3*time.Second {
		t.Errorf("span = %v, want 3s", got)
	}
}

func TestTimestamps(t *testing.T) {
	now := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	clock := now
	b := New(WithClock(func() time.Time { return clock }))
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	for i := range 3 {
		clock = now.Add(time.Duration(i) * time.Second)
		if err := p.Send("t", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}

	ts, err := b.Timestamps("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("got %d timestamps, want 3", len(ts))
	}
	for i, want := range []time.Time{now, now.Add(time.Second), now.Add(2 * time.Second)} {
		if !ts[i].Equal(want) {
			t.Errorf("timestamp %d = %v, want %v", i, ts[i], want)
		}
	}

	if _, err := b.Timestamps("missing", 0); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("unknown topic error = %v", err)
	}
	if _, err := b.Timestamps("t", 7); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("unknown partition error = %v", err)
	}
	if err := b.SetPartitionOffline("t", 0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Timestamps("t", 0); !errors.Is(err, ErrPartitionOffline) {
		t.Errorf("offline partition error = %v", err)
	}
}

func TestTimestampsMonotonicPerPartition(t *testing.T) {
	// Even if the clock goes backwards, stored timestamps must not.
	times := []time.Time{
		time.Unix(100, 0), time.Unix(50, 0), time.Unix(200, 0), time.Unix(150, 0),
	}
	i := 0
	b := New(WithClock(func() time.Time { ts := times[i%len(times)]; i++; return ts }))
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	for range 4 {
		if err := p.Send("t", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll()
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(recs); j++ {
		if recs[j].Timestamp.Before(recs[j-1].Timestamp) {
			t.Errorf("timestamp at offset %d (%v) before predecessor (%v)",
				j, recs[j].Timestamp, recs[j-1].Timestamp)
		}
	}
}

func TestPartitionOfflineInjection(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	if err := b.SetPartitionOffline("t", 0, true); err != nil {
		t.Fatal(err)
	}
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	if err := p.Send("t", nil, []byte("x")); !errors.Is(err, ErrPartitionOffline) {
		t.Errorf("produce to offline partition error = %v, want ErrPartitionOffline", err)
	}
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Poll(); !errors.Is(err, ErrPartitionOffline) {
		t.Errorf("fetch from offline partition error = %v, want ErrPartitionOffline", err)
	}
	// Recovery.
	if err := b.SetPartitionOffline("t", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("t", nil, []byte("x")); err != nil {
		t.Errorf("produce after recovery: %v", err)
	}
}

func TestSetPartitionOfflineErrors(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	if err := b.SetPartitionOffline("nope", 0, true); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("unknown topic error = %v", err)
	}
	if err := b.SetPartitionOffline("t", 5, true); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("unknown partition error = %v", err)
	}
}

func TestClosedBroker(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	b.Close()
	if err := b.CreateTopic("u", TopicConfig{Partitions: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("CreateTopic after close = %v, want ErrClosed", err)
	}
	if _, err := b.Partitions("t"); !errors.Is(err, ErrClosed) {
		t.Errorf("Partitions after close = %v, want ErrClosed", err)
	}
	if err := b.DeleteTopic("t"); !errors.Is(err, ErrClosed) {
		t.Errorf("DeleteTopic after close = %v, want ErrClosed", err)
	}
}

func TestEndOffsetsAndRecordCount(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 3})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1, Partitioner: func(key []byte, n int) int {
		return int(key[0]) % n
	}})
	for i := range 7 {
		if err := p.Send("t", []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ends, err := b.EndOffsets("t")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ends {
		total += e
	}
	if total != 7 {
		t.Errorf("sum of end offsets = %d, want 7", total)
	}
	count, err := b.RecordCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Errorf("RecordCount = %d, want 7", count)
	}
}

func TestFetchIsolation(t *testing.T) {
	// Mutating fetched records must not corrupt the log.
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	if err := p.Send("t", []byte("k"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	c1 := newConsumer(t, b, ConsumerConfig{})
	if err := c1.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	recs, err := c1.Poll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("poll: %v %v", recs, err)
	}
	recs[0].Value[0] = 'X'
	recs[0].Key[0] = 'X'

	c2 := newConsumer(t, b, ConsumerConfig{})
	if err := c2.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	recs2, err := c2.Poll()
	if err != nil || len(recs2) != 1 {
		t.Fatalf("poll2: %v %v", recs2, err)
	}
	if string(recs2[0].Value) != "value" || string(recs2[0].Key) != "k" {
		t.Errorf("log corrupted by consumer mutation: %q %q", recs2[0].Key, recs2[0].Value)
	}
}

func TestProducerSendIsolation(t *testing.T) {
	// Mutating the caller's buffer after Send must not affect the log.
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 10})
	buf := []byte("orig")
	if err := p.Send("t", nil, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("poll: %v %v", recs, err)
	}
	if string(recs[0].Value) != "orig" {
		t.Errorf("value = %q, want %q", recs[0].Value, "orig")
	}
}

func TestPollWaitTimesOut(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	recs, err := c.PollWait(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty topic", len(recs))
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("PollWait returned before timeout")
	}
}

func TestPollWaitWakesOnProduce(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan []Record, 1)
	go func() {
		recs, err := c.PollWait(5 * time.Second)
		if err != nil {
			done <- nil
			return
		}
		done <- recs
	}()
	time.Sleep(10 * time.Millisecond)
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	if err := p.Send("t", nil, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case recs := <-done:
		if len(recs) != 1 || string(recs[0].Value) != "wake" {
			t.Errorf("PollWait returned %v", recs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PollWait did not wake on produce")
	}
}

func TestProducerConfigValidation(t *testing.T) {
	b := New()
	if _, err := b.NewProducer(ProducerConfig{BatchSize: -1}); err == nil {
		t.Error("negative batch size accepted")
	}
	if _, err := b.NewProducer(ProducerConfig{Acks: 99}); err == nil {
		t.Error("invalid acks accepted")
	}
	if _, err := b.NewConsumer(ConsumerConfig{MaxPollRecords: -1}); err == nil {
		t.Error("negative max poll accepted")
	}
}

func TestProducerUnknownTopic(t *testing.T) {
	b := New()
	p := newProducer(t, b, ProducerConfig{})
	if err := p.Send("missing", nil, []byte("x")); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("Send to missing topic = %v, want ErrUnknownTopic", err)
	}
}

func TestProducerClosedRejectsSend(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("t", nil, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("second close = %v, want nil", err)
	}
}

func TestProducerBuffering(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 5})
	for range 4 {
		if err := p.Send("t", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Buffered(); got != 4 {
		t.Errorf("Buffered = %d, want 4", got)
	}
	count, err := b.RecordCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("records visible before batch full: %d", count)
	}
	// The fifth send crosses the batch size and flushes.
	if err := p.Send("t", nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := p.Buffered(); got != 0 {
		t.Errorf("Buffered after auto-flush = %d, want 0", got)
	}
	count, err = b.RecordCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("RecordCount = %d, want 5", count)
	}
}

func TestHashPartitionerStability(t *testing.T) {
	key := []byte("user-42")
	p1 := HashPartitioner(key, 8)
	p2 := HashPartitioner(key, 8)
	if p1 != p2 {
		t.Error("HashPartitioner not deterministic")
	}
	if p1 < 0 || p1 >= 8 {
		t.Errorf("partition %d out of range", p1)
	}
	if HashPartitioner(nil, 8) != 0 {
		t.Error("keyless record should map to partition 0")
	}
	if HashPartitioner(key, 1) != 0 {
		t.Error("single partition must map to 0")
	}
}

func TestConsumerPositionTracking(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})
	for range 3 {
		if err := p.Send("t", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c := newConsumer(t, b, ConsumerConfig{MaxPollRecords: 2})
	if err := c.Assign("t", 0, 1); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Offset != 1 {
		t.Fatalf("poll from offset 1 = %+v", recs)
	}
	pos, ok := c.Position("t", 0)
	if !ok || pos != 3 {
		t.Errorf("Position = %d, %v; want 3, true", pos, ok)
	}
}

func TestConsumerAssignErrors(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.Assign("missing", 0, 0); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("assign missing topic = %v", err)
	}
	if err := c.Assign("t", 9, 0); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("assign missing partition = %v", err)
	}
	if err := c.Assign("t", 0, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestAssignAllCoversPartitions(t *testing.T) {
	b := New()
	mustCreate(t, b, "t", TopicConfig{Partitions: 3})
	c := newConsumer(t, b, ConsumerConfig{})
	if err := c.AssignAll("t"); err != nil {
		t.Fatal(err)
	}
	got := c.Assignments()
	want := []string{"t/0", "t/1", "t/2"}
	if len(got) != len(want) {
		t.Fatalf("Assignments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Assignments = %v, want %v", got, want)
		}
	}
}

func TestAcksString(t *testing.T) {
	tests := []struct {
		give Acks
		want string
	}{
		{give: AcksNone, want: "0"},
		{give: AcksLeader, want: "1"},
		{give: AcksAll, want: "all"},
		{give: Acks(42), want: "Acks(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Acks(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestTimestampTypeString(t *testing.T) {
	if CreateTime.String() != "CreateTime" || LogAppendTime.String() != "LogAppendTime" {
		t.Error("unexpected TimestampType strings")
	}
	if TimestampType(9).String() != "TimestampType(9)" {
		t.Errorf("unknown type string = %q", TimestampType(9).String())
	}
}
