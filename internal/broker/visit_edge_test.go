package broker

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// These tests cover the Timestamps/VisitRecords edge cases the latency
// calculation leans on: empty topics, topics deleted mid-benchmark, and
// multi-partition topics filled by interleaved appends.

func TestTimestampsAndVisitRecordsEmptyTopic(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	ts, err := b.Timestamps("t", 0)
	if err != nil {
		t.Fatalf("Timestamps on empty partition: %v", err)
	}
	if len(ts) != 0 {
		t.Errorf("Timestamps = %v, want empty", ts)
	}
	calls := 0
	if err := b.VisitRecords("t", 1, func(Record) error { calls++; return nil }); err != nil {
		t.Fatalf("VisitRecords on empty partition: %v", err)
	}
	if calls != 0 {
		t.Errorf("visitor called %d times on an empty partition", calls)
	}
	// Out-of-range partitions error rather than panic.
	if _, err := b.Timestamps("t", 2); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("Timestamps(part 2) = %v, want ErrUnknownPartition", err)
	}
	if err := b.VisitRecords("t", -1, func(Record) error { return nil }); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("VisitRecords(part -1) = %v, want ErrUnknownPartition", err)
	}
}

func TestTimestampsAndVisitRecordsAfterDeleteTopic(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("t", nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Mid-benchmark teardown (the streaming harness deletes the input
	// topic to unblock sources when the sender dies): subsequent reads
	// must report the topic gone, not hang or return stale data.
	if err := b.DeleteTopic("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Timestamps("t", 0); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("Timestamps after delete = %v, want ErrUnknownTopic", err)
	}
	if err := b.VisitRecords("t", 0, func(Record) error { return nil }); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("VisitRecords after delete = %v, want ErrUnknownTopic", err)
	}
}

func TestVisitRecordsOfflinePartition(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPartitionOffline("t", 0, true); err != nil {
		t.Fatal(err)
	}
	if err := b.VisitRecords("t", 0, func(Record) error { return nil }); !errors.Is(err, ErrPartitionOffline) {
		t.Errorf("VisitRecords offline = %v, want ErrPartitionOffline", err)
	}
	if _, err := b.Timestamps("t", 0); !errors.Is(err, ErrPartitionOffline) {
		t.Errorf("Timestamps offline = %v, want ErrPartitionOffline", err)
	}
}

// TestInterleavedMultiPartitionAppends checks per-partition offset order
// and timestamp monotonicity when two producers interleave appends
// across partitions: each partition's Timestamps and VisitRecords views
// are offset-ordered, non-decreasing in time, and complete.
func TestInterleavedMultiPartitionAppends(t *testing.T) {
	clock := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := New(WithClock(func() time.Time { return clock }))
	if err := b.CreateTopic("t", TopicConfig{Partitions: 3}); err != nil {
		t.Fatal(err)
	}
	p1, err := b.NewProducer(ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.NewProducer(ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	const total = 60
	for i := range total {
		clock = clock.Add(time.Millisecond)
		prod := p1
		if i%2 == 1 {
			prod = p2
		}
		// Distinct keys spread the records over the partitions via the
		// default hash partitioner.
		if err := prod.Send("t", []byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("rec%03d", i))); err != nil {
			t.Fatal(err)
		}
	}

	seen := 0
	for part := range 3 {
		ts, err := b.Timestamps("t", part)
		if err != nil {
			t.Fatal(err)
		}
		var recs []Record
		if err := b.VisitRecords("t", part, func(r Record) error {
			// The borrowed Record must carry matching coordinates.
			if r.Partition != part || r.Topic != "t" {
				return fmt.Errorf("record coordinates %s/%d", r.Topic, r.Partition)
			}
			recs = append(recs, Record{Offset: r.Offset, Timestamp: r.Timestamp})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(ts) {
			t.Fatalf("partition %d: VisitRecords saw %d records, Timestamps %d", part, len(recs), len(ts))
		}
		for i, r := range recs {
			if r.Offset != int64(i) {
				t.Errorf("partition %d record %d has offset %d", part, i, r.Offset)
			}
			if !r.Timestamp.Equal(ts[i]) {
				t.Errorf("partition %d offset %d: VisitRecords ts %v != Timestamps %v", part, i, r.Timestamp, ts[i])
			}
			if i > 0 && ts[i].Before(ts[i-1]) {
				t.Errorf("partition %d: timestamps regress at offset %d", part, i)
			}
		}
		seen += len(recs)
	}
	if seen != total {
		t.Errorf("partitions hold %d records total, want %d", seen, total)
	}
}
