package broker

import (
	"testing"
	"time"
)

func TestLingerFlushesSparseOutput(t *testing.T) {
	// A producer whose batch never fills must still flush once the
	// oldest buffered record exceeds the linger, so sparse outputs
	// (like grep matches) reach the log with meaningful timestamps.
	clock := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := New(WithClock(func() time.Time { return clock }))
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1000, Linger: 5 * time.Millisecond})

	if err := p.Send("t", nil, []byte("first")); err != nil {
		t.Fatal(err)
	}
	count, err := b.RecordCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("record visible before linger expired: %d", count)
	}

	// Advance past the linger; the next send flushes both records.
	clock = clock.Add(6 * time.Millisecond)
	if err := p.Send("t", nil, []byte("second")); err != nil {
		t.Fatal(err)
	}
	count, err = b.RecordCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("RecordCount after linger = %d, want 2", count)
	}
}

func TestLingerDisabled(t *testing.T) {
	clock := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := New(WithClock(func() time.Time { return clock }))
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1000, Linger: -1})

	if err := p.Send("t", nil, []byte("first")); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Hour)
	if err := p.Send("t", nil, []byte("second")); err != nil {
		t.Fatal(err)
	}
	count, err := b.RecordCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("disabled linger still flushed: %d records", count)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	count, err = b.RecordCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("close did not flush: %d records", count)
	}
}

func TestLingerTimestampsSpreadAcrossFlushes(t *testing.T) {
	// Two flushes separated by the clock must yield distinct
	// LogAppendTime values — the property the paper's execution-time
	// measurement depends on.
	clock := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	b := New(WithClock(func() time.Time { return clock }))
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	p := newProducer(t, b, ProducerConfig{BatchSize: 1})

	if err := p.Send("t", nil, []byte("a")); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(3 * time.Second)
	if err := p.Send("t", nil, []byte("b")); err != nil {
		t.Fatal(err)
	}
	first, last, n, err := b.TimeSpan("t")
	if err != nil || n != 2 {
		t.Fatalf("TimeSpan: %v, n=%d", err, n)
	}
	if got := last.Sub(first); got != 3*time.Second {
		t.Errorf("span = %v, want 3s", got)
	}
}
