package broker

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"
)

// snapshot is the serializable form of a broker's stored state, used by
// the standalone CLI tools (cmd/datasender writes a snapshot that
// cmd/resultcalc and cmd/beambench can load).
type snapshot struct {
	Topics []topicSnapshot
}

type topicSnapshot struct {
	Name       string
	Config     TopicConfig
	Partitions []partitionSnapshot
}

type partitionSnapshot struct {
	Records []recordSnapshot
}

type recordSnapshot struct {
	Key   []byte
	Value []byte
	TS    time.Time
}

// SaveSnapshot serializes all topics, configurations and records to w.
func (b *Broker) SaveSnapshot(w io.Writer) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	var snap snapshot
	for _, name := range b.topicNamesLocked() {
		t := b.topics[name]
		ts := topicSnapshot{Name: t.name, Config: t.cfg}
		for _, p := range t.parts {
			ts.Partitions = append(ts.Partitions, p.snapshot())
		}
		snap.Topics = append(snap.Topics, ts)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("broker: encode snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot restores topics from r into the broker. Topics that
// already exist cause an error.
func (b *Broker) LoadSnapshot(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("broker: decode snapshot: %w", err)
	}
	for _, ts := range snap.Topics {
		if err := b.CreateTopic(ts.Name, ts.Config); err != nil {
			return err
		}
		t, err := b.topic(ts.Name)
		if err != nil {
			return err
		}
		for i, ps := range ts.Partitions {
			if i >= len(t.parts) {
				return fmt.Errorf("broker: snapshot topic %q has %d partitions, config says %d",
					ts.Name, len(ts.Partitions), len(t.parts))
			}
			recs := make([]storedRecord, len(ps.Records))
			for j, rs := range ps.Records {
				recs[j] = storedRecord{key: rs.Key, value: rs.Value, ts: rs.TS}
			}
			if _, err := t.parts[i].append(recs); err != nil {
				return fmt.Errorf("broker: restore %s/%d: %w", ts.Name, i, err)
			}
		}
	}
	return nil
}

func (b *Broker) topicNamesLocked() []string {
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (p *partition) snapshot() partitionSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := partitionSnapshot{Records: make([]recordSnapshot, len(p.records))}
	for i, r := range p.records {
		ps.Records[i] = recordSnapshot{
			Key:   cloneBytes(r.key),
			Value: cloneBytes(r.value),
			TS:    r.ts,
		}
	}
	return ps
}
