package queries

import (
	"testing"
)

func newIndex(t *testing.T, q Query, seed uint64, inputs ...string) *SurvivorIndex {
	t.Helper()
	ix, err := NewSurvivorIndex(q, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs {
		ix.AddInput([]byte(in))
	}
	return ix
}

func TestSurvivorIndexOrderPreserving(t *testing.T) {
	ix := newIndex(t, Grep, 0, "a test one", "plain", "a test two")
	if ix.Inputs() != 3 {
		t.Fatalf("Inputs() = %d, want 3", ix.Inputs())
	}
	if ix.Expected() != 2 {
		t.Fatalf("Expected() = %d, want 2 grep survivors", ix.Expected())
	}
	p := ix.NewPairing()
	in, err := p.Pair([]byte("a test one"))
	if err != nil || in != 0 {
		t.Errorf("first pair = %d, %v; want input 0", in, err)
	}
	in, err = p.Pair([]byte("a test two"))
	if err != nil || in != 2 {
		t.Errorf("second pair = %d, %v; want input 2", in, err)
	}
}

// TestSurvivorIndexReordered: outputs arriving in a different order
// than their inputs still pair with the input that produced them.
func TestSurvivorIndexReordered(t *testing.T) {
	ix := newIndex(t, Identity, 0, "x", "y")
	p := ix.NewPairing()
	in, err := p.Pair([]byte("y"))
	if err != nil || in != 1 {
		t.Errorf("reordered pair y = %d, %v; want input 1", in, err)
	}
	in, err = p.Pair([]byte("x"))
	if err != nil || in != 0 {
		t.Errorf("reordered pair x = %d, %v; want input 0", in, err)
	}
}

// TestSurvivorIndexDuplicatesFIFO: equal payloads consume their input
// queue in order, and over-consumption errors.
func TestSurvivorIndexDuplicatesFIFO(t *testing.T) {
	ix := newIndex(t, Identity, 0, "dup", "other", "dup")
	p := ix.NewPairing()
	in, err := p.Pair([]byte("dup"))
	if err != nil || in != 0 {
		t.Errorf("first dup = %d, %v; want input 0", in, err)
	}
	in, err = p.Pair([]byte("dup"))
	if err != nil || in != 2 {
		t.Errorf("second dup = %d, %v; want input 2", in, err)
	}
	if _, err := p.Pair([]byte("dup")); err == nil {
		t.Error("third duplicate accepted with only two inputs")
	}
	if _, err := p.Pair([]byte("never-seen")); err == nil {
		t.Error("unknown payload accepted")
	}
}

// TestSurvivorIndexSessionsIndependent: two pairing sessions over one
// index must not share cursor state (concurrent runs pair in parallel).
func TestSurvivorIndexSessionsIndependent(t *testing.T) {
	ix := newIndex(t, Identity, 0, "a")
	p1, p2 := ix.NewPairing(), ix.NewPairing()
	if _, err := p1.Pair([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Pair([]byte("a")); err != nil {
		t.Errorf("second session affected by first: %v", err)
	}
}

func TestSurvivorIndexProjectionPayloads(t *testing.T) {
	ix := newIndex(t, Projection, 0, "user1\tsome query\t2006-03-01")
	p := ix.NewPairing()
	// The output carries the projected first column, not the input.
	in, err := p.Pair([]byte("user1"))
	if err != nil || in != 0 {
		t.Errorf("projection pair = %d, %v; want input 0", in, err)
	}
}

func TestSurvivorIndexSampleSeed(t *testing.T) {
	const seed = 7
	inputs := []string{"r1", "r2", "r3", "r4", "r5"}
	ix := newIndex(t, Sample, seed, inputs...)
	want := 0
	for _, rec := range inputs {
		if SampleKeep([]byte(rec), seed) {
			want++
		}
	}
	if ix.Expected() != want {
		t.Errorf("Expected() = %d, want %d (SampleKeep survivors)", ix.Expected(), want)
	}
}
