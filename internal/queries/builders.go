package queries

import (
	"fmt"
	"time"

	"beambench/internal/apex"
	"beambench/internal/beam"
	"beambench/internal/broker"
	"beambench/internal/flink"
	"beambench/internal/spark"
	"beambench/internal/watermark"
)

// Workload names the broker topics a query reads and writes, plus the
// seed for the sample query.
type Workload struct {
	Broker      *broker.Broker
	InputTopic  string
	OutputTopic string
	// Seed drives the deterministic sampling decision.
	Seed uint64
	// Producer configures the output producer of native jobs.
	Producer broker.ProducerConfig
	// InputRecords is the end-of-input contract threaded into every
	// query source: the total record count the input topic will
	// eventually hold. Sources keep consuming until that many records
	// have been appended and drained, so the data sender may still be
	// streaming into the topic when the query starts. 0 degrades the
	// sources to a bounded snapshot of the topic contents at startup.
	InputRecords int64
}

func (w Workload) validate() error {
	if w.Broker == nil {
		return fmt.Errorf("queries: nil broker")
	}
	if w.InputTopic == "" || w.OutputTopic == "" {
		return fmt.Errorf("queries: missing topic names")
	}
	return nil
}

// NativeFlink builds the query as a native Flink job on env, using the
// engine's own DataStream API (the paper's "system API" variant). The
// job is fully chainable: source -> one operator -> sink, as in the
// native execution plan of Figure 12.
func NativeFlink(env *flink.Environment, w Workload, q Query) error {
	if err := w.validate(); err != nil {
		return err
	}
	src := env.AddSource("Custom Source", flink.KafkaSource(w.Broker, w.InputTopic, w.InputRecords))
	var out *flink.DataStream
	switch q {
	case Identity:
		out = src.Map("Identity", func(rec []byte) []byte { return rec })
	case Sample:
		out = src.Filter("Sample", func(rec []byte) bool { return SampleKeep(rec, w.Seed) })
	case Projection:
		out = src.Map("Projection", Project)
	case Grep:
		out = src.Filter("Filter", GrepMatch)
	case WindowedCount:
		// Timestamp assignment stamps watermarks where event time enters
		// the dataflow; KeyBy routes each user's records to one subtask of
		// the windowed reduce operator, whose panes fire off the
		// propagated (min-over-senders) watermark and flush at end of
		// input.
		out = src.
			AssignTimestampsBounded("Timestamps/Watermarks", EventTime, WindowedCountBound).
			KeyBy(UserKey).
			TumblingCountWindow("WindowedCount", flink.WindowConfig{
				Size:      WindowedCountWindow,
				EventTime: EventTime,
				Key:       UserKey,
				Format:    FormatWindowedCount,
			})
	case SlidingSum:
		// Same dataflow as WindowedCount with an overlapping window
		// assigner and a sum aggregate over the item-rank column.
		out = src.
			AssignTimestampsBounded("Timestamps/Watermarks", EventTime, SlidingSumBound).
			KeyBy(UserKey).
			AggWindow("SlidingSum", flink.WindowConfig{
				Assigner:  slidingSumAssigner(),
				Agg:       watermark.AggSum,
				Value:     ItemRank,
				EventTime: EventTime,
				Key:       UserKey,
				Format:    FormatSlidingSum,
			})
	case Join:
		// Two branches over the same topic, each tagged and timestamped
		// BEFORE the union: assigning after the merge would observe the
		// nondeterministic interleaving of two racing source chains as
		// unbounded disorder. The union forwards the minimum watermark
		// over its inputs; the keyed join operator fires panes off that
		// propagated minimum and flushes at end of input.
		srcB := env.AddSource("Custom Source B", flink.KafkaSource(w.Broker, w.InputTopic, w.InputRecords))
		a := src.
			Map("TagQueries", TagSideA).
			AssignTimestampsBounded("Timestamps/Watermarks A", TaggedEventTime, JoinBound)
		b := srcB.
			Filter("FilterClicks", HasItemRank).
			Map("TagClicks", TagSideB).
			AssignTimestampsBounded("Timestamps/Watermarks B", TaggedEventTime, JoinBound)
		out = a.Union("Union", b).
			KeyBy(TaggedUserKey).
			ProcessWithWatermark("Join", joinFlinkFactory())
	default:
		return fmt.Errorf("queries: unknown query %d", q)
	}
	out.AddSink("Unnamed", flink.KafkaSink(w.Broker, w.OutputTopic, w.Producer))
	return nil
}

// joinFlinkFactory deploys the shared join executable behind Flink's
// watermark-aware process hook: one state instance per subtask, panes
// firing off the propagated (min-over-senders) watermark.
func joinFlinkFactory() flink.WatermarkedProcessFactory {
	return func(flink.OperatorContext) (flink.ProcessFunc, flink.WatermarkFunc, flink.FlushFunc, error) {
		s := NewJoinState()
		process := func(rec []byte, _ flink.Collector) error { return s.Add(rec) }
		onWatermark := func(wm time.Time, out flink.Collector) error { return s.Fire(wm, out.Collect) }
		flush := func(out flink.Collector) error { return s.Flush(out.Collect) }
		return process, onWatermark, flush, nil
	}
}

// NativeSpark builds the query as a native Spark Streaming application
// on ssc using the DStream API. With a single input partition the
// native implementation does not repartition (parallelism has no
// observable effect, matching the paper's native Spark results).
func NativeSpark(ssc *spark.StreamingContext, w Workload, q Query) error {
	if err := w.validate(); err != nil {
		return err
	}
	src := ssc.KafkaDirectStream(w.Broker, w.InputTopic, w.InputRecords)
	var out *spark.DStream
	switch q {
	case Identity:
		out = src
	case Sample:
		out = src.Filter(func(rec []byte) bool { return SampleKeep(rec, w.Seed) })
	case Projection:
		out = src.Map(Project)
	case Grep:
		out = src.Filter(GrepMatch)
	case WindowedCount:
		// The micro-batch state path: the assigner stage stamps the
		// lineage watermark from the records it admits, and the
		// per-(window, user) counts persist across batches, fire at batch
		// boundaries once the propagated watermark passes a window's end,
		// and flush when the input drains. The single-partition input
		// topic keeps every key in one partition, so no keyed repartition
		// is needed natively.
		// Named after the DStream operation (the SaveToKafka output op
		// already carries the query name; distinct labels keep the
		// per-stage throughput report unambiguous).
		out = src.
			AssignTimestampsBounded(EventTime, WindowedCountBound).
			ReduceByKeyAndWindow("ReduceByKeyAndWindow",
				WindowedCountWindow, EventTime, UserKey, FormatWindowedCount)
	case SlidingSum:
		out = src.
			AssignTimestampsBounded(EventTime, SlidingSumBound).
			AggByKeyAndWindow("AggByKeyAndWindow", spark.WindowConfig{
				Assigner:  slidingSumAssigner(),
				Agg:       watermark.AggSum,
				Value:     ItemRank,
				EventTime: EventTime,
				Key:       UserKey,
				Format:    FormatSlidingSum,
			})
	case Join:
		// Each branch tags and timestamps before the union; the union
		// concatenates the branch partitions, so a keyed repartition
		// reunites each user's tagged records in one partition of the
		// stateful join stage. The stage's watermark is the lineage
		// minimum over both branch assigners.
		srcB := ssc.KafkaDirectStream(w.Broker, w.InputTopic, w.InputRecords)
		a := src.
			Map(TagSideA).
			AssignTimestampsBounded(TaggedEventTime, JoinBound)
		b := srcB.
			Filter(HasItemRank).
			Map(TagSideB).
			AssignTimestampsBounded(TaggedEventTime, JoinBound)
		out = a.Union(b).
			RepartitionByKey(ssc.DefaultParallelism(), TaggedUserKey).
			Stateful("Join", func(int) (spark.StatefulProcessor, error) {
				return &joinSparkProcessor{state: NewJoinState()}, nil
			})
	default:
		return fmt.Errorf("queries: unknown query %d", q)
	}
	out.SaveToKafka(q.String(), w.Broker, w.OutputTopic, w.Producer)
	return nil
}

// joinSparkProcessor deploys the shared join executable behind Spark's
// keyed micro-batch state hook: panes fire at batch boundaries off the
// propagated lineage watermark and flush when the input drains.
type joinSparkProcessor struct {
	state *JoinState
}

func (p *joinSparkProcessor) Process(_ spark.TaskContext, rec []byte, _ func([]byte)) error {
	return p.state.Add(rec)
}

func (p *joinSparkProcessor) EndBatch(task spark.TaskContext, emit func([]byte)) error {
	return p.state.Fire(task.Watermark, func(rec []byte) error { emit(rec); return nil })
}

func (p *joinSparkProcessor) EndStream(_ spark.TaskContext, emit func([]byte)) error {
	return p.state.Flush(func(rec []byte) error { emit(rec); return nil })
}

// NativeApex builds the query as a native Apex application DAG:
// Kafka input -> one operator -> Kafka output, all streams windowed
// (batched buffer-server publishing) as the engine defaults.
func NativeApex(w Workload, q Query) (*apex.Application, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if q == Join {
		return nativeApexJoin(w), nil
	}
	app := apex.NewApplication(q.String())
	app.AddInput("kafkaInput", apex.KafkaInput(w.Broker, w.InputTopic, w.InputRecords))
	switch q {
	case Identity:
		app.AddOperator("identity", apex.PassThrough())
	case Sample:
		seed := w.Seed
		app.AddOperator("sample", apex.FilterOp(func(rec []byte) bool { return SampleKeep(rec, seed) }))
	case Projection:
		app.AddOperator("projection", apex.MapOp(Project))
	case Grep:
		app.AddOperator("grep", apex.FilterOp(GrepMatch))
	case WindowedCount:
		app.AddOperator("windowedCount", apex.TumblingCountWindow(
			WindowedCountWindow, EventTime, UserKey, FormatWindowedCount))
	case SlidingSum:
		app.AddOperator("slidingSum", apex.AggWindowOp(apex.WindowConfig{
			Assigner:  slidingSumAssigner(),
			Agg:       watermark.AggSum,
			Value:     ItemRank,
			EventTime: EventTime,
			Key:       UserKey,
			Format:    FormatSlidingSum,
		}))
	default:
		return nil, fmt.Errorf("queries: unknown query %d", q)
	}
	opName := map[Query]string{
		Identity: "identity", Sample: "sample", Projection: "projection",
		Grep: "grep", WindowedCount: "windowedCount", SlidingSum: "slidingSum",
	}[q]
	app.AddOutput("kafkaOutput", apex.KafkaOutput(w.Broker, w.OutputTopic, w.Producer))
	if q.Stateful() {
		// The assigner stamps the DAG's watermark where event time enters
		// it; keyed partitioning routes every user's records to one
		// partition of the stateful operator, whose panes fire off the
		// propagated (min-over-senders) watermark and drain at end of
		// stream.
		bound := WindowedCountBound
		if q == SlidingSum {
			bound = SlidingSumBound
		}
		app.AddOperator("assignTimestamps", apex.AssignTimestamps(EventTime, bound))
		app.AddStream("input", "kafkaInput", "assignTimestamps")
		app.AddStream("assigned", "assignTimestamps", opName)
		app.SetStreamKeyed("assigned", UserKey)
	} else {
		app.AddStream("input", "kafkaInput", opName)
	}
	app.AddStream("output", opName, "kafkaOutput")
	return app, nil
}

// nativeApexJoin builds the two-input join DAG: each branch reads the
// topic, tags and timestamps its records, and both assigned streams
// converge keyed on the join operator — whose combined input watermark
// is the minimum over the senders of BOTH streams, so no pane fires
// before both branches have passed it.
func nativeApexJoin(w Workload) *apex.Application {
	app := apex.NewApplication(Join.String())
	app.AddInput("kafkaInputA", apex.KafkaInput(w.Broker, w.InputTopic, w.InputRecords))
	app.AddInput("kafkaInputB", apex.KafkaInput(w.Broker, w.InputTopic, w.InputRecords))
	app.AddOperator("tagQueries", apex.MapOp(TagSideA))
	app.AddOperator("tagClicks", apex.FlatMapOp(func(t []byte, emit func([]byte) error) error {
		if !HasItemRank(t) {
			return nil
		}
		return emit(TagSideB(t))
	}))
	app.AddOperator("assignTimestampsA", apex.AssignTimestamps(TaggedEventTime, JoinBound))
	app.AddOperator("assignTimestampsB", apex.AssignTimestamps(TaggedEventTime, JoinBound))
	app.AddOperator("join", joinApexFactory())
	app.AddOutput("kafkaOutput", apex.KafkaOutput(w.Broker, w.OutputTopic, w.Producer))
	// The output topic has one partition, so the sink is pinned to one
	// container — which also keeps the eight-operator DAG inside the
	// default cluster's vcore budget at parallelism 2.
	app.SetOperatorPartitions("kafkaOutput", 1)
	app.AddStream("inputA", "kafkaInputA", "tagQueries")
	app.AddStream("inputB", "kafkaInputB", "tagClicks")
	app.AddStream("taggedA", "tagQueries", "assignTimestampsA")
	app.AddStream("taggedB", "tagClicks", "assignTimestampsB")
	app.AddStream("assignedA", "assignTimestampsA", "join")
	app.AddStream("assignedB", "assignTimestampsB", "join")
	app.SetStreamKeyed("assignedA", TaggedUserKey)
	app.SetStreamKeyed("assignedB", TaggedUserKey)
	app.AddStream("output", "join", "kafkaOutput")
	return app
}

// joinApexFactory deploys the shared join executable behind the engine's
// watermark-aware operator hooks.
func joinApexFactory() apex.GenericFactory {
	return func(apex.OperatorContext) (apex.GenericOperator, error) {
		return &joinApexOperator{state: NewJoinState()}, nil
	}
}

type joinApexOperator struct {
	state *JoinState
}

func (o *joinApexOperator) Process(t []byte, _ func([]byte) error) error {
	return o.state.Add(t)
}

// OnWatermark implements apex.WatermarkAware.
func (o *joinApexOperator) OnWatermark(w time.Time, emit func([]byte) error) error {
	return o.state.Fire(w, emit)
}

// EndStream implements apex.StreamFlusher.
func (o *joinApexOperator) EndStream(emit func([]byte) error) error {
	return o.state.Flush(emit)
}

func (o *joinApexOperator) Teardown() error { return nil }

// BeamPipeline builds the query once against the abstraction layer; the
// same pipeline object runs on every runner. The shape matches the
// paper's Beam implementations: KafkaIO.read().withoutMetadata() ->
// Values.create() -> query ParDo -> KafkaIO.write() (Figure 13).
func BeamPipeline(w Workload, q Query) (*beam.Pipeline, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, w.Broker, w.InputTopic)))
	var out beam.PCollection
	switch q {
	case Identity:
		out = beam.ParDo(p, "Identity", beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
			return emit(elem)
		}), vals)
	case Sample:
		seed := w.Seed
		out = beam.Filter(p, "Sample", func(elem any) (bool, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return false, fmt.Errorf("queries: sample element %T is not []byte", elem)
			}
			return SampleKeep(rec, seed), nil
		}, vals)
	case Projection:
		out = beam.MapElements(p, "Projection", func(elem any) (any, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return nil, fmt.Errorf("queries: projection element %T is not []byte", elem)
			}
			return Project(rec), nil
		}, vals)
	case Grep:
		out = beam.Filter(p, "Grep", func(elem any) (bool, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return false, fmt.Errorf("queries: grep element %T is not []byte", elem)
			}
			return GrepMatch(rec), nil
		}, vals)
	case WindowedCount:
		// WindowInto(FixedWindows + event-time extractor) -> WithKeys
		// (user ID) -> GroupByKey -> count-and-format. Every runner
		// completes the GroupByKey translation: keyed routing plus the
		// shared watermark-driven pane firing (graphx.GBKState).
		ws := beam.WindowingStrategy{Fn: beam.FixedWindows{Size: WindowedCountWindow}}.
			WithEventTime(EventTimeOf, WindowedCountBound)
		windowed := beam.WindowInto(p, ws, vals)
		keyed := beam.WithKeys(p, "WithKeys", userKeyOf(UserKey), windowed)
		grouped := beam.GroupByKey(p, keyed)
		out = beam.MapElements(p, "WindowedCount", groupedPaneFn(func(start time.Time, user string, values []any) (any, error) {
			return FormatWindowedCount(start, []byte(user), int64(len(values))), nil
		}), grouped, beam.WithCoder(beam.BytesCoder{}))
	case SlidingSum:
		// The sliding assigner replicates each record into every
		// overlapping window at WindowInto; the rest of the shape is
		// WindowedCount's, with a sum over the item-rank column in the
		// pane formatter.
		ws := beam.WindowingStrategy{Fn: beam.SlidingWindows{Size: SlidingSumWindow, Slide: SlidingSumSlide}}.
			WithEventTime(EventTimeOf, SlidingSumBound)
		windowed := beam.WindowInto(p, ws, vals)
		keyed := beam.WithKeys(p, "WithKeys", userKeyOf(UserKey), windowed)
		grouped := beam.GroupByKey(p, keyed)
		out = beam.MapElements(p, "SlidingSum", groupedPaneFn(func(start time.Time, user string, values []any) (any, error) {
			var sum int64
			for _, v := range values {
				rec, err := GroupedValueBytes(v)
				if err != nil {
					return nil, err
				}
				rank, err := ItemRank(rec)
				if err != nil {
					return nil, err
				}
				sum += rank
			}
			return FormatSlidingSum(start, []byte(user), sum), nil
		}), grouped, beam.WithCoder(beam.BytesCoder{}))
	case Join:
		// Two reads of the topic, tagged per branch and windowed BEFORE
		// the Flatten (the Beam model requires identical windowing across
		// Flatten inputs, and per-branch timestamping keeps the racing
		// branches' disorder bounded). The GroupByKey pane then holds both
		// sides' tagged records of one (window, user), and the formatting
		// ParDo emits the inner-join cross product.
		valsB := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, w.Broker, w.InputTopic)))
		a := beam.MapElements(p, "TagQueries", func(elem any) (any, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return nil, fmt.Errorf("queries: join element %T is not []byte", elem)
			}
			return TagSideA(rec), nil
		}, vals, beam.WithCoder(beam.BytesCoder{}))
		clicks := beam.Filter(p, "FilterClicks", func(elem any) (bool, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return false, fmt.Errorf("queries: join element %T is not []byte", elem)
			}
			return HasItemRank(rec), nil
		}, valsB)
		b := beam.MapElements(p, "TagClicks", func(elem any) (any, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return nil, fmt.Errorf("queries: join element %T is not []byte", elem)
			}
			return TagSideB(rec), nil
		}, clicks, beam.WithCoder(beam.BytesCoder{}))
		ws := beam.WindowingStrategy{Fn: beam.FixedWindows{Size: JoinWindow}}.
			WithEventTime(TaggedEventTimeOf, JoinBound)
		merged := beam.Flatten(p, beam.WindowInto(p, ws, a), beam.WindowInto(p, ws, b))
		keyed := beam.WithKeys(p, "WithKeys", userKeyOf(TaggedUserKey), merged)
		grouped := beam.GroupByKey(p, keyed)
		out = beam.ParDo(p, "Join", beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
			g, ok := elem.(beam.Grouped)
			if !ok {
				return fmt.Errorf("queries: join element %T is not Grouped", elem)
			}
			iw, ok := g.Window.(beam.IntervalWindow)
			if !ok {
				return fmt.Errorf("queries: join pane carries %T, want IntervalWindow", g.Window)
			}
			user, err := beam.KeyString(g.Key)
			if err != nil {
				return err
			}
			return JoinPairs(iw.Start, []byte(user), g.Values, func(row []byte) error {
				return emit(row)
			})
		}), grouped, beam.WithCoder(beam.BytesCoder{}))
	default:
		return nil, fmt.Errorf("queries: unknown query %d", q)
	}
	beam.KafkaWrite(p, w.Broker, w.OutputTopic, out, w.Producer)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// userKeyOf adapts a record-level key extractor to the abstraction
// layer's element-typed WithKeys function, keying by the string form.
func userKeyOf(key func(rec []byte) ([]byte, error)) func(elem any) (any, error) {
	return func(elem any) (any, error) {
		rec, ok := elem.([]byte)
		if !ok {
			return nil, fmt.Errorf("queries: keyed element %T is not []byte", elem)
		}
		user, err := key(rec)
		if err != nil {
			return nil, err
		}
		return string(user), nil
	}
}

// groupedPaneFn adapts a (window start, user, values) pane formatter to
// a MapElements function over GroupByKey panes.
func groupedPaneFn(fn func(start time.Time, user string, values []any) (any, error)) func(elem any) (any, error) {
	return func(elem any) (any, error) {
		g, ok := elem.(beam.Grouped)
		if !ok {
			return nil, fmt.Errorf("queries: windowed element %T is not Grouped", elem)
		}
		iw, ok := g.Window.(beam.IntervalWindow)
		if !ok {
			return nil, fmt.Errorf("queries: windowed pane carries %T, want IntervalWindow", g.Window)
		}
		user, err := beam.KeyString(g.Key)
		if err != nil {
			return nil, err
		}
		return fn(iw.Start, user, g.Values)
	}
}
