package queries

import (
	"fmt"

	"beambench/internal/apex"
	"beambench/internal/beam"
	"beambench/internal/broker"
	"beambench/internal/flink"
	"beambench/internal/spark"
)

// Workload names the broker topics a query reads and writes, plus the
// seed for the sample query.
type Workload struct {
	Broker      *broker.Broker
	InputTopic  string
	OutputTopic string
	// Seed drives the deterministic sampling decision.
	Seed uint64
	// Producer configures the output producer of native jobs.
	Producer broker.ProducerConfig
	// InputRecords is the end-of-input contract threaded into every
	// query source: the total record count the input topic will
	// eventually hold. Sources keep consuming until that many records
	// have been appended and drained, so the data sender may still be
	// streaming into the topic when the query starts. 0 degrades the
	// sources to a bounded snapshot of the topic contents at startup.
	InputRecords int64
}

func (w Workload) validate() error {
	if w.Broker == nil {
		return fmt.Errorf("queries: nil broker")
	}
	if w.InputTopic == "" || w.OutputTopic == "" {
		return fmt.Errorf("queries: missing topic names")
	}
	return nil
}

// NativeFlink builds the query as a native Flink job on env, using the
// engine's own DataStream API (the paper's "system API" variant). The
// job is fully chainable: source -> one operator -> sink, as in the
// native execution plan of Figure 12.
func NativeFlink(env *flink.Environment, w Workload, q Query) error {
	if err := w.validate(); err != nil {
		return err
	}
	src := env.AddSource("Custom Source", flink.KafkaSource(w.Broker, w.InputTopic, w.InputRecords))
	var out *flink.DataStream
	switch q {
	case Identity:
		out = src.Map("Identity", func(rec []byte) []byte { return rec })
	case Sample:
		out = src.Filter("Sample", func(rec []byte) bool { return SampleKeep(rec, w.Seed) })
	case Projection:
		out = src.Map("Projection", Project)
	case Grep:
		out = src.Filter("Filter", GrepMatch)
	case WindowedCount:
		// KeyBy routes each user's records to one subtask of the new
		// windowed reduce operator; panes fire as the subtask watermark
		// passes window ends and the rest flush at end of input.
		out = src.KeyBy(UserKey).TumblingCountWindow("WindowedCount", flink.WindowConfig{
			Size:      WindowedCountWindow,
			Bound:     WindowedCountBound,
			EventTime: EventTime,
			Key:       UserKey,
			Format:    FormatWindowedCount,
		})
	default:
		return fmt.Errorf("queries: unknown query %d", q)
	}
	out.AddSink("Unnamed", flink.KafkaSink(w.Broker, w.OutputTopic, w.Producer))
	return nil
}

// NativeSpark builds the query as a native Spark Streaming application
// on ssc using the DStream API. With a single input partition the
// native implementation does not repartition (parallelism has no
// observable effect, matching the paper's native Spark results).
func NativeSpark(ssc *spark.StreamingContext, w Workload, q Query) error {
	if err := w.validate(); err != nil {
		return err
	}
	src := ssc.KafkaDirectStream(w.Broker, w.InputTopic, w.InputRecords)
	var out *spark.DStream
	switch q {
	case Identity:
		out = src
	case Sample:
		out = src.Filter(func(rec []byte) bool { return SampleKeep(rec, w.Seed) })
	case Projection:
		out = src.Map(Project)
	case Grep:
		out = src.Filter(GrepMatch)
	case WindowedCount:
		// The micro-batch state path: per-(window, user) counts persist
		// across batches, fire at batch boundaries once the watermark
		// passes a window's end, and flush when the input drains. The
		// single-partition input topic keeps every key in one partition,
		// so no keyed repartition is needed natively.
		// Named after the DStream operation (the SaveToKafka output op
		// already carries the query name; distinct labels keep the
		// per-stage throughput report unambiguous).
		out = src.ReduceByKeyAndWindow("ReduceByKeyAndWindow",
			WindowedCountWindow, WindowedCountBound, EventTime, UserKey, FormatWindowedCount)
	default:
		return fmt.Errorf("queries: unknown query %d", q)
	}
	out.SaveToKafka(q.String(), w.Broker, w.OutputTopic, w.Producer)
	return nil
}

// NativeApex builds the query as a native Apex application DAG:
// Kafka input -> one operator -> Kafka output, all streams windowed
// (batched buffer-server publishing) as the engine defaults.
func NativeApex(w Workload, q Query) (*apex.Application, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	app := apex.NewApplication(q.String())
	app.AddInput("kafkaInput", apex.KafkaInput(w.Broker, w.InputTopic, w.InputRecords))
	switch q {
	case Identity:
		app.AddOperator("identity", apex.PassThrough())
	case Sample:
		seed := w.Seed
		app.AddOperator("sample", apex.FilterOp(func(rec []byte) bool { return SampleKeep(rec, seed) }))
	case Projection:
		app.AddOperator("projection", apex.MapOp(Project))
	case Grep:
		app.AddOperator("grep", apex.FilterOp(GrepMatch))
	case WindowedCount:
		app.AddOperator("windowedCount", apex.TumblingCountWindow(
			WindowedCountWindow, WindowedCountBound, EventTime, UserKey, FormatWindowedCount))
	default:
		return nil, fmt.Errorf("queries: unknown query %d", q)
	}
	opName := map[Query]string{
		Identity: "identity", Sample: "sample", Projection: "projection",
		Grep: "grep", WindowedCount: "windowedCount",
	}[q]
	app.AddOutput("kafkaOutput", apex.KafkaOutput(w.Broker, w.OutputTopic, w.Producer))
	app.AddStream("input", "kafkaInput", opName)
	app.AddStream("output", opName, "kafkaOutput")
	if q.Stateful() {
		// Keyed partitioning: every user's records reach one partition
		// of the stateful operator; panes flush on streaming-window
		// boundaries (EndWindow) and at end of stream.
		app.SetStreamKeyed("input", UserKey)
	}
	return app, nil
}

// BeamPipeline builds the query once against the abstraction layer; the
// same pipeline object runs on every runner. The shape matches the
// paper's Beam implementations: KafkaIO.read().withoutMetadata() ->
// Values.create() -> query ParDo -> KafkaIO.write() (Figure 13).
func BeamPipeline(w Workload, q Query) (*beam.Pipeline, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, w.Broker, w.InputTopic)))
	var out beam.PCollection
	switch q {
	case Identity:
		out = beam.ParDo(p, "Identity", beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
			return emit(elem)
		}), vals)
	case Sample:
		seed := w.Seed
		out = beam.Filter(p, "Sample", func(elem any) (bool, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return false, fmt.Errorf("queries: sample element %T is not []byte", elem)
			}
			return SampleKeep(rec, seed), nil
		}, vals)
	case Projection:
		out = beam.MapElements(p, "Projection", func(elem any) (any, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return nil, fmt.Errorf("queries: projection element %T is not []byte", elem)
			}
			return Project(rec), nil
		}, vals)
	case Grep:
		out = beam.Filter(p, "Grep", func(elem any) (bool, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return false, fmt.Errorf("queries: grep element %T is not []byte", elem)
			}
			return GrepMatch(rec), nil
		}, vals)
	case WindowedCount:
		// WindowInto(FixedWindows + event-time extractor) -> WithKeys
		// (user ID) -> GroupByKey -> count-and-format. Every runner
		// completes the GroupByKey translation: keyed routing plus the
		// shared watermark-driven pane firing (graphx.GBKState).
		ws := beam.WindowingStrategy{Fn: beam.FixedWindows{Size: WindowedCountWindow}}.
			WithEventTime(EventTimeOf, WindowedCountBound)
		windowed := beam.WindowInto(p, ws, vals)
		keyed := beam.WithKeys(p, "WithKeys", func(elem any) (any, error) {
			rec, ok := elem.([]byte)
			if !ok {
				return nil, fmt.Errorf("queries: windowed element %T is not []byte", elem)
			}
			user, err := UserKey(rec)
			if err != nil {
				return nil, err
			}
			return string(user), nil
		}, windowed)
		grouped := beam.GroupByKey(p, keyed)
		out = beam.MapElements(p, "WindowedCount", func(elem any) (any, error) {
			g, ok := elem.(beam.Grouped)
			if !ok {
				return nil, fmt.Errorf("queries: windowed element %T is not Grouped", elem)
			}
			iw, ok := g.Window.(beam.IntervalWindow)
			if !ok {
				return nil, fmt.Errorf("queries: windowed pane carries %T, want IntervalWindow", g.Window)
			}
			user, err := beam.KeyString(g.Key)
			if err != nil {
				return nil, err
			}
			return FormatWindowedCount(iw.Start, []byte(user), int64(len(g.Values))), nil
		}, grouped, beam.WithCoder(beam.BytesCoder{}))
	default:
		return nil, fmt.Errorf("queries: unknown query %d", q)
	}
	beam.KafkaWrite(p, w.Broker, w.OutputTopic, out, w.Producer)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
