package queries

import (
	"testing"

	"beambench/internal/goleak"
)

// TestMain gates the package's tests on goroutine hygiene: any
// goroutine that outlives the test run (engine subtask, consumer
// waiter) fails the binary. This is the runtime counterpart of the
// static ctxleak check in cmd/beamvet.
func TestMain(m *testing.M) {
	goleak.VerifyTestMain(m)
}
