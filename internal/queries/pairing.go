package queries

import (
	"fmt"
)

// SurvivorIndex maps each expected output payload of a query to the
// ordinals (append order) of the input records that produce it. Feed
// every input record once with AddInput; the index is then immutable
// and shareable: NewPairing hands out independent cursor sessions, one
// per result calculation, so concurrent benchmark cells can pair
// against one cached index.
//
// Pairing is by record identity — each output payload is matched FIFO
// against the expected outputs of the surviving inputs — not by
// position, so it stays correct when parallel engine partitions
// interleave the output topic; for order-preserving cells it reduces to
// "k-th output is the k-th survivor" exactly. Its one fundamental
// limit: byte-identical records are indistinguishable, so if two equal
// payloads cross during an interleaving, FIFO assigns the earlier input
// to the earlier output. That is the minimal-crossing assignment among
// the (unidentifiable) valid ones; it keeps the latency sum and mean
// exact, while tail quantiles can be biased low by at most the
// reordering window of equal payloads. Resolving that would require
// per-record identifiers in the payloads, which would change the
// workload the paper measures.
type SurvivorIndex struct {
	query   Query
	keep    func([]byte) bool
	inputs  int
	total   int
	entries map[string]*survivorEntry
	// agg accumulates (window, user) aggregates for the stateful
	// queries; entries are built from it lazily on the first read, each
	// expected output pairing with its latest contributing input — the
	// record whose arrival completes the pane.
	agg    expectedAggregator
	sealed bool
}

// survivorEntry is one distinct expected output payload: a dense id
// (for the sessions' cursor slices) and the producing input ordinals.
type survivorEntry struct {
	id     int
	inputs []int
}

// NewSurvivorIndex returns an empty index for q; seed drives the sample
// query's survivor decision. For the stateful queries the index
// aggregates instead of applying a per-record predicate: each expected
// output payload is a pane-derived row, and its paired input is the
// row's latest contributing record.
func NewSurvivorIndex(q Query, seed uint64) (*SurvivorIndex, error) {
	if q.Stateful() {
		var agg expectedAggregator
		switch q {
		case WindowedCount:
			agg = newWindowedAggregator()
		case SlidingSum:
			agg = slidingSumReference()
		case Join:
			agg = newJoinReference()
		}
		return &SurvivorIndex{
			query:   q,
			agg:     agg,
			entries: make(map[string]*survivorEntry),
		}, nil
	}
	keep, err := SurvivorPredicate(q, seed)
	if err != nil {
		return nil, err
	}
	return &SurvivorIndex{
		query:   q,
		keep:    keep,
		entries: make(map[string]*survivorEntry),
	}, nil
}

// AddInput feeds one input record in append order. Non-surviving
// records advance the ordinal but are otherwise ignored; for keyed
// queries every record feeds its pane's aggregate.
func (ix *SurvivorIndex) AddInput(rec []byte) {
	i := ix.inputs
	ix.inputs++
	if ix.agg != nil {
		if ix.sealed {
			panic("queries: SurvivorIndex.AddInput after the index was read")
		}
		// Malformed records cannot occur in generator datasets; a parse
		// failure here would equally fail every engine's run.
		_ = ix.agg.add(rec, i)
		return
	}
	if !ix.keep(rec) {
		return
	}
	key := string(OutputValue(ix.query, rec))
	e, ok := ix.entries[key]
	if !ok {
		e = &survivorEntry{id: len(ix.entries)}
		ix.entries[key] = e
	}
	e.inputs = append(e.inputs, i)
	ix.total++
}

// seal freezes a keyed index: the accumulated aggregates become regular
// payload entries, one expected output per pane, paired with the pane's
// latest contributing input ordinal.
func (ix *SurvivorIndex) seal() {
	if ix.agg == nil || ix.sealed {
		return
	}
	ix.sealed = true
	for _, g := range ix.agg.groups() {
		// Join panes can emit byte-identical rows (the same user, query
		// and rank twice within one window), so entries collect ordinals
		// like the record-level path does: FIFO in firing order.
		key := string(g.payload)
		e, ok := ix.entries[key]
		if !ok {
			e = &survivorEntry{id: len(ix.entries)}
			ix.entries[key] = e
		}
		e.inputs = append(e.inputs, g.lastInput)
		ix.total++
	}
}

// Inputs reports how many input records were fed.
func (ix *SurvivorIndex) Inputs() int { return ix.inputs }

// Expected reports how many output records the fed inputs produce.
func (ix *SurvivorIndex) Expected() int {
	ix.seal()
	return ix.total
}

// NewPairing returns a fresh cursor session over the index. Sessions
// are independent; the index itself is never mutated by them.
func (ix *SurvivorIndex) NewPairing() *SurvivorPairing {
	ix.seal()
	return &SurvivorPairing{ix: ix, cursors: make([]int, len(ix.entries))}
}

// SurvivorPairing consumes one run's output records in append order and
// resolves each to the input ordinal that produced it.
type SurvivorPairing struct {
	ix      *SurvivorIndex
	cursors []int
}

// Pair consumes the next output record and returns the ordinal of its
// source input. It errors when the payload matches no unconsumed
// surviving input — the engine emitted a record it should not have.
func (p *SurvivorPairing) Pair(value []byte) (int, error) {
	e, ok := p.ix.entries[string(value)]
	if !ok {
		return 0, fmt.Errorf("queries: output record %.40q matches no expected output", value)
	}
	cur := p.cursors[e.id]
	if cur >= len(e.inputs) {
		return 0, fmt.Errorf("queries: output record %.40q has no unconsumed source input", value)
	}
	p.cursors[e.id] = cur + 1
	return e.inputs[cur], nil
}
