package queries

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"beambench/internal/aol"
)

// WindowedCount parameters: per-user-ID counts over 1-second event-time
// tumbling windows. Event time is the record's own query-time column
// (not the broker append time, which differs between preload and stream
// ingestion), so the windowed output is deterministic across engines,
// APIs, parallelism levels and ingestion modes — the acceptance
// property of the stateful scenario.
const (
	// WindowedCountWindow is the tumbling window size.
	WindowedCountWindow = time.Second
	// WindowedCountBound is the assumed maximum event-time
	// out-of-orderness: the watermark trails the newest event time seen
	// by one window, delaying pane firing by at most one window against
	// a perfectly ordered stream while tolerating the reordering keyed
	// routing can introduce between source and stateful operator.
	WindowedCountBound = time.Second
)

// eventTimeLayout is the AOL query-time column format.
const eventTimeLayout = "2006-01-02 15:04:05"

// EventTime parses a record's event timestamp from its query-time
// column (the third tab-separated field). All four systems and the Beam
// translation derive event time this way, which is what makes the
// windowed aggregation reproducible from the dataset alone.
func EventTime(rec []byte) (time.Time, error) {
	col := nthColumn(rec, 2)
	if col == nil {
		return time.Time{}, fmt.Errorf("queries: record %.40q has no query-time column", rec)
	}
	t, err := time.Parse(eventTimeLayout, string(col))
	if err != nil {
		return time.Time{}, fmt.Errorf("queries: query time: %w", err)
	}
	return t, nil
}

// nthColumn returns the record's n-th (0-based) tab-separated column
// without allocating; nil when the record has fewer columns, an empty
// slice when the column exists but is empty (the absent-item-rank
// encoding).
func nthColumn(rec []byte, n int) []byte {
	start, col := 0, 0
	for i, b := range rec {
		if b != '\t' {
			continue
		}
		if col == n {
			return rec[start:i]
		}
		col++
		start = i + 1
	}
	if col == n {
		return rec[start:]
	}
	return nil
}

// EventTimeOf adapts EventTime to the abstraction layer's element-typed
// extractor (beam.EventTimeFn takes any).
func EventTimeOf(elem any) (time.Time, error) {
	rec, ok := elem.([]byte)
	if !ok {
		return time.Time{}, fmt.Errorf("queries: event-time element %T is not []byte", elem)
	}
	return EventTime(rec)
}

// UserKey returns a record's user-ID column, the WindowedCount grouping
// key.
func UserKey(rec []byte) ([]byte, error) {
	return aol.FirstColumn(rec), nil
}

// FormatWindowedCount renders one output record of the WindowedCount
// query: "<window-start-unix>\t<user-id>\t<count>". The triple is
// unique per pane, so outputs are pairable and the sorted output set is
// byte-identical across systems.
func FormatWindowedCount(windowStart time.Time, user []byte, count int64) []byte {
	out := make([]byte, 0, 24+len(user))
	out = strconv.AppendInt(out, windowStart.Unix(), 10)
	out = append(out, '\t')
	out = append(out, user...)
	out = append(out, '\t')
	out = strconv.AppendInt(out, count, 10)
	return out
}

// windowedGroup is one expected (window, user) aggregate derived from
// the input dataset.
type windowedGroup struct {
	payload []byte
	// lastInput is the append ordinal of the group's latest contributing
	// input record — the record whose arrival completes the pane, and
	// therefore the anchor for event-time latency pairing of keyed
	// outputs.
	lastInput int
}

// windowedAggregator accumulates the expected WindowedCount output set
// from input records, in the deterministic pane order (ascending window,
// keys first-seen within a window).
type windowedAggregator struct {
	counts map[int64]map[string]*windowedCountEntry
	order  []int64 // window starts in first-seen order; sorted at build
}

type windowedCountEntry struct {
	count     int64
	lastInput int
	seen      int // first-seen rank within the window
}

func newWindowedAggregator() *windowedAggregator {
	return &windowedAggregator{counts: make(map[int64]map[string]*windowedCountEntry)}
}

// add feeds one input record with its append ordinal.
func (a *windowedAggregator) add(rec []byte, ordinal int) error {
	et, err := EventTime(rec)
	if err != nil {
		return err
	}
	start := et.Truncate(WindowedCountWindow).Unix()
	user := string(aol.FirstColumn(rec))
	byUser, ok := a.counts[start]
	if !ok {
		byUser = make(map[string]*windowedCountEntry)
		a.counts[start] = byUser
		a.order = append(a.order, start)
	}
	e, ok := byUser[user]
	if !ok {
		e = &windowedCountEntry{seen: len(byUser)}
		byUser[user] = e
	}
	e.count++
	e.lastInput = ordinal
	return nil
}

// groups returns the expected panes in the deterministic order.
func (a *windowedAggregator) groups() []windowedGroup {
	starts := append([]int64(nil), a.order...)
	sortInt64s(starts)
	var out []windowedGroup
	for _, start := range starts {
		byUser := a.counts[start]
		users := make([]string, len(byUser))
		for u, e := range byUser {
			users[e.seen] = u
		}
		for _, u := range users {
			e := byUser[u]
			out = append(out, windowedGroup{
				payload:   FormatWindowedCount(time.Unix(start, 0).UTC(), []byte(u), e.count),
				lastInput: e.lastInput,
			})
		}
	}
	return out
}

func sortInt64s(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

// ExpectedWindowedCounts computes the WindowedCount output payloads a
// dataset must produce, in the deterministic pane order every engine
// fires in on ordered input. Tests and the result calculator use it as
// the reference.
func ExpectedWindowedCounts(records [][]byte) ([][]byte, error) {
	agg := newWindowedAggregator()
	for i, rec := range records {
		if err := agg.add(rec, i); err != nil {
			return nil, err
		}
	}
	groups := agg.groups()
	out := make([][]byte, len(groups))
	for i, g := range groups {
		out[i] = g.payload
	}
	return out, nil
}
