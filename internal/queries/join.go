package queries

import (
	"fmt"
	"strconv"
	"time"

	"beambench/internal/aol"
	"beambench/internal/watermark"
)

// Join parameters: a two-input windowed equi-join. Both inputs read the
// same AOL topic; side A is the query stream (every record, carrying
// the query text) and side B is the click stream (only records with an
// item rank). Within 1-second event-time tumbling windows the sides
// join on the user ID, emitting one output row per (query, rank) pair —
// an inner join, so windows where a user has no click produce nothing.
//
// The query exists to exercise the multi-input half of the control-
// event watermark architecture: two sources, per-branch timestamp
// assignment, a merge (Union/Flatten) whose watermark is the minimum
// over its inputs, and a keyed stateful operator that must not fire a
// pane before both branches' watermarks have passed its end.
const (
	// JoinWindow is the tumbling join window size.
	JoinWindow = time.Second
	// JoinBound is the assumed maximum event-time out-of-orderness per
	// branch (see WindowedCountBound).
	JoinBound = time.Second
)

// Tagged records: each join branch prefixes its records with a side tag
// ("A\t" or "B\t") before the merge, so the downstream keyed state can
// tell the sides apart while event time and user key still parse from
// the embedded original record.

// TagSideA tags a query-stream record.
func TagSideA(rec []byte) []byte {
	return append([]byte("A\t"), rec...)
}

// TagSideB tags a click-stream record.
func TagSideB(rec []byte) []byte {
	return append([]byte("B\t"), rec...)
}

// taggedParts splits a tagged record into its side and the original
// payload.
func taggedParts(tagged []byte) (side byte, payload []byte, err error) {
	if len(tagged) < 2 || tagged[1] != '\t' || (tagged[0] != 'A' && tagged[0] != 'B') {
		return 0, nil, fmt.Errorf("queries: join record %.40q has no side tag", tagged)
	}
	return tagged[0], tagged[2:], nil
}

// TaggedEventTime parses the event time of a tagged join record.
func TaggedEventTime(tagged []byte) (time.Time, error) {
	_, payload, err := taggedParts(tagged)
	if err != nil {
		return time.Time{}, err
	}
	return EventTime(payload)
}

// TaggedEventTimeOf adapts TaggedEventTime to the abstraction layer's
// element-typed extractor.
func TaggedEventTimeOf(elem any) (time.Time, error) {
	rec, ok := elem.([]byte)
	if !ok {
		return time.Time{}, fmt.Errorf("queries: join event-time element %T is not []byte", elem)
	}
	return TaggedEventTime(rec)
}

// TaggedUserKey returns the user-ID grouping key of a tagged record.
func TaggedUserKey(tagged []byte) ([]byte, error) {
	_, payload, err := taggedParts(tagged)
	if err != nil {
		return nil, err
	}
	return aol.FirstColumn(payload), nil
}

// QueryText returns a record's query column (the second tab-separated
// field), the join's side-A payload.
func QueryText(rec []byte) []byte {
	return nthColumn(rec, 1)
}

// FormatJoin renders one joined pair:
// "<window-start-unix>\t<user-id>\t<query>\t<rank>".
func FormatJoin(windowStart time.Time, user, query []byte, rank int64) []byte {
	out := make([]byte, 0, 26+len(user)+len(query))
	out = strconv.AppendInt(out, windowStart.Unix(), 10)
	out = append(out, '\t')
	out = append(out, user...)
	out = append(out, '\t')
	out = append(out, query...)
	out = append(out, '\t')
	out = strconv.AppendInt(out, rank, 10)
	return out
}

// joinAcc is one (window, user) join pane: the side-A query texts and
// side-B ranks in arrival order. Per-sender FIFO delivery keeps each
// side's relative order deterministic even when the branches' merge
// interleaves nondeterministically, so the A-major cross product emits
// in a stable order per pane.
type joinAcc struct {
	queries [][]byte
	ranks   []int64
}

// JoinState is the engine-shared join executable: tagged records
// accumulate per (window, user), and panes emit the A x B cross product
// once the propagated watermark passes the window's end. Every engine
// deploys it through its own stateful hook (flink ProcessWithWatermark,
// spark Stateful, apex watermark-aware operator), so the join semantics
// are defined exactly once.
type JoinState struct {
	state *watermark.WindowState[joinAcc]
}

// NewJoinState returns empty join state over JoinWindow tumbling
// windows.
func NewJoinState() *JoinState {
	a, err := watermark.NewTumblingAssigner(JoinWindow)
	if err != nil {
		panic(err) // constant window size; cannot fail
	}
	state, err := watermark.NewWindowState[joinAcc](a, nil)
	if err != nil {
		panic(err)
	}
	return &JoinState{state: state}
}

// Add accumulates one tagged record into its (window, user) pane.
func (s *JoinState) Add(tagged []byte) error {
	side, payload, err := taggedParts(tagged)
	if err != nil {
		return err
	}
	et, err := EventTime(payload)
	if err != nil {
		return err
	}
	user := string(aol.FirstColumn(payload))
	switch side {
	case 'A':
		q := append([]byte(nil), QueryText(payload)...)
		s.state.Upsert(et, user, func(a *joinAcc) { a.queries = append(a.queries, q) })
	default:
		rank, err := ItemRank(payload)
		if err != nil {
			return err
		}
		s.state.Upsert(et, user, func(a *joinAcc) { a.ranks = append(a.ranks, rank) })
	}
	return nil
}

// Fire emits every pane the watermark has passed.
func (s *JoinState) Fire(w time.Time, emit func([]byte) error) error {
	return s.state.FireReady(w, joinPane(emit))
}

// Flush emits every remaining pane at end of input.
func (s *JoinState) Flush(emit func([]byte) error) error {
	return s.state.FireAll(joinPane(emit))
}

// joinPane emits one pane's A-major cross product.
func joinPane(emit func([]byte) error) func(watermark.Pane[joinAcc]) error {
	return func(p watermark.Pane[joinAcc]) error {
		for _, q := range p.Acc.queries {
			for _, r := range p.Acc.ranks {
				if err := emit(FormatJoin(p.Start, []byte(p.Key), q, r)); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// GroupedValueBytes converts one GroupByKey pane value to record bytes.
// The direct runner hands values through in memory as []byte; the
// engine runners round-trip panes through the Grouped coder boundary,
// which decodes values as strings.
func GroupedValueBytes(v any) ([]byte, error) {
	switch rec := v.(type) {
	case []byte:
		return rec, nil
	case string:
		return []byte(rec), nil
	default:
		return nil, fmt.Errorf("queries: grouped value %T is not bytes", v)
	}
}

// JoinPairs emits the joined rows of one fired pane given its window
// start, user key and tagged values in arrival order — the formatting
// step of the Beam translation, fed from a GroupByKey pane.
func JoinPairs(windowStart time.Time, user []byte, tagged []any, emit func([]byte) error) error {
	var acc joinAcc
	for _, v := range tagged {
		rec, err := GroupedValueBytes(v)
		if err != nil {
			return err
		}
		side, payload, err := taggedParts(rec)
		if err != nil {
			return err
		}
		if side == 'A' {
			acc.queries = append(acc.queries, QueryText(payload))
		} else {
			rank, err := ItemRank(payload)
			if err != nil {
				return err
			}
			acc.ranks = append(acc.ranks, rank)
		}
	}
	for _, q := range acc.queries {
		for _, r := range acc.ranks {
			if err := emit(FormatJoin(windowStart, user, q, r)); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinRefAcc mirrors joinAcc for the dataset-derived reference, keeping
// each side entry's input ordinal for latency pairing.
type joinRefAcc struct {
	queries []joinRefQuery
	ranks   []joinRefRank
}

type joinRefQuery struct {
	text []byte
	ord  int
}

type joinRefRank struct {
	rank int64
	ord  int
}

// joinReference derives the expected Join output set from the raw
// (untagged) input dataset: every record contributes its query text to
// side A, and records with an item rank additionally contribute to side
// B — exactly what the two tagged branches of the engine pipelines
// deliver.
type joinReference struct {
	state *watermark.WindowState[joinRefAcc]
}

func newJoinReference() *joinReference {
	a, err := watermark.NewTumblingAssigner(JoinWindow)
	if err != nil {
		panic(err)
	}
	state, err := watermark.NewWindowState[joinRefAcc](a, nil)
	if err != nil {
		panic(err)
	}
	return &joinReference{state: state}
}

func (r *joinReference) add(rec []byte, ordinal int) error {
	et, err := EventTime(rec)
	if err != nil {
		return err
	}
	user := string(aol.FirstColumn(rec))
	q := append([]byte(nil), QueryText(rec)...)
	r.state.Upsert(et, user, func(a *joinRefAcc) {
		a.queries = append(a.queries, joinRefQuery{text: q, ord: ordinal})
	})
	if HasItemRank(rec) {
		rank, err := ItemRank(rec)
		if err != nil {
			return err
		}
		r.state.Upsert(et, user, func(a *joinRefAcc) {
			a.ranks = append(a.ranks, joinRefRank{rank: rank, ord: ordinal})
		})
	}
	return nil
}

// groups drains the state into the expected joined rows in firing
// order; each row pairs with the later of its two contributing inputs.
func (r *joinReference) groups() []windowedGroup {
	var out []windowedGroup
	_ = r.state.FireAll(func(p watermark.Pane[joinRefAcc]) error {
		for _, q := range p.Acc.queries {
			for _, b := range p.Acc.ranks {
				out = append(out, windowedGroup{
					payload:   FormatJoin(p.Start, []byte(p.Key), q.text, b.rank),
					lastInput: max(q.ord, b.ord),
				})
			}
		}
		return nil
	})
	return out
}

// ExpectedJoins computes the Join output payloads a dataset must
// produce, in the deterministic pane-firing order (the within-pane pair
// order is the reference's; engines may emit a pane's pairs in a
// different arrival-dependent order, so compare as sorted multisets).
func ExpectedJoins(records [][]byte) ([][]byte, error) {
	return expectedPayloads(newJoinReference(), records)
}
