// Package queries implements the StreamBench queries the benchmark
// runs, each in four variants: native Flink, native Spark Streaming,
// native Apex, and a single Apache-Beam-style pipeline runnable on any
// runner.
//
// The paper (Table II) benchmarks the four stateless queries and
// excludes the stateful ones (Section III-B) because the Spark runner
// of its era rejected stateful processing. This reproduction lifted
// that capability gap (the Spark runner now has a keyed micro-batch
// state path), so three stateful queries join the matrix: a tumbling
// count, a sliding sum, and a two-input windowed join.
//
// All variants share the same record-level semantics so that outputs are
// comparable across engines:
//
//   - Identity forwards records unchanged (the computational baseline).
//   - Sample keeps ~40% of records, decided by a seeded hash of the
//     record so every engine samples the same records deterministically.
//   - Projection emits the first tab-separated column (the user ID).
//   - Grep keeps records matching the regular expression "test"
//     (3,003 hits in the paper's 1,000,001-record workload, ~0.3%).
//   - WindowedCount emits per-user-ID counts over 1-second event-time
//     tumbling windows ("<window-start-unix>\t<user>\t<count>"), the
//     original stateful workload. Event time is the record's own
//     query-time column, so the output set is deterministic; pane
//     firing is watermark-driven (internal/watermark).
//   - SlidingSum emits per-user-ID item-rank sums over 2-second
//     event-time windows sliding every second — overlapping window
//     assignment over the same watermark machinery.
//   - Join reads the topic twice (query stream and click stream),
//     assigns timestamps per branch, merges, and inner-joins the sides
//     on user ID within 1-second tumbling windows — the two-input
//     stateful workload whose panes may only fire once the watermarks
//     of both branches have passed.
package queries

import (
	"fmt"
	"hash/fnv"
	"regexp"
	"strings"

	"beambench/internal/aol"
)

// Query enumerates the StreamBench queries of Table II.
type Query int

const (
	// Identity reads input and outputs it unchanged.
	Identity Query = iota + 1
	// Sample outputs a ~40% random subset of the input.
	Sample
	// Projection outputs the first column of each record.
	Projection
	// Grep outputs records matching the "test" regex.
	Grep
	// WindowedCount outputs per-user-ID counts over 1-second event-time
	// tumbling windows — the stateful query the paper excluded.
	WindowedCount
	// SlidingSum outputs per-user-ID item-rank sums over 2-second
	// event-time sliding windows advancing every second — the stateful
	// query with overlapping window assignment.
	SlidingSum
	// Join outputs the per-window inner join of the query stream with
	// the click stream on the user ID — the stateful query with two
	// inputs merged under one propagated watermark.
	Join
)

// All lists the queries in presentation order: the paper's four
// stateless queries, then the stateful windowed aggregations and the
// two-input join.
func All() []Query {
	return []Query{Identity, Sample, Projection, Grep, WindowedCount, SlidingSum, Join}
}

// Stateless lists the paper's original Table II queries.
func Stateless() []Query {
	return []Query{Identity, Sample, Projection, Grep}
}

// String returns the query name.
func (q Query) String() string {
	switch q {
	case Identity:
		return "Identity"
	case Sample:
		return "Sample"
	case Projection:
		return "Projection"
	case Grep:
		return "Grep"
	case WindowedCount:
		return "WindowedCount"
	case SlidingSum:
		return "SlidingSum"
	case Join:
		return "Join"
	default:
		return fmt.Sprintf("Query(%d)", int(q))
	}
}

// Valid reports whether q is a known query.
func (q Query) Valid() bool {
	return q >= Identity && q <= Join
}

// Stateful reports whether the query needs keyed state (the
// stateful-support half of the capability matrix).
func (q Query) Stateful() bool {
	switch q {
	case WindowedCount, SlidingSum, Join:
		return true
	default:
		return false
	}
}

// Names lists the canonical lower-case query names ParseQuery accepts,
// in presentation order — the valid set CLI flags print on a bad
// -query.
func Names() []string {
	qs := All()
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = strings.ToLower(q.String())
	}
	return out
}

// ParseQuery maps a query name (any case) to its Query.
func ParseQuery(s string) (Query, error) {
	switch strings.ToLower(s) {
	case "identity":
		return Identity, nil
	case "sample":
		return Sample, nil
	case "projection":
		return Projection, nil
	case "grep":
		return Grep, nil
	case "windowedcount", "windowed-count", "windowed":
		return WindowedCount, nil
	case "slidingsum", "sliding-sum", "sliding":
		return SlidingSum, nil
	case "join", "windowedjoin", "windowed-join":
		return Join, nil
	default:
		return 0, fmt.Errorf("queries: unknown query %q (valid: %s)", s, strings.Join(Names(), ", "))
	}
}

// SurvivorPredicate returns q's record-survival predicate: whether an
// input record produces an output record. Every predicate is
// deterministic (Sample hashes with the seed), which is what lets the
// result calculator recompute, from input records alone, exactly which
// inputs reached the output topic. WindowedCount has no per-record
// predicate — its outputs are per-(window, user) aggregates — so the
// SurvivorIndex aggregates instead (see pairing.go).
func SurvivorPredicate(q Query, seed uint64) (func([]byte) bool, error) {
	switch q {
	case Identity, Projection:
		return func([]byte) bool { return true }, nil
	case Grep:
		return GrepMatch, nil
	case Sample:
		return func(rec []byte) bool { return SampleKeep(rec, seed) }, nil
	case WindowedCount, SlidingSum, Join:
		return nil, fmt.Errorf("queries: %s outputs are aggregates; use SurvivorIndex", q)
	default:
		return nil, fmt.Errorf("queries: survivor predicate for unknown query %d", q)
	}
}

// OutputValue returns the output payload q emits for a surviving input
// record (the record itself for all queries but Projection).
func OutputValue(q Query, rec []byte) []byte {
	if q == Projection {
		return Project(rec)
	}
	return rec
}

// Description returns the Table II description of the query.
func (q Query) Description() string {
	switch q {
	case Identity:
		return "Read input and output it without performing any data transformation (baseline)."
	case Sample:
		return fmt.Sprintf("Read input and output a randomly chosen subset of about %.0f%% of the tuples.", SampleFraction*100)
	case Projection:
		return "Read input and output only the first column of each record."
	case Grep:
		return fmt.Sprintf("Read input and output only records matching the regex %q (~0.3%% of the input).", GrepPattern)
	case WindowedCount:
		return fmt.Sprintf("Read input and output per-user-ID record counts over %v event-time tumbling windows (stateful).", WindowedCountWindow)
	case SlidingSum:
		return fmt.Sprintf("Read input and output per-user-ID item-rank sums over %v event-time sliding windows every %v (stateful).", SlidingSumWindow, SlidingSumSlide)
	case Join:
		return fmt.Sprintf("Join the query stream with the click stream on user ID within %v event-time tumbling windows (stateful, two inputs).", JoinWindow)
	default:
		return "unknown query"
	}
}

// SampleFraction is the sample query's selectivity (Table II: the output
// is about 40% of the input).
const SampleFraction = 0.4

// GrepPattern is the grep query's search regex (Table II).
const GrepPattern = aol.GrepNeedle

// grepRegexp is the compiled grep pattern; regexp.Regexp is safe for
// concurrent use by multiple subtasks.
var grepRegexp = regexp.MustCompile(GrepPattern)

// GrepMatch reports whether a record matches the grep query.
func GrepMatch(record []byte) bool {
	return grepRegexp.Match(record)
}

// Project returns the projection query's output for a record: the first
// tab-separated column.
func Project(record []byte) []byte {
	return aol.FirstColumn(record)
}

// SampleKeep reports whether the sample query keeps a record. The
// decision hashes the record with the seed, so it is deterministic,
// identical across engines and safe for concurrent subtasks — while
// still uniform enough that close to SampleFraction of distinct records
// pass.
func SampleKeep(record []byte, seed uint64) bool {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write(record)
	// Top 53 bits to a float in [0, 1).
	u := h.Sum64() >> 11
	return float64(u)/float64(1<<53) < SampleFraction
}
