package queries

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"beambench/internal/beam/runner/direct"
	"beambench/internal/flink"
)

func TestItemRankColumn(t *testing.T) {
	rec := []byte("12345\tweather\t2006-03-01 00:00:00\t7\thttp://www.example.com/")
	v, err := ItemRank(rec)
	if err != nil || v != 7 {
		t.Errorf("ItemRank = %d, %v, want 7", v, err)
	}
	if !HasItemRank(rec) {
		t.Error("HasItemRank = false for a click record")
	}
	noClick := []byte("12345\tweather\t2006-03-01 00:00:00\t\t")
	v, err = ItemRank(noClick)
	if err != nil || v != 0 {
		t.Errorf("ItemRank(no click) = %d, %v, want 0", v, err)
	}
	if HasItemRank(noClick) {
		t.Error("HasItemRank = true for a record without a rank")
	}
	if _, err := ItemRank([]byte("u\tq\tt\tnot a number\t")); err == nil {
		t.Error("malformed rank accepted")
	}
}

func TestFormatSlidingSum(t *testing.T) {
	start := time.Date(2006, time.March, 1, 0, 0, 4, 0, time.UTC)
	got := string(FormatSlidingSum(start, []byte("123456"), 9))
	want := fmt.Sprintf("%d\t123456\t9", start.Unix())
	if got != want {
		t.Errorf("FormatSlidingSum = %q, want %q", got, want)
	}
}

// TestExpectedSlidingSumsOverlap pins the overlap semantics: each
// record contributes to the two sliding windows containing its event
// second, and sums accumulate per (window, user).
func TestExpectedSlidingSumsOverlap(t *testing.T) {
	mk := func(user string, sec, rank int) []byte {
		ts := time.Date(2006, time.March, 1, 0, 0, sec, 0, time.UTC).Format("2006-01-02 15:04:05")
		r := ""
		if rank > 0 {
			r = fmt.Sprintf("%d", rank)
		}
		return []byte(user + "\tsome query\t" + ts + "\t" + r + "\t")
	}
	data := [][]byte{
		mk("u1", 2, 3),
		mk("u1", 3, 5), // shares window [2,4) with the first record
		mk("u2", 3, 0), // no click: contributes 0 to u2's windows
	}
	got, err := ExpectedSlidingSums(data)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC).Unix()
	// Windows fire ascending by (end, start): [1,3) u1=3, [2,4) u1=8 and
	// u2=0, [3,5) u1=5 and u2=0.
	want := []string{
		fmt.Sprintf("%d\tu1\t3", base+1),
		fmt.Sprintf("%d\tu1\t8", base+2),
		fmt.Sprintf("%d\tu2\t0", base+2),
		fmt.Sprintf("%d\tu1\t5", base+3),
		fmt.Sprintf("%d\tu2\t0", base+3),
	}
	gotS := make([]string, len(got))
	for i, g := range got {
		gotS[i] = string(g)
	}
	if !reflect.DeepEqual(gotS, want) {
		t.Errorf("ExpectedSlidingSums = %v, want %v", gotS, want)
	}
}

// TestSlidingSumSubSecondDatasetAcrossImplementations reuses the
// sub-second generator step (several records per event second, tiny
// key space) so sliding panes aggregate multiple records, and checks
// native Flink and the Beam direct runner against the dataset-derived
// reference.
func TestSlidingSumSubSecondDatasetAcrossImplementations(t *testing.T) {
	data := subSecondDataset(t, 300)
	wantPayloads, err := ExpectedSlidingSums(data)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(wantPayloads))
	for i, p := range wantPayloads {
		want[i] = string(p)
	}
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("empty reference")
	}

	outputs := map[string][]string{}
	{
		w := newWorkload(t, data)
		cluster, err := flink.NewCluster(flink.ClusterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cluster.Start()
		env := flink.NewEnvironment(cluster).SetParallelism(2)
		if err := NativeFlink(env, w, SlidingSum); err != nil {
			t.Fatal(err)
		}
		if _, err := env.Execute("sliding"); err != nil {
			t.Fatal(err)
		}
		cluster.Stop()
		outputs["flink"] = outputPayloads(t, w)
	}
	{
		w := newWorkload(t, data)
		p, err := BeamPipeline(w, SlidingSum)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := direct.Run(p); err != nil {
			t.Fatal(err)
		}
		outputs["beam-direct"] = outputPayloads(t, w)
	}
	for name, got := range outputs {
		sorted := append([]string(nil), got...)
		sort.Strings(sorted)
		if !reflect.DeepEqual(sorted, want) {
			t.Errorf("%s: sorted output (%d panes) differs from reference (%d panes)",
				name, len(sorted), len(want))
		}
	}
	// Overlap sanity: sliding panes roughly double the tumbling pane
	// count on the same dataset.
	tumbling, err := ExpectedWindowedCounts(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) <= len(tumbling) {
		t.Errorf("sliding panes (%d) not more numerous than tumbling panes (%d); overlap not exercised",
			len(want), len(tumbling))
	}
}

func TestSlidingSumSurvivorIndexPairsPanes(t *testing.T) {
	data := subSecondDataset(t, 200)
	ix, err := NewSurvivorIndex(SlidingSum, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range data {
		ix.AddInput(rec)
	}
	wantPayloads, err := ExpectedSlidingSums(data)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Expected() != len(wantPayloads) {
		t.Fatalf("Expected() = %d, want %d panes", ix.Expected(), len(wantPayloads))
	}
	pairing := ix.NewPairing()
	for _, payload := range wantPayloads {
		ordinal, err := pairing.Pair(payload)
		if err != nil {
			t.Fatalf("Pair(%q): %v", payload, err)
		}
		// The paired input must contribute to the pane: same user, and
		// the pane's window must contain the record's event second.
		rec := data[ordinal]
		user, _ := UserKey(rec)
		parts := strings.SplitN(string(payload), "\t", 3)
		if parts[1] != string(user) {
			t.Errorf("pane %q paired with record of user %s", payload, user)
		}
		et := mustEventTime(t, rec)
		var startUnix int64
		fmt.Sscanf(parts[0], "%d", &startUnix)
		start := time.Unix(startUnix, 0).UTC()
		if et.Before(start) || !et.Before(start.Add(SlidingSumWindow)) {
			t.Errorf("pane %q paired with record outside its window (event %v)", payload, et)
		}
	}
}
