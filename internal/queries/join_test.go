package queries

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"beambench/internal/beam/runner/direct"
	"beambench/internal/spark"
)

func TestTaggedRecordRoundTrip(t *testing.T) {
	rec := []byte("12345\tweather\t2006-03-01 00:00:02\t7\thttp://www.example.com/")
	for _, tc := range []struct {
		tagged []byte
		side   byte
	}{
		{TagSideA(rec), 'A'},
		{TagSideB(rec), 'B'},
	} {
		side, payload, err := taggedParts(tc.tagged)
		if err != nil {
			t.Fatal(err)
		}
		if side != tc.side || string(payload) != string(rec) {
			t.Errorf("taggedParts = %c/%q, want %c/%q", side, payload, tc.side, rec)
		}
		et, err := TaggedEventTime(tc.tagged)
		if err != nil {
			t.Fatal(err)
		}
		if want := time.Date(2006, time.March, 1, 0, 0, 2, 0, time.UTC); !et.Equal(want) {
			t.Errorf("TaggedEventTime = %v, want %v", et, want)
		}
		user, err := TaggedUserKey(tc.tagged)
		if err != nil {
			t.Fatal(err)
		}
		if string(user) != "12345" {
			t.Errorf("TaggedUserKey = %q, want 12345", user)
		}
	}
	for _, bad := range [][]byte{nil, []byte("X\tpayload"), []byte("A"), []byte("Apayload")} {
		if _, _, err := taggedParts(bad); err == nil {
			t.Errorf("taggedParts(%q) accepted", bad)
		}
	}
}

func TestQueryTextColumn(t *testing.T) {
	rec := []byte("12345\tweather forecast\t2006-03-01 00:00:00\t\t")
	if got := string(QueryText(rec)); got != "weather forecast" {
		t.Errorf("QueryText = %q, want %q", got, "weather forecast")
	}
}

func TestGroupedValueBytes(t *testing.T) {
	if b, err := GroupedValueBytes([]byte("x")); err != nil || string(b) != "x" {
		t.Errorf("GroupedValueBytes([]byte) = %q, %v", b, err)
	}
	// Engine runners round-trip pane values through the Grouped coder
	// boundary, which decodes them as strings.
	if b, err := GroupedValueBytes("y"); err != nil || string(b) != "y" {
		t.Errorf("GroupedValueBytes(string) = %q, %v", b, err)
	}
	if _, err := GroupedValueBytes(42); err == nil {
		t.Error("GroupedValueBytes(int) accepted")
	}
}

func TestJoinPairsCrossProduct(t *testing.T) {
	mk := func(user string, sec int, rank string) []byte {
		ts := time.Date(2006, time.March, 1, 0, 0, sec, 0, time.UTC).Format("2006-01-02 15:04:05")
		return []byte(user + "\tq" + fmt.Sprint(sec) + "\t" + ts + "\t" + rank + "\t")
	}
	start := time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC)
	tagged := []any{
		TagSideA(mk("u", 0, "")),
		string(TagSideB(mk("u", 0, "3"))), // string form: the coder-boundary shape
		TagSideA(mk("u", 0, "5")),
		TagSideB(mk("u", 0, "5")),
	}
	var got []string
	if err := JoinPairs(start, []byte("u"), tagged, func(row []byte) error {
		got = append(got, string(row))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A-major cross product over the 2x2 sides.
	base := start.Unix()
	want := []string{
		fmt.Sprintf("%d\tu\tq0\t3", base),
		fmt.Sprintf("%d\tu\tq0\t5", base),
		fmt.Sprintf("%d\tu\tq0\t3", base),
		fmt.Sprintf("%d\tu\tq0\t5", base),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JoinPairs = %v, want %v", got, want)
	}
}

// TestJoinStateFiresOnWatermark pins the control-event contract of the
// shared join state: panes hold until the watermark passes the window
// end, then emit the per-(window, user) cross product.
func TestJoinStateFiresOnWatermark(t *testing.T) {
	mk := func(user string, sec int, rank string) []byte {
		ts := time.Date(2006, time.March, 1, 0, 0, sec, 0, time.UTC).Format("2006-01-02 15:04:05")
		return []byte(user + "\tq\t" + ts + "\t" + rank + "\t")
	}
	s := NewJoinState()
	for _, rec := range [][]byte{
		TagSideA(mk("u", 0, "")),
		TagSideB(mk("u", 0, "4")),
		TagSideA(mk("u", 1, "")), // next window: no click, joins nothing
	} {
		if err := s.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	var fired []string
	emit := func(row []byte) error { fired = append(fired, string(row)); return nil }
	w0end := time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC)
	if err := s.Fire(w0end, emit); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("pane fired at watermark %v before window end: %v", w0end, fired)
	}
	if err := s.Fire(w0end.Add(time.Second), emit); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != fmt.Sprintf("%d\tu\tq\t4", w0end.Unix()) {
		t.Fatalf("fired = %v, want one joined row", fired)
	}
	fired = nil
	if err := s.Flush(emit); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Errorf("clickless window emitted %v, want nothing (inner join)", fired)
	}
	if err := s.Add([]byte("no tag")); err == nil {
		t.Error("untagged record accepted")
	}
}

// TestExpectedJoinsInnerSemantics checks the dataset-derived reference:
// every record joins with the clicks of its (window, user), and users
// without clicks in a window produce nothing.
func TestExpectedJoinsInnerSemantics(t *testing.T) {
	mk := func(user string, sec int, rank string) []byte {
		ts := time.Date(2006, time.March, 1, 0, 0, sec, 0, time.UTC).Format("2006-01-02 15:04:05")
		return []byte(user + "\tq" + fmt.Sprint(sec) + "\t" + ts + "\t" + rank + "\t")
	}
	data := [][]byte{
		mk("u1", 0, "2"), // side A and side B
		mk("u1", 0, ""),  // side A only
		mk("u2", 0, ""),  // u2 has no click: no output
		mk("u1", 3, ""),  // later window, no click: no output
	}
	got, err := ExpectedJoins(data)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC).Unix()
	want := []string{
		fmt.Sprintf("%d\tu1\tq0\t2", base),
		fmt.Sprintf("%d\tu1\tq0\t2", base),
	}
	gotS := make([]string, len(got))
	for i, g := range got {
		gotS[i] = string(g)
	}
	sort.Strings(gotS)
	sort.Strings(want)
	if !reflect.DeepEqual(gotS, want) {
		t.Errorf("ExpectedJoins = %v, want %v", gotS, want)
	}
}

// TestJoinSubSecondDatasetAcrossImplementations packs several records
// per event second into each join window and checks native Spark and
// the Beam direct runner against the dataset-derived reference as
// sorted multisets.
func TestJoinSubSecondDatasetAcrossImplementations(t *testing.T) {
	data := subSecondDataset(t, 300)
	wantPayloads, err := ExpectedJoins(data)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(wantPayloads))
	for i, p := range wantPayloads {
		want[i] = string(p)
	}
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("empty reference")
	}

	outputs := map[string][]string{}
	{
		w := newWorkload(t, data)
		cluster, err := spark.NewCluster(spark.ClusterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cluster.Start()
		ssc, err := spark.NewStreamingContext(cluster, spark.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := NativeSpark(ssc, w, Join); err != nil {
			t.Fatal(err)
		}
		if _, err := ssc.RunBounded(); err != nil {
			t.Fatal(err)
		}
		cluster.Stop()
		outputs["spark"] = outputPayloads(t, w)
	}
	{
		w := newWorkload(t, data)
		p, err := BeamPipeline(w, Join)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := direct.Run(p); err != nil {
			t.Fatal(err)
		}
		outputs["beam-direct"] = outputPayloads(t, w)
	}
	for name, got := range outputs {
		sorted := append([]string(nil), got...)
		sort.Strings(sorted)
		if !reflect.DeepEqual(sorted, want) {
			t.Errorf("%s: sorted output (%d rows) differs from reference (%d rows)",
				name, len(sorted), len(want))
		}
	}
}
