package queries

import (
	"fmt"
	"strconv"
	"time"

	"beambench/internal/aol"
	"beambench/internal/watermark"
)

// SlidingSum parameters: per-user sums of the item-rank column over
// 2-second event-time sliding windows advancing every second. Each
// record therefore lands in two overlapping windows (one near the
// epoch), which is the property the query adds over WindowedCount: the
// window assigner is no longer one-to-one, so every engine's windowed
// state must handle overlapping panes and still agree byte-for-byte.
const (
	// SlidingSumWindow is the sliding window length.
	SlidingSumWindow = 2 * time.Second
	// SlidingSumSlide is the window advance step.
	SlidingSumSlide = time.Second
	// SlidingSumBound is the assumed maximum event-time out-of-orderness
	// (see WindowedCountBound).
	SlidingSumBound = time.Second
)

// slidingSumAssigner builds the query's window assigner. The constants
// above are validated at test time; constructing from them cannot fail.
func slidingSumAssigner() watermark.Assigner {
	a, err := watermark.NewSlidingAssigner(SlidingSumWindow, SlidingSumSlide)
	if err != nil {
		panic(err)
	}
	return a
}

// ItemRank returns the record's item-rank column (the fourth
// tab-separated field) as the aggregated value; an absent rank (empty
// column — the AOL encoding for a query without a click) contributes 0.
func ItemRank(rec []byte) (int64, error) {
	col := nthColumn(rec, 3)
	if len(col) == 0 {
		return 0, nil
	}
	v, err := strconv.ParseInt(string(col), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("queries: item rank: %w", err)
	}
	return v, nil
}

// HasItemRank reports whether the record carries an item rank — the
// click-through half of the AOL log, the join query's second input.
func HasItemRank(rec []byte) bool {
	return len(nthColumn(rec, 3)) > 0
}

// FormatSlidingSum renders one output record of the SlidingSum query:
// "<window-start-unix>\t<user-id>\t<sum>". Window starts are
// slide-aligned, so the triple is unique per pane.
func FormatSlidingSum(windowStart time.Time, user []byte, sum int64) []byte {
	out := make([]byte, 0, 24+len(user))
	out = strconv.AppendInt(out, windowStart.Unix(), 10)
	out = append(out, '\t')
	out = append(out, user...)
	out = append(out, '\t')
	out = strconv.AppendInt(out, sum, 10)
	return out
}

// slidingSumReference builds the expected SlidingSum output from input
// records via the same window state every engine runs, so the reference
// order is the deterministic firing order (windows ascending by
// (end, start), keys first-seen within a window).
func slidingSumReference() *paneReference {
	return newPaneReference(slidingSumAssigner(), watermark.AggSum, ItemRank, FormatSlidingSum)
}

// ExpectedSlidingSums computes the SlidingSum output payloads a dataset
// must produce, in the deterministic pane-firing order. Tests and the
// result calculator use it as the reference.
func ExpectedSlidingSums(records [][]byte) ([][]byte, error) {
	return expectedPayloads(slidingSumReference(), records)
}

// paneReference derives a stateful query's expected output set by
// feeding the dataset through the shared watermark.WindowState — the
// exact accumulator every engine deploys — and draining it. Each pane
// additionally tracks the append ordinal of its latest contributing
// input, the anchor for event-time latency pairing.
type paneReference struct {
	state  *watermark.WindowState[refAcc]
	agg    watermark.AggKind
	value  func(rec []byte) (int64, error)
	format func(start time.Time, key []byte, value int64) []byte
}

// refAcc pairs the numeric accumulator with latency-pairing bookkeeping.
type refAcc struct {
	acc       watermark.NumAcc
	lastInput int
}

func newPaneReference(a watermark.Assigner, agg watermark.AggKind,
	value func(rec []byte) (int64, error),
	format func(start time.Time, key []byte, value int64) []byte,
) *paneReference {
	state, err := watermark.NewWindowState[refAcc](a, func(into *refAcc, from refAcc) {
		into.acc.Merge(from.acc)
		if from.lastInput > into.lastInput {
			into.lastInput = from.lastInput
		}
	})
	if err != nil {
		panic(err) // static assigners; cannot fail
	}
	return &paneReference{state: state, agg: agg, value: value, format: format}
}

// add feeds one input record with its append ordinal.
func (r *paneReference) add(rec []byte, ordinal int) error {
	et, err := EventTime(rec)
	if err != nil {
		return err
	}
	v := int64(0)
	if r.value != nil {
		if v, err = r.value(rec); err != nil {
			return err
		}
	}
	user := string(aol.FirstColumn(rec))
	r.state.Upsert(et, user, func(a *refAcc) {
		a.acc.Add(v)
		a.lastInput = ordinal
	})
	return nil
}

// groups drains the state into the expected panes, in firing order.
// Call once; the state is consumed.
func (r *paneReference) groups() []windowedGroup {
	var out []windowedGroup
	_ = r.state.FireAll(func(p watermark.Pane[refAcc]) error {
		out = append(out, windowedGroup{
			payload:   r.format(p.Start, []byte(p.Key), p.Acc.acc.Result(r.agg)),
			lastInput: p.Acc.lastInput,
		})
		return nil
	})
	return out
}

// expectedAggregator derives a stateful query's expected output panes
// from the input dataset; windowedAggregator, paneReference and
// joinReference implement it for the three stateful queries.
type expectedAggregator interface {
	add(rec []byte, ordinal int) error
	groups() []windowedGroup
}

// expectedPayloads runs every record through agg and returns the pane
// payloads in the deterministic firing order.
func expectedPayloads(agg expectedAggregator, records [][]byte) ([][]byte, error) {
	for i, rec := range records {
		if err := agg.add(rec, i); err != nil {
			return nil, err
		}
	}
	groups := agg.groups()
	out := make([][]byte, len(groups))
	for i, g := range groups {
		out[i] = g.payload
	}
	return out, nil
}
