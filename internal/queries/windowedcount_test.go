package queries

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"beambench/internal/aol"
	"beambench/internal/beam/runner/direct"
	"beambench/internal/flink"
	"beambench/internal/spark"
)

func TestEventTimeParsesQueryTimeColumn(t *testing.T) {
	rec := []byte("12345\tweather forecast\t2006-03-01 00:02:05\t1\thttp://www.example.com/")
	et, err := EventTime(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2006, time.March, 1, 0, 2, 5, 0, time.UTC)
	if !et.Equal(want) {
		t.Errorf("EventTime = %v, want %v", et, want)
	}
	if _, err := EventTime([]byte("no tabs here")); err == nil {
		t.Error("record without columns accepted")
	}
	if _, err := EventTime([]byte("a\tb\tnot a time\tc\td")); err == nil {
		t.Error("malformed query time accepted")
	}
}

func TestEventTimeMatchesGeneratorStep(t *testing.T) {
	gen, err := aol.NewGenerator(aol.Config{Records: 20, Seed: 3, GrepHits: 0, QueryTimeStep: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	data := gen.All()
	// 250ms steps with second-granularity formatting: records 0-3 share
	// second 0, records 4-7 second 1, ...
	for i, rec := range data {
		et, err := EventTime(rec)
		if err != nil {
			t.Fatal(err)
		}
		wantSec := int64(i / 4)
		if got := et.Unix() - mustEventTime(t, data[0]).Unix(); got != wantSec {
			t.Fatalf("record %d event second = %d, want %d", i, got, wantSec)
		}
	}
}

func mustEventTime(t *testing.T, rec []byte) time.Time {
	t.Helper()
	et, err := EventTime(rec)
	if err != nil {
		t.Fatal(err)
	}
	return et
}

func TestFormatWindowedCount(t *testing.T) {
	start := time.Date(2006, time.March, 1, 0, 0, 42, 0, time.UTC)
	got := string(FormatWindowedCount(start, []byte("123456"), 7))
	want := fmt.Sprintf("%d\t123456\t7", start.Unix())
	if got != want {
		t.Errorf("FormatWindowedCount = %q, want %q", got, want)
	}
}

func TestExpectedWindowedCountsAggregates(t *testing.T) {
	mk := func(user string, sec int) []byte {
		ts := time.Date(2006, time.March, 1, 0, 0, sec, 0, time.UTC).Format("2006-01-02 15:04:05")
		return []byte(user + "\tsome query\t" + ts + "\t\t")
	}
	data := [][]byte{
		mk("u1", 0), mk("u2", 0), mk("u1", 0), // window 0: u1=2, u2=1
		mk("u1", 5), // window 5: u1=1
		mk("u3", 2), // window 2: u3=1
	}
	got, err := ExpectedWindowedCounts(data)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC).Unix()
	want := []string{
		fmt.Sprintf("%d\tu1\t2", base),
		fmt.Sprintf("%d\tu2\t1", base),
		fmt.Sprintf("%d\tu3\t1", base+2),
		fmt.Sprintf("%d\tu1\t1", base+5),
	}
	gotS := make([]string, len(got))
	for i, g := range got {
		gotS[i] = string(g)
	}
	if !reflect.DeepEqual(gotS, want) {
		t.Errorf("ExpectedWindowedCounts = %v, want %v", gotS, want)
	}
}

// subSecondDataset builds a workload whose windows hold several records
// for the same user, exercising real aggregation (counts above one).
func subSecondDataset(t *testing.T, records int) [][]byte {
	t.Helper()
	gen, err := aol.NewGenerator(aol.Config{Records: records, Seed: 5, GrepHits: -1, QueryTimeStep: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	data := gen.All()
	// Replace user IDs with a tiny key space so (window, user) panes
	// carry multi-record counts.
	for i, rec := range data {
		cols := strings.SplitN(string(rec), "\t", 2)
		data[i] = []byte(fmt.Sprintf("user%d\t%s", i%3, cols[1]))
	}
	return data
}

// TestWindowedCountMultiRecordWindowsAcrossImplementations is the
// aggregation correctness check: with ~10 records per window and 3
// users, each pane's count exceeds one, and all four implementations
// must agree with the dataset-derived reference as a multiset.
func TestWindowedCountMultiRecordWindowsAcrossImplementations(t *testing.T) {
	data := subSecondDataset(t, 400)
	wantPayloads, err := ExpectedWindowedCounts(data)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(wantPayloads))
	multi := 0
	for i, p := range wantPayloads {
		want[i] = string(p)
		if !strings.HasSuffix(want[i], "\t1") {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("reference has no multi-record panes; dataset does not exercise aggregation")
	}
	sort.Strings(want)

	outputs := map[string][]string{}

	// Native Flink.
	{
		w := newWorkload(t, data)
		cluster, err := flink.NewCluster(flink.ClusterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cluster.Start()
		env := flink.NewEnvironment(cluster).SetParallelism(2)
		if err := NativeFlink(env, w, WindowedCount); err != nil {
			t.Fatal(err)
		}
		if _, err := env.Execute("windowed"); err != nil {
			t.Fatal(err)
		}
		cluster.Stop()
		outputs["flink"] = outputPayloads(t, w)
	}
	// Native Spark.
	{
		w := newWorkload(t, data)
		cluster, err := spark.NewCluster(spark.ClusterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cluster.Start()
		ssc, err := spark.NewStreamingContext(cluster, spark.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := NativeSpark(ssc, w, WindowedCount); err != nil {
			t.Fatal(err)
		}
		if _, err := ssc.RunBounded(); err != nil {
			t.Fatal(err)
		}
		cluster.Stop()
		outputs["spark"] = outputPayloads(t, w)
	}
	// Beam on the direct runner (the reference translation).
	{
		w := newWorkload(t, data)
		p, err := BeamPipeline(w, WindowedCount)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := direct.Run(p); err != nil {
			t.Fatal(err)
		}
		outputs["beam-direct"] = outputPayloads(t, w)
	}

	for name, got := range outputs {
		sorted := append([]string(nil), got...)
		sort.Strings(sorted)
		if !reflect.DeepEqual(sorted, want) {
			t.Errorf("%s: sorted output (%d panes) differs from dataset-derived reference (%d panes)",
				name, len(sorted), len(want))
		}
	}
}

func outputPayloads(t *testing.T, w Workload) []string {
	t.Helper()
	recs, err := w.Broker.Records(w.OutputTopic, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r.Value)
	}
	return out
}

func TestWindowedCountSurvivorIndexPairsAggregates(t *testing.T) {
	data := subSecondDataset(t, 200)
	ix, err := NewSurvivorIndex(WindowedCount, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range data {
		ix.AddInput(rec)
	}
	wantPayloads, err := ExpectedWindowedCounts(data)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Expected() != len(wantPayloads) {
		t.Fatalf("Expected() = %d, want %d panes", ix.Expected(), len(wantPayloads))
	}
	pairing := ix.NewPairing()
	for _, payload := range wantPayloads {
		ordinal, err := pairing.Pair(payload)
		if err != nil {
			t.Fatalf("Pair(%q): %v", payload, err)
		}
		// The paired input must be a contributing record: same user and
		// same event-time window as the pane.
		rec := data[ordinal]
		user, _ := UserKey(rec)
		if !strings.HasPrefix(string(payload), fmt.Sprintf("%d\t%s\t", mustEventTime(t, rec).Truncate(WindowedCountWindow).Unix(), user)) {
			t.Errorf("pane %q paired with non-contributing input %q", payload, rec)
		}
	}
	// A second pairing of the same payload set must fail once consumed.
	if _, err := pairing.Pair(wantPayloads[0]); err == nil {
		t.Error("pane consumed twice")
	}
}
