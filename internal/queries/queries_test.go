package queries

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"beambench/internal/aol"
	"beambench/internal/apex"
	"beambench/internal/beam/runner/direct"
	"beambench/internal/broker"
	"beambench/internal/flink"
	"beambench/internal/spark"
	"beambench/internal/yarn"
)

func dataset(t *testing.T, n int) [][]byte {
	t.Helper()
	g, err := aol.NewGenerator(aol.Config{Records: n, Seed: 42, GrepHits: -1})
	if err != nil {
		t.Fatal(err)
	}
	return g.All()
}

func newWorkload(t *testing.T, data [][]byte) Workload {
	t.Helper()
	b := broker.New()
	if err := b.CreateTopic("input", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("output", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range data {
		if err := p.Send("input", nil, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return Workload{Broker: b, InputTopic: "input", OutputTopic: "output", Seed: 7}
}

// expectedOutputs computes the reference output count per query.
func expectedOutputs(data [][]byte, q Query, seed uint64) int {
	if q.Stateful() {
		var panes [][]byte
		var err error
		switch q {
		case WindowedCount:
			panes, err = ExpectedWindowedCounts(data)
		case SlidingSum:
			panes, err = ExpectedSlidingSums(data)
		case Join:
			panes, err = ExpectedJoins(data)
		}
		if err != nil {
			panic(err)
		}
		return len(panes)
	}
	n := 0
	for _, rec := range data {
		switch q {
		case Identity, Projection:
			n++
		case Sample:
			if SampleKeep(rec, seed) {
				n++
			}
		case Grep:
			if GrepMatch(rec) {
				n++
			}
		}
	}
	return n
}

func outputCount(t *testing.T, w Workload) int64 {
	t.Helper()
	n, err := w.Broker.RecordCount(w.OutputTopic)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestQueryStringsAndValidity(t *testing.T) {
	if len(All()) != 7 {
		t.Fatalf("All() = %d queries, want 7", len(All()))
	}
	if len(Stateless()) != 4 {
		t.Fatalf("Stateless() = %d queries, want 4", len(Stateless()))
	}
	names := map[Query]string{
		Identity: "Identity", Sample: "Sample", Projection: "Projection",
		Grep: "Grep", WindowedCount: "WindowedCount",
		SlidingSum: "SlidingSum", Join: "Join",
	}
	for q, want := range names {
		if q.String() != want {
			t.Errorf("String() = %q, want %q", q.String(), want)
		}
		if !q.Valid() {
			t.Errorf("%v not valid", q)
		}
		if q.Description() == "" || q.Description() == "unknown query" {
			t.Errorf("%v has no description", q)
		}
	}
	if Query(9).Valid() {
		t.Error("Query(9) reported valid")
	}
}

func TestGrepMatchesPlantedNeedles(t *testing.T) {
	data := dataset(t, 10_000)
	hits := 0
	for _, rec := range data {
		if GrepMatch(rec) {
			hits++
		}
	}
	if want := aol.ScaledGrepHits(10_000); hits != want {
		t.Errorf("grep hits = %d, want %d", hits, want)
	}
}

func TestSampleKeepSelectivity(t *testing.T) {
	data := dataset(t, 20_000)
	kept := 0
	for _, rec := range data {
		if SampleKeep(rec, 7) {
			kept++
		}
	}
	ratio := float64(kept) / float64(len(data))
	if math.Abs(ratio-SampleFraction) > 0.02 {
		t.Errorf("sample ratio = %v, want ~%v", ratio, SampleFraction)
	}
}

func TestSampleKeepDeterministicProperty(t *testing.T) {
	f := func(rec []byte, seed uint64) bool {
		return SampleKeep(rec, seed) == SampleKeep(rec, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectExtractsUserID(t *testing.T) {
	rec := []byte("12345\tsome query\t2006-03-01 00:00:00\t\t")
	if got := string(Project(rec)); got != "12345" {
		t.Errorf("Project = %q, want 12345", got)
	}
}

func TestNativeFlinkAllQueries(t *testing.T) {
	data := dataset(t, 2_000)
	for _, q := range All() {
		t.Run(q.String(), func(t *testing.T) {
			w := newWorkload(t, data)
			cluster, err := flink.NewCluster(flink.ClusterConfig{})
			if err != nil {
				t.Fatal(err)
			}
			cluster.Start()
			defer cluster.Stop()
			env := flink.NewEnvironment(cluster)
			if err := NativeFlink(env, w, q); err != nil {
				t.Fatal(err)
			}
			res, err := env.Execute(q.String())
			if err != nil {
				t.Fatal(err)
			}
			// Stateless native jobs fully chain (Figure 12); the keyed
			// windowed queries break the chain at KeyBy, leaving the
			// source task plus the chained reduce-and-sink task. The join
			// adds a second source chain and the union task.
			wantTasks := 1
			if q.Stateful() {
				wantTasks = 2
			}
			if q == Join {
				wantTasks = 4
			}
			if res.Tasks != wantTasks {
				t.Errorf("Tasks = %d, want %d", res.Tasks, wantTasks)
			}
			want := int64(expectedOutputs(data, q, w.Seed))
			if got := outputCount(t, w); got != want {
				t.Errorf("output = %d records, want %d", got, want)
			}
		})
	}
}

func TestNativeSparkAllQueries(t *testing.T) {
	data := dataset(t, 2_000)
	for _, q := range All() {
		t.Run(q.String(), func(t *testing.T) {
			w := newWorkload(t, data)
			cluster, err := spark.NewCluster(spark.ClusterConfig{})
			if err != nil {
				t.Fatal(err)
			}
			cluster.Start()
			defer cluster.Stop()
			ssc, err := spark.NewStreamingContext(cluster, spark.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := NativeSpark(ssc, w, q); err != nil {
				t.Fatal(err)
			}
			if _, err := ssc.RunBounded(); err != nil {
				t.Fatal(err)
			}
			want := int64(expectedOutputs(data, q, w.Seed))
			if got := outputCount(t, w); got != want {
				t.Errorf("output = %d records, want %d", got, want)
			}
		})
	}
}

func TestNativeApexAllQueries(t *testing.T) {
	data := dataset(t, 2_000)
	for _, q := range All() {
		t.Run(q.String(), func(t *testing.T) {
			w := newWorkload(t, data)
			cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
			if err != nil {
				t.Fatal(err)
			}
			cluster.Start()
			defer cluster.Stop()
			app, err := NativeApex(w, q)
			if err != nil {
				t.Fatal(err)
			}
			stram, err := apex.Launch(cluster, app, apex.LaunchConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := stram.Await(); err != nil {
				t.Fatal(err)
			}
			want := int64(expectedOutputs(data, q, w.Seed))
			if got := outputCount(t, w); got != want {
				t.Errorf("output = %d records, want %d", got, want)
			}
		})
	}
}

func TestBeamPipelineAllQueriesOnDirectRunner(t *testing.T) {
	data := dataset(t, 2_000)
	for _, q := range All() {
		t.Run(q.String(), func(t *testing.T) {
			w := newWorkload(t, data)
			p, err := BeamPipeline(w, q)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := direct.Run(p); err != nil {
				t.Fatal(err)
			}
			want := int64(expectedOutputs(data, q, w.Seed))
			if got := outputCount(t, w); got != want {
				t.Errorf("output = %d records, want %d", got, want)
			}
		})
	}
}

func TestCrossEngineOutputEquality(t *testing.T) {
	// All four implementations of the same query must produce identical
	// output multisets (order may differ across engines).
	data := dataset(t, 1_000)
	for _, q := range All() {
		t.Run(q.String(), func(t *testing.T) {
			counts := make([]map[string]int, 0, 4)

			// Native Flink.
			{
				w := newWorkload(t, data)
				cluster, _ := flink.NewCluster(flink.ClusterConfig{})
				cluster.Start()
				env := flink.NewEnvironment(cluster)
				if err := NativeFlink(env, w, q); err != nil {
					t.Fatal(err)
				}
				if _, err := env.Execute("x"); err != nil {
					t.Fatal(err)
				}
				cluster.Stop()
				counts = append(counts, topicMultiset(t, w))
			}
			// Native Spark.
			{
				w := newWorkload(t, data)
				cluster, _ := spark.NewCluster(spark.ClusterConfig{})
				cluster.Start()
				ssc, _ := spark.NewStreamingContext(cluster, spark.Config{})
				if err := NativeSpark(ssc, w, q); err != nil {
					t.Fatal(err)
				}
				if _, err := ssc.RunBounded(); err != nil {
					t.Fatal(err)
				}
				cluster.Stop()
				counts = append(counts, topicMultiset(t, w))
			}
			// Native Apex.
			{
				w := newWorkload(t, data)
				cluster, _ := yarn.NewCluster(yarn.ClusterConfig{})
				cluster.Start()
				app, err := NativeApex(w, q)
				if err != nil {
					t.Fatal(err)
				}
				stram, err := apex.Launch(cluster, app, apex.LaunchConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := stram.Await(); err != nil {
					t.Fatal(err)
				}
				cluster.Stop()
				counts = append(counts, topicMultiset(t, w))
			}
			// Beam on the direct runner.
			{
				w := newWorkload(t, data)
				p, err := BeamPipeline(w, q)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := direct.Run(p); err != nil {
					t.Fatal(err)
				}
				counts = append(counts, topicMultiset(t, w))
			}

			for i := 1; i < len(counts); i++ {
				if !equalMultiset(counts[0], counts[i]) {
					t.Errorf("implementation %d output differs from native Flink", i)
				}
			}
		})
	}
}

func topicMultiset(t *testing.T, w Workload) map[string]int {
	t.Helper()
	c, err := w.Broker.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(w.OutputTopic); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int)
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out[string(r.Value)]++
		}
	}
}

func equalMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestWorkloadValidation(t *testing.T) {
	if err := (Workload{}).validate(); err == nil {
		t.Error("empty workload validated")
	}
	if err := (Workload{Broker: broker.New()}).validate(); err == nil {
		t.Error("workload without topics validated")
	}
	bad := Workload{Broker: broker.New(), InputTopic: "a", OutputTopic: "b"}
	if _, err := BeamPipeline(bad, Query(99)); err == nil {
		t.Error("unknown query accepted")
	}
	if _, err := NativeApex(bad, Query(99)); err == nil {
		t.Error("unknown query accepted by apex builder")
	}
}

func TestProjectionOutputSmallerThanInput(t *testing.T) {
	data := dataset(t, 500)
	w := newWorkload(t, data)
	p, err := BeamPipeline(w, Projection)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Run(p); err != nil {
		t.Fatal(err)
	}
	c, err := w.Broker.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll("output"); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if bytes.ContainsRune(r.Value, '\t') {
			t.Fatalf("projected record %d still has tabs: %q", i, r.Value)
		}
		if len(r.Value) == 0 {
			t.Fatalf("projected record %d empty", i)
		}
	}
}
