package watermark

import (
	"fmt"
	"testing"
	"time"
)

func TestAssignerValidation(t *testing.T) {
	if _, err := NewTumblingAssigner(0); err == nil {
		t.Error("zero tumbling size accepted")
	}
	if _, err := NewSlidingAssigner(0, time.Second); err == nil {
		t.Error("zero sliding size accepted")
	}
	if _, err := NewSlidingAssigner(time.Second, 0); err == nil {
		t.Error("zero slide accepted")
	}
	if _, err := NewSlidingAssigner(time.Second, 2*time.Second); err == nil {
		t.Error("slide exceeding size accepted (would drop records)")
	}
	if _, err := NewSessionAssigner(-time.Second); err == nil {
		t.Error("negative session gap accepted")
	}
}

// checkSpans asserts the assigner invariants every caller relies on:
// ascending start order and every span containing t (half-open).
func checkSpans(t *testing.T, spans []Span, at time.Time) {
	t.Helper()
	for i, s := range spans {
		if at.Before(s.Start) || !at.Before(s.End) {
			t.Errorf("span %d [%v, %v) does not contain %v", i, s.Start, s.End, at)
		}
		if i > 0 && !spans[i-1].Start.Before(s.Start) {
			t.Errorf("spans not ascending: %v then %v", spans[i-1].Start, s.Start)
		}
	}
}

// TestSlidingAssignSlideNotDividingSize covers the non-divisor case:
// with size 3s and slide 2s a record belongs to one or two windows
// depending on where it falls relative to the 2s-aligned starts.
func TestSlidingAssignSlideNotDividingSize(t *testing.T) {
	a, err := NewSlidingAssigner(3*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		offset time.Duration
		want   int
	}{
		{5 * time.Second, 1}, // only [4,7): [2,5) is half-open and excludes 5
		{6 * time.Second, 2}, // [4,7) and [6,9)
		{7 * time.Second, 1}, // only [6,9)
	} {
		at := epoch.Add(tc.offset)
		spans := a.Assign(at)
		if len(spans) != tc.want {
			t.Errorf("Assign(epoch+%v) = %d windows %v, want %d", tc.offset, len(spans), spans, tc.want)
		}
		checkSpans(t, spans, at)
	}
}

// TestSlidingAssignEpochAlignedBoundary pins the half-open boundary
// semantics: a record exactly on a slide boundary starts a new window
// and has left the window ending there.
func TestSlidingAssignEpochAlignedBoundary(t *testing.T) {
	a, err := NewSlidingAssigner(2*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	at := epoch.Add(5 * time.Second)
	spans := a.Assign(at)
	if len(spans) != 2 {
		t.Fatalf("Assign = %v, want 2 windows", spans)
	}
	if !spans[0].Start.Equal(epoch.Add(4*time.Second)) || !spans[1].Start.Equal(epoch.Add(5*time.Second)) {
		t.Errorf("window starts = %v/%v, want epoch+4s/epoch+5s", spans[0].Start, spans[1].Start)
	}
	checkSpans(t, spans, at)
}

// TestAssignSubSecondWindows exercises sub-second sizes: windows are
// not constrained to whole seconds, and tumbling truncation stays
// aligned at millisecond granularity.
func TestAssignSubSecondWindows(t *testing.T) {
	tum, err := NewTumblingAssigner(250 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	at := epoch.Add(249 * time.Millisecond)
	spans := tum.Assign(at)
	if len(spans) != 1 || !spans[0].Start.Equal(epoch) {
		t.Errorf("tumbling Assign = %v, want one window at epoch", spans)
	}
	checkSpans(t, spans, at)
	if next := tum.Assign(epoch.Add(250 * time.Millisecond)); !next[0].Start.Equal(epoch.Add(250 * time.Millisecond)) {
		t.Errorf("boundary record window = %v, want start epoch+250ms", next[0].Start)
	}

	sl, err := NewSlidingAssigner(500*time.Millisecond, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	at = epoch.Add(625 * time.Millisecond)
	spans = sl.Assign(at)
	if len(spans) != 2 {
		t.Fatalf("sliding Assign = %v, want 2 windows", spans)
	}
	if !spans[0].Start.Equal(epoch.Add(250*time.Millisecond)) || !spans[1].Start.Equal(epoch.Add(500*time.Millisecond)) {
		t.Errorf("sliding starts = %v/%v, want epoch+250ms/epoch+500ms", spans[0].Start, spans[1].Start)
	}
	checkSpans(t, spans, at)
}

// sessionPanes drains a count-accumulating session state into
// "startOffset/endOffset:key=count" strings for compact assertions.
func sessionPanes(t *testing.T, s *WindowState[int64]) []string {
	t.Helper()
	var out []string
	err := s.FireAll(func(p Pane[int64]) error {
		out = append(out, fmt.Sprintf("%v/%v:%s=%d", p.Start.Sub(epoch), p.End.Sub(epoch), p.Key, p.Acc))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSessionMergeOutOfOrder is the merging edge case: two sessions of
// one key that are initially disjoint coalesce when a later,
// out-of-order record bridges the gap — and an unrelated key's session
// stays separate.
func TestSessionMergeOutOfOrder(t *testing.T) {
	a, err := NewSessionAssigner(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWindowState[int64](a, func(into *int64, from int64) { *into += from })
	if err != nil {
		t.Fatal(err)
	}
	inc := func(c *int64) { *c++ }
	s.Upsert(epoch, "u", inc)
	s.Upsert(epoch.Add(15*time.Second), "u", inc)
	if s.Open() != 2 {
		t.Fatalf("open sessions = %d, want 2 disjoint", s.Open())
	}
	// The bridge arrives out of order: [8,18) overlaps both [0,10) and
	// [15,25), merging them into one [0,25) session.
	s.Upsert(epoch.Add(8*time.Second), "u", inc)
	s.Upsert(epoch.Add(40*time.Second), "v", inc)
	if s.Open() != 2 {
		t.Fatalf("open sessions after merge = %d, want 2", s.Open())
	}
	got := sessionPanes(t, s)
	want := []string{"0s/25s:u=3", "40s/50s:v=1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("panes = %v, want %v", got, want)
	}
}

// TestSessionAbuttingRecordsMerge pins the gap boundary: a record at
// exactly previousEnd extends the session rather than opening a new
// one (sessions merge on overlap or abutment).
func TestSessionAbuttingRecordsMerge(t *testing.T) {
	a, err := NewSessionAssigner(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWindowState[int64](a, func(into *int64, from int64) { *into += from })
	if err != nil {
		t.Fatal(err)
	}
	inc := func(c *int64) { *c++ }
	s.Upsert(epoch, "u", inc)
	s.Upsert(epoch.Add(10*time.Second), "u", inc)
	got := sessionPanes(t, s)
	want := []string{"0s/20s:u=2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("panes = %v, want %v", got, want)
	}
}

// TestSlidingStateOverlappingPanes runs the sliding assigner through
// the shared window state: one record contributes to every overlapping
// pane, and panes fire ascending by (end, start) as the watermark
// advances — the exact behavior the SlidingSum query deploys.
func TestSlidingStateOverlappingPanes(t *testing.T) {
	a, err := NewSlidingAssigner(2*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWindowState[int64](a, nil)
	if err != nil {
		t.Fatal(err)
	}
	add := func(v int64) func(*int64) { return func(c *int64) { *c += v } }
	s.Upsert(epoch.Add(1500*time.Millisecond), "u", add(3))
	s.Upsert(epoch.Add(2200*time.Millisecond), "u", add(5))

	var fired []string
	pane := func(p Pane[int64]) error {
		fired = append(fired, fmt.Sprintf("%v:%s=%d", p.Start.Sub(epoch), p.Key, p.Acc))
		return nil
	}
	// Watermark at 2s: only [0,2) is complete; the record at 1.5s also
	// lives in the still-open [1,3).
	if err := s.FireReady(epoch.Add(2*time.Second), pane); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(fired) != fmt.Sprint([]string{"0s:u=3"}) {
		t.Fatalf("panes at wm 2s = %v, want [0s:u=3]", fired)
	}
	fired = nil
	if err := s.FireAll(pane); err != nil {
		t.Fatal(err)
	}
	want := []string{"1s:u=8", "2s:u=5"}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Errorf("remaining panes = %v, want %v", fired, want)
	}
}
