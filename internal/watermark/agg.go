package watermark

import "fmt"

// AggKind selects the reduction a windowed aggregate applies to its
// pane accumulator — the generalization of the original count-only
// windowed operators.
type AggKind int

const (
	// AggCount counts the pane's records.
	AggCount AggKind = iota + 1
	// AggSum sums the extracted values.
	AggSum
	// AggMin takes the minimum extracted value.
	AggMin
	// AggMax takes the maximum extracted value.
	AggMax
	// AggAvg averages the extracted values (integer division, zero for
	// an empty pane) — deterministic across engines.
	AggAvg
)

// String names the kind for plan rendering and errors.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Valid reports whether k is a known aggregation kind.
func (k AggKind) Valid() bool { return k >= AggCount && k <= AggAvg }

// NumAcc is the shared numeric pane accumulator: it tracks enough state
// to answer any AggKind, so one accumulator type serves every windowed
// aggregate in every engine. The zero value is an empty accumulator.
type NumAcc struct {
	Count, Sum, Min, Max int64
}

// Add folds one extracted value into the accumulator.
func (a *NumAcc) Add(v int64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += v
}

// Merge folds another accumulator in (session-window coalescing).
func (a *NumAcc) Merge(b NumAcc) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 || b.Min < a.Min {
		a.Min = b.Min
	}
	if a.Count == 0 || b.Max > a.Max {
		a.Max = b.Max
	}
	a.Count += b.Count
	a.Sum += b.Sum
}

// Result reduces the accumulator under the given kind.
func (a NumAcc) Result(kind AggKind) int64 {
	switch kind {
	case AggCount:
		return a.Count
	case AggSum:
		return a.Sum
	case AggMin:
		return a.Min
	case AggMax:
		return a.Max
	case AggAvg:
		if a.Count == 0 {
			return 0
		}
		return a.Sum / a.Count
	default:
		return 0
	}
}
