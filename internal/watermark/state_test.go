package watermark

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func collectPanes(t *testing.T, s *TumblingState[int64], w time.Time) []string {
	t.Helper()
	var out []string
	err := s.FireReady(w, func(p Pane[int64]) error {
		out = append(out, fmt.Sprintf("%d:%s=%d", p.Start.Unix(), p.Key, p.Acc))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTumblingStateRejectsNonPositiveSize(t *testing.T) {
	if _, err := NewTumblingState[int64](0); err == nil {
		t.Error("zero window size accepted")
	}
	if _, err := NewTumblingState[int64](-time.Second); err == nil {
		t.Error("negative window size accepted")
	}
}

func TestTumblingStateFiresInWindowThenFirstSeenOrder(t *testing.T) {
	s, err := NewTumblingState[int64](time.Second)
	if err != nil {
		t.Fatal(err)
	}
	inc := func(c *int64) { *c++ }
	// Feed out of window order; keys b then a within the first window.
	s.Upsert(epoch.Add(2500*time.Millisecond), "z", inc)
	s.Upsert(epoch.Add(100*time.Millisecond), "b", inc)
	s.Upsert(epoch.Add(200*time.Millisecond), "a", inc)
	s.Upsert(epoch.Add(900*time.Millisecond), "b", inc)

	if got := collectPanes(t, s, epoch.Add(999*time.Millisecond)); len(got) != 0 {
		t.Fatalf("fired %v before the watermark passed any window end", got)
	}
	got := collectPanes(t, s, epoch.Add(time.Second))
	want := []string{
		fmt.Sprintf("%d:b=2", epoch.Unix()),
		fmt.Sprintf("%d:a=1", epoch.Unix()),
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("panes = %v, want %v", got, want)
	}
	if s.Open() != 1 {
		t.Errorf("open windows = %d, want 1", s.Open())
	}

	var rest []string
	if err := s.FireAll(func(p Pane[int64]) error {
		rest = append(rest, fmt.Sprintf("%d:%s=%d", p.Start.Unix(), p.Key, p.Acc))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0] != fmt.Sprintf("%d:z=1", epoch.Add(2*time.Second).Unix()) {
		t.Errorf("FireAll = %v", rest)
	}
	if s.Open() != 0 {
		t.Errorf("open windows after FireAll = %d, want 0", s.Open())
	}
}

func TestTumblingStateMultipleReadyWindowsFireAscending(t *testing.T) {
	s, err := NewTumblingState[int64](time.Second)
	if err != nil {
		t.Fatal(err)
	}
	inc := func(c *int64) { *c++ }
	// Insert windows in descending order.
	for i := 4; i >= 0; i-- {
		s.Upsert(epoch.Add(time.Duration(i)*time.Second), fmt.Sprintf("k%d", i), inc)
	}
	got := collectPanes(t, s, epoch.Add(5*time.Second))
	if len(got) != 5 {
		t.Fatalf("fired %d panes, want 5", len(got))
	}
	for i, pane := range got {
		want := fmt.Sprintf("%d:k%d=1", epoch.Add(time.Duration(i)*time.Second).Unix(), i)
		if pane != want {
			t.Errorf("pane %d = %q, want %q (ascending window order)", i, pane, want)
		}
	}
}

func TestTumblingStateEmitErrorKeepsUnfiredPanes(t *testing.T) {
	s, err := NewTumblingState[int64](time.Second)
	if err != nil {
		t.Fatal(err)
	}
	inc := func(c *int64) { *c++ }
	s.Upsert(epoch, "a", inc)
	s.Upsert(epoch, "b", inc)
	boom := errors.New("boom")
	calls := 0
	err = s.FireAll(func(Pane[int64]) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times, want 1", calls)
	}
	// The failed pane and the unfired one are both still present.
	if got := collectPanes(t, s, EndOfTime); len(got) != 2 {
		t.Errorf("retry fired %v, want both panes", got)
	}
}

// TestTumblingStateEmitErrorInLaterWindowRetries pins the error-path
// bookkeeping: when an earlier window fires completely and a LATER
// window's emit errors, a retry must fire only the remaining panes —
// not panic on the already-removed window, and not re-emit it.
func TestTumblingStateEmitErrorInLaterWindowRetries(t *testing.T) {
	s, err := NewTumblingState[int64](time.Second)
	if err != nil {
		t.Fatal(err)
	}
	inc := func(c *int64) { *c++ }
	s.Upsert(epoch, "a", inc)                  // window 0
	s.Upsert(epoch.Add(time.Second), "b", inc) // window 1
	boom := errors.New("boom")
	calls := 0
	err = s.FireAll(func(Pane[int64]) error {
		calls++
		if calls == 2 {
			return boom // fail on window 1 after window 0 fired cleanly
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got := collectPanes(t, s, EndOfTime)
	want := fmt.Sprintf("%d:b=1", epoch.Add(time.Second).Unix())
	if len(got) != 1 || got[0] != want {
		t.Errorf("retry fired %v, want only [%s]", got, want)
	}
}
