package watermark

import (
	"math/rand/v2"
	"testing"
	"time"
)

var epoch = time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC)

func TestGeneratorNoProgressBeforeFirstObservation(t *testing.T) {
	g := NewGenerator(time.Second)
	if !g.Current().IsZero() {
		t.Errorf("Current before any Observe = %v, want zero", g.Current())
	}
}

func TestGeneratorBoundedOutOfOrderness(t *testing.T) {
	g := NewGenerator(2 * time.Second)
	if !g.Observe(epoch.Add(10 * time.Second)) {
		t.Error("first observation did not advance the watermark")
	}
	if want := epoch.Add(8 * time.Second); !g.Current().Equal(want) {
		t.Errorf("Current = %v, want maxSeen-bound = %v", g.Current(), want)
	}
}

func TestGeneratorNegativeBoundTreatedAsZero(t *testing.T) {
	g := NewGenerator(-time.Second)
	g.Observe(epoch)
	if !g.Current().Equal(epoch) {
		t.Errorf("Current = %v, want %v", g.Current(), epoch)
	}
}

// TestGeneratorMonotoneUnderOutOfOrderEventTimes is the property test of
// the satellite task: whatever permutation of event times a generator
// observes, its watermark never regresses, never overtakes maxSeen−bound
// and reaches exactly maxSeen−bound at the end.
func TestGeneratorMonotoneUnderOutOfOrderEventTimes(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234, 99999} {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		bound := time.Duration(rng.IntN(5000)) * time.Millisecond
		g := NewGenerator(bound)

		times := make([]time.Time, 500)
		for i := range times {
			times[i] = epoch.Add(time.Duration(rng.IntN(100_000)) * time.Millisecond)
		}
		var maxSeen time.Time
		prev := g.Current()
		for i, et := range times {
			advanced := g.Observe(et)
			if et.After(maxSeen) {
				maxSeen = et
			}
			cur := g.Current()
			if cur.Before(prev) {
				t.Fatalf("seed %d: watermark regressed at record %d: %v -> %v", seed, i, prev, cur)
			}
			if advanced && !cur.After(prev) && !prev.IsZero() {
				t.Fatalf("seed %d: Observe reported advance but watermark did not move", seed)
			}
			if cur.After(maxSeen.Add(-bound)) {
				t.Fatalf("seed %d: watermark %v overtook maxSeen-bound %v", seed, cur, maxSeen.Add(-bound))
			}
			prev = cur
		}
		if want := maxSeen.Add(-bound); !g.Current().Equal(want) {
			t.Errorf("seed %d: final watermark %v, want %v", seed, g.Current(), want)
		}
		g.Finalize()
		if !g.Current().Equal(EndOfTime) {
			t.Errorf("seed %d: finalized watermark = %v, want EndOfTime", seed, g.Current())
		}
		g.Observe(epoch.Add(time.Hour))
		if !g.Current().Equal(EndOfTime) {
			t.Errorf("seed %d: observation after Finalize moved the watermark", seed)
		}
	}
}

func TestMinTrackerCombinesByMinimum(t *testing.T) {
	m := NewMinTracker(3)
	if !m.Combined().IsZero() {
		t.Errorf("fresh tracker Combined = %v, want zero", m.Combined())
	}
	m.Advance(0, epoch.Add(10*time.Second))
	m.Advance(1, epoch.Add(5*time.Second))
	if !m.Combined().IsZero() {
		t.Errorf("Combined = %v, want zero while input 2 has no progress", m.Combined())
	}
	m.Advance(2, epoch.Add(7*time.Second))
	if want := epoch.Add(5 * time.Second); !m.Combined().Equal(want) {
		t.Errorf("Combined = %v, want %v", m.Combined(), want)
	}
	// Regressions are ignored.
	m.Advance(1, epoch)
	if want := epoch.Add(5 * time.Second); !m.Combined().Equal(want) {
		t.Errorf("Combined after regression = %v, want %v", m.Combined(), want)
	}
}

func TestMinTrackerFinalizeReleasesInput(t *testing.T) {
	m := NewMinTracker(2)
	m.Advance(0, epoch.Add(3*time.Second))
	m.Finalize(1)
	if want := epoch.Add(3 * time.Second); !m.Combined().Equal(want) {
		t.Errorf("Combined = %v, want the live input's %v", m.Combined(), want)
	}
	m.Finalize(0)
	if !m.Combined().Equal(EndOfTime) {
		t.Errorf("Combined after full finalization = %v, want EndOfTime", m.Combined())
	}
	// A finalized input can no longer move.
	m.Advance(0, epoch)
	if !m.Combined().Equal(EndOfTime) {
		t.Error("Advance on a finalized input regressed the combined watermark")
	}
}
