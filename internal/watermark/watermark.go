// Package watermark implements event-time progress tracking for the
// simulated stream processing engines: watermark generation from
// observed record timestamps (monotonic, with bounded out-of-orderness),
// minimum-across-inputs propagation through operators, and end-of-input
// finalization.
//
// A watermark W asserts "no record with event time earlier than W will
// arrive on this stream anymore". The subsystem splits the three
// concerns the engines share:
//
//   - Generation (Generator): each source partition — or each stateful
//     operator instance deriving progress from the records it receives —
//     observes event timestamps and produces a monotonically
//     non-decreasing watermark maxSeen − bound, where bound is the
//     stream's assumed maximum out-of-orderness.
//   - Propagation (MinTracker): an operator fed by several inputs
//     (partitions, upstream channels) holds the combined watermark at
//     the minimum of its inputs' watermarks, so a slow input holds back
//     pane firing everywhere downstream.
//   - Finalization: when a source meets the broker.EndOfInput contract
//     its watermark jumps to EndOfTime, which releases every remaining
//     window. Finalize on a Generator (or per input on a MinTracker)
//     models exactly that.
//
// In the engine runtimes watermarks travel as first-class control
// events in the data flow: a timestamp-assigning operator emits them
// interleaved with records, every intermediate operator forwards them
// combined min-over-senders (MinTracker), and the keyed stateful
// operator at the end fires panes off the watermark it receives — no
// side-channel progress estimation, sound at any parallelism and
// through merges (Union/Flatten), whose watermark is the minimum over
// all inputs.
//
// Window assignment is factored out of the pane state: an Assigner
// (assigner.go) maps an event time to its windows — tumbling (one),
// sliding (several overlapping), or session (a per-key proto-window
// that merges with overlapping sessions). WindowState (windowstate.go)
// accumulates per-(window, key) state under any Assigner and fires
// panes in a deterministic order once the watermark passes a window's
// end; NumAcc with an AggKind (agg.go) provides the numeric aggregates
// (count, sum, min, max, avg) the windowed queries compose with it.
// TumblingState (state.go) remains as the one-window fast path. The
// engines' windowed operators and the Beam runners' GroupByKey
// translation are thin wrappers around these.
package watermark

import (
	"math"
	"time"
)

// EndOfTime is the watermark of a finished input: later than every
// representable event time, it releases all remaining windows.
var EndOfTime = time.Unix(0, math.MaxInt64)

// Generator produces a monotonic watermark from observed event times
// with bounded out-of-orderness: after observing a record with event
// time t, the generator promises that no record older than t−bound is
// still in flight. It is the per-partition generation half of the
// subsystem; it is not safe for concurrent use (each partition or
// operator instance owns its own).
type Generator struct {
	bound     time.Duration
	maxSeen   time.Time
	observed  bool
	finalized bool
}

// NewGenerator returns a generator assuming at most bound of event-time
// out-of-orderness. A negative bound is treated as zero (a strictly
// ordered stream).
func NewGenerator(bound time.Duration) *Generator {
	if bound < 0 {
		bound = 0
	}
	return &Generator{bound: bound}
}

// Observe feeds one record's event time and reports whether the
// watermark advanced. Out-of-order timestamps (earlier than the maximum
// seen) never regress the watermark — monotonicity is the generator's
// contract.
func (g *Generator) Observe(t time.Time) bool {
	if g.finalized {
		return false
	}
	if !g.observed || t.After(g.maxSeen) {
		g.maxSeen = t
		g.observed = true
		return true
	}
	return false
}

// Current returns the watermark: maxSeen − bound, EndOfTime after
// Finalize, and the zero time before any observation (no progress
// claimed yet).
func (g *Generator) Current() time.Time {
	if g.finalized {
		return EndOfTime
	}
	if !g.observed {
		return time.Time{}
	}
	return g.maxSeen.Add(-g.bound)
}

// Finalize marks the input as finished (the broker.EndOfInput contract
// was met): the watermark jumps to EndOfTime and stays there.
func (g *Generator) Finalize() {
	g.finalized = true
}

// MinTracker propagates watermarks through an operator with several
// inputs: the combined watermark is the minimum of the per-input
// watermarks, so no pane fires before every input has passed it.
// Like Generator it is owned by a single goroutine.
type MinTracker struct {
	inputs []time.Time
	final  []bool
}

// NewMinTracker returns a tracker over n inputs, all at the zero
// watermark (no progress).
func NewMinTracker(n int) *MinTracker {
	if n < 1 {
		n = 1
	}
	return &MinTracker{inputs: make([]time.Time, n), final: make([]bool, n)}
}

// Advance raises one input's watermark; regressions are ignored
// (per-input monotonicity) and finalized inputs stay at EndOfTime.
func (m *MinTracker) Advance(input int, w time.Time) {
	if m.final[input] {
		return
	}
	if w.After(m.inputs[input]) {
		m.inputs[input] = w
	}
}

// Finalize marks one input as finished; its watermark becomes EndOfTime.
func (m *MinTracker) Finalize(input int) {
	m.final[input] = true
	m.inputs[input] = EndOfTime
}

// Combined returns the minimum watermark across the inputs — the
// operator's output watermark.
func (m *MinTracker) Combined() time.Time {
	min := m.inputs[0]
	for _, w := range m.inputs[1:] {
		if w.Before(min) {
			min = w
		}
	}
	return min
}
