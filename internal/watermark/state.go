package watermark

import (
	"time"
)

// TumblingState accumulates per-(window, key) state for event-time
// tumbling windows of a fixed size — the original benchmark state, now
// a thin specialization of WindowState under a TumblingAssigner. T is
// the per-pane accumulator (an int64 count for the counting query, a
// value list for the Beam GroupByKey translation).
//
// Firing order is deterministic given the record arrival order: windows
// fire in ascending start-time order, and keys within a window fire in
// first-seen order — WindowState's order, which for equal-sized
// non-overlapping windows reduces to exactly this.
type TumblingState[T any] struct {
	size time.Duration
	ws   *WindowState[T]
}

// Pane is one fired (window, key) aggregate.
type Pane[T any] struct {
	// Start and End bound the window: [Start, End).
	Start, End time.Time
	// Key is the pane's grouping key.
	Key string
	// Acc is the final accumulator value.
	Acc T
}

// NewTumblingState returns empty state for tumbling windows of the given
// size. Size must be positive.
func NewTumblingState[T any](size time.Duration) (*TumblingState[T], error) {
	a, err := NewTumblingAssigner(size)
	if err != nil {
		return nil, err
	}
	ws, err := NewWindowState[T](a, nil)
	if err != nil {
		return nil, err
	}
	return &TumblingState[T]{size: size, ws: ws}, nil
}

// Size returns the window size.
func (s *TumblingState[T]) Size() time.Duration { return s.size }

// WindowStart returns the start of the window containing t.
func (s *TumblingState[T]) WindowStart(t time.Time) time.Time {
	return t.Truncate(s.size)
}

// Upsert applies update to the accumulator of t's window and key,
// creating a zero accumulator first for a (window, key) not seen before.
func (s *TumblingState[T]) Upsert(t time.Time, key string, update func(*T)) {
	s.ws.Upsert(t, key, update)
}

// FireReady emits and removes every pane of windows the watermark has
// passed (watermark >= window end), ascending by window start, keys in
// first-seen order. It stops on the first emit error, leaving later
// panes in place.
func (s *TumblingState[T]) FireReady(w time.Time, emit func(Pane[T]) error) error {
	return s.ws.FireReady(w, emit)
}

// FireAll emits and removes every remaining pane in the deterministic
// order; callers use it at end of input after finalizing the watermark.
func (s *TumblingState[T]) FireAll(emit func(Pane[T]) error) error {
	return s.ws.FireAll(emit)
}

// Open reports how many windows currently hold state.
func (s *TumblingState[T]) Open() int { return s.ws.Open() }
