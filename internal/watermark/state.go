package watermark

import (
	"fmt"
	"sort"
	"time"
)

// TumblingState accumulates per-(window, key) state for event-time
// tumbling windows of a fixed size and fires panes in a deterministic
// order once the watermark passes a window's end. T is the per-pane
// accumulator (an int64 count for the benchmark query, a value list for
// the Beam GroupByKey translation).
//
// Firing order is deterministic given the record arrival order: windows
// fire in ascending start-time order, and keys within a window fire in
// first-seen order. Every engine uses this state, so their pane
// sequences agree whenever they observe the same record order — the
// property behind the WindowedCount query's byte-identical outputs.
type TumblingState[T any] struct {
	size    time.Duration
	windows map[int64]*windowGroup[T]
	// starts tracks the open windows' start nanos; kept sorted lazily at
	// fire time (the open set is tiny: bound/size + 1 windows).
	starts []int64
}

// windowGroup is one window's keyed accumulators in first-seen order.
type windowGroup[T any] struct {
	byKey map[string]*T
	order []string
}

// NewTumblingState returns empty state for tumbling windows of the given
// size. Size must be positive.
func NewTumblingState[T any](size time.Duration) (*TumblingState[T], error) {
	if size <= 0 {
		return nil, fmt.Errorf("watermark: tumbling window size must be positive, got %v", size)
	}
	return &TumblingState[T]{size: size, windows: make(map[int64]*windowGroup[T])}, nil
}

// Size returns the window size.
func (s *TumblingState[T]) Size() time.Duration { return s.size }

// WindowStart returns the start of the window containing t.
func (s *TumblingState[T]) WindowStart(t time.Time) time.Time {
	return t.Truncate(s.size)
}

// Upsert applies update to the accumulator of t's window and key,
// creating a zero accumulator first for a (window, key) not seen before.
func (s *TumblingState[T]) Upsert(t time.Time, key string, update func(*T)) {
	start := s.WindowStart(t).UnixNano()
	g, ok := s.windows[start]
	if !ok {
		g = &windowGroup[T]{byKey: make(map[string]*T)}
		s.windows[start] = g
		s.starts = append(s.starts, start)
	}
	acc, ok := g.byKey[key]
	if !ok {
		acc = new(T)
		g.byKey[key] = acc
		g.order = append(g.order, key)
	}
	update(acc)
}

// Pane is one fired (window, key) aggregate.
type Pane[T any] struct {
	// Start and End bound the window: [Start, End).
	Start, End time.Time
	// Key is the pane's grouping key.
	Key string
	// Acc is the final accumulator value.
	Acc T
}

// FireReady emits and removes every pane of windows the watermark has
// passed (watermark >= window end), ascending by window start, keys in
// first-seen order. It stops on the first emit error, leaving later
// panes in place.
func (s *TumblingState[T]) FireReady(w time.Time, emit func(Pane[T]) error) error {
	if len(s.starts) == 0 {
		return nil
	}
	sort.Slice(s.starts, func(i, j int) bool { return s.starts[i] < s.starts[j] })
	for len(s.starts) > 0 {
		start := s.starts[0]
		end := time.Unix(0, start).Add(s.size)
		if w.Before(end) {
			break
		}
		// Trim before-or-never: the start must leave the slice exactly
		// when its window leaves the map, or an emit error in a LATER
		// window would leave this (already fired and deleted) window's
		// start behind and a retry would dereference its nil group.
		if err := s.fireWindow(start, end, emit); err != nil {
			return err
		}
		s.starts = s.starts[1:]
	}
	return nil
}

// FireAll emits and removes every remaining pane in the deterministic
// order; callers use it at end of input after finalizing the watermark.
func (s *TumblingState[T]) FireAll(emit func(Pane[T]) error) error {
	return s.FireReady(EndOfTime, emit)
}

// Open reports how many windows currently hold state.
func (s *TumblingState[T]) Open() int { return len(s.windows) }

func (s *TumblingState[T]) fireWindow(start int64, end time.Time, emit func(Pane[T]) error) error {
	g := s.windows[start]
	for len(g.order) > 0 {
		key := g.order[0]
		p := Pane[T]{Start: time.Unix(0, start), End: end, Key: key, Acc: *g.byKey[key]}
		if err := emit(p); err != nil {
			return err // unfired keys stay in place for the caller's error path
		}
		g.order = g.order[1:]
		delete(g.byKey, key)
	}
	delete(s.windows, start)
	return nil
}
