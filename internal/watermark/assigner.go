package watermark

import (
	"fmt"
	"time"
)

// Span is one window's half-open interval [Start, End).
type Span struct {
	Start, End time.Time
}

// Assigner maps an event time to the set of windows containing it — the
// window-assignment half of a windowing strategy. Tumbling windows
// assign one window per record, sliding windows several overlapping
// ones, and session windows a per-record proto-window that merges with
// overlapping sessions of the same key (see Merges).
type Assigner interface {
	// Assign returns the windows containing t, in ascending start order.
	Assign(t time.Time) []Span
	// Merges reports whether assigned windows merge per key (sessions).
	// Non-merging windows are identical across keys; merging windows are
	// key-local and grow as overlapping records arrive.
	Merges() bool
	// Name labels the assigner for errors and plan rendering.
	Name() string
}

// TumblingAssigner assigns fixed, non-overlapping windows of Size
// aligned to the epoch — the FixedWindows strategy.
type TumblingAssigner struct {
	Size time.Duration
}

// NewTumblingAssigner validates the size.
func NewTumblingAssigner(size time.Duration) (TumblingAssigner, error) {
	if size <= 0 {
		return TumblingAssigner{}, fmt.Errorf("watermark: tumbling window size must be positive, got %v", size)
	}
	return TumblingAssigner{Size: size}, nil
}

// Assign returns the single window containing t.
func (a TumblingAssigner) Assign(t time.Time) []Span {
	start := t.Truncate(a.Size)
	return []Span{{Start: start, End: start.Add(a.Size)}}
}

// Merges reports false: tumbling windows never merge.
func (a TumblingAssigner) Merges() bool { return false }

// Name labels the assigner.
func (a TumblingAssigner) Name() string { return fmt.Sprintf("tumbling(%v)", a.Size) }

// SlidingAssigner assigns overlapping windows of Size every Slide,
// aligned to the epoch. A record belongs to ceil(Size/Slide) windows
// (fewer near the epoch). Slide need not divide Size.
type SlidingAssigner struct {
	Size, Slide time.Duration
}

// NewSlidingAssigner validates size and slide.
func NewSlidingAssigner(size, slide time.Duration) (SlidingAssigner, error) {
	if size <= 0 || slide <= 0 {
		return SlidingAssigner{}, fmt.Errorf("watermark: sliding window size and slide must be positive, got %v/%v", size, slide)
	}
	if slide > size {
		return SlidingAssigner{}, fmt.Errorf("watermark: slide %v exceeds size %v (gaps would drop records)", slide, size)
	}
	return SlidingAssigner{Size: size, Slide: slide}, nil
}

// Assign returns every window [start, start+Size) with start aligned to
// Slide and start in (t−Size, t], ascending by start.
func (a SlidingAssigner) Assign(t time.Time) []Span {
	last := t.Truncate(a.Slide)
	var spans []Span
	for start := last; start.After(t.Add(-a.Size)); start = start.Add(-a.Slide) {
		spans = append(spans, Span{Start: start, End: start.Add(a.Size)})
	}
	// Built newest-first; reverse into ascending start order.
	for i, j := 0, len(spans)-1; i < j; i, j = i+1, j-1 {
		spans[i], spans[j] = spans[j], spans[i]
	}
	return spans
}

// Merges reports false: sliding windows overlap but never merge.
func (a SlidingAssigner) Merges() bool { return false }

// Name labels the assigner.
func (a SlidingAssigner) Name() string { return fmt.Sprintf("sliding(%v/%v)", a.Size, a.Slide) }

// SessionAssigner assigns a per-record proto-window [t, t+Gap) that the
// window state merges with any overlapping session of the same key —
// gap-based session windows.
type SessionAssigner struct {
	Gap time.Duration
}

// NewSessionAssigner validates the gap.
func NewSessionAssigner(gap time.Duration) (SessionAssigner, error) {
	if gap <= 0 {
		return SessionAssigner{}, fmt.Errorf("watermark: session gap must be positive, got %v", gap)
	}
	return SessionAssigner{Gap: gap}, nil
}

// Assign returns the record's proto-session.
func (a SessionAssigner) Assign(t time.Time) []Span {
	return []Span{{Start: t, End: t.Add(a.Gap)}}
}

// Merges reports true: overlapping sessions of one key coalesce.
func (a SessionAssigner) Merges() bool { return true }

// Name labels the assigner.
func (a SessionAssigner) Name() string { return fmt.Sprintf("sessions(%v)", a.Gap) }
