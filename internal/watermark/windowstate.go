package watermark

import (
	"fmt"
	"sort"
	"time"
)

// WindowState accumulates per-(window, key) state under any Assigner
// and fires panes once the watermark passes a window's end. It is the
// generalization of the original tumbling-only state: tumbling windows
// assign each record to one pane, sliding windows to several
// overlapping panes, and session windows to a key-local pane that
// merges with overlapping sessions as records arrive (in any order).
//
// Firing order is deterministic given the record arrival order: windows
// fire ascending by (end, start), and keys within a non-merging window
// fire in first-seen order; merged sessions fire ascending by
// (start, end) with ties broken by key first-seen order. Every engine
// uses this state, so their pane multisets agree whenever they observe
// the same records — the property behind the byte-identical sorted
// outputs of the windowed benchmark queries.
type WindowState[T any] struct {
	assigner Assigner
	merge    func(into *T, from T)

	// Non-merging representation: shared windows keyed by span.
	windows map[Span]*windowGroup[T]
	// spans tracks the open windows; kept sorted lazily at fire time
	// (the open set is tiny: a few windows per slide step).
	spans []Span

	// Merging representation: per-key session intervals.
	sessions map[string][]*session[T]
	keyRank  map[string]int
	nextRank int
}

// windowGroup is one window's keyed accumulators in first-seen order.
type windowGroup[T any] struct {
	byKey map[string]*T
	order []string
}

// session is one key's merged interval and accumulator.
type session[T any] struct {
	span Span
	acc  T
}

// NewWindowState returns empty state for the given assigner. merge
// combines two accumulators when session windows coalesce; it is
// required for merging assigners and ignored otherwise.
func NewWindowState[T any](a Assigner, merge func(into *T, from T)) (*WindowState[T], error) {
	if a == nil {
		return nil, fmt.Errorf("watermark: nil window assigner")
	}
	if a.Merges() && merge == nil {
		return nil, fmt.Errorf("watermark: assigner %s merges windows but no merge fn was given", a.Name())
	}
	return &WindowState[T]{
		assigner: a,
		merge:    merge,
		windows:  make(map[Span]*windowGroup[T]),
		sessions: make(map[string][]*session[T]),
		keyRank:  make(map[string]int),
	}, nil
}

// Assigner returns the state's window assigner.
func (s *WindowState[T]) Assigner() Assigner { return s.assigner }

// Upsert applies update to the accumulator of every window assigned to
// t for the given key, creating zero accumulators for new (window, key)
// pairs. Under a merging assigner the record's proto-session first
// coalesces with every overlapping or abutting session of the same key.
func (s *WindowState[T]) Upsert(t time.Time, key string, update func(*T)) {
	if s.assigner.Merges() {
		s.upsertSession(t, key, update)
		return
	}
	for _, span := range s.assigner.Assign(t) {
		g, ok := s.windows[span]
		if !ok {
			g = &windowGroup[T]{byKey: make(map[string]*T)}
			s.windows[span] = g
			s.spans = append(s.spans, span)
		}
		acc, ok := g.byKey[key]
		if !ok {
			acc = new(T)
			g.byKey[key] = acc
			g.order = append(g.order, key)
		}
		update(acc)
	}
}

func (s *WindowState[T]) upsertSession(t time.Time, key string, update func(*T)) {
	if _, ok := s.keyRank[key]; !ok {
		s.keyRank[key] = s.nextRank
		s.nextRank++
	}
	proto := s.assigner.Assign(t)[0]
	merged := &session[T]{span: proto}
	var rest []*session[T]
	// Coalesce ascending by start so non-commutative accumulators see a
	// deterministic merge order regardless of arrival order.
	existing := s.sessions[key]
	sort.SliceStable(existing, func(i, j int) bool { return existing[i].span.Start.Before(existing[j].span.Start) })
	for _, sess := range existing {
		if overlapsOrAbuts(sess.span, proto) {
			if sess.span.Start.Before(merged.span.Start) {
				merged.span.Start = sess.span.Start
			}
			if sess.span.End.After(merged.span.End) {
				merged.span.End = sess.span.End
			}
			s.merge(&merged.acc, sess.acc)
		} else {
			rest = append(rest, sess)
		}
	}
	update(&merged.acc)
	s.sessions[key] = append(rest, merged)
}

func overlapsOrAbuts(a, b Span) bool {
	return !a.End.Before(b.Start) && !b.End.Before(a.Start)
}

// FireReady emits and removes every pane of windows the watermark has
// passed (watermark >= window end), in the deterministic order. It
// stops on the first emit error, leaving later panes in place.
func (s *WindowState[T]) FireReady(w time.Time, emit func(Pane[T]) error) error {
	if s.assigner.Merges() {
		return s.fireSessions(w, emit)
	}
	if len(s.spans) == 0 {
		return nil
	}
	sort.Slice(s.spans, func(i, j int) bool {
		if !s.spans[i].End.Equal(s.spans[j].End) {
			return s.spans[i].End.Before(s.spans[j].End)
		}
		return s.spans[i].Start.Before(s.spans[j].Start)
	})
	for len(s.spans) > 0 {
		span := s.spans[0]
		if w.Before(span.End) {
			break
		}
		// Trim before-or-never: the span must leave the slice exactly
		// when its window leaves the map, or an emit error in a LATER
		// window would leave this (already fired and deleted) window's
		// span behind and a retry would dereference its nil group.
		if err := s.fireWindow(span, emit); err != nil {
			return err
		}
		s.spans = s.spans[1:]
	}
	return nil
}

func (s *WindowState[T]) fireWindow(span Span, emit func(Pane[T]) error) error {
	g := s.windows[span]
	for len(g.order) > 0 {
		key := g.order[0]
		p := Pane[T]{Start: span.Start, End: span.End, Key: key, Acc: *g.byKey[key]}
		if err := emit(p); err != nil {
			return err // unfired keys stay in place for the caller's error path
		}
		g.order = g.order[1:]
		delete(g.byKey, key)
	}
	delete(s.windows, span)
	return nil
}

func (s *WindowState[T]) fireSessions(w time.Time, emit func(Pane[T]) error) error {
	type ready struct {
		key  string
		idx  int
		sess *session[T]
	}
	var due []ready
	for key, sessions := range s.sessions {
		for i, sess := range sessions {
			if !w.Before(sess.span.End) {
				due = append(due, ready{key: key, idx: i, sess: sess})
			}
		}
	}
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i].sess.span, due[j].sess.span
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if !a.End.Equal(b.End) {
			return a.End.Before(b.End)
		}
		return s.keyRank[due[i].key] < s.keyRank[due[j].key]
	})
	for _, r := range due {
		p := Pane[T]{Start: r.sess.span.Start, End: r.sess.span.End, Key: r.key, Acc: r.sess.acc}
		if err := emit(p); err != nil {
			return err
		}
		remaining := s.sessions[r.key][:0]
		for _, sess := range s.sessions[r.key] {
			if sess != r.sess {
				remaining = append(remaining, sess)
			}
		}
		if len(remaining) == 0 {
			delete(s.sessions, r.key)
		} else {
			s.sessions[r.key] = remaining
		}
	}
	return nil
}

// FireAll emits and removes every remaining pane in the deterministic
// order; callers use it at end of input after finalizing the watermark.
func (s *WindowState[T]) FireAll(emit func(Pane[T]) error) error {
	return s.FireReady(EndOfTime, emit)
}

// Open reports how many windows (or sessions) currently hold state.
func (s *WindowState[T]) Open() int {
	if s.assigner.Merges() {
		n := 0
		for _, sessions := range s.sessions {
			n += len(sessions)
		}
		return n
	}
	return len(s.windows)
}
