package dag

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func linearGraph(t *testing.T, kinds ...NodeKind) *Graph {
	t.Helper()
	g := New()
	for i, k := range kinds {
		if err := g.AddNode(Node{ID: fmt.Sprintf("n%d", i), Name: fmt.Sprintf("node %d", i), Kind: k, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := g.AddEdge(fmt.Sprintf("n%d", i-1), fmt.Sprintf("n%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestAddNodeValidation(t *testing.T) {
	g := New()
	tests := []struct {
		name string
		node Node
	}{
		{name: "empty id", node: Node{Kind: KindSource, Parallelism: 1}},
		{name: "bad kind low", node: Node{ID: "a", Kind: 0, Parallelism: 1}},
		{name: "bad kind high", node: Node{ID: "a", Kind: 9, Parallelism: 1}},
		{name: "zero parallelism", node: Node{ID: "a", Kind: KindSource}},
		{name: "negative parallelism", node: Node{ID: "a", Kind: KindSource, Parallelism: -2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddNode(tt.node); err == nil {
				t.Error("expected error")
			}
		})
	}
	if err := g.AddNode(Node{ID: "ok", Kind: KindSource, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: "ok", Kind: KindSource, Parallelism: 1}); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate = %v, want ErrDuplicateNode", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := linearGraph(t, KindSource, KindSink)
	if err := g.AddEdge("missing", "n1"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown from = %v", err)
	}
	if err := g.AddEdge("n0", "missing"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown to = %v", err)
	}
	if err := g.AddEdge("n0", "n0"); !errors.Is(err, ErrCycle) {
		t.Errorf("self edge = %v", err)
	}
}

func TestTopoSortLinear(t *testing.T) {
	g := linearGraph(t, KindSource, KindOperator, KindOperator, KindSink)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"n0", "n1", "n2", "n3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		if err := g.AddNode(Node{ID: id, Kind: KindOperator, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Errorf("TopoSort = %v, want ErrCycle", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate = %v, want ErrCycle", err)
	}
}

func TestValidate(t *testing.T) {
	t.Run("valid linear plan", func(t *testing.T) {
		g := linearGraph(t, KindSource, KindOperator, KindSink)
		if err := g.Validate(); err != nil {
			t.Errorf("Validate = %v", err)
		}
	})
	t.Run("empty graph", func(t *testing.T) {
		if err := New().Validate(); err == nil {
			t.Error("empty graph validated")
		}
	})
	t.Run("source with inputs", func(t *testing.T) {
		g := linearGraph(t, KindSource, KindSource)
		if err := g.Validate(); err == nil {
			t.Error("source with inputs validated")
		}
	})
	t.Run("sink with outputs", func(t *testing.T) {
		g := linearGraph(t, KindSink, KindOperator)
		if err := g.Validate(); err == nil {
			t.Error("sink with outputs validated")
		}
	})
	t.Run("orphan operator", func(t *testing.T) {
		g := New()
		if err := g.AddNode(Node{ID: "op", Kind: KindOperator, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err == nil {
			t.Error("orphan operator validated")
		}
	})
}

func TestNodeAccessors(t *testing.T) {
	g := linearGraph(t, KindSource, KindOperator, KindSink)
	if g.Len() != 3 {
		t.Errorf("Len = %d, want 3", g.Len())
	}
	n, ok := g.Node("n1")
	if !ok || n.Kind != KindOperator {
		t.Errorf("Node(n1) = %+v, %v", n, ok)
	}
	if _, ok := g.Node("zzz"); ok {
		t.Error("found nonexistent node")
	}
	if succ := g.Successors("n0"); len(succ) != 1 || succ[0] != "n1" {
		t.Errorf("Successors(n0) = %v", succ)
	}
	if pred := g.Predecessors("n1"); len(pred) != 1 || pred[0] != "n0" {
		t.Errorf("Predecessors(n1) = %v", pred)
	}
	if roots := g.Roots(); len(roots) != 1 || roots[0] != "n0" {
		t.Errorf("Roots = %v", roots)
	}
	nodes := g.Nodes()
	if len(nodes) != 3 || nodes[0].ID != "n0" || nodes[2].ID != "n2" {
		t.Errorf("Nodes = %+v", nodes)
	}
}

func TestAccessorsReturnCopies(t *testing.T) {
	g := linearGraph(t, KindSource, KindSink)
	succ := g.Successors("n0")
	succ[0] = "corrupted"
	if got := g.Successors("n0"); got[0] != "n1" {
		t.Error("Successors exposed internal slice")
	}
	n, _ := g.Node("n0")
	n.Name = "corrupted"
	if got, _ := g.Node("n0"); got.Name == "corrupted" {
		t.Error("Node exposed internal struct")
	}
}

func TestRenderTextNativeGrepPlan(t *testing.T) {
	// Reproduces the shape of Figure 12: source -> filter -> sink.
	g := New()
	for _, n := range []Node{
		{ID: "src", Name: "Source: Custom Source", Kind: KindSource, Parallelism: 1},
		{ID: "filter", Name: "Filter", Kind: KindOperator, Parallelism: 1},
		{ID: "sink", Name: "Sink: Unnamed", Kind: KindSink, Parallelism: 1},
	} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "filter"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("filter", "sink"); err != nil {
		t.Fatal(err)
	}
	got := g.String()
	for _, want := range []string{
		"[Data Source] Source: Custom Source (parallelism=1)",
		"-> [Operator] Filter (parallelism=1)",
		"-> [Data Sink] Sink: Unnamed (parallelism=1)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("plan missing %q:\n%s", want, got)
		}
	}
	if lines := strings.Count(got, "\n"); lines != 3 {
		t.Errorf("plan has %d lines, want 3:\n%s", lines, got)
	}
}

func TestRenderTextCycleErrors(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b"} {
		if err := g.AddNode(Node{ID: id, Kind: KindOperator, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "a"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.RenderText(&sb); !errors.Is(err, ErrCycle) {
		t.Errorf("RenderText = %v, want ErrCycle", err)
	}
	if !strings.Contains(g.String(), "cycle") {
		t.Errorf("String of cyclic graph = %q", g.String())
	}
}

func TestRenderDOT(t *testing.T) {
	g := linearGraph(t, KindSource, KindOperator, KindSink)
	var sb strings.Builder
	if err := g.RenderDOT(&sb, "grep"); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`digraph "grep"`,
		`"n0" -> "n1";`,
		`"n1" -> "n2";`,
		"invhouse", // source shape
		"house",    // sink shape
	} {
		if !strings.Contains(got, want) {
			t.Errorf("DOT missing %q:\n%s", want, got)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	tests := []struct {
		give NodeKind
		want string
	}{
		{give: KindSource, want: "Data Source"},
		{give: KindOperator, want: "Operator"},
		{give: KindSink, want: "Data Sink"},
		{give: NodeKind(77), want: "NodeKind(77)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("NodeKind(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

// Property: for random DAGs (edges only i->j with i<j, so acyclic by
// construction), TopoSort succeeds and respects every edge.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed uint64, nNodes uint8, nEdges uint8) bool {
		n := int(nNodes%12) + 2
		rng := rand.New(rand.NewPCG(seed, seed))
		g := New()
		for i := range n {
			kind := KindOperator
			if i == 0 {
				kind = KindSource
			}
			if err := g.AddNode(Node{ID: fmt.Sprintf("n%d", i), Kind: kind, Parallelism: 1 + i%3}); err != nil {
				return false
			}
		}
		for range int(nEdges % 40) {
			i := rng.IntN(n - 1)
			j := i + 1 + rng.IntN(n-i-1)
			if err := g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j)); err != nil {
				return false
			}
		}
		order, err := g.TopoSort()
		if err != nil || len(order) != n {
			return false
		}
		pos := make(map[string]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for _, from := range order {
			for _, to := range g.Successors(from) {
				if pos[from] >= pos[to] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
