// Package dag provides the directed-acyclic operator graphs shared by
// the engine simulators: job graphs, validation, deterministic
// topological ordering, and the execution-plan renderings shown in
// Figures 12 and 13 of Hesse et al. (ICDCS 2019).
package dag

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeKind classifies a node in an execution plan.
type NodeKind int

const (
	// KindSource produces records.
	KindSource NodeKind = iota + 1
	// KindOperator transforms records.
	KindOperator
	// KindSink consumes records.
	KindSink
)

// String returns the plan label of the kind, matching the labels in the
// paper's plan figures.
func (k NodeKind) String() string {
	switch k {
	case KindSource:
		return "Data Source"
	case KindOperator:
		return "Operator"
	case KindSink:
		return "Data Sink"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one vertex of an execution plan.
type Node struct {
	// ID uniquely identifies the node within its graph.
	ID string
	// Name is the display name, e.g. "Source: Custom Source" or
	// "ParDoTranslation.RawParDo".
	Name string
	// Kind classifies the node.
	Kind NodeKind
	// Parallelism is the number of parallel instances.
	Parallelism int
}

// Errors reported by graph construction.
var (
	ErrDuplicateNode = errors.New("dag: duplicate node")
	ErrUnknownNode   = errors.New("dag: unknown node")
	ErrCycle         = errors.New("dag: graph contains a cycle")
)

// Graph is a mutable DAG of plan nodes. The zero value is not usable;
// construct with New.
type Graph struct {
	nodes map[string]*Node
	order []string
	succ  map[string][]string
	pred  map[string][]string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]*Node),
		succ:  make(map[string][]string),
		pred:  make(map[string][]string),
	}
}

// AddNode inserts a node. The node ID must be unique and non-empty, the
// kind valid, and the parallelism positive.
func (g *Graph) AddNode(n Node) error {
	if n.ID == "" {
		return errors.New("dag: empty node ID")
	}
	if n.Kind < KindSource || n.Kind > KindSink {
		return fmt.Errorf("dag: node %q: invalid kind %d", n.ID, n.Kind)
	}
	if n.Parallelism <= 0 {
		return fmt.Errorf("dag: node %q: parallelism must be positive, got %d", n.ID, n.Parallelism)
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateNode, n.ID)
	}
	copied := n
	g.nodes[n.ID] = &copied
	g.order = append(g.order, n.ID)
	return nil
}

// AddEdge inserts a directed edge between existing nodes.
func (g *Graph) AddEdge(from, to string) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if from == to {
		return fmt.Errorf("%w: self edge on %q", ErrCycle, from)
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// Node returns a node by ID.
func (g *Graph) Node(id string) (Node, bool) {
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Len reports the number of nodes.
func (g *Graph) Len() int { return len(g.order) }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, *g.nodes[id])
	}
	return out
}

// Successors returns the IDs downstream of id, in edge insertion order.
func (g *Graph) Successors(id string) []string {
	return append([]string(nil), g.succ[id]...)
}

// Predecessors returns the IDs upstream of id, in edge insertion order.
func (g *Graph) Predecessors(id string) []string {
	return append([]string(nil), g.pred[id]...)
}

// Roots returns nodes without predecessors, in insertion order.
func (g *Graph) Roots() []string {
	var out []string
	for _, id := range g.order {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// TopoSort returns a deterministic topological ordering (Kahn's
// algorithm with insertion-order tie-breaking), or ErrCycle.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for _, id := range g.order {
		indeg[id] = len(g.pred[id])
	}
	var ready []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	out := make([]string, 0, len(g.nodes))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, next := range g.succ[id] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, ErrCycle
	}
	return out, nil
}

// Validate checks that the graph is a DAG, that every non-source node is
// reachable from some source-kind node, and that sinks have no
// successors.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("dag: empty graph")
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	for _, id := range g.order {
		n := g.nodes[id]
		if n.Kind == KindSource && len(g.pred[id]) > 0 {
			return fmt.Errorf("dag: source %q has inputs", id)
		}
		if n.Kind == KindSink && len(g.succ[id]) > 0 {
			return fmt.Errorf("dag: sink %q has outputs", id)
		}
		if n.Kind != KindSource && len(g.pred[id]) == 0 {
			return fmt.Errorf("dag: %s %q has no inputs", strings.ToLower(n.Kind.String()), id)
		}
	}
	return nil
}

// RenderText writes the plan as an indented tree in topological order,
// the textual equivalent of the paper's Figures 12 and 13:
//
//	[Data Source] Source: Custom Source (parallelism=1)
//	  -> [Operator] Filter (parallelism=1)
//	    -> [Data Sink] Sink: Unnamed (parallelism=1)
func (g *Graph) RenderText(w io.Writer) error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	depth := make(map[string]int, len(order))
	for _, id := range order {
		d := 0
		for _, p := range g.pred[id] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
	}
	for _, id := range order {
		n := g.nodes[id]
		indent := strings.Repeat("  ", depth[id])
		arrow := ""
		if depth[id] > 0 {
			arrow = "-> "
		}
		if _, err := fmt.Fprintf(w, "%s%s[%s] %s (parallelism=%d)\n",
			indent, arrow, n.Kind, n.Name, n.Parallelism); err != nil {
			return err
		}
	}
	return nil
}

// String renders the plan as text, or an error description if the graph
// is invalid.
func (g *Graph) String() string {
	var sb strings.Builder
	if err := g.RenderText(&sb); err != nil {
		return fmt.Sprintf("dag: %v", err)
	}
	return sb.String()
}

// RenderDOT writes the plan in Graphviz DOT syntax for use with external
// visualizers (the paper used the Flink Plan Visualizer).
func (g *Graph) RenderDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", title); err != nil {
		return err
	}
	for _, id := range g.order {
		n := g.nodes[id]
		shape := "box"
		if n.Kind == KindSource {
			shape = "invhouse"
		}
		if n.Kind == KindSink {
			shape = "house"
		}
		label := fmt.Sprintf("%s\\n%s\\nParallelism: %d", n.Kind, n.Name, n.Parallelism)
		if _, err := fmt.Fprintf(w, "  %q [shape=%s,label=\"%s\"];\n", id, shape, label); err != nil {
			return err
		}
	}
	edges := make([]string, 0)
	for _, from := range g.order {
		for _, to := range g.succ[from] {
			edges = append(edges, fmt.Sprintf("  %q -> %q;\n", from, to))
		}
	}
	sort.Strings(edges)
	for _, e := range edges {
		if _, err := io.WriteString(w, e); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
