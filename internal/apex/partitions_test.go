package apex

import (
	"testing"

	"beambench/internal/yarn"
)

func TestSetOperatorPartitionsOverride(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("pinned").
		AddInput("in", SliceInput(tuples(400))).
		AddOperator("pass", PassThrough()).
		AddOutput("out", CollectOutput(out)).
		AddStream("s1", "in", "pass").
		AddStream("s2", "pass", "out").
		SetOperatorPartitions("out", 1)
	res := runApp(t, cluster, app, LaunchConfig{Parallelism: 2, WindowTuples: 50})
	if out.Len() != 400 {
		t.Errorf("collected %d tuples, want 400", out.Len())
	}
	// AM + in(2) + pass(2) + out(1) = 6 containers.
	if res.Containers != 6 {
		t.Errorf("Containers = %d, want 6", res.Containers)
	}
}

func TestSetOperatorPartitionsValidation(t *testing.T) {
	out := NewTupleCollector()
	app := NewApplication("bad").
		AddInput("in", SliceInput(nil)).
		AddOutput("out", CollectOutput(out)).
		AddStream("s", "in", "out").
		SetOperatorPartitions("missing", 1)
	if err := app.validate(); err == nil {
		t.Error("unknown operator accepted")
	}

	app2 := NewApplication("bad2").
		AddInput("in", SliceInput(nil)).
		AddOutput("out", CollectOutput(out)).
		AddStream("s", "in", "out").
		SetOperatorPartitions("out", -1)
	if err := app2.validate(); err == nil {
		t.Error("negative partition count accepted")
	}
}

func TestPartitionOverrideCountsIntoVCores(t *testing.T) {
	// 1 AM + in(1) + pass(4) + out(1) = 7 vcores needed; cluster has 6.
	cluster := newYarn(t, yarn.ClusterConfig{NodeManagers: 1, VCoresPerNode: 6})
	out := NewTupleCollector()
	app := NewApplication("big").
		AddInput("in", SliceInput(nil)).
		AddOperator("pass", PassThrough()).
		AddOutput("out", CollectOutput(out)).
		AddStream("s1", "in", "pass").
		AddStream("s2", "pass", "out").
		SetOperatorPartitions("in", 1).
		SetOperatorPartitions("pass", 4).
		SetOperatorPartitions("out", 1)
	if _, err := Launch(cluster, app, LaunchConfig{}); err == nil {
		t.Error("launch exceeding vcores accepted")
	}
}
