package apex

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"beambench/internal/broker"
)

// _inputIdlePoll is how long a Kafka input waits for data before
// re-checking whether the topic is complete.
const _inputIdlePoll = 20 * time.Millisecond

// KafkaInput returns an input factory reading a topic from the broker
// until target records have been appended to it in total and every
// assigned partition is drained — the end-of-input contract that lets
// the same operator terminate correctly whether the benchmark preloads
// the input topic or streams into it while the application runs.
//
// A target <= 0 degrades to a bounded snapshot of the topic's contents
// at partition setup, for direct engine-API use outside the harness;
// records appended after the snapshot are ignored.
//
// Kafka partitions are distributed over operator partitions
// round-robin, Malhar-style.
func KafkaInput(b *broker.Broker, topic string, target int64) InputFactory {
	return func(ctx OperatorContext) (InputOperator, error) {
		nParts, err := b.Partitions(topic)
		if err != nil {
			return nil, fmt.Errorf("apex: kafka input: %w", err)
		}
		consumer, err := b.NewConsumer(broker.ConsumerConfig{})
		if err != nil {
			return nil, fmt.Errorf("apex: kafka input: %w", err)
		}
		var assigned []int
		for p := range nParts {
			if p%ctx.PartitionCount() == ctx.PartitionIndex() {
				if err := consumer.Assign(topic, p, 0); err != nil {
					return nil, fmt.Errorf("apex: kafka input: %w", err)
				}
				assigned = append(assigned, p)
			}
		}
		eoi, err := broker.NewEndOfInput(b, topic, target, assigned)
		if err != nil {
			return nil, fmt.Errorf("apex: kafka input: %w", err)
		}
		k := &kafkaInput{consumer: consumer, eoi: eoi}
		if len(assigned) == 0 {
			k.done = true
		}
		return k, nil
	}
}

type kafkaInput struct {
	consumer *broker.Consumer
	eoi      *broker.EndOfInput
	buffered []broker.Record
	idle     bool
	done     bool
}

func (k *kafkaInput) NextTuples(max int, emit func([]byte) error) (bool, error) {
	if k.done {
		return true, nil
	}
	if max <= 0 {
		return false, nil
	}
	if len(k.buffered) == 0 {
		recs, err := k.consumer.PollWait(_inputIdlePoll)
		if err != nil {
			return false, fmt.Errorf("apex: kafka input: %w", err)
		}
		k.buffered = recs
		k.idle = len(recs) == 0
	}
	n := min(max, len(k.buffered))
	for _, r := range k.buffered[:n] {
		if !k.eoi.Admit(r) {
			continue // appended after the bounded snapshot
		}
		if err := emit(r.Value); err != nil {
			return false, err
		}
	}
	k.buffered = k.buffered[n:]
	if len(k.buffered) == 0 {
		done, err := k.eoi.Complete(k.consumer, k.idle)
		if err != nil {
			return false, fmt.Errorf("apex: kafka input: %w", err)
		}
		k.done = done
	}
	return k.done, nil
}

func (k *kafkaInput) Teardown() error { return nil }

// KafkaOutput returns an output factory writing tuples to a topic. Each
// partition owns one producer; the producer flushes at streaming-window
// boundaries (EndWindow), which is the batched native output mode. A
// ProducerConfig with BatchSize 1 degrades it to synchronous per-tuple
// sends — the Beam runner's output mode.
func KafkaOutput(b *broker.Broker, topic string, cfg broker.ProducerConfig) OutputFactory {
	return func(ctx OperatorContext) (OutputOperator, error) {
		if _, err := b.Partitions(topic); err != nil {
			return nil, fmt.Errorf("apex: kafka output: %w", err)
		}
		producer, err := b.NewProducer(cfg)
		if err != nil {
			return nil, fmt.Errorf("apex: kafka output: %w", err)
		}
		return &kafkaOutput{producer: producer, topic: topic}, nil
	}
}

type kafkaOutput struct {
	producer *broker.Producer
	topic    string
}

func (k *kafkaOutput) Process(t []byte) error {
	return k.producer.Send(k.topic, nil, t)
}

func (k *kafkaOutput) EndWindow() error {
	return k.producer.Flush()
}

func (k *kafkaOutput) Teardown() error {
	return k.producer.Close()
}

// funcOperator adapts a process function to GenericOperator.
type funcOperator struct {
	fn func(tuple []byte, emit func([]byte) error) error
}

func (o *funcOperator) Process(t []byte, emit func([]byte) error) error {
	return o.fn(t, emit)
}

func (o *funcOperator) Teardown() error { return nil }

// PassThrough returns an operator that forwards every tuple unchanged
// (the identity query's processing step).
func PassThrough() GenericFactory {
	return func(OperatorContext) (GenericOperator, error) {
		return &funcOperator{fn: func(t []byte, emit func([]byte) error) error {
			return emit(t)
		}}, nil
	}
}

// MapOp returns an operator applying fn to every tuple.
func MapOp(fn func([]byte) []byte) GenericFactory {
	if fn == nil {
		return failingGeneric(errors.New("apex: nil map function"))
	}
	return func(OperatorContext) (GenericOperator, error) {
		return &funcOperator{fn: func(t []byte, emit func([]byte) error) error {
			return emit(fn(t))
		}}, nil
	}
}

// FilterOp returns an operator keeping tuples matching fn.
func FilterOp(fn func([]byte) bool) GenericFactory {
	if fn == nil {
		return failingGeneric(errors.New("apex: nil filter function"))
	}
	return func(OperatorContext) (GenericOperator, error) {
		return &funcOperator{fn: func(t []byte, emit func([]byte) error) error {
			if fn(t) {
				return emit(t)
			}
			return nil
		}}, nil
	}
}

// FlatMapOp returns an operator emitting zero or more tuples per input.
func FlatMapOp(fn func(tuple []byte, emit func([]byte) error) error) GenericFactory {
	if fn == nil {
		return failingGeneric(errors.New("apex: nil flatMap function"))
	}
	return func(OperatorContext) (GenericOperator, error) {
		return &funcOperator{fn: fn}, nil
	}
}

// ProcessOp returns an operator built per partition, the hook the Beam
// runner uses to interpose DoFn invocation and coder costs.
func ProcessOp(factory func(ctx OperatorContext) (func(tuple []byte, emit func([]byte) error) error, error)) GenericFactory {
	if factory == nil {
		return failingGeneric(errors.New("apex: nil process factory"))
	}
	return func(ctx OperatorContext) (GenericOperator, error) {
		fn, err := factory(ctx)
		if err != nil {
			return nil, err
		}
		return &funcOperator{fn: fn}, nil
	}
}

func failingGeneric(err error) GenericFactory {
	return func(OperatorContext) (GenericOperator, error) { return nil, err }
}

// SliceInput returns an input factory emitting the given tuples from
// partition 0, for tests and examples.
func SliceInput(tuples [][]byte) InputFactory {
	return func(ctx OperatorContext) (InputOperator, error) {
		if ctx.PartitionIndex() != 0 {
			return &sliceInput{}, nil
		}
		return &sliceInput{tuples: tuples}, nil
	}
}

type sliceInput struct {
	tuples [][]byte
	pos    int
}

func (s *sliceInput) NextTuples(max int, emit func([]byte) error) (bool, error) {
	n := min(max, len(s.tuples)-s.pos)
	for _, t := range s.tuples[s.pos : s.pos+n] {
		if err := emit(t); err != nil {
			return false, err
		}
	}
	s.pos += n
	return s.pos >= len(s.tuples), nil
}

func (s *sliceInput) Teardown() error { return nil }

// TupleCollector is a thread-safe tuple buffer usable as an output
// operator from multiple partitions, for tests and examples.
type TupleCollector struct {
	mu     sync.Mutex
	tuples [][]byte
	// windowEnds counts EndWindow calls, for window accounting tests.
	windowEnds int
}

// NewTupleCollector returns an empty collector.
func NewTupleCollector() *TupleCollector { return &TupleCollector{} }

// CollectOutput returns an output factory appending to the collector.
func CollectOutput(dst *TupleCollector) OutputFactory {
	return func(OperatorContext) (OutputOperator, error) {
		if dst == nil {
			return nil, errors.New("apex: nil tuple collector")
		}
		return dst, nil
	}
}

// Process stores a copy of the tuple.
func (c *TupleCollector) Process(t []byte) error {
	cp := make([]byte, len(t))
	copy(cp, t)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tuples = append(c.tuples, cp)
	return nil
}

// EndWindow counts window boundaries.
func (c *TupleCollector) EndWindow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windowEnds++
	return nil
}

// Teardown implements OutputOperator.
func (c *TupleCollector) Teardown() error { return nil }

// Len reports the number of collected tuples.
func (c *TupleCollector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tuples)
}

// WindowEnds reports how many EndWindow calls were observed.
func (c *TupleCollector) WindowEnds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windowEnds
}

// Strings returns the collected tuples as strings in arrival order.
func (c *TupleCollector) Strings() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.tuples))
	for i, t := range c.tuples {
		out[i] = string(t)
	}
	return out
}
