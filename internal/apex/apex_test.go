package apex

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"beambench/internal/broker"
	"beambench/internal/yarn"
)

func newYarn(t *testing.T, cfg yarn.ClusterConfig) *yarn.Cluster {
	t.Helper()
	c, err := yarn.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func tuples(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("tuple-%05d", i))
	}
	return out
}

func runApp(t *testing.T, cluster *yarn.Cluster, app *Application, cfg LaunchConfig) *AppResult {
	t.Helper()
	stram, err := Launch(cluster, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stram.Await()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestApplicationValidation(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()

	tests := []struct {
		name  string
		build func() *Application
	}{
		{name: "empty", build: func() *Application { return NewApplication("a") }},
		{name: "duplicate operator", build: func() *Application {
			return NewApplication("a").
				AddInput("x", SliceInput(nil)).
				AddInput("x", SliceInput(nil))
		}},
		{name: "no output", build: func() *Application {
			return NewApplication("a").AddInput("in", SliceInput(nil))
		}},
		{name: "no input", build: func() *Application {
			return NewApplication("a").AddOutput("out", CollectOutput(out))
		}},
		{name: "disconnected output", build: func() *Application {
			return NewApplication("a").
				AddInput("in", SliceInput(nil)).
				AddOutput("out", CollectOutput(out))
		}},
		{name: "stream from unknown", build: func() *Application {
			return NewApplication("a").
				AddInput("in", SliceInput(nil)).
				AddOutput("out", CollectOutput(out)).
				AddStream("s", "nope", "out")
		}},
		{name: "stream into input", build: func() *Application {
			return NewApplication("a").
				AddInput("in", SliceInput(nil)).
				AddInput("in2", SliceInput(nil)).
				AddOutput("out", CollectOutput(out)).
				AddStream("s", "in", "in2")
		}},
		{name: "nil factory", build: func() *Application {
			return NewApplication("a").
				AddInput("in", nil).
				AddOutput("out", CollectOutput(out)).
				AddStream("s", "in", "out")
		}},
		{name: "unknown per-tuple stream", build: func() *Application {
			return NewApplication("a").
				AddInput("in", SliceInput(nil)).
				AddOutput("out", CollectOutput(out)).
				AddStream("s", "in", "out").
				SetStreamPerTuple("zzz", true)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Launch(cluster, tt.build(), LaunchConfig{}); err == nil {
				t.Error("invalid application launched")
			}
		})
	}
}

// TestMergeTwoInputs pins the multi-input contract: several streams may
// feed one operator port, and the destination sees the union of the
// upstream tuples (interleaving unspecified).
func TestMergeTwoInputs(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("merge").
		AddInput("i1", SliceInput(tuples(10))).
		AddInput("i2", SliceInput(tuples(7))).
		AddOperator("id", PassThrough()).
		AddOutput("out", CollectOutput(out)).
		AddStream("s1", "i1", "id").
		AddStream("s2", "i2", "id").
		AddStream("s3", "id", "out")

	runApp(t, cluster, app, LaunchConfig{WindowTuples: 4})
	got := out.Strings()
	sort.Strings(got)
	var want []string
	for _, tu := range tuples(10) {
		want = append(want, string(tu))
	}
	for _, tu := range tuples(7) {
		want = append(want, string(tu))
	}
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged output = %v, want %v", got, want)
	}
}

func TestLinearApplication(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("grep").
		AddInput("in", SliceInput(tuples(1000))).
		AddOperator("filter", FilterOp(func(t []byte) bool { return bytes.Contains(t, []byte("9")) })).
		AddOutput("out", CollectOutput(out)).
		AddStream("s1", "in", "filter").
		AddStream("s2", "filter", "out")

	res := runApp(t, cluster, app, LaunchConfig{WindowTuples: 100})
	want := 0
	for _, tu := range tuples(1000) {
		if bytes.Contains(tu, []byte("9")) {
			want++
		}
	}
	if out.Len() != want {
		t.Errorf("collected %d tuples, want %d", out.Len(), want)
	}
	if res.Containers != 4 {
		t.Errorf("Containers = %d, want 4 (AM + 3 operators)", res.Containers)
	}
	in, ok := res.OperatorReportFor("in")
	if !ok || in.TuplesOut != 1000 {
		t.Errorf("input report = %+v, %v", in, ok)
	}
	if in.Windows != 10 {
		t.Errorf("input windows = %d, want 10 (1000 tuples / 100 per window)", in.Windows)
	}
	flt, ok := res.OperatorReportFor("filter")
	if !ok || flt.TuplesIn != 1000 || flt.TuplesOut != int64(want) {
		t.Errorf("filter report = %+v, %v", flt, ok)
	}
	if _, ok := res.OperatorReportFor("nope"); ok {
		t.Error("report for unknown operator")
	}
}

func TestWindowBoundariesReachSink(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("windows").
		AddInput("in", SliceInput(tuples(950))).
		AddOutput("out", CollectOutput(out)).
		AddStream("s", "in", "out")
	res := runApp(t, cluster, app, LaunchConfig{WindowTuples: 100})
	if out.Len() != 950 {
		t.Errorf("collected %d, want 950", out.Len())
	}
	// 9 full windows + 1 partial = 10 window ends at the sink.
	if out.WindowEnds() != 10 {
		t.Errorf("sink observed %d window ends, want 10", out.WindowEnds())
	}
	rep, _ := res.OperatorReportFor("out")
	if rep.Windows != 10 {
		t.Errorf("sink windows = %d, want 10", rep.Windows)
	}
}

func TestParallelismPartitionsWork(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("par").
		AddInput("in", SliceInput(tuples(600))).
		AddOperator("pass", PassThrough()).
		AddOutput("out", CollectOutput(out)).
		AddStream("s1", "in", "pass").
		AddStream("s2", "pass", "out")
	res := runApp(t, cluster, app, LaunchConfig{Parallelism: 2, WindowTuples: 100})
	if out.Len() != 600 {
		t.Errorf("collected %d, want 600", out.Len())
	}
	if res.Containers != 7 {
		t.Errorf("Containers = %d, want 7 (AM + 3 ops x 2 partitions)", res.Containers)
	}
	pass, _ := res.OperatorReportFor("pass")
	if pass.TuplesIn != 600 || pass.TuplesOut != 600 {
		t.Errorf("pass report = %+v", pass)
	}
}

func TestPerTupleStreamDeliversAll(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("pertuple").
		AddInput("in", SliceInput(tuples(300))).
		AddOperator("pass", PassThrough()).
		AddOutput("out", CollectOutput(out)).
		AddStream("s1", "in", "pass").
		AddStream("s2", "pass", "out").
		SetStreamPerTuple("s2", true)
	res := runApp(t, cluster, app, LaunchConfig{WindowTuples: 100})
	if out.Len() != 300 {
		t.Errorf("collected %d, want 300", out.Len())
	}
	// Window markers still flow on per-tuple streams.
	rep, _ := res.OperatorReportFor("out")
	if rep.Windows != 3 {
		t.Errorf("sink windows = %d, want 3", rep.Windows)
	}
}

func TestVCoreGate(t *testing.T) {
	// 3 operators x 2 partitions + AM = 7 vcores; give the cluster 4.
	cluster := newYarn(t, yarn.ClusterConfig{NodeManagers: 1, VCoresPerNode: 4})
	out := NewTupleCollector()
	app := NewApplication("big").
		AddInput("in", SliceInput(tuples(10))).
		AddOperator("pass", PassThrough()).
		AddOutput("out", CollectOutput(out)).
		AddStream("s1", "in", "pass").
		AddStream("s2", "pass", "out")
	if _, err := Launch(cluster, app, LaunchConfig{Parallelism: 2}); !errors.Is(err, yarn.ErrInsufficientVCores) {
		t.Errorf("Launch = %v, want ErrInsufficientVCores", err)
	}
}

func TestLaunchRequiresRunningCluster(t *testing.T) {
	cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := NewTupleCollector()
	app := NewApplication("a").
		AddInput("in", SliceInput(nil)).
		AddOutput("out", CollectOutput(out)).
		AddStream("s", "in", "out")
	if _, err := Launch(cluster, app, LaunchConfig{}); !errors.Is(err, yarn.ErrStopped) {
		t.Errorf("Launch = %v, want ErrStopped", err)
	}
}

func TestOperatorErrorFailsApplication(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	boom := errors.New("boom")
	app := NewApplication("failing").
		AddInput("in", SliceInput(tuples(100))).
		AddOperator("explode", FlatMapOp(func(t []byte, emit func([]byte) error) error {
			if bytes.HasSuffix(t, []byte("42")) {
				return boom
			}
			return emit(t)
		})).
		AddOutput("out", CollectOutput(out)).
		AddStream("s1", "in", "explode").
		AddStream("s2", "explode", "out")
	stram, err := Launch(cluster, app, LaunchConfig{WindowTuples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stram.Await(); !errors.Is(err, boom) {
		t.Errorf("Await = %v, want boom", err)
	}
	if free := cluster.FreeVCores(); free != cluster.TotalVCores() {
		t.Errorf("vcores leaked after failure: free %d of %d", free, cluster.TotalVCores())
	}
}

func TestRestartRecoversTransientFailure(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	attempt := 0
	app := NewApplication("flaky").
		AddInput("in", func(ctx OperatorContext) (InputOperator, error) {
			attempt++
			if attempt == 1 {
				return nil, errors.New("transient setup failure")
			}
			return &sliceInput{tuples: tuples(50)}, nil
		}).
		AddOutput("out", CollectOutput(out)).
		AddStream("s", "in", "out")
	res := runApp(t, cluster, app, LaunchConfig{RestartAttempts: 1})
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Attempts)
	}
	if out.Len() != 50 {
		t.Errorf("collected %d, want 50", out.Len())
	}
}

func TestKafkaInputOutputEndToEnd(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	input := tuples(400)
	for _, tu := range input {
		if err := p.Send("in", nil, tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	cluster := newYarn(t, yarn.ClusterConfig{})
	app := NewApplication("identity").
		AddInput("kafkaIn", KafkaInput(b, "in", 0)).
		AddOperator("pass", PassThrough()).
		AddOutput("kafkaOut", KafkaOutput(b, "out", broker.ProducerConfig{})).
		AddStream("s1", "kafkaIn", "pass").
		AddStream("s2", "pass", "kafkaOut")
	res := runApp(t, cluster, app, LaunchConfig{WindowTuples: 64})

	count, err := b.RecordCount("out")
	if err != nil {
		t.Fatal(err)
	}
	if count != 400 {
		t.Errorf("output topic has %d records, want 400", count)
	}
	// Order preserved with one partition and parallelism 1.
	c, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Assign("out", 0, 0); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if !bytes.Equal(r.Value, input[i]) {
			t.Fatalf("record %d = %q, want %q", i, r.Value, input[i])
		}
	}
	in, _ := res.OperatorReportFor("kafkaIn")
	if in.TuplesOut != 400 {
		t.Errorf("kafka input emitted %d, want 400", in.TuplesOut)
	}
}

func TestKafkaInputUnknownTopic(t *testing.T) {
	b := broker.New()
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("a").
		AddInput("in", KafkaInput(b, "missing", 0)).
		AddOutput("out", CollectOutput(out)).
		AddStream("s", "in", "out")
	stram, err := Launch(cluster, app, LaunchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stram.Await(); err == nil {
		t.Error("application with missing topic succeeded")
	}
}

func TestPlanRendering(t *testing.T) {
	out := NewTupleCollector()
	app := NewApplication("grep").
		AddInput("kafkaIn", SliceInput(nil)).
		AddOperator("filter", PassThrough()).
		AddOutput("kafkaOut", CollectOutput(out)).
		AddStream("s1", "kafkaIn", "filter").
		AddStream("s2", "filter", "kafkaOut")
	g, err := app.Plan(2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Errorf("plan has %d nodes, want 3", g.Len())
	}
	n, ok := g.Node("filter")
	if !ok || n.Parallelism != 2 {
		t.Errorf("filter node = %+v, %v", n, ok)
	}
	if _, err := app.Plan(0); err == nil {
		t.Error("plan with parallelism 0 accepted")
	}
}

func TestFanOutStreams(t *testing.T) {
	cluster := newYarn(t, yarn.ClusterConfig{NodeManagers: 2, VCoresPerNode: 8})
	outA := NewTupleCollector()
	outB := NewTupleCollector()
	app := NewApplication("fanout").
		AddInput("in", SliceInput(tuples(100))).
		AddOutput("outA", CollectOutput(outA)).
		AddOutput("outB", CollectOutput(outB)).
		AddStream("sa", "in", "outA").
		AddStream("sb", "in", "outB")
	runApp(t, cluster, app, LaunchConfig{WindowTuples: 30})
	if outA.Len() != 100 || outB.Len() != 100 {
		t.Errorf("fan-out collected %d, %d; want 100, 100", outA.Len(), outB.Len())
	}
}

func TestContainerKillFailsApplication(t *testing.T) {
	// Kill every container of the app as soon as it is allocated; with
	// no restart budget the application must fail.
	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	big := tuples(200_000) // large enough to still be running when killed
	app := NewApplication("victim").
		AddInput("in", SliceInput(big)).
		AddOutput("out", CollectOutput(out)).
		AddStream("s", "in", "out")
	stram, err := Launch(cluster, app, LaunchConfig{WindowTuples: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Kill operator containers while the app runs (AM holds 1 vcore).
	killed := false
	for range 1000 {
		for _, rep := range cluster.NodeReports() {
			_ = rep
		}
		if cluster.FreeVCores() <= cluster.TotalVCores()-3 {
			// Containers are up; kill by scanning IDs 1..16.
			for i := range 16 {
				id := fmt.Sprintf("container_%06d", i+2) // skip the AM
				if err := cluster.KillContainer(id); err == nil {
					killed = true
				}
			}
			break
		}
	}
	res, err := stram.Await()
	if killed && err == nil {
		t.Errorf("application survived container kill: %+v", res)
	}
}
